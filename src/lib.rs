//! # dfm-practice — umbrella crate
//!
//! Re-exports every subsystem of the `dfm-practice` workspace, the
//! reproduction of *"DFM in practice: hit or hype?"* (DAC 2008). The
//! runnable examples under `examples/` and the cross-crate integration
//! tests under `tests/` use this crate; library consumers may prefer to
//! depend on the individual subsystem crates directly.
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`geom`] | `dfm-geom` | integer Manhattan geometry kernel |
//! | [`layout`] | `dfm-layout` | layout database, GDSII I/O, generators |
//! | [`drc`] | `dfm-drc` | design-rule checking |
//! | [`litho`] | `dfm-litho` | lithography simulation & hotspots |
//! | [`opc`] | `dfm-opc` | optical proximity correction |
//! | [`pattern`] | `dfm-pattern` | topological pattern catalogs |
//! | [`yieldsim`] | `dfm-yield` | critical area & yield models |
//! | [`dpt`] | `dfm-dpt` | double patterning |
//! | [`timing`] | `dfm-timing` | variability-aware STA |
//! | [`dfm`] | `dfm-core` | DFM techniques & hit-or-hype evaluator |
//! | [`rand`] | `dfm-rand` | deterministic PRNG (hermetic, seed-everywhere) |
//! | [`fault`] | `dfm-fault` | deterministic fault-injection plane |
//! | [`par`] | `dfm-par` | deterministic thread pool & worker pool |
//! | [`cache`] | `dfm-cache` | content-addressed tile-result cache |
//! | [`score`] | `dfm-score` | weighted manufacturability scoring |
//! | [`signoff`] | `dfm-signoff` | async signoff job service (scheduler, checkpoints) |

#![forbid(unsafe_code)]

pub use dfm_bench as bench;
pub use dfm_cache as cache;
pub use dfm_core as dfm;
pub use dfm_dpt as dpt;
pub use dfm_drc as drc;
pub use dfm_fault as fault;
pub use dfm_geom as geom;
pub use dfm_layout as layout;
pub use dfm_litho as litho;
pub use dfm_opc as opc;
pub use dfm_par as par;
pub use dfm_pattern as pattern;
pub use dfm_rand as rand;
pub use dfm_score as score;
pub use dfm_signoff as signoff;
pub use dfm_timing as timing;
pub use dfm_yield as yieldsim;
