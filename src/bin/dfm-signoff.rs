//! `dfm-signoff` — the command-line front-end of the signoff job
//! service.
//!
//! ```text
//! dfm-signoff serve   [--threads N] [--port P] [--ckpt DIR] [--port-file FILE]
//!                     [--fault-plan FILE] [--max-attempts N]
//!                     [--cache DIR] [--cache-max-bytes N] [--tenants FILE]
//!                     [--shard-of K/N]
//! dfm-signoff coordinate --shards HOST:PORT[,HOST:PORT...] [serve flags]
//! dfm-signoff gen     --out FILE [--width NM] [--height NM] [--seed S]
//! dfm-signoff submit  --addr HOST:PORT --gds FILE [--idem KEY] [--retry N]
//!                     [--tenant T] [--priority P] [spec flags]
//! dfm-signoff status  --addr HOST:PORT --job ID [--tenant T] [--priority P]
//! dfm-signoff events  --addr HOST:PORT --job ID [--since SEQ]
//! dfm-signoff results --addr HOST:PORT --job ID [--partial] [--wait] [--tenant T] [--priority P]
//! dfm-signoff score   --addr HOST:PORT --job ID
//! dfm-signoff score   --gds FILE [--cache DIR] [--threads N] [spec flags]
//! dfm-signoff fix     --gds FILE [--out FILE] [--cache DIR] [--threads N] [spec flags]
//! dfm-signoff cancel  --addr HOST:PORT --job ID
//! dfm-signoff resume  --addr HOST:PORT --job ID
//! dfm-signoff list    --addr HOST:PORT
//! dfm-signoff shutdown --addr HOST:PORT [--drain]
//! dfm-signoff flat-report --gds FILE [spec flags]
//! dfm-signoff cache   stats|verify|clear --dir DIR
//! ```
//!
//! ## Exit codes
//!
//! Every subcommand follows one contract: `0` — success (for scoring
//! commands: the score passed), `1` — the score is below its pass
//! threshold (or a metric under its floor), `2` — the job settled
//! `Partial` (quarantined tiles; any score covers only the surviving
//! tiles), `3` — operational error (bad arguments, I/O, protocol,
//! failed jobs), `4` — the server refused the submission at admission
//! (unknown tenant, tenant quota, or global backpressure; nothing was
//! enqueued). A rejected `submit` prints the structured v2 error
//! object (`{code, message, retry_after_vms?}`) on stdout so scripts
//! can parse the code and the deterministic retry-after hint.
//!
//! ## Multi-tenant serving
//!
//! `serve --tenants FILE` arms admission control and weighted
//! fair-share scheduling from a tenant plan (see
//! `dfm_signoff::sched::SchedConfig`): `tenant NAME weight W
//! [max_jobs N] [max_tiles N]` lines plus an optional `global
//! max_inflight N max_pending_tiles N` line. `submit --tenant/--priority`
//! tags the job; on `status`/`results` the same flags act as ownership
//! assertions (the command fails rather than report a job that belongs
//! to a different tenant). Without `--tenants`, every tenant is
//! accepted at weight 1 with no quotas — exactly the pre-scheduler
//! behaviour.
//!
//! ## Scale-out (sharding)
//!
//! `serve --shard-of K/N` starts a server that owns deterministic
//! tile-range partition `K` (0-based) of any job dispatched to it by a
//! coordinator. `coordinate --shards A,B,...` starts a coordinator:
//! a full signoff server whose job execution fans each submitted job
//! out across the listed shard servers by tile range, streams their
//! outcome logs back, and merges them through the same tile-ordered
//! commit machinery — so the coordinated event stream, final report,
//! and exit code are byte-identical to a plain `serve` run. Admission
//! control (`--tenants`) stays at the coordinator; shards trust its
//! grants. A dead shard's unfinished range is re-dispatched to a
//! surviving shard (recovering through the tile cache where warm); if
//! no shard survives, the job settles `Partial` with a per-shard
//! quarantine manifest. `coordinate` accepts all `serve` flags, so a
//! `--ckpt` root gives the coordinator checkpoint/resume: a restarted
//! coordinator re-dispatches each unsettled job and recovers already
//! merged tiles from its checkpoint.
//!
//! ## Scoring and auto-fix
//!
//! `--score FILE|default|none` (a spec flag) attaches a
//! manufacturability score spec to the job; the service computes the
//! score when the job settles and `score` fetches its deterministic
//! JSON line. `score --gds` runs the same thing locally through an
//! in-process service (arm `--cache DIR` to reuse/populate a tile
//! cache). `fix` scores the layout, runs the greedy score-guided
//! auto-fix search (redundant vias, wire spreading, wire widening —
//! each kept only when the score strictly improves), resubmits the
//! fixed layout through the same service, and reports
//! before/after/delta plus how many tiles the resubmission actually
//! recomputed — with a warm `--cache`, only the content-dirty ones.
//!
//! `--cache DIR` arms the content-addressed per-tile result cache:
//! resubmitting a layout recomputes only the tiles whose content
//! (at the job's analysis halo) actually changed — everything else is
//! served from disk. The `cache` subcommand inspects or maintains such
//! a directory offline: `stats` prints entry/byte/counter totals,
//! `verify` checksums every entry (removing any that fail), and
//! `clear` empties the store. A cleared or corrupted cache is never an
//! error — affected tiles just recompute.
//!
//! Spec flags (shared by `submit`, `flat-report`, `score`, and `fix`,
//! so the paths use identical defaults): `--name S --tech n65|n45|n28
//! --tile NM --halo NM --no-drc --ca-layer L/D|none --ca-x0 NM
//! --litho-layer L/D|none --litho-feature NM --score FILE|default|none`.
//!
//! `flat-report` runs the same job single-shot with no tiling and no
//! service; its output is byte-identical to `results` for the same
//! spec and GDS — that equality is checked in CI.
//!
//! `--fault-plan FILE` arms the deterministic fault-injection plane
//! from a `dfm-fault` plan file (see that crate's text format); it is
//! a test/CI facility — without the flag every fault probe is a no-op.

use dfm_practice::bench::json::JsonValue;
use dfm_practice::cache::TileCache;
use dfm_practice::fault::{FaultPlan, FaultPlane};
use dfm_practice::layout::{gds, generate, Technology};
use dfm_practice::score::{exit_code, EXIT_ERROR, EXIT_PASS, EXIT_REJECTED};
use dfm_practice::signoff::service::{JobEventKind, JobState, JobStatus, TILE_DELAY_ENV};
use dfm_practice::signoff::{
    auto_fix, flat_report, flat_score, Client, FixOutcome, JobSpec, RequestError, SchedConfig,
    Server, ServiceConfig, SignoffService, SupervisionPolicy,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("dfm-signoff: {e}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}

fn run(args: &[String]) -> Result<u8, String> {
    let Some(cmd) = args.first() else {
        return Err(format!("no subcommand\n{USAGE}"));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "serve" => serve(rest),
        "coordinate" => coordinate(rest),
        "gen" => gen(rest),
        "submit" => submit(rest),
        "status" => status(rest),
        "events" => events(rest),
        "results" => results(rest),
        "score" => score_cmd(rest),
        "fix" => fix(rest),
        "cancel" => with_job(rest, |client, job| client.cancel(job).map(print_status)),
        "resume" => with_job(rest, |client, job| client.resume(job).map(print_status)),
        "list" => list(rest),
        "shutdown" => shutdown(rest),
        "flat-report" => flat(rest),
        "cache" => cache_cmd(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(EXIT_PASS)
        }
        other => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    }
}

const USAGE: &str = "usage:
  dfm-signoff serve   [--threads N] [--port P] [--ckpt DIR] [--port-file FILE]
                      [--fault-plan FILE] [--max-attempts N]
                      [--cache DIR] [--cache-max-bytes N] [--tenants FILE]
                      [--shard-of K/N]
  dfm-signoff coordinate --shards HOST:PORT[,HOST:PORT...] [serve flags]
  dfm-signoff gen     --out FILE [--width NM] [--height NM] [--seed S]
  dfm-signoff submit  --addr HOST:PORT --gds FILE [--wait] [--idem KEY] [--retry N]
                      [--tenant T] [--priority P] [spec flags]
  dfm-signoff status  --addr HOST:PORT --job ID [--tenant T] [--priority P]
  dfm-signoff events  --addr HOST:PORT --job ID [--since SEQ]
  dfm-signoff results --addr HOST:PORT --job ID [--partial] [--wait] [--tenant T] [--priority P]
  dfm-signoff score   --addr HOST:PORT --job ID
  dfm-signoff score   --gds FILE [--cache DIR] [--threads N] [spec flags]
  dfm-signoff fix     --gds FILE [--out FILE] [--cache DIR] [--threads N] [spec flags]
  dfm-signoff cancel  --addr HOST:PORT --job ID
  dfm-signoff resume  --addr HOST:PORT --job ID
  dfm-signoff list    --addr HOST:PORT
  dfm-signoff shutdown --addr HOST:PORT [--drain]
  dfm-signoff flat-report --gds FILE [spec flags]
  dfm-signoff cache   stats|verify|clear --dir DIR
spec flags: --name S --tech n65|n45|n28 --tile NM --halo NM --no-drc
            --ca-layer L/D|none --ca-x0 NM --litho-layer L/D|none --litho-feature NM
            --score FILE|default|none
exit codes: 0 pass, 1 score below threshold, 2 partial (quarantined), 3 error,
            4 submission rejected at admission (tenant/quota/backpressure)";

/// Minimal `--flag value` / `--flag` scanner.
struct Flags<'a> {
    args: &'a [String],
    used: Vec<bool>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Flags<'a> {
        Flags { args, used: vec![false; args.len()] }
    }

    fn value(&mut self, flag: &str) -> Result<Option<&'a str>, String> {
        for i in 0..self.args.len() {
            if self.args[i] == flag {
                let v = self.args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
                self.used[i] = true;
                self.used[i + 1] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn present(&mut self, flag: &str) -> bool {
        for i in 0..self.args.len() {
            if self.args[i] == flag {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<Option<T>, String> {
        match self.value(flag)? {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| format!("bad value for {flag}: '{v}'")),
        }
    }

    fn finish(self) -> Result<(), String> {
        for (i, used) in self.used.iter().enumerate() {
            if !used {
                return Err(format!("unexpected argument '{}'\n{USAGE}", self.args[i]));
            }
        }
        Ok(())
    }
}

/// The shared spec flags: `submit` and `flat-report` parse through
/// this one function, so their defaults can never drift apart.
fn spec_from_flags(flags: &mut Flags<'_>) -> Result<JobSpec, String> {
    let mut spec = JobSpec::default();
    if let Some(name) = flags.value("--name")? {
        spec.name = name.to_string();
    }
    if let Some(tech) = flags.value("--tech")? {
        spec.tech = tech.to_string();
    }
    if let Some(tile) = flags.parsed("--tile")? {
        spec.tile = tile;
    }
    if let Some(halo) = flags.parsed("--halo")? {
        spec.halo = halo;
    }
    if flags.present("--no-drc") {
        spec.drc = false;
    }
    if let Some(layer) = flags.value("--ca-layer")? {
        spec.ca_layer = parse_layer_flag(layer, "--ca-layer")?;
    }
    if let Some(x0) = flags.parsed("--ca-x0")? {
        spec.ca_x0 = x0;
    }
    if let Some(layer) = flags.value("--litho-layer")? {
        spec.litho_layer = parse_layer_flag(layer, "--litho-layer")?;
    }
    if let Some(f) = flags.parsed("--litho-feature")? {
        spec.litho_feature = f;
    }
    if let Some(score) = flags.value("--score")? {
        spec.score = match score {
            "none" => None,
            "default" => Some("default".to_string()),
            path => Some(
                std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?,
            ),
        };
    }
    spec.validate()?;
    Ok(spec)
}

fn parse_layer_flag(
    v: &str,
    flag: &str,
) -> Result<Option<dfm_practice::layout::Layer>, String> {
    if v == "none" {
        return Ok(None);
    }
    let (l, d) = v.split_once('/').ok_or_else(|| format!("{flag} wants L/D or 'none'"))?;
    let l: u16 = l.parse().map_err(|_| format!("{flag}: bad layer number '{v}'"))?;
    let d: u16 = d.parse().map_err(|_| format!("{flag}: bad datatype '{v}'"))?;
    Ok(Some(dfm_practice::layout::Layer::new(l, d)))
}

fn connect(flags: &mut Flags<'_>) -> Result<Client, String> {
    let addr = flags.value("--addr")?.ok_or("--addr HOST:PORT is required")?;
    Client::connect(addr)
}

fn job_id(flags: &mut Flags<'_>) -> Result<u64, String> {
    flags.parsed("--job")?.ok_or_else(|| "--job ID is required".to_string())
}

/// Writes lines to stdout, treating a broken pipe (e.g. `| head`) as
/// a normal early exit instead of a panic.
fn emit_lines(lines: &[String]) -> Result<(), String> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in lines {
        match writeln!(out, "{line}") {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => return Ok(()),
            Err(e) => return Err(format!("stdout: {e}")),
        }
    }
    Ok(())
}

fn print_status(s: dfm_practice::signoff::service::JobStatus) {
    let err = s.error.as_deref().unwrap_or("-");
    println!(
        "job {} '{}' tenant {} prio {}: {} tiles {}/{} quarantined {} cached {} next_seq {} error {}",
        s.id,
        s.name,
        s.tenant,
        s.priority,
        s.state,
        s.tiles_done,
        s.tiles_total,
        s.tiles_quarantined,
        s.tiles_cached,
        s.next_seq,
        err
    );
}

fn serve(args: &[String]) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let shard_of = match flags.value("--shard-of")? {
        None => None,
        Some(v) => Some(parse_shard_of(v)?),
    };
    serve_with(flags, shard_of, Vec::new())
}

fn coordinate(args: &[String]) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let list = flags.value("--shards")?.ok_or("--shards HOST:PORT[,HOST:PORT...] is required")?;
    let shards: Vec<String> =
        list.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    if shards.is_empty() {
        return Err(format!("--shards has no addresses in '{list}'"));
    }
    serve_with(flags, None, shards)
}

/// `--shard-of K/N`: this server owns tile-range partition `K`
/// (0-based) out of `N` when a coordinator dispatches without explicit
/// ranges.
fn parse_shard_of(v: &str) -> Result<(u64, u64), String> {
    let (k, n) = v.split_once('/').ok_or_else(|| format!("--shard-of wants K/N, got '{v}'"))?;
    let k: u64 = k.parse().map_err(|_| format!("--shard-of: bad shard index '{v}'"))?;
    let n: u64 = n.parse().map_err(|_| format!("--shard-of: bad shard count '{v}'"))?;
    if n == 0 || k >= n {
        return Err(format!("--shard-of: need K < N and N >= 1, got '{v}'"));
    }
    Ok((k, n))
}

/// The shared body of `serve` and `coordinate`: both are a full
/// signoff server; the only differences are whether jobs run locally,
/// as one shard's partition, or fanned out across `shards`.
fn serve_with(
    mut flags: Flags<'_>,
    shard_of: Option<(u64, u64)>,
    shards: Vec<String>,
) -> Result<u8, String> {
    let threads = flags.parsed("--threads")?.unwrap_or(4);
    let port: u16 = flags.parsed("--port")?.unwrap_or(0);
    let ckpt = flags.value("--ckpt")?.map(std::path::PathBuf::from);
    let port_file = flags.value("--port-file")?.map(str::to_string);
    let fault_plan = flags.value("--fault-plan")?.map(str::to_string);
    let max_attempts: Option<u64> = flags.parsed("--max-attempts")?;
    let cache_dir = flags.value("--cache")?.map(std::path::PathBuf::from);
    let cache_max_bytes: Option<u64> = flags.parsed("--cache-max-bytes")?;
    let tenants_file = flags.value("--tenants")?.map(str::to_string);
    flags.finish()?;
    if cache_dir.is_none() && cache_max_bytes.is_some() {
        return Err("--cache-max-bytes needs --cache DIR".to_string());
    }
    let fault_plane = match fault_plan {
        None => None,
        Some(path) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
            Some(Arc::new(FaultPlane::new(FaultPlan::parse(&text)?)))
        }
    };
    let mut policy = SupervisionPolicy::default();
    if let Some(n) = max_attempts {
        policy.max_attempts = n.max(1);
    }
    let tile_delay = std::env::var(TILE_DELAY_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(Duration::ZERO, Duration::from_millis);
    let cache = match cache_dir {
        None => None,
        Some(dir) => Some(Arc::new(
            TileCache::open(&dir, cache_max_bytes)
                .map_err(|e| format!("open cache {}: {e}", dir.display()))?,
        )),
    };
    let mut cfg = ServiceConfig::builder().threads(threads).tile_delay(tile_delay).policy(policy);
    if let Some((k, n)) = shard_of {
        cfg = cfg.shard_of(k, n);
    }
    if !shards.is_empty() {
        cfg = cfg.shards(shards);
    }
    if let Some(root) = ckpt {
        cfg = cfg.ckpt_root(root);
    }
    if let Some(plane) = fault_plane {
        cfg = cfg.fault_plane(plane);
    }
    if let Some(cache) = cache {
        cfg = cfg.cache(cache);
    }
    if let Some(path) = tenants_file {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
        cfg = cfg.sched(SchedConfig::parse(&text).map_err(|e| format!("{path}: {e}"))?);
    }
    let service = Arc::new(SignoffService::with_config(cfg.build()));
    let server = Server::bind(service, port)?;
    let addr = server.local_addr();
    if let Some(path) = port_file {
        std::fs::write(&path, format!("{}\n", addr.port()))
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    println!("listening on {addr}");
    server.serve().map(|()| EXIT_PASS)
}

fn gen(args: &[String]) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let out = flags.value("--out")?.ok_or("--out FILE is required")?.to_string();
    let width = flags.parsed("--width")?.unwrap_or(6_000);
    let height = flags.parsed("--height")?.unwrap_or(6_000);
    let seed = flags.parsed("--seed")?.unwrap_or(7);
    flags.finish()?;
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams { width, height, ..Default::default() };
    let lib = generate::routed_block(&tech, params, seed);
    gds::write_file(&lib, &out).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(EXIT_PASS)
}

fn submit(args: &[String]) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let mut client = connect(&mut flags)?;
    let gds_path = flags.value("--gds")?.ok_or("--gds FILE is required")?.to_string();
    let wait = flags.present("--wait");
    let idem = flags.value("--idem")?.map(str::to_string);
    let retry: Option<u64> = flags.parsed("--retry")?;
    let mut spec = spec_from_flags(&mut flags)?;
    if let Some(tenant) = flags.value("--tenant")? {
        spec.tenant = tenant.to_string();
    }
    if let Some(priority) = flags.parsed("--priority")? {
        spec.priority = priority;
    }
    spec.validate()?;
    flags.finish()?;
    let bytes = std::fs::read(&gds_path).map_err(|e| format!("read {gds_path}: {e}"))?;
    // `--retry N` keeps resubmitting while the server answers with a
    // deterministic retry-after hint (backpressure), so a rejected-then-
    // admitted submission needs no wrapper script.
    let attempt = if let Some(tries) = retry {
        client.submit_until_admitted(spec, bytes, idem.as_deref(), tries)
    } else {
        client.try_submit_idem(spec, bytes, idem.as_deref())
    };
    let job = match attempt {
        Ok(job) => job,
        // An admission refusal is its own exit code (4) and prints the
        // machine-readable v2 error object on stdout, so callers can
        // parse the code and the deterministic retry-after hint.
        Err(RequestError::Server(err))
            if matches!(err.code.as_str(), "unknown_tenant" | "quota_exceeded" | "busy") =>
        {
            println!("{}", err.to_json().render());
            eprintln!("dfm-signoff: submission rejected: {err}");
            return Ok(EXIT_REJECTED);
        }
        Err(e) => return Err(e.to_string()),
    };
    println!("{job}");
    if !wait {
        return Ok(EXIT_PASS);
    }
    let status = client.wait(job)?;
    if let Some(err) = &status.error {
        return Err(format!("job {job} failed: {err}"));
    }
    print_status(status.clone());
    Ok(status_exit_code(&status))
}

fn status(args: &[String]) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let mut client = connect(&mut flags)?;
    let job = job_id(&mut flags)?;
    let owner = owner_flags(&mut flags)?;
    flags.finish()?;
    let status = client.status(job)?;
    check_owner(&status, &owner)?;
    print_status(status);
    Ok(EXIT_PASS)
}

/// The `--tenant` / `--priority` ownership assertions shared by
/// `status` and `results`.
fn owner_flags(flags: &mut Flags<'_>) -> Result<(Option<String>, Option<u8>), String> {
    Ok((flags.value("--tenant")?.map(str::to_string), flags.parsed("--priority")?))
}

/// Fails (exit 3) when the job on the server does not match the
/// caller's asserted tenant/priority — a guard against scripts reading
/// some other tenant's job by a stale or mistyped id.
fn check_owner(status: &JobStatus, owner: &(Option<String>, Option<u8>)) -> Result<(), String> {
    if let Some(tenant) = &owner.0 {
        if &status.tenant != tenant {
            return Err(format!(
                "job {} belongs to tenant '{}', not '{tenant}'",
                status.id, status.tenant
            ));
        }
    }
    if let Some(priority) = owner.1 {
        if status.priority != priority {
            return Err(format!(
                "job {} has priority {}, not {priority}",
                status.id, status.priority
            ));
        }
    }
    Ok(())
}

fn with_job(
    args: &[String],
    f: impl FnOnce(&mut Client, u64) -> Result<(), String>,
) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let mut client = connect(&mut flags)?;
    let job = job_id(&mut flags)?;
    flags.finish()?;
    f(&mut client, job).map(|()| EXIT_PASS)
}

fn events(args: &[String]) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let mut client = connect(&mut flags)?;
    let job = job_id(&mut flags)?;
    let since = flags.parsed("--since")?.unwrap_or(0);
    flags.finish()?;
    let (events, next) = client.events(job, since)?;
    let mut lines = Vec::with_capacity(events.len() + 1);
    for e in &events {
        lines.push(match &e.kind {
            JobEventKind::State(state) => format!("{} state {state}", e.seq),
            JobEventKind::TileDone { tile, completed, total } => {
                format!("{} tile {tile} done ({completed}/{total})", e.seq)
            }
            JobEventKind::TileRetry { tile, attempt, backoff_vms, reason } => {
                format!(
                    "{} tile {tile} retry after attempt {attempt} (backoff {backoff_vms} vms): {reason}",
                    e.seq
                )
            }
            JobEventKind::TileQuarantined { tile, attempts, reason } => {
                format!("{} tile {tile} quarantined after {attempts} attempts: {reason}", e.seq)
            }
            JobEventKind::CkptDegraded { tile } => {
                format!("{} tile {tile} checkpoint degraded (kept in memory)", e.seq)
            }
            JobEventKind::TileCacheHit { tile } => {
                format!("{} tile {tile} cache hit (served without computing)", e.seq)
            }
            JobEventKind::TileCacheStore { tile } => {
                format!("{} tile {tile} cache store", e.seq)
            }
            JobEventKind::Score { bits, pass } => {
                format!("{} score {} pass {pass}", e.seq, f64::from_bits(*bits))
            }
        });
    }
    lines.push(format!("next_seq {next}"));
    emit_lines(&lines).map(|()| EXIT_PASS)
}

fn results(args: &[String]) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let mut client = connect(&mut flags)?;
    let job = job_id(&mut flags)?;
    let partial = flags.present("--partial");
    let wait = flags.present("--wait");
    let owner = owner_flags(&mut flags)?;
    flags.finish()?;
    if wait {
        let status = client.wait(job)?;
        if let Some(err) = &status.error {
            return Err(format!("job {job} failed: {err}"));
        }
    }
    let (status, report_text) = client.results(job, partial)?;
    check_owner(&status, &owner)?;
    print!("{report_text}");
    Ok(status_exit_code(&status))
}

fn list(args: &[String]) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let mut client = connect(&mut flags)?;
    flags.finish()?;
    let jobs = client.list()?;
    let mut rows: Vec<Vec<String>> = vec![
        ["ID", "NAME", "TENANT", "PRIO", "STATE", "TILES", "QUAR", "CACHED"]
            .iter()
            .map(ToString::to_string)
            .collect(),
    ];
    for s in &jobs {
        rows.push(vec![
            s.id.to_string(),
            s.name.clone(),
            s.tenant.clone(),
            s.priority.to_string(),
            s.state.to_string(),
            format!("{}/{}", s.tiles_done, s.tiles_total),
            s.tiles_quarantined.to_string(),
            s.tiles_cached.to_string(),
        ]);
    }
    let mut widths = vec![0_usize; rows[0].len()];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let lines: Vec<String> = rows
        .iter()
        .map(|row| {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect();
            cells.join("  ").trim_end().to_string()
        })
        .collect();
    emit_lines(&lines).map(|()| EXIT_PASS)
}

fn shutdown(args: &[String]) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let mut client = connect(&mut flags)?;
    let drain = flags.present("--drain");
    flags.finish()?;
    client.shutdown_mode(drain).map(|()| EXIT_PASS)
}

fn cache_cmd(args: &[String]) -> Result<u8, String> {
    let Some(action) = args.first() else {
        return Err(format!("cache needs an action: stats, verify, or clear\n{USAGE}"));
    };
    let mut flags = Flags::new(&args[1..]);
    let dir = flags.value("--dir")?.ok_or("--dir DIR is required")?.to_string();
    flags.finish()?;
    let cache = TileCache::open(std::path::Path::new(&dir), None)
        .map_err(|e| format!("open cache {dir}: {e}"))?;
    match action.as_str() {
        "stats" => {
            let s = cache.stats();
            println!(
                "entries {} bytes {} corrupt_dropped {}",
                s.entries, s.bytes, s.corrupt_dropped
            );
        }
        "verify" => {
            let r = cache.verify();
            // The open scan above already dropped any entry whose
            // decode failed, so count those with the verify sweep —
            // a fresh process must still report the corruption it
            // repaired.
            let removed = cache.stats().corrupt_dropped;
            println!("ok {} removed {removed}", r.ok);
            // Corruption that had to be quarantined is an operational
            // error even though the cache is healthy again: CI must see
            // a non-zero exit so silent bit-rot cannot pass a pipeline.
            if removed > 0 {
                return Ok(EXIT_ERROR);
            }
        }
        "clear" => {
            let removed = cache.clear().map_err(|e| format!("clear cache {dir}: {e}"))?;
            println!("cleared {removed}");
        }
        other => {
            return Err(format!("unknown cache action '{other}' (stats|verify|clear)\n{USAGE}"))
        }
    }
    Ok(EXIT_PASS)
}

fn flat(args: &[String]) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let gds_path = flags.value("--gds")?.ok_or("--gds FILE is required")?.to_string();
    let spec = spec_from_flags(&mut flags)?;
    flags.finish()?;
    let lib = gds::read_file(&gds_path).map_err(|e| format!("read {gds_path}: {e}"))?;
    if spec.score.is_none() {
        let report = flat_report(&spec, &lib)?;
        print!("{}", report.render_text(&spec));
        return Ok(EXIT_PASS);
    }
    let (report, score) = flat_score(&spec, &lib)?;
    print!("{}", report.render_text(&spec));
    println!("{}", score.render());
    Ok(score.exit_code(false))
}

/// The exit code for a settled, non-failed job status: `Partial`
/// dominates, then a failing score, then pass. Unscored jobs read as
/// passing (code 0 / 2 on quarantine).
fn status_exit_code(status: &JobStatus) -> u8 {
    exit_code(status.score_pass.unwrap_or(true), status.state == JobState::Partial)
}

/// An in-process service for the local `score`/`fix` forms — same
/// deterministic scheduler as `serve`, optionally cache-armed.
fn local_service(threads: usize, cache_dir: Option<&str>) -> Result<SignoffService, String> {
    let cache = match cache_dir {
        None => None,
        Some(dir) => Some(Arc::new(
            TileCache::open(std::path::Path::new(dir), None)
                .map_err(|e| format!("open cache {dir}: {e}"))?,
        )),
    };
    let mut cfg = ServiceConfig::builder().threads(threads);
    if let Some(cache) = cache {
        cfg = cfg.cache(cache);
    }
    Ok(SignoffService::with_config(cfg.build()))
}

/// Submits one job, waits for it to settle, and fetches its score
/// JSON. Failed jobs surface as `Err` (exit 3).
fn run_scored_job(
    service: &SignoffService,
    spec: &JobSpec,
    gds: Vec<u8>,
) -> Result<(JobStatus, String), String> {
    let job = service.submit(spec.clone(), gds)?;
    let status = service.wait(job)?;
    if let Some(err) = &status.error {
        return Err(format!("job {job} failed: {err}"));
    }
    service.score_json(job)
}

fn score_cmd(args: &[String]) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let gds_path = flags.value("--gds")?.map(str::to_string);
    // Remote form: fetch the score of a job on a server.
    let Some(gds_path) = gds_path else {
        let mut client = connect(&mut flags)?;
        let job = job_id(&mut flags)?;
        flags.finish()?;
        let (status, score_json) = client.score(job)?;
        println!("{score_json}");
        return Ok(status_exit_code(&status));
    };
    // Local form: run the job through an in-process service.
    let cache_dir = flags.value("--cache")?.map(str::to_string);
    let threads = flags.parsed("--threads")?.unwrap_or(4);
    let mut spec = spec_from_flags(&mut flags)?;
    flags.finish()?;
    if spec.score.is_none() {
        spec.score = Some("default".to_string());
    }
    let bytes = std::fs::read(&gds_path).map_err(|e| format!("read {gds_path}: {e}"))?;
    let service = local_service(threads, cache_dir.as_deref())?;
    let (status, score_json) = run_scored_job(&service, &spec, bytes)?;
    println!("{score_json}");
    Ok(status_exit_code(&status))
}

fn fix(args: &[String]) -> Result<u8, String> {
    let mut flags = Flags::new(args);
    let gds_path = flags.value("--gds")?.ok_or("--gds FILE is required")?.to_string();
    let out_path = flags.value("--out")?.map(str::to_string);
    let cache_dir = flags.value("--cache")?.map(str::to_string);
    let threads = flags.parsed("--threads")?.unwrap_or(4);
    let mut spec = spec_from_flags(&mut flags)?;
    flags.finish()?;
    if spec.score.is_none() {
        spec.score = Some("default".to_string());
    }
    let bytes = std::fs::read(&gds_path).map_err(|e| format!("read {gds_path}: {e}"))?;
    let service = local_service(threads, cache_dir.as_deref())?;

    // Pass 1: score the layout as-is, populating the cache when armed.
    let (before_status, _) = run_scored_job(&service, &spec, bytes.clone())?;
    // The greedy fix search runs on the flat engines (no tiling).
    let outcome = auto_fix(&spec, &bytes)?;
    // Pass 2: resubmit through the same service — with a warm cache
    // only the content-dirty tiles recompute.
    let (after_status, _) = run_scored_job(&service, &spec, outcome.gds.clone())?;

    if let Some(path) = &out_path {
        std::fs::write(path, &outcome.gds).map_err(|e| format!("write {path}: {e}"))?;
    }
    println!("{}", fix_report_json(&outcome, &before_status, &after_status).render());
    Ok(status_exit_code(&after_status))
}

/// The `fix` verdict line: aggregate before/after/delta, what was
/// applied, per-metric score deltas, and how much of each service pass
/// the tile cache absorbed.
fn fix_report_json(
    outcome: &FixOutcome,
    before: &JobStatus,
    after: &JobStatus,
) -> JsonValue {
    let metric_deltas: Vec<JsonValue> = outcome
        .score_after
        .metrics
        .iter()
        .map(|m| {
            let prior = outcome
                .score_before
                .metric(&m.key)
                .map_or(m.score, |b| b.score);
            JsonValue::obj([
                ("key", JsonValue::str(m.key.clone())),
                ("before", JsonValue::Num(prior)),
                ("after", JsonValue::Num(m.score)),
                ("delta", JsonValue::Num(m.score - prior)),
            ])
        })
        .collect();
    let job_obj = |s: &JobStatus| {
        JsonValue::obj([
            ("tiles_total", JsonValue::Num(s.tiles_total as f64)),
            ("tiles_cached", JsonValue::Num(s.tiles_cached as f64)),
            (
                "tiles_recomputed",
                JsonValue::Num(s.tiles_total.saturating_sub(s.tiles_cached) as f64),
            ),
        ])
    };
    JsonValue::obj([
        ("changed", JsonValue::Bool(outcome.changed)),
        (
            "applied",
            JsonValue::Arr(outcome.applied.iter().map(JsonValue::str).collect()),
        ),
        ("edits", JsonValue::Num(outcome.edits as f64)),
        ("score_before", JsonValue::Num(outcome.score_before.score)),
        ("score_after", JsonValue::Num(outcome.score_after.score)),
        ("delta", JsonValue::Num(outcome.delta())),
        ("pass_before", JsonValue::Bool(outcome.score_before.pass)),
        ("pass_after", JsonValue::Bool(outcome.score_after.pass)),
        ("metrics", JsonValue::Arr(metric_deltas)),
        (
            "jobs",
            JsonValue::obj([("before", job_obj(before)), ("after", job_obj(after))]),
        ),
    ])
}
