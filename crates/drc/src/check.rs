//! The DRC checking engine.

use crate::{DrcReport, Rule, RuleDeck, Violation};
use dfm_geom::{GridIndex, Point, Rect, Region};
use dfm_layout::FlatLayout;

/// Runs a [`RuleDeck`] against flattened layouts.
///
/// See the crate docs for an end-to-end example.
#[derive(Clone, Copy, Debug)]
pub struct DrcEngine<'a> {
    deck: &'a RuleDeck,
}

impl<'a> DrcEngine<'a> {
    /// Creates an engine for a deck.
    pub fn new(deck: &'a RuleDeck) -> Self {
        DrcEngine { deck }
    }

    /// Runs every rule in the deck, returning the combined report.
    ///
    /// Rules are checked in parallel (`DFM_THREADS`) and the per-rule
    /// results merged in deck order, so the report is bit-identical at
    /// any thread count.
    pub fn run(&self, flat: &FlatLayout) -> DrcReport {
        let per_rule = dfm_par::par_map(self.deck.rules(), |_, rule| check_rule(rule, flat));
        let mut report = DrcReport::new();
        for violations in per_rule {
            report.extend(violations);
        }
        report
    }
}

/// Edges per work chunk in the parallel sweeps. Chunk boundaries depend
/// only on this constant, never on the thread count, and per-chunk
/// outputs are concatenated in chunk order — the sweep output is the
/// sequential output at any `DFM_THREADS`.
const EDGE_CHUNK: usize = 256;

/// Checks a single rule against a flattened layout.
pub fn check_rule(rule: &Rule, flat: &FlatLayout) -> Vec<Violation> {
    let id = rule.id();
    match rule {
        Rule::MinWidth { layer, value } => width_violations(&flat.region(*layer), *value)
            .into_iter()
            .map(|(location, actual)| Violation { rule: id.clone(), location, actual, limit: *value })
            .collect(),
        Rule::MinSpace { layer, value } => spacing_violations(&flat.region(*layer), *value)
            .into_iter()
            .map(|(location, actual)| Violation { rule: id.clone(), location, actual, limit: *value })
            .collect(),
        Rule::MinSpaceTo { from, to, value } => {
            let from_r = flat.region(*from);
            let to_r = flat.region(*to);
            let near = from_r.bloated(*value).intersection(&to_r);
            near.connected_components()
                .into_iter()
                .map(|c| {
                    let from_local = from_r.interacting(&c.bloated(*value));
                    Violation {
                        rule: id.clone(),
                        location: c.bbox(),
                        actual: min_separation(&from_local, &c, *value),
                        limit: *value,
                    }
                })
                .collect()
        }
        Rule::Enclosure { inner, outer, value } => {
            let inner_r = flat.region(*inner);
            let outer_r = flat.region(*outer);
            enclosure_violations(&inner_r, &outer_r, *value)
                .into_iter()
                .map(|(location, actual)| Violation { rule: id.clone(), location, actual, limit: *value })
                .collect()
        }
        Rule::MinArea { layer, value } => flat
            .region(*layer)
            .connected_components()
            .into_iter()
            .filter(|c| c.area() < *value as i128)
            .map(|c| Violation {
                rule: id.clone(),
                location: c.bbox(),
                actual: c.area() as i64,
                limit: *value,
            })
            .collect(),
        Rule::WideSpace { layer, wide_width, space } => {
            let region = flat.region(*layer);
            wide_space_violations(&region, *wide_width, *space)
                .into_iter()
                .map(|(location, actual)| Violation { rule: id.clone(), location, actual, limit: *space })
                .collect()
        }
        Rule::Density { layer, window, min, max } => {
            density_violations(&flat.region(*layer), flat.bbox(), *window, *min, *max)
                .into_iter()
                .map(|(location, density)| {
                    let limit = if density < *min { *min } else { *max };
                    // Round half-to-even: `as i64` truncation made a
                    // limit like 0.3 misreport as 299999 ppm.
                    Violation {
                        rule: id.clone(),
                        location,
                        actual: (density * 1e6).round_ties_even() as i64,
                        limit: (limit * 1e6).round_ties_even() as i64,
                    }
                })
                .collect()
        }
    }
}

/// Smallest Chebyshev (per-axis) separation between `a` and `b`, given
/// that they are known to come within `max` of each other. Returns 0
/// when the regions overlap or touch.
///
/// Binary search on the bloat radius: `a.bloated(k)` gains area overlap
/// with `b` exactly when `k` exceeds the true gap, so the smallest such
/// `k` minus one is the separation.
fn min_separation(a: &Region, b: &Region, max: i64) -> i64 {
    if a.is_empty() || b.is_empty() {
        return max;
    }
    if !a.intersection(b).is_empty() {
        return 0;
    }
    // Invariant: a.bloated(hi) overlaps b, a.bloated(lo) does not.
    let (mut lo, mut hi) = (0i64, max);
    if a.bloated(hi).intersection(b).is_empty() {
        return max;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if a.bloated(mid).intersection(b).is_empty() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi - 1
}

/// A pair of facing boundary edges: the measured distance between them
/// and the length over which they face each other.
///
/// Produced by [`interior_facing_pairs`] (feature widths) and
/// [`exterior_facing_pairs`] (spacings); this is also the raw input to
/// critical-area analysis in `dfm-yield`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FacingPair {
    /// Distance between the two edges.
    pub distance: i64,
    /// Overlap length along the edges.
    pub length: i64,
    /// The box spanned between the facing edge segments.
    pub location: Rect,
}

/// All interior-facing edge pairs with distance below `max`: every local
/// feature *width* measurement.
pub fn interior_facing_pairs(region: &Region, max: i64) -> Vec<FacingPair> {
    edge_pair_violations(region, max, true)
}

/// All exterior-facing edge pairs with distance below `max`: every local
/// *spacing* measurement (notches included, corner-to-corner excluded).
pub fn exterior_facing_pairs(region: &Region, max: i64) -> Vec<FacingPair> {
    edge_pair_violations(region, max, false)
}

/// Facing-interior edge pairs closer than `value`: the min-width check.
///
/// Returns `(violation_box, measured_width)` pairs.
pub fn width_violations(region: &Region, value: i64) -> Vec<(Rect, i64)> {
    edge_pair_violations(region, value, true)
        .into_iter()
        .map(|p| (p.location, p.distance))
        .collect()
}

/// Exterior-facing edge pairs (including notches) plus corner-to-corner
/// gaps closer than `value`: the min-spacing check.
///
/// Returns `(violation_box, measured_spacing)` pairs.
pub fn spacing_violations(region: &Region, value: i64) -> Vec<(Rect, i64)> {
    let mut out: Vec<(Rect, i64)> = edge_pair_violations(region, value, false)
        .into_iter()
        .map(|p| (p.location, p.distance))
        .collect();
    out.extend(corner_violations(region, value));
    out
}

/// Shared edge-pair sweep. `interior_between` selects width mode (the
/// strip between the edges is interior) versus spacing mode (exterior).
///
/// Both directional sweeps run chunk-parallel: the edge list is split
/// into fixed [`EDGE_CHUNK`] pieces, each chunk probes a shared
/// [`GridIndex`] through its own [`dfm_geom::Searcher`], and per-chunk
/// hits are concatenated in chunk order.
fn edge_pair_violations(region: &Region, value: i64, interior_between: bool) -> Vec<FacingPair> {
    let mut out = Vec::new();
    if region.is_empty() || value <= 0 {
        return out;
    }
    let edges = region.boundary_edges();

    // Vertical edge pairs (check along x).
    {
        let mut index: GridIndex<usize> = GridIndex::new(value.max(1) * 4);
        for (i, e) in edges.vertical.iter().enumerate() {
            index.insert(Rect { x0: e.x, y0: e.y0, x1: e.x, y1: e.y1 }, i);
        }
        let chunks = dfm_par::par_chunks(&edges.vertical, EDGE_CHUNK, |_, chunk| {
            let mut searcher = index.searcher();
            let mut hits = Vec::new();
            for a in chunk {
                // Left edge of the pair: interior to the right for width,
                // interior to the left (exterior to the right) for spacing.
                if a.interior_right != interior_between {
                    continue;
                }
                let window = Rect { x0: a.x + 1, y0: a.y0, x1: a.x + value - 1, y1: a.y1 };
                if window.x0 > window.x1 {
                    continue;
                }
                for &&bi in searcher.query(window).iter() {
                    let b = edges.vertical[bi];
                    if b.interior_right == a.interior_right {
                        continue;
                    }
                    if b.x <= a.x || b.x - a.x >= value {
                        continue;
                    }
                    let ylo = a.y0.max(b.y0);
                    let yhi = a.y1.min(b.y1);
                    if ylo >= yhi {
                        continue;
                    }
                    let mid = Point::new(a.x + (b.x - a.x) / 2, ylo + (yhi - ylo) / 2);
                    if region.contains_point(mid) == interior_between {
                        hits.push(FacingPair {
                            distance: b.x - a.x,
                            length: yhi - ylo,
                            location: Rect::new(a.x, ylo, b.x, yhi),
                        });
                    }
                }
            }
            hits
        });
        out.extend(chunks.into_iter().flatten());
    }

    // Horizontal edge pairs (check along y).
    {
        let mut index: GridIndex<usize> = GridIndex::new(value.max(1) * 4);
        for (i, e) in edges.horizontal.iter().enumerate() {
            index.insert(Rect { x0: e.x0, y0: e.y, x1: e.x1, y1: e.y }, i);
        }
        let chunks = dfm_par::par_chunks(&edges.horizontal, EDGE_CHUNK, |_, chunk| {
            let mut searcher = index.searcher();
            let mut hits = Vec::new();
            for a in chunk {
                if a.interior_up != interior_between {
                    continue;
                }
                let window = Rect { x0: a.x0, y0: a.y + 1, x1: a.x1, y1: a.y + value - 1 };
                if window.y0 > window.y1 {
                    continue;
                }
                for &&bi in searcher.query(window).iter() {
                    let b = edges.horizontal[bi];
                    if b.interior_up == a.interior_up {
                        continue;
                    }
                    if b.y <= a.y || b.y - a.y >= value {
                        continue;
                    }
                    let xlo = a.x0.max(b.x0);
                    let xhi = a.x1.min(b.x1);
                    if xlo >= xhi {
                        continue;
                    }
                    let mid = Point::new(xlo + (xhi - xlo) / 2, a.y + (b.y - a.y) / 2);
                    if region.contains_point(mid) == interior_between {
                        hits.push(FacingPair {
                            distance: b.y - a.y,
                            length: xhi - xlo,
                            location: Rect::new(xlo, a.y, xhi, b.y),
                        });
                    }
                }
            }
            hits
        });
        out.extend(chunks.into_iter().flatten());
    }
    out
}

/// Corner-to-corner (Euclidean) gaps between region rects closer than
/// `value`.
fn corner_violations(region: &Region, value: i64) -> Vec<(Rect, i64)> {
    let mut out = Vec::new();
    let rects = region.rects();
    if rects.len() < 2 {
        return out;
    }
    let mut index: GridIndex<usize> = GridIndex::new(value.max(1) * 8);
    for (i, r) in rects.iter().enumerate() {
        index.insert(*r, i);
    }
    let v2 = value as i128 * value as i128;
    let chunks = dfm_par::par_chunks(rects, EDGE_CHUNK, |ci, chunk| {
        let mut searcher = index.searcher();
        let mut hits = Vec::new();
        for (k, r) in chunk.iter().enumerate() {
            let i = ci * EDGE_CHUNK + k;
            for &&j in searcher.query(r.expanded(value)).iter() {
                if j <= i {
                    continue;
                }
                let o = rects[j];
                let (dx, dy) = r.gap(&o);
                if dx > 0 && dy > 0 {
                    let d2 = dx as i128 * dx as i128 + dy as i128 * dy as i128;
                    if d2 < v2 {
                        // Gap box between the nearest corners.
                        let gx0 = if r.x1 < o.x0 { r.x1 } else { o.x1 };
                        let gx1 = if r.x1 < o.x0 { o.x0 } else { r.x0 };
                        let gy0 = if r.y1 < o.y0 { r.y1 } else { o.y1 };
                        let gy1 = if r.y1 < o.y0 { o.y0 } else { r.y0 };
                        let dist = (d2 as f64).sqrt().floor() as i64;
                        hits.push((Rect::new(gx0, gy0, gx1, gy1), dist));
                    }
                }
            }
        }
        hits
    });
    out.extend(chunks.into_iter().flatten());
    out
}


/// Width-dependent ("fat wire") spacing: regions of the layer closer
/// than `space` to a feature that is at least `wide_width` across in
/// both axes (excluding the wide feature's own connected component).
///
/// Returns `(violation_box, measured_separation)` pairs: the real worst
/// separation between the wide feature and the offending neighbour.
pub fn wide_space_violations(region: &Region, wide_width: i64, space: i64) -> Vec<(Rect, i64)> {
    let wide = region.opened(wide_width / 2);
    if wide.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for comp in region.connected_components() {
        let wide_part = comp.intersection(&wide);
        if wide_part.is_empty() {
            continue;
        }
        let others = region.difference(&comp);
        let near = wide_part.bloated(space).intersection(&others);
        out.extend(near.connected_components().into_iter().map(|c| {
            let wide_local = wide_part.interacting(&c.bloated(space));
            (c.bbox(), min_separation(&wide_local, &c, space))
        }));
    }
    out
}

/// Regions where `inner` is not enclosed by `outer` with margin `value`.
///
/// Returns `(violation_box, measured_margin)` pairs: the real worst
/// enclosure margin of the offending inner shapes (0 when the inner
/// shape pokes out of `outer` entirely).
pub fn enclosure_violations(inner: &Region, outer: &Region, value: i64) -> Vec<(Rect, i64)> {
    if inner.is_empty() {
        return Vec::new();
    }
    let safe = outer.shrunk(value);
    inner
        .difference(&safe)
        .connected_components()
        .into_iter()
        .map(|c| {
            let inner_local = inner.interacting(&c);
            let outer_local = outer.interacting(&inner_local);
            (c.bbox(), enclosure_margin(&inner_local, &outer_local, value))
        })
        .collect()
}

/// Largest margin `k < value` such that `inner` stays inside
/// `outer.shrunk(k)` — the measured enclosure at a violation site.
fn enclosure_margin(inner: &Region, outer: &Region, value: i64) -> i64 {
    if inner.is_empty() {
        return value;
    }
    if !inner.difference(outer).is_empty() {
        return 0;
    }
    // Invariant: margin lo holds, margin hi does not (the caller only
    // asks at violation sites, where `value` fails).
    let (mut lo, mut hi) = (0i64, value);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if inner.difference(&outer.shrunk(mid)).is_empty() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Stepped-window density analysis: windows whose metal density falls
/// outside `[min, max]`, with the measured density.
pub fn density_violations(
    region: &Region,
    extent: Rect,
    window: i64,
    min: f64,
    max: f64,
) -> Vec<(Rect, f64)> {
    density_map(region, extent, window)
        .into_iter()
        .filter(|&(_, d)| d < min || d > max)
        .collect()
}

/// Computes the density of `region` in every `window`-sized window
/// stepping by half a window across `extent`.
///
/// Windows are clamped inside `extent`; if `extent` is smaller than the
/// window, a single window covering `extent` is used.
pub fn density_map(region: &Region, extent: Rect, window: i64) -> Vec<(Rect, f64)> {
    let mut out = Vec::new();
    if extent.is_empty() || window <= 0 {
        return out;
    }
    let step = (window / 2).max(1);
    let mut y = extent.y0;
    loop {
        let mut x = extent.x0;
        let y1 = (y + window).min(extent.y1);
        let y0 = (y1 - window).max(extent.x0.min(extent.y0)).max(extent.y0);
        loop {
            let x1 = (x + window).min(extent.x1);
            let x0 = (x1 - window).max(extent.x0);
            let w = Rect::new(x0, y0, x1, y1);
            if !w.is_empty() {
                let covered = region.clipped(w).area();
                out.push((w, covered as f64 / w.area() as f64));
            }
            if x1 >= extent.x1 {
                break;
            }
            x += step;
        }
        if y1 >= extent.y1 {
            break;
        }
        y += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_layout::{layers, Cell, Library, Technology};

    fn flat_with(layer: dfm_layout::Layer, rects: &[Rect]) -> FlatLayout {
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        for &r in rects {
            c.add_rect(layer, r);
        }
        let id = lib.add_cell(c).expect("add");
        lib.flatten(id).expect("flatten")
    }

    #[test]
    fn width_violation_detected() {
        let region = Region::from_rect(Rect::new(0, 0, 50, 1000));
        let v = width_violations(&region, 90);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 50);
        assert!(width_violations(&region, 50).is_empty());
        assert!(width_violations(&region, 40).is_empty());
    }

    #[test]
    fn width_ok_for_wide_shape() {
        let region = Region::from_rect(Rect::new(0, 0, 200, 200));
        assert!(width_violations(&region, 90).is_empty());
    }

    #[test]
    fn width_violation_in_neck() {
        // Dumbbell: two fat pads joined by a thin neck.
        let region = Region::from_rects([
            Rect::new(0, 0, 200, 200),
            Rect::new(200, 80, 400, 120), // 40 tall neck
            Rect::new(400, 0, 600, 200),
        ]);
        let v = width_violations(&region, 90);
        assert!(!v.is_empty());
        // All violations are in the neck's y-band.
        for (r, w) in &v {
            assert!(*w == 40, "unexpected width {w}");
            assert!(r.y0 >= 80 && r.y1 <= 120);
        }
    }

    #[test]
    fn spacing_violation_detected() {
        let region = Region::from_rects([
            Rect::new(0, 0, 100, 100),
            Rect::new(150, 0, 250, 100), // 50 gap
        ]);
        let v = spacing_violations(&region, 90);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 50);
        assert_eq!(v[0].0, Rect::new(100, 0, 150, 100));
        assert!(spacing_violations(&region, 50).is_empty());
    }

    #[test]
    fn notch_is_a_spacing_violation() {
        // U-shape: the inner notch is 40 wide.
        let region = Region::from_rects([
            Rect::new(0, 0, 300, 100),
            Rect::new(0, 100, 130, 300),
            Rect::new(170, 100, 300, 300),
        ]);
        let v = spacing_violations(&region, 90);
        assert!(!v.is_empty());
        assert!(v.iter().any(|(r, s)| *s == 40 && r.x0 == 130 && r.x1 == 170));
    }

    #[test]
    fn corner_to_corner_spacing() {
        let region = Region::from_rects([
            Rect::new(0, 0, 100, 100),
            Rect::new(120, 120, 200, 200), // diagonal gap ~28.3
        ]);
        let v = spacing_violations(&region, 40);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 28); // floor(sqrt(800))
        assert!(spacing_violations(&region, 28).is_empty());
    }

    #[test]
    fn wide_space_rule() {
        // A fat plate (400 wide) next to a thin wire at 120: legal for
        // the base 90 rule but violates the wide rule (270/135).
        let region = Region::from_rects([
            Rect::new(0, 0, 3000, 400),
            Rect::new(0, 520, 3000, 610),
        ]);
        assert!(spacing_violations(&region, 90).is_empty());
        let v = wide_space_violations(&region, 270, 135);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].1, 120, "measured wide-space separation");
        // Narrow-only layout never fires the wide rule.
        let thin = Region::from_rects([
            Rect::new(0, 0, 3000, 90),
            Rect::new(0, 180, 3000, 270),
        ]);
        assert!(wide_space_violations(&thin, 270, 135).is_empty());
        // Enough spacing satisfies the rule.
        let ok = Region::from_rects([
            Rect::new(0, 0, 3000, 400),
            Rect::new(0, 540, 3000, 630),
        ]);
        assert!(wide_space_violations(&ok, 270, 135).is_empty());
    }

    #[test]
    fn wide_space_in_deck() {
        let flat = flat_with(
            layers::METAL1,
            &[Rect::new(0, 0, 3000, 400), Rect::new(0, 520, 3000, 610)],
        );
        let deck = RuleDeck::new().with(Rule::WideSpace {
            layer: layers::METAL1,
            wide_width: 270,
            space: 135,
        });
        let report = DrcEngine::new(&deck).run(&flat);
        assert_eq!(report.by_rule("METAL1.WS").count(), 1);
    }

    #[test]
    fn enclosure_violations_detected() {
        let via = Region::from_rect(Rect::new(100, 100, 190, 190));
        let metal_good = Region::from_rect(Rect::new(60, 60, 230, 230)); // 40 enclosure
        assert!(enclosure_violations(&via, &metal_good, 40).is_empty());
        let metal_bad = Region::from_rect(Rect::new(80, 60, 230, 230)); // 20 on left
        let v = enclosure_violations(&via, &metal_bad, 40);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 20, "measured enclosure margin");
        // Inner poking fully outside the outer: zero margin.
        let outside = Region::from_rect(Rect::new(500, 500, 590, 590));
        let v = enclosure_violations(&outside, &metal_bad, 40);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 0);
    }

    #[test]
    fn min_space_to_measures_real_separation() {
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        c.add_rect(layers::METAL1, Rect::new(0, 0, 100, 100));
        c.add_rect(layers::METAL2, Rect::new(130, 0, 230, 100)); // 30 gap
        let id = lib.add_cell(c).expect("add");
        let flat = lib.flatten(id).expect("flatten");
        let deck = RuleDeck::new().with(Rule::MinSpaceTo {
            from: layers::METAL1,
            to: layers::METAL2,
            value: 50,
        });
        let report = DrcEngine::new(&deck).run(&flat);
        assert_eq!(report.violation_count(), 1);
        let v = &report.violations()[0];
        assert_eq!(v.actual, 30, "measured cross-layer separation");
        assert_eq!(v.limit, 50);
    }

    #[test]
    fn density_ppm_rounds_half_to_even() {
        // 0.3 × 1e6 lands just below 300000.0 in f64; truncation used
        // to report the limit as 299999 ppm. The far sliver stretches
        // the extent so the single window covers [0,1000]².
        let flat = flat_with(
            layers::METAL1,
            &[Rect::new(0, 0, 250, 1000), Rect::new(999, 999, 1000, 1000)],
        );
        let deck = RuleDeck::new().with(Rule::Density {
            layer: layers::METAL1,
            window: 1000,
            min: 0.3,
            max: 0.9,
        });
        let report = DrcEngine::new(&deck).run(&flat);
        assert_eq!(report.violation_count(), 1);
        let v = &report.violations()[0];
        assert_eq!(v.limit, 300_000, "ppm limit must round, not truncate");
        assert_eq!(v.actual, 250_001, "measured ppm density");
    }

    #[test]
    fn engine_report_identical_across_thread_counts() {
        let tech = Technology::n65();
        let lib = dfm_layout::generate::routed_block(
            &tech,
            dfm_layout::generate::RoutedBlockParams::default(),
            7,
        );
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let deck = RuleDeck::for_technology(&tech);
        let run = || DrcEngine::new(&deck).run(&flat);
        let seq = dfm_par::with_threads(1, run);
        let two = dfm_par::with_threads(2, run);
        let eight = dfm_par::with_threads(8, run);
        assert_eq!(seq, two);
        assert_eq!(seq, eight);
    }

    #[test]
    fn density_windows() {
        // Half-covered extent.
        let region = Region::from_rect(Rect::new(0, 0, 500, 1000));
        let extent = Rect::new(0, 0, 1000, 1000);
        let map = density_map(&region, extent, 1000);
        assert_eq!(map.len(), 1);
        assert!((map[0].1 - 0.5).abs() < 1e-9);
        let v = density_violations(&region, extent, 1000, 0.6, 0.9);
        assert_eq!(v.len(), 1);
        let v = density_violations(&region, extent, 1000, 0.2, 0.9);
        assert!(v.is_empty());
    }

    #[test]
    fn engine_runs_technology_deck() {
        let tech = Technology::n65();
        let deck = RuleDeck::for_technology(&tech);
        // A clean min-size wire pair.
        let w = tech.rules(layers::METAL1).min_width;
        let s = tech.rules(layers::METAL1).min_space;
        let flat = flat_with(
            layers::METAL1,
            &[
                Rect::new(0, 0, 4000, w),
                Rect::new(0, w + s, 4000, 2 * w + s),
            ],
        );
        let report = DrcEngine::new(&deck).run(&flat);
        // Only density can fire on such a tiny extent; width/space/area clean.
        for v in report.violations() {
            assert!(v.rule.ends_with(".DEN"), "unexpected violation {v}");
        }
    }

    #[test]
    fn engine_flags_narrow_wire() {
        let tech = Technology::n65();
        let deck = RuleDeck::for_technology(&tech);
        let w = tech.rules(layers::METAL1).min_width;
        let flat = flat_with(layers::METAL1, &[Rect::new(0, 0, 4000, w - 10)]);
        let report = DrcEngine::new(&deck).run(&flat);
        assert!(report.by_rule("METAL1.W").count() >= 1);
    }

    #[test]
    fn engine_flags_via_enclosure() {
        let tech = Technology::n65();
        let deck = RuleDeck::for_technology(&tech);
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        let via = Rect::new(0, 0, tech.via_size, tech.via_size);
        c.add_rect(layers::VIA1, via);
        // Metal-1 pad exactly flush (zero enclosure): violation.
        c.add_rect(layers::METAL1, via);
        c.add_rect(layers::METAL2, via.expanded(tech.via_enclosure));
        let id = lib.add_cell(c).expect("add");
        let flat = lib.flatten(id).expect("flatten");
        let report = DrcEngine::new(&deck).run(&flat);
        assert!(report.by_rule("VIA1.EN.METAL1").count() == 1);
        assert!(report.by_rule("VIA1.EN.METAL2").count() == 0);
    }

    #[test]
    fn min_area_flags_small_islands() {
        let tech = Technology::n65();
        let deck = RuleDeck::for_technology(&tech);
        let a = tech.rules(layers::METAL1).min_area;
        let side = ((a as f64).sqrt() as i64) / 2; // well below min area
        let flat = flat_with(layers::METAL1, &[Rect::new(0, 0, side, side)]);
        let report = DrcEngine::new(&deck).run(&flat);
        assert_eq!(report.by_rule("METAL1.A").count(), 1);
    }

    #[test]
    fn generated_routed_block_is_mostly_clean() {
        // The generator is correct-by-construction for width/space/enclosure.
        let tech = Technology::n65();
        let lib = dfm_layout::generate::routed_block(
            &tech,
            dfm_layout::generate::RoutedBlockParams::default(),
            42,
        );
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let deck = RuleDeck::new()
            .with(Rule::MinWidth { layer: layers::METAL1, value: tech.rules(layers::METAL1).min_width })
            .with(Rule::MinSpace { layer: layers::METAL2, value: tech.rules(layers::METAL2).min_space })
            .with(Rule::Enclosure { inner: layers::VIA1, outer: layers::METAL1, value: tech.via_enclosure });
        let report = DrcEngine::new(&deck).run(&flat);
        assert!(
            report.violation_count() == 0,
            "expected clean-by-construction block, got:\n{report}"
        );
    }
}
