//! The DRC checking engine.

use crate::{DrcReport, Rule, RuleDeck, Violation};
use dfm_geom::{GridIndex, Point, Rect, Region};
use dfm_layout::LayoutView;

/// Runs a [`RuleDeck`] against a layout view.
///
/// See the crate docs for an end-to-end example.
#[derive(Clone, Copy, Debug)]
pub struct DrcEngine<'a> {
    deck: &'a RuleDeck,
}

impl<'a> DrcEngine<'a> {
    /// Creates an engine for a deck.
    pub fn new(deck: &'a RuleDeck) -> Self {
        DrcEngine { deck }
    }

    /// Runs every rule in the deck, returning the combined report.
    ///
    /// Accepts any [`LayoutView`] — a whole-chip `FlatLayout` or a
    /// single tile view. Rules are checked in parallel (`DFM_THREADS`)
    /// and the per-rule results merged in deck order, so the report is
    /// bit-identical at any thread count.
    pub fn run(&self, layout: &(impl LayoutView + Sync)) -> DrcReport {
        let per_rule = dfm_par::par_map(self.deck.rules(), |_, rule| check_rule(rule, layout));
        let mut report = DrcReport::new();
        for violations in per_rule {
            report.extend(violations);
        }
        report
    }
}

/// Sorts violations into the workspace's canonical report order
/// (location, then measured value). Both the flat and the tiled
/// execution paths finish with this sort, which is what turns
/// "same multiset of violations" into "bit-identical report".
pub(crate) fn sort_violations(v: &mut [Violation]) {
    v.sort_by_key(|x| {
        (
            x.location.x0,
            x.location.y0,
            x.location.x1,
            x.location.y1,
            x.actual,
            x.limit,
        )
    });
}

/// Edges per work chunk in the parallel sweeps. Chunk boundaries depend
/// only on this constant, never on the thread count, and per-chunk
/// outputs are concatenated in chunk order — the sweep output is the
/// sequential output at any `DFM_THREADS`.
const EDGE_CHUNK: usize = 256;

/// Checks a single rule against a layout view.
///
/// The returned violations are in canonical (location-sorted) order.
pub fn check_rule(rule: &Rule, layout: &impl LayoutView) -> Vec<Violation> {
    let id = rule.id();
    let mut out: Vec<Violation> = match rule {
        Rule::MinWidth { layer, value } => width_violations(&layout.region(*layer), *value)
            .into_iter()
            .map(|(location, actual)| Violation { rule: id.clone(), location, actual, limit: *value })
            .collect(),
        Rule::MinSpace { layer, value } => spacing_violations(&layout.region(*layer), *value)
            .into_iter()
            .map(|(location, actual)| Violation { rule: id.clone(), location, actual, limit: *value })
            .collect(),
        Rule::MinSpaceTo { from, to, value } => {
            let from_r = layout.region(*from);
            let to_r = layout.region(*to);
            min_space_to_violations(&from_r, &to_r, *value)
                .into_iter()
                .map(|(location, actual)| Violation { rule: id.clone(), location, actual, limit: *value })
                .collect()
        }
        Rule::Enclosure { inner, outer, value } => {
            let inner_r = layout.region(*inner);
            let outer_r = layout.region(*outer);
            enclosure_violations(&inner_r, &outer_r, *value)
                .into_iter()
                .map(|(location, actual)| Violation { rule: id.clone(), location, actual, limit: *value })
                .collect()
        }
        Rule::MinArea { layer, value } => layout
            .region(*layer)
            .connected_components()
            .into_iter()
            .filter(|c| c.area() < *value as i128)
            .map(|c| Violation {
                rule: id.clone(),
                location: c.bbox(),
                actual: c.area() as i64,
                limit: *value,
            })
            .collect(),
        Rule::WideSpace { layer, wide_width, space } => {
            let region = layout.region(*layer);
            wide_space_violations(&region, *wide_width, *space)
                .into_iter()
                .map(|(location, actual)| Violation { rule: id.clone(), location, actual, limit: *space })
                .collect()
        }
        Rule::Density { layer, window, min, max } => {
            density_violations(&layout.region(*layer), layout.bbox(), *window, *min, *max)
                .into_iter()
                .map(|(location, density)| {
                    let limit = if density_ppm(density) < density_ppm(*min) { *min } else { *max };
                    Violation {
                        rule: id.clone(),
                        location,
                        actual: density_ppm(density),
                        limit: density_ppm(limit),
                    }
                })
                .collect()
        }
    };
    sort_violations(&mut out);
    out
}

/// Cross-layer spacing: components of `to` closer than `value` to
/// `from`, with the measured worst separation.
///
/// Returns `(violation_box, measured_separation)` pairs.
pub fn min_space_to_violations(from: &Region, to: &Region, value: i64) -> Vec<(Rect, i64)> {
    let near = from.bloated(value).intersection(to);
    near.connected_components()
        .into_iter()
        .map(|c| {
            // Clip (not `interacting`) keeps the measurement local: the
            // bloat probe in `min_separation` only reaches `value`, so
            // geometry beyond `value + 1` of the candidate's bbox can
            // never change the answer — and a clip window is something
            // a tile halo can reproduce exactly.
            let from_local = from.clipped(c.bbox().expanded(value + 1));
            (c.bbox(), min_separation(&from_local, &c, value))
        })
        .collect()
}

/// Smallest Chebyshev (per-axis) separation between `a` and `b`, given
/// that they are known to come within `max` of each other. Returns 0
/// when the regions overlap or touch.
///
/// Binary search on the bloat radius: `a.bloated(k)` gains area overlap
/// with `b` exactly when `k` exceeds the true gap, so the smallest such
/// `k` minus one is the separation.
pub(crate) fn min_separation(a: &Region, b: &Region, max: i64) -> i64 {
    if a.is_empty() || b.is_empty() {
        return max;
    }
    if !a.intersection(b).is_empty() {
        return 0;
    }
    // Invariant: a.bloated(hi) overlaps b, a.bloated(lo) does not.
    let (mut lo, mut hi) = (0i64, max);
    if a.bloated(hi).intersection(b).is_empty() {
        return max;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if a.bloated(mid).intersection(b).is_empty() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi - 1
}

/// A pair of facing boundary edges: the measured distance between them
/// and the length over which they face each other.
///
/// Produced by [`interior_facing_pairs`] (feature widths) and
/// [`exterior_facing_pairs`] (spacings); this is also the raw input to
/// critical-area analysis in `dfm-yield`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FacingPair {
    /// Distance between the two edges.
    pub distance: i64,
    /// Overlap length along the edges.
    pub length: i64,
    /// The box spanned between the facing edge segments.
    pub location: Rect,
}

/// All interior-facing edge pairs with distance below `max`: every local
/// feature *width* measurement.
pub fn interior_facing_pairs(region: &Region, max: i64) -> Vec<FacingPair> {
    edge_pair_violations(region, max, true)
}

/// All exterior-facing edge pairs with distance below `max`: every local
/// *spacing* measurement (notches included, corner-to-corner excluded).
pub fn exterior_facing_pairs(region: &Region, max: i64) -> Vec<FacingPair> {
    edge_pair_violations(region, max, false)
}

/// Facing-interior edge pairs closer than `value`: the min-width check.
///
/// Returns `(violation_box, measured_width)` pairs.
pub fn width_violations(region: &Region, value: i64) -> Vec<(Rect, i64)> {
    edge_pair_violations(region, value, true)
        .into_iter()
        .map(|p| (p.location, p.distance))
        .collect()
}

/// Exterior-facing edge pairs (including notches) plus corner-to-corner
/// gaps closer than `value`: the min-spacing check.
///
/// Returns `(violation_box, measured_spacing)` pairs.
pub fn spacing_violations(region: &Region, value: i64) -> Vec<(Rect, i64)> {
    let mut out: Vec<(Rect, i64)> = edge_pair_violations(region, value, false)
        .into_iter()
        .map(|p| (p.location, p.distance))
        .collect();
    out.extend(corner_gap_pairs(region, value));
    out
}

/// A facing-run fragment: the exact, locally decidable unit of an
/// edge-pair measurement.
///
/// For a vertical pair the gap runs along x (`gap_lo..gap_hi` are the
/// two edge x-coordinates) and the span along y; for a horizontal pair
/// the axes swap. A fragment asserts: *every* unit column of the span
/// range, measured at the gap's middle column, is covered (width mode)
/// or empty (spacing mode). Fragments with the same orientation and gap
/// coordinates whose spans touch coalesce into one measurement — that
/// coalescing (see [`coalesce_fragments`]) is the canonical form shared
/// by the flat sweep and the tiled merge, which is what makes the two
/// paths bit-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PairFragment {
    /// True for a vertical edge pair (gap along x).
    pub vertical: bool,
    /// Gap start (left edge x, or bottom edge y).
    pub gap_lo: i64,
    /// Gap end (right edge x, or top edge y).
    pub gap_hi: i64,
    /// Span-range start (the facing run's low coordinate).
    pub span_lo: i64,
    /// Span-range end.
    pub span_hi: i64,
}

impl PairFragment {
    /// The [`FacingPair`] this (coalesced) fragment measures.
    pub fn to_pair(self) -> FacingPair {
        let location = if self.vertical {
            Rect::new(self.gap_lo, self.span_lo, self.gap_hi, self.span_hi)
        } else {
            Rect::new(self.span_lo, self.gap_lo, self.span_hi, self.gap_hi)
        };
        FacingPair {
            distance: self.gap_hi - self.gap_lo,
            length: self.span_hi - self.span_lo,
            location,
        }
    }
}

/// Canonicalises raw fragments: sorts, then merges fragments with equal
/// orientation + gap coordinates whose span ranges overlap or touch.
pub(crate) fn coalesce_fragments(mut frags: Vec<PairFragment>) -> Vec<PairFragment> {
    frags.sort_unstable();
    let mut out: Vec<PairFragment> = Vec::new();
    for f in frags {
        if let Some(last) = out.last_mut() {
            if last.vertical == f.vertical
                && last.gap_lo == f.gap_lo
                && last.gap_hi == f.gap_hi
                && f.span_lo <= last.span_hi
            {
                last.span_hi = last.span_hi.max(f.span_hi);
                continue;
            }
        }
        out.push(f);
    }
    out
}

/// Shared edge-pair sweep. `interior_between` selects width mode (the
/// strip between the edges is interior) versus spacing mode (exterior).
fn edge_pair_violations(region: &Region, value: i64, interior_between: bool) -> Vec<FacingPair> {
    coalesce_fragments(raw_pair_fragments(region, value, interior_between))
        .into_iter()
        .map(PairFragment::to_pair)
        .collect()
}

/// Emits one raw [`PairFragment`] per maximal covered (width mode) or
/// empty (spacing mode) run of the gap's middle column, for every pair
/// of opposite-facing boundary edges closer than `value`.
///
/// Unlike a single midpoint probe, run detection is decidable from any
/// window that contains the gap box plus one unit of margin — the
/// property the tiled path relies on. Both directional sweeps run
/// chunk-parallel: the edge list is split into fixed [`EDGE_CHUNK`]
/// pieces, each chunk probes shared [`GridIndex`]es through its own
/// [`dfm_geom::Searcher`], and per-chunk hits are concatenated in chunk
/// order.
pub(crate) fn raw_pair_fragments(
    region: &Region,
    value: i64,
    interior_between: bool,
) -> Vec<PairFragment> {
    let mut out = Vec::new();
    if region.is_empty() || value <= 0 {
        return out;
    }
    let edges = region.boundary_edges();
    let rects = region.rects();
    let mut rect_index: GridIndex<usize> = GridIndex::new(value.max(1) * 4);
    for (i, r) in rects.iter().enumerate() {
        rect_index.insert(*r, i);
    }

    // Coverage runs of one unit column (`vertical`: x = coord) or row
    // over the half-open span range, as maximal sorted intervals.
    let covered_runs = |rsearch: &mut dfm_geom::Searcher<'_, usize>,
                        vertical: bool,
                        coord: i64,
                        lo: i64,
                        hi: i64|
     -> Vec<(i64, i64)> {
        let probe = if vertical {
            Rect { x0: coord, y0: lo, x1: coord + 1, y1: hi }
        } else {
            Rect { x0: lo, y0: coord, x1: hi, y1: coord + 1 }
        };
        let mut runs: Vec<(i64, i64)> = Vec::new();
        for &&ri in rsearch.query(probe).iter() {
            let r = rects[ri];
            let (c0, c1, s0, s1) = if vertical {
                (r.x0, r.x1, r.y0, r.y1)
            } else {
                (r.y0, r.y1, r.x0, r.x1)
            };
            if c0 <= coord && coord < c1 {
                let (a, b) = (s0.max(lo), s1.min(hi));
                if a < b {
                    runs.push((a, b));
                }
            }
        }
        runs.sort_unstable();
        let mut merged: Vec<(i64, i64)> = Vec::new();
        for (a, b) in runs {
            if let Some(last) = merged.last_mut() {
                if a <= last.1 {
                    last.1 = last.1.max(b);
                    continue;
                }
            }
            merged.push((a, b));
        }
        merged
    };

    // Turns covered runs into the mode's facing runs (covered for
    // width, complement for spacing) and emits fragments.
    let emit = |frags: &mut Vec<PairFragment>,
                covered: &[(i64, i64)],
                vertical: bool,
                gap_lo: i64,
                gap_hi: i64,
                lo: i64,
                hi: i64| {
        let mut push = |a: i64, b: i64| {
            if a < b {
                frags.push(PairFragment { vertical, gap_lo, gap_hi, span_lo: a, span_hi: b });
            }
        };
        if interior_between {
            for &(a, b) in covered {
                push(a, b);
            }
        } else {
            let mut cursor = lo;
            for &(a, b) in covered {
                push(cursor, a);
                cursor = b;
            }
            push(cursor, hi);
        }
    };

    // Vertical edge pairs (gap along x).
    {
        let mut index: GridIndex<usize> = GridIndex::new(value.max(1) * 4);
        for (i, e) in edges.vertical.iter().enumerate() {
            index.insert(Rect { x0: e.x, y0: e.y0, x1: e.x, y1: e.y1 }, i);
        }
        let chunks = dfm_par::par_chunks(&edges.vertical, EDGE_CHUNK, |_, chunk| {
            let mut searcher = index.searcher();
            let mut rsearch = rect_index.searcher();
            let mut hits = Vec::new();
            for a in chunk {
                // Left edge of the pair: interior to the right for width,
                // interior to the left (exterior to the right) for spacing.
                if a.interior_right != interior_between {
                    continue;
                }
                let window = Rect { x0: a.x + 1, y0: a.y0, x1: a.x + value - 1, y1: a.y1 };
                if window.x0 > window.x1 {
                    continue;
                }
                for &&bi in searcher.query(window).iter() {
                    let b = edges.vertical[bi];
                    if b.interior_right == a.interior_right {
                        continue;
                    }
                    if b.x <= a.x || b.x - a.x >= value {
                        continue;
                    }
                    let ylo = a.y0.max(b.y0);
                    let yhi = a.y1.min(b.y1);
                    if ylo >= yhi {
                        continue;
                    }
                    let midx = a.x + (b.x - a.x) / 2;
                    let covered = covered_runs(&mut rsearch, true, midx, ylo, yhi);
                    emit(&mut hits, &covered, true, a.x, b.x, ylo, yhi);
                }
            }
            hits
        });
        out.extend(chunks.into_iter().flatten());
    }

    // Horizontal edge pairs (gap along y).
    {
        let mut index: GridIndex<usize> = GridIndex::new(value.max(1) * 4);
        for (i, e) in edges.horizontal.iter().enumerate() {
            index.insert(Rect { x0: e.x0, y0: e.y, x1: e.x1, y1: e.y }, i);
        }
        let chunks = dfm_par::par_chunks(&edges.horizontal, EDGE_CHUNK, |_, chunk| {
            let mut searcher = index.searcher();
            let mut rsearch = rect_index.searcher();
            let mut hits = Vec::new();
            for a in chunk {
                if a.interior_up != interior_between {
                    continue;
                }
                let window = Rect { x0: a.x0, y0: a.y + 1, x1: a.x1, y1: a.y + value - 1 };
                if window.y0 > window.y1 {
                    continue;
                }
                for &&bi in searcher.query(window).iter() {
                    let b = edges.horizontal[bi];
                    if b.interior_up == a.interior_up {
                        continue;
                    }
                    if b.y <= a.y || b.y - a.y >= value {
                        continue;
                    }
                    let xlo = a.x0.max(b.x0);
                    let xhi = a.x1.min(b.x1);
                    if xlo >= xhi {
                        continue;
                    }
                    let midy = a.y + (b.y - a.y) / 2;
                    let covered = covered_runs(&mut rsearch, false, midy, xlo, xhi);
                    emit(&mut hits, &covered, false, a.y, b.y, xlo, xhi);
                }
            }
            hits
        });
        out.extend(chunks.into_iter().flatten());
    }
    out
}

/// Corner-to-corner (Euclidean) gaps between diagonally facing region
/// corners closer than `value`, as `(gap_box, distance)` pairs.
///
/// Corners are *geometric*: a boundary vertex qualifies through the
/// coverage pattern of its four adjacent unit cells (convex, concave or
/// checkerboard), never through the region's internal rectangle
/// decomposition — so the result is a function of the covered point set
/// alone, and a tile window computes the same pairs as the flat region.
pub(crate) fn corner_gap_pairs(region: &Region, value: i64) -> Vec<(Rect, i64)> {
    if region.is_empty() || value <= 1 {
        return Vec::new();
    }
    let rects = region.rects();
    let mut rect_index: GridIndex<usize> = GridIndex::new(value.max(1) * 4);
    for (i, r) in rects.iter().enumerate() {
        rect_index.insert(*r, i);
    }
    let edges = region.boundary_edges();
    let mut corners: Vec<Point> = Vec::with_capacity(edges.vertical.len() * 2);
    for e in &edges.vertical {
        corners.push(Point::new(e.x, e.y0));
        corners.push(Point::new(e.x, e.y1));
    }
    corners.sort_unstable_by_key(|p| (p.x, p.y));
    corners.dedup();

    let covered = |s: &mut dfm_geom::Searcher<'_, usize>, x: i64, y: i64| -> bool {
        s.query(Rect { x0: x, y0: y, x1: x + 1, y1: y + 1 })
            .iter()
            .any(|&&ri| {
                let r = rects[ri];
                r.x0 <= x && x < r.x1 && r.y0 <= y && y < r.y1
            })
    };
    // The coverage pattern (NE, NW, SW, SE cells) around a vertex.
    // True corners turn: one cell (convex), three (concave), or two
    // diagonal (checkerboard). Two adjacent cells are a straight edge
    // point (possible with a split edge list), zero/four no boundary.
    let is_corner = |ne: bool, nw: bool, sw: bool, se: bool| -> bool {
        match [ne, nw, sw, se].iter().filter(|&&b| b).count() {
            1 | 3 => true,
            2 => ne == sw, // diagonal pairs only
            _ => false,
        }
    };

    let mut index: GridIndex<usize> = GridIndex::new(value.max(1) * 8);
    for (i, p) in corners.iter().enumerate() {
        index.insert(Rect { x0: p.x, y0: p.y, x1: p.x, y1: p.y }, i);
    }
    let v2 = value as i128 * value as i128;
    let chunks = dfm_par::par_chunks(&corners, EDGE_CHUNK, |ci, chunk| {
        let mut searcher = index.searcher();
        let mut rsearch = rect_index.searcher();
        let mut hits = Vec::new();
        for (k, p) in chunk.iter().enumerate() {
            let i = ci * EDGE_CHUNK + k;
            let (p_ne, p_nw, p_sw, p_se) = (
                covered(&mut rsearch, p.x, p.y),
                covered(&mut rsearch, p.x - 1, p.y),
                covered(&mut rsearch, p.x - 1, p.y - 1),
                covered(&mut rsearch, p.x, p.y - 1),
            );
            if !is_corner(p_ne, p_nw, p_sw, p_se) {
                continue;
            }
            for &&j in searcher.query(Rect::new(p.x, p.y, p.x, p.y).expanded(value)).iter() {
                if j <= i {
                    continue;
                }
                let q = corners[j];
                let (dx, dy) = (q.x - p.x, q.y - p.y);
                if dx <= 0 || dy == 0 || dx >= value || dy.abs() >= value {
                    continue;
                }
                let d2 = dx as i128 * dx as i128 + dy as i128 * dy as i128;
                if d2 >= v2 {
                    continue;
                }
                let (q_ne, q_nw, q_sw, q_se) = (
                    covered(&mut rsearch, q.x, q.y),
                    covered(&mut rsearch, q.x - 1, q.y),
                    covered(&mut rsearch, q.x - 1, q.y - 1),
                    covered(&mut rsearch, q.x, q.y - 1),
                );
                if !is_corner(q_ne, q_nw, q_sw, q_se) {
                    continue;
                }
                let dist = (d2 as f64).sqrt().floor() as i64;
                if dy > 0 {
                    // q is up-right of p: p must open to the NE, q to
                    // the SW, with material behind each corner.
                    if p_sw && !p_ne && q_ne && !q_sw {
                        hits.push((Rect::new(p.x, p.y, q.x, q.y), dist));
                    }
                } else {
                    // q is down-right of p: p opens SE, q opens NW.
                    if p_nw && !p_se && q_se && !q_nw {
                        hits.push((Rect::new(p.x, q.y, q.x, p.y), dist));
                    }
                }
            }
        }
        hits
    });
    chunks.into_iter().flatten().collect()
}


/// Width-dependent ("fat wire") spacing: regions of the layer closer
/// than `space` to a feature that is at least `wide_width` across in
/// both axes (excluding the wide feature's own connected component).
///
/// Returns `(violation_box, measured_separation)` pairs: the real worst
/// separation between the wide feature and the offending neighbour.
pub fn wide_space_violations(region: &Region, wide_width: i64, space: i64) -> Vec<(Rect, i64)> {
    let wide = region.opened(wide_width / 2);
    if wide.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for comp in region.connected_components() {
        let wide_part = comp.intersection(&wide);
        if wide_part.is_empty() {
            continue;
        }
        let others = region.difference(&comp);
        let near = wide_part.bloated(space).intersection(&others);
        out.extend(near.connected_components().into_iter().map(|c| {
            // Clip, not `interacting`: the measurement only sees wide
            // material within `space` of the candidate, so the clip
            // window bounds it exactly (and a tile halo can reproduce
            // the same window).
            let wide_local = wide_part.clipped(c.bbox().expanded(space + 1));
            (c.bbox(), min_separation(&wide_local, &c, space))
        }));
    }
    out
}

/// Regions where `inner` is not enclosed by `outer` with margin `value`.
///
/// Returns `(violation_box, measured_margin)` pairs: the real worst
/// enclosure margin of the offending inner shapes (0 when the inner
/// shape pokes out of `outer` entirely).
pub fn enclosure_violations(inner: &Region, outer: &Region, value: i64) -> Vec<(Rect, i64)> {
    if inner.is_empty() {
        return Vec::new();
    }
    let safe = outer.shrunk(value);
    inner
        .difference(&safe)
        .connected_components()
        .into_iter()
        .map(|c| {
            let inner_local = inner.interacting(&c);
            // Clip, not `interacting`: a point is enclosed with margin
            // `k ≤ value` iff its `k`-ball lies in `outer`, so outer
            // material beyond `value + 1` of the inner bbox can never
            // change the measured margin. A clip window is what a tile
            // halo reproduces exactly; whole-component selection is not.
            let outer_local = outer.clipped(inner_local.bbox().expanded(value + 1));
            (c.bbox(), enclosure_margin(&inner_local, &outer_local, value))
        })
        .collect()
}

/// Largest margin `k < value` such that `inner` stays inside
/// `outer.shrunk(k)` — the measured enclosure at a violation site.
pub(crate) fn enclosure_margin(inner: &Region, outer: &Region, value: i64) -> i64 {
    if inner.is_empty() {
        return value;
    }
    if !inner.difference(outer).is_empty() {
        return 0;
    }
    // Invariant: margin lo holds, margin hi does not (the caller only
    // asks at violation sites, where `value` fails).
    let (mut lo, mut hi) = (0i64, value);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if inner.difference(&outer.shrunk(mid)).is_empty() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Rounds a density fraction to parts-per-million, half to even.
///
/// Every density *decision* in the workspace (rule filtering, fill
/// targeting, tiled merges) goes through this one rounding, so flat and
/// tiled runs can never disagree by an ulp at a threshold.
pub fn density_ppm(d: f64) -> i64 {
    (d * 1e6).round_ties_even() as i64
}

/// Stepped-window density analysis: windows whose metal density falls
/// outside `[min, max]` after ppm rounding ([`density_ppm`]), with the
/// measured density.
pub fn density_violations(
    region: &Region,
    extent: Rect,
    window: i64,
    min: f64,
    max: f64,
) -> Vec<(Rect, f64)> {
    let (min_ppm, max_ppm) = (density_ppm(min), density_ppm(max));
    density_map(region, extent, window)
        .into_iter()
        .filter(|&(_, d)| {
            let ppm = density_ppm(d);
            ppm < min_ppm || ppm > max_ppm
        })
        .collect()
}

/// The canonical density-window enumeration: `window`-sized rects
/// stepping by half a window across `extent`, clamped inside it.
///
/// If `extent` is smaller than the window, a single window covering
/// `extent` is used. Both the flat density map and the tiled per-window
/// partial sums iterate exactly this list (in this order), so window
/// indices line up between the two paths.
pub fn density_windows(extent: Rect, window: i64) -> Vec<Rect> {
    let mut out = Vec::new();
    if extent.is_empty() || window <= 0 {
        return out;
    }
    let step = (window / 2).max(1);
    let mut y = extent.y0;
    loop {
        let mut x = extent.x0;
        let y1 = (y + window).min(extent.y1);
        let y0 = (y1 - window).max(extent.y0);
        loop {
            let x1 = (x + window).min(extent.x1);
            let x0 = (x1 - window).max(extent.x0);
            let w = Rect::new(x0, y0, x1, y1);
            if !w.is_empty() {
                out.push(w);
            }
            if x1 >= extent.x1 {
                break;
            }
            x += step;
        }
        if y1 >= extent.y1 {
            break;
        }
        y += step;
    }
    out
}

/// Computes the density of `region` in every [`density_windows`] window.
pub fn density_map(region: &Region, extent: Rect, window: i64) -> Vec<(Rect, f64)> {
    density_windows(extent, window)
        .into_iter()
        .map(|w| {
            let covered = region.clipped(w).area();
            (w, covered as f64 / w.area() as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_layout::{layers, Cell, FlatLayout, Library, Technology};

    fn flat_with(layer: dfm_layout::Layer, rects: &[Rect]) -> FlatLayout {
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        for &r in rects {
            c.add_rect(layer, r);
        }
        let id = lib.add_cell(c).expect("add");
        lib.flatten(id).expect("flatten")
    }

    #[test]
    fn width_violation_detected() {
        let region = Region::from_rect(Rect::new(0, 0, 50, 1000));
        let v = width_violations(&region, 90);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 50);
        assert!(width_violations(&region, 50).is_empty());
        assert!(width_violations(&region, 40).is_empty());
    }

    #[test]
    fn width_ok_for_wide_shape() {
        let region = Region::from_rect(Rect::new(0, 0, 200, 200));
        assert!(width_violations(&region, 90).is_empty());
    }

    #[test]
    fn width_violation_in_neck() {
        // Dumbbell: two fat pads joined by a thin neck.
        let region = Region::from_rects([
            Rect::new(0, 0, 200, 200),
            Rect::new(200, 80, 400, 120), // 40 tall neck
            Rect::new(400, 0, 600, 200),
        ]);
        let v = width_violations(&region, 90);
        assert!(!v.is_empty());
        // All violations are in the neck's y-band.
        for (r, w) in &v {
            assert!(*w == 40, "unexpected width {w}");
            assert!(r.y0 >= 80 && r.y1 <= 120);
        }
    }

    #[test]
    fn spacing_violation_detected() {
        let region = Region::from_rects([
            Rect::new(0, 0, 100, 100),
            Rect::new(150, 0, 250, 100), // 50 gap
        ]);
        let v = spacing_violations(&region, 90);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 50);
        assert_eq!(v[0].0, Rect::new(100, 0, 150, 100));
        assert!(spacing_violations(&region, 50).is_empty());
    }

    #[test]
    fn notch_is_a_spacing_violation() {
        // U-shape: the inner notch is 40 wide.
        let region = Region::from_rects([
            Rect::new(0, 0, 300, 100),
            Rect::new(0, 100, 130, 300),
            Rect::new(170, 100, 300, 300),
        ]);
        let v = spacing_violations(&region, 90);
        assert!(!v.is_empty());
        assert!(v.iter().any(|(r, s)| *s == 40 && r.x0 == 130 && r.x1 == 170));
    }

    #[test]
    fn corner_to_corner_spacing() {
        let region = Region::from_rects([
            Rect::new(0, 0, 100, 100),
            Rect::new(120, 120, 200, 200), // diagonal gap ~28.3
        ]);
        let v = spacing_violations(&region, 40);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 28); // floor(sqrt(800))
        assert!(spacing_violations(&region, 28).is_empty());
    }

    #[test]
    fn wide_space_rule() {
        // A fat plate (400 wide) next to a thin wire at 120: legal for
        // the base 90 rule but violates the wide rule (270/135).
        let region = Region::from_rects([
            Rect::new(0, 0, 3000, 400),
            Rect::new(0, 520, 3000, 610),
        ]);
        assert!(spacing_violations(&region, 90).is_empty());
        let v = wide_space_violations(&region, 270, 135);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].1, 120, "measured wide-space separation");
        // Narrow-only layout never fires the wide rule.
        let thin = Region::from_rects([
            Rect::new(0, 0, 3000, 90),
            Rect::new(0, 180, 3000, 270),
        ]);
        assert!(wide_space_violations(&thin, 270, 135).is_empty());
        // Enough spacing satisfies the rule.
        let ok = Region::from_rects([
            Rect::new(0, 0, 3000, 400),
            Rect::new(0, 540, 3000, 630),
        ]);
        assert!(wide_space_violations(&ok, 270, 135).is_empty());
    }

    #[test]
    fn wide_space_in_deck() {
        let flat = flat_with(
            layers::METAL1,
            &[Rect::new(0, 0, 3000, 400), Rect::new(0, 520, 3000, 610)],
        );
        let deck = RuleDeck::new().with(Rule::WideSpace {
            layer: layers::METAL1,
            wide_width: 270,
            space: 135,
        });
        let report = DrcEngine::new(&deck).run(&flat);
        assert_eq!(report.by_rule("METAL1.WS").count(), 1);
    }

    #[test]
    fn enclosure_violations_detected() {
        let via = Region::from_rect(Rect::new(100, 100, 190, 190));
        let metal_good = Region::from_rect(Rect::new(60, 60, 230, 230)); // 40 enclosure
        assert!(enclosure_violations(&via, &metal_good, 40).is_empty());
        let metal_bad = Region::from_rect(Rect::new(80, 60, 230, 230)); // 20 on left
        let v = enclosure_violations(&via, &metal_bad, 40);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 20, "measured enclosure margin");
        // Inner poking fully outside the outer: zero margin.
        let outside = Region::from_rect(Rect::new(500, 500, 590, 590));
        let v = enclosure_violations(&outside, &metal_bad, 40);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 0);
    }

    #[test]
    fn min_space_to_measures_real_separation() {
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        c.add_rect(layers::METAL1, Rect::new(0, 0, 100, 100));
        c.add_rect(layers::METAL2, Rect::new(130, 0, 230, 100)); // 30 gap
        let id = lib.add_cell(c).expect("add");
        let flat = lib.flatten(id).expect("flatten");
        let deck = RuleDeck::new().with(Rule::MinSpaceTo {
            from: layers::METAL1,
            to: layers::METAL2,
            value: 50,
        });
        let report = DrcEngine::new(&deck).run(&flat);
        assert_eq!(report.violation_count(), 1);
        let v = &report.violations()[0];
        assert_eq!(v.actual, 30, "measured cross-layer separation");
        assert_eq!(v.limit, 50);
    }

    #[test]
    fn density_ppm_rounds_half_to_even() {
        // 0.3 × 1e6 lands just below 300000.0 in f64; truncation used
        // to report the limit as 299999 ppm. The far sliver stretches
        // the extent so the single window covers [0,1000]².
        let flat = flat_with(
            layers::METAL1,
            &[Rect::new(0, 0, 250, 1000), Rect::new(999, 999, 1000, 1000)],
        );
        let deck = RuleDeck::new().with(Rule::Density {
            layer: layers::METAL1,
            window: 1000,
            min: 0.3,
            max: 0.9,
        });
        let report = DrcEngine::new(&deck).run(&flat);
        assert_eq!(report.violation_count(), 1);
        let v = &report.violations()[0];
        assert_eq!(v.limit, 300_000, "ppm limit must round, not truncate");
        assert_eq!(v.actual, 250_001, "measured ppm density");
    }

    #[test]
    fn engine_report_identical_across_thread_counts() {
        let tech = Technology::n65();
        let lib = dfm_layout::generate::routed_block(
            &tech,
            dfm_layout::generate::RoutedBlockParams::default(),
            7,
        );
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let deck = RuleDeck::for_technology(&tech);
        let run = || DrcEngine::new(&deck).run(&flat);
        let seq = dfm_par::with_threads(1, run);
        let two = dfm_par::with_threads(2, run);
        let eight = dfm_par::with_threads(8, run);
        assert_eq!(seq, two);
        assert_eq!(seq, eight);
    }

    #[test]
    fn density_windows() {
        // Half-covered extent.
        let region = Region::from_rect(Rect::new(0, 0, 500, 1000));
        let extent = Rect::new(0, 0, 1000, 1000);
        let map = density_map(&region, extent, 1000);
        assert_eq!(map.len(), 1);
        assert!((map[0].1 - 0.5).abs() < 1e-9);
        let v = density_violations(&region, extent, 1000, 0.6, 0.9);
        assert_eq!(v.len(), 1);
        let v = density_violations(&region, extent, 1000, 0.2, 0.9);
        assert!(v.is_empty());
    }

    #[test]
    fn engine_runs_technology_deck() {
        let tech = Technology::n65();
        let deck = RuleDeck::for_technology(&tech);
        // A clean min-size wire pair.
        let w = tech.rules(layers::METAL1).min_width;
        let s = tech.rules(layers::METAL1).min_space;
        let flat = flat_with(
            layers::METAL1,
            &[
                Rect::new(0, 0, 4000, w),
                Rect::new(0, w + s, 4000, 2 * w + s),
            ],
        );
        let report = DrcEngine::new(&deck).run(&flat);
        // Only density can fire on such a tiny extent; width/space/area clean.
        for v in report.violations() {
            assert!(v.rule.ends_with(".DEN"), "unexpected violation {v}");
        }
    }

    #[test]
    fn engine_flags_narrow_wire() {
        let tech = Technology::n65();
        let deck = RuleDeck::for_technology(&tech);
        let w = tech.rules(layers::METAL1).min_width;
        let flat = flat_with(layers::METAL1, &[Rect::new(0, 0, 4000, w - 10)]);
        let report = DrcEngine::new(&deck).run(&flat);
        assert!(report.by_rule("METAL1.W").count() >= 1);
    }

    #[test]
    fn engine_flags_via_enclosure() {
        let tech = Technology::n65();
        let deck = RuleDeck::for_technology(&tech);
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        let via = Rect::new(0, 0, tech.via_size, tech.via_size);
        c.add_rect(layers::VIA1, via);
        // Metal-1 pad exactly flush (zero enclosure): violation.
        c.add_rect(layers::METAL1, via);
        c.add_rect(layers::METAL2, via.expanded(tech.via_enclosure));
        let id = lib.add_cell(c).expect("add");
        let flat = lib.flatten(id).expect("flatten");
        let report = DrcEngine::new(&deck).run(&flat);
        assert!(report.by_rule("VIA1.EN.METAL1").count() == 1);
        assert!(report.by_rule("VIA1.EN.METAL2").count() == 0);
    }

    #[test]
    fn min_area_flags_small_islands() {
        let tech = Technology::n65();
        let deck = RuleDeck::for_technology(&tech);
        let a = tech.rules(layers::METAL1).min_area;
        let side = ((a as f64).sqrt() as i64) / 2; // well below min area
        let flat = flat_with(layers::METAL1, &[Rect::new(0, 0, side, side)]);
        let report = DrcEngine::new(&deck).run(&flat);
        assert_eq!(report.by_rule("METAL1.A").count(), 1);
    }

    #[test]
    fn generated_routed_block_is_mostly_clean() {
        // The generator is correct-by-construction for width/space/enclosure.
        let tech = Technology::n65();
        let lib = dfm_layout::generate::routed_block(
            &tech,
            dfm_layout::generate::RoutedBlockParams::default(),
            42,
        );
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let deck = RuleDeck::new()
            .with(Rule::MinWidth { layer: layers::METAL1, value: tech.rules(layers::METAL1).min_width })
            .with(Rule::MinSpace { layer: layers::METAL2, value: tech.rules(layers::METAL2).min_space })
            .with(Rule::Enclosure { inner: layers::VIA1, outer: layers::METAL1, value: tech.via_enclosure });
        let report = DrcEngine::new(&deck).run(&flat);
        assert!(
            report.violation_count() == 0,
            "expected clean-by-construction block, got:\n{report}"
        );
    }
}
