//! Recommended (soft) design rules and compliance scoring.
//!
//! Recommended rules relax nothing and forbid nothing: they express the
//! foundry's *preference* — wider-than-minimum wires, larger-than-minimum
//! spacing, generous via enclosure. The DAC 2008 panel's academic position
//! (Kahng) asked whether compliance with such rules measurably correlates
//! with yield; experiment E10 answers that with this module plus the
//! critical-area models of `dfm-yield`.

use crate::check::check_rule;
use crate::Rule;
use dfm_layout::{LayoutView, Technology};
use std::fmt;

/// A recommended rule: a [`Rule`] evaluated as guidance with a weight.
#[derive(Clone, Debug, PartialEq)]
pub struct RecommendedRule {
    /// The underlying geometric rule (at its *recommended*, not minimum,
    /// value).
    pub rule: Rule,
    /// Relative weight in the composite score.
    pub weight: f64,
}

/// A deck of recommended rules.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecommendedDeck {
    rules: Vec<RecommendedRule>,
}

impl RecommendedDeck {
    /// Creates an empty deck.
    pub fn new() -> Self {
        RecommendedDeck::default()
    }

    /// Adds a recommended rule.
    pub fn push(&mut self, rule: Rule, weight: f64) {
        self.rules.push(RecommendedRule { rule, weight });
    }

    /// The rules.
    pub fn rules(&self) -> &[RecommendedRule] {
        &self.rules
    }

    /// The standard recommended deck for a technology, scaling each hard
    /// rule by the customary guidance factors (width ×1.2, spacing ×1.5,
    /// via enclosure ×1.5).
    pub fn for_technology(tech: &Technology) -> Self {
        let mut deck = RecommendedDeck::new();
        for layer in tech.ruled_layers() {
            let r = tech.rules(layer);
            deck.push(
                Rule::MinWidth { layer, value: r.min_width * 12 / 10 },
                1.0,
            );
            deck.push(
                Rule::MinSpace { layer, value: r.min_space * 15 / 10 },
                2.0,
            );
        }
        for &via in dfm_layout::layers::VIAS {
            if let Some((below, above)) = dfm_layout::layers::via_connects(via) {
                deck.push(
                    Rule::Enclosure { inner: via, outer: below, value: tech.via_enclosure * 15 / 10 },
                    1.5,
                );
                deck.push(
                    Rule::Enclosure { inner: via, outer: above, value: tech.via_enclosure * 15 / 10 },
                    1.5,
                );
            }
        }
        deck
    }

    /// Scores a layout against the deck.
    ///
    /// Each rule's compliance is `1 − violations/sites`, clamped to
    /// `[0, 1]`, where `sites` is the number of primitive features the
    /// rule could fire on (canonical rectangles for width/space, connected
    /// components for enclosure). The composite is the weighted mean.
    pub fn compliance(&self, layout: &impl LayoutView) -> ComplianceReport {
        let mut per_rule = Vec::with_capacity(self.rules.len());
        for rr in &self.rules {
            let violations = check_rule(&rr.rule, layout).len();
            let sites = rule_sites(&rr.rule, layout).max(1);
            let score = (1.0 - violations as f64 / sites as f64).clamp(0.0, 1.0);
            per_rule.push(RuleCompliance {
                id: rr.rule.id(),
                weight: rr.weight,
                sites,
                violations,
                score,
            });
        }
        ComplianceReport { per_rule }
    }
}

fn rule_sites(rule: &Rule, layout: &impl LayoutView) -> usize {
    match rule {
        Rule::MinWidth { layer, .. } | Rule::MinSpace { layer, .. } | Rule::MinArea { layer, .. } => {
            layout.layer_rects(*layer).len()
        }
        Rule::MinSpaceTo { from, .. } => layout.layer_rects(*from).len(),
        Rule::WideSpace { layer, .. } => layout.layer_rects(*layer).len(),
        Rule::Enclosure { inner, .. } => layout.layer_rects(*inner).len(),
        Rule::Density { layer, window, .. } => {
            crate::check::density_map(&layout.region(*layer), layout.bbox(), *window).len()
        }
    }
}

/// Compliance of one recommended rule.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleCompliance {
    /// Rule id.
    pub id: String,
    /// Weight in the composite.
    pub weight: f64,
    /// Number of sites the rule could fire on.
    pub sites: usize,
    /// Number of guidance misses.
    pub violations: usize,
    /// Compliance score in `[0, 1]`.
    pub score: f64,
}

/// Per-rule and composite recommended-rule compliance.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ComplianceReport {
    per_rule: Vec<RuleCompliance>,
}

impl ComplianceReport {
    /// Per-rule results.
    pub fn per_rule(&self) -> &[RuleCompliance] {
        &self.per_rule
    }

    /// The weighted composite score in `[0, 1]`.
    pub fn composite(&self) -> f64 {
        let total_weight: f64 = self.per_rule.iter().map(|r| r.weight).sum();
        if total_weight == 0.0 {
            return 1.0;
        }
        self.per_rule
            .iter()
            .map(|r| r.weight * r.score)
            .sum::<f64>()
            / total_weight
    }
}

impl fmt::Display for ComplianceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "recommended-rule compliance: {:.3}", self.composite())?;
        for r in &self.per_rule {
            writeln!(
                f,
                "  {:<20} score {:.3} ({} misses / {} sites)",
                r.id, r.score, r.violations, r.sites
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::Rect;
    use dfm_layout::{layers, Cell, FlatLayout, Library};

    fn flat_two_wires(gap: i64, width: i64) -> FlatLayout {
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        c.add_rect(layers::METAL1, Rect::new(0, 0, 4000, width));
        c.add_rect(layers::METAL1, Rect::new(0, width + gap, 4000, 2 * width + gap));
        let id = lib.add_cell(c).expect("add");
        lib.flatten(id).expect("flatten")
    }

    #[test]
    fn compliant_layout_scores_one() {
        let tech = Technology::n65();
        let deck = RecommendedDeck::for_technology(&tech);
        // Generous geometry: twice the recommended values.
        let flat = flat_two_wires(
            tech.rules(layers::METAL1).min_space * 3,
            tech.rules(layers::METAL1).min_width * 3,
        );
        let report = deck.compliance(&flat);
        assert!((report.composite() - 1.0).abs() < 1e-9, "{report}");
    }

    #[test]
    fn minimum_layout_scores_below_one() {
        let tech = Technology::n65();
        let deck = RecommendedDeck::for_technology(&tech);
        // Exactly at the *hard* minimum: violates the recommended values.
        let flat = flat_two_wires(
            tech.rules(layers::METAL1).min_space,
            tech.rules(layers::METAL1).min_width,
        );
        let report = deck.compliance(&flat);
        assert!(report.composite() < 1.0, "{report}");
        // But never negative.
        assert!(report.composite() >= 0.0);
    }

    #[test]
    fn scores_order_matches_generosity() {
        let tech = Technology::n65();
        let deck = RecommendedDeck::for_technology(&tech);
        let tight = deck.compliance(&flat_two_wires(
            tech.rules(layers::METAL1).min_space,
            tech.rules(layers::METAL1).min_width,
        ));
        let mid = deck.compliance(&flat_two_wires(
            tech.rules(layers::METAL1).min_space * 13 / 10,
            tech.rules(layers::METAL1).min_width * 13 / 10,
        ));
        let loose = deck.compliance(&flat_two_wires(
            tech.rules(layers::METAL1).min_space * 2,
            tech.rules(layers::METAL1).min_width * 2,
        ));
        assert!(tight.composite() <= mid.composite());
        assert!(mid.composite() <= loose.composite());
    }

    #[test]
    fn empty_deck_is_fully_compliant() {
        let report = RecommendedDeck::new().compliance(&flat_two_wires(500, 500));
        assert_eq!(report.composite(), 1.0);
    }
}
