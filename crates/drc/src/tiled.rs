//! Tile-streaming DRC execution: bit-identical to the flat engine.
//!
//! [`TiledDrcEngine`] runs a [`RuleDeck`] over a [`TiledLayout`],
//! materialising one tile window at a time (streamed through
//! `dfm_par::par_reduce_streaming`, folded in tile order) and merging
//! per-tile partial results into exactly the report the flat
//! [`crate::DrcEngine`] produces — same violations, same order, same
//! bits, at any thread count and tile size.
//!
//! # Seam dedup: the ownership rule
//!
//! Tile *cores* partition the layout extent (half-open), so every
//! point belongs to exactly one core. Each partial result carries a
//! canonical anchor point and is kept only by the tile whose core
//! contains it:
//!
//! * edge-pair fragments — owned per span column: a tile keeps the
//!   fragment strip whose gap coordinate and span columns lie in its
//!   core; strips re-coalesce across tiles into the flat measurement,
//! * corner gaps — owned by the gap box's low corner,
//! * connected components (min-area) — complete components are judged
//!   in-tile; seam-touching pieces ship `(area, bbox, seam rects)` and
//!   are unioned across tiles before judging,
//! * component rules (enclosure, cross-layer spacing, wide-space) —
//!   owned by the component's anchor (the leftmost covered cell of its
//!   bottom row), **certified or refused**: when a tile cannot prove
//!   its window contains everything the measurement depends on, the
//!   run returns [`TiledDrcError`] instead of a silently different
//!   report,
//! * density — exact per-window partial area sums over `region ∩ core`,
//!   merged by window index; the single f64 division per window happens
//!   once, after the merge, exactly as in the flat path.
//!
//! The "tiled path never materialises a full-layer region" claim is
//! observable: [`TileStats::peak_tile_rects`] records the largest
//! per-tile rect count seen, and the benches publish it.

use crate::check::{
    coalesce_fragments, corner_gap_pairs, density_ppm, density_windows, enclosure_margin,
    min_separation, raw_pair_fragments, sort_violations, PairFragment,
};
use crate::{DrcReport, FacingPair, Rule, RuleDeck, Violation};
use dfm_geom::{Point, Rect, Region};
use dfm_layout::{Layer, LayoutView, TileView, TiledLayout};
use std::collections::BTreeMap;
use std::fmt;

/// Memory-proxy statistics of a tiled run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TileStats {
    /// Number of tiles in the grid.
    pub tiles: usize,
    /// Largest canonical rect count of any materialised tile view —
    /// the peak working-set proxy (the flat path would hold whole
    /// layers instead).
    pub peak_tile_rects: usize,
}

impl TileStats {
    fn absorb(&mut self, other: TileStats) {
        self.tiles = self.tiles.max(other.tiles);
        self.peak_tile_rects = self.peak_tile_rects.max(other.peak_tile_rects);
    }
}

/// A tiled run that could not be certified bit-identical to flat.
///
/// Raised when a rule's interaction range exceeds what the tile halo
/// can prove local (e.g. a cross-layer near-region or an
/// under-enclosed component reaching from a tile's core to its window
/// boundary). The fix is a larger halo or tile size; the engine never
/// silently degrades.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TiledDrcError {
    /// Rule id that failed certification.
    pub rule: String,
    /// Tile index where certification failed.
    pub tile: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for TiledDrcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tiled drc cannot certify rule {} at tile {}: {} (increase the tile halo or size)",
            self.rule, self.tile, self.message
        )
    }
}

impl std::error::Error for TiledDrcError {}

/// Result of a certified tiled run.
#[derive(Clone, Debug)]
pub struct TiledDrcRun {
    /// The merged report — bit-identical to the flat engine's.
    pub report: DrcReport,
    /// Peak working-set statistics.
    pub stats: TileStats,
}

/// Runs a [`RuleDeck`] against a [`TiledLayout`], tile by tile.
#[derive(Clone, Copy, Debug)]
pub struct TiledDrcEngine<'a> {
    deck: &'a RuleDeck,
}

impl<'a> TiledDrcEngine<'a> {
    /// Creates an engine for a deck.
    pub fn new(deck: &'a RuleDeck) -> Self {
        TiledDrcEngine { deck }
    }

    /// Runs every rule, streaming tiles, merging per-rule results in
    /// deck order.
    ///
    /// # Errors
    ///
    /// [`TiledDrcError`] when a rule cannot be certified bit-identical
    /// at this tile/halo configuration.
    pub fn run(&self, layout: &TiledLayout) -> Result<TiledDrcRun, TiledDrcError> {
        let mut report = DrcReport::new();
        let mut stats = TileStats { tiles: layout.tile_count(), peak_tile_rects: 0 };
        for rule in self.deck.rules() {
            let (violations, rule_stats) = check_rule_tiled(rule, layout)?;
            stats.absorb(rule_stats);
            report.extend(violations);
        }
        Ok(TiledDrcRun { report, stats })
    }
}

/// The mergeable per-tile partial result of one rule on one tile — a
/// pure function of `(rule, layout, tile index)` computed by
/// [`rule_tile_partial`].
///
/// Partials may be computed in any order, on any thread, in any
/// process (they round-trip through a checkpoint codec in the signoff
/// service); [`merge_rule_partials`] folds them **in tile order** into
/// exactly the violations the flat engine produces.
#[derive(Clone, Debug, PartialEq)]
pub enum RulePartial {
    /// Core-owned edge-pair fragment strips (MinWidth): re-coalesced
    /// into flat measurements at merge.
    Fragments {
        /// Owned fragment strips of this tile.
        frags: Vec<PairFragment>,
        /// Canonical rect count of the materialised tile view.
        rects: usize,
    },
    /// Fragment strips plus low-corner-owned corner gaps (MinSpace).
    Spacing {
        /// Owned fragment strips of this tile.
        frags: Vec<PairFragment>,
        /// Corner-to-corner gap boxes owned by this tile, with their
        /// diagonal distances.
        corners: Vec<(Rect, i64)>,
        /// Canonical rect count of the materialised tile view.
        rects: usize,
    },
    /// Min-area connected components: complete ones are judged at
    /// merge from `(bbox, area)`, seam-touching pieces are unioned
    /// across tiles first.
    Area {
        /// Components wholly inside this tile's core.
        complete: Vec<(Rect, i128)>,
        /// Seam-touching component pieces shipped to the union-find.
        pieces: Vec<AreaPiece>,
        /// Canonical rect count of the materialised tile view.
        rects: usize,
    },
    /// Exact per-density-window covered-area partial sums over
    /// `region ∩ core ∩ window`.
    Density {
        /// `(window index, covered area)` pairs, zero entries omitted.
        partials: Vec<(usize, i128)>,
        /// Canonical rect count of the materialised tile view.
        rects: usize,
    },
    /// A certified component rule's finished in-tile violations, or a
    /// refusal when the tile could not prove the measurement local.
    Certified {
        /// Violations owned (and fully measured) by this tile.
        violations: Vec<Violation>,
        /// Canonical rect count of the materialised tile view.
        rects: usize,
        /// The tile's own index when it refused certification.
        refused: Option<usize>,
    },
}

impl RulePartial {
    /// Canonical rect count of the tile view the partial came from —
    /// the per-tile working-set proxy folded into [`TileStats`].
    pub fn rect_count(&self) -> usize {
        match self {
            RulePartial::Fragments { rects, .. }
            | RulePartial::Spacing { rects, .. }
            | RulePartial::Area { rects, .. }
            | RulePartial::Density { rects, .. }
            | RulePartial::Certified { rects, .. } => *rects,
        }
    }
}

/// The tile halo [`rule_tile_partial`] materialises its view with —
/// the rule's interaction range plus its certification margin. A
/// caller that needs a window provably covering *everything* a rule
/// reads (e.g. a content-addressed result cache keying on tile bytes)
/// takes the max of this over the deck.
pub fn rule_tile_halo(rule: &Rule) -> i64 {
    match rule {
        Rule::MinWidth { value, .. } | Rule::MinSpace { value, .. } => value + 2,
        Rule::MinArea { .. } | Rule::Density { .. } => 0,
        Rule::MinSpaceTo { value, .. } => 2 * value + 4,
        Rule::Enclosure { value, .. } => 2 * value + 6,
        Rule::WideSpace { wide_width, space, .. } => wide_width + space + 8,
    }
}

/// Computes one rule's partial result on one tile. Pure: the output
/// depends only on the arguments, never on thread count or execution
/// order — the property that lets a job scheduler recompute, reorder,
/// or checkpoint tile tasks freely.
pub fn rule_tile_partial(rule: &Rule, layout: &TiledLayout, tile: usize) -> RulePartial {
    let id = rule.id();
    let make = |location: Rect, actual: i64, limit: i64| Violation {
        rule: id.clone(),
        location,
        actual,
        limit,
    };
    match rule {
        Rule::MinWidth { layer, value } => {
            let (frags, rects) = facing_pair_partial(layout, *layer, *value, true, tile);
            RulePartial::Fragments { frags, rects }
        }
        Rule::MinSpace { layer, value } => {
            let view = layout.view_layers(tile, rule_tile_halo(rule), &[*layer]);
            let region = view.region(*layer);
            let core = view.core();
            let frags = own_fragments(raw_pair_fragments(&region, *value, false), core);
            let corners: Vec<(Rect, i64)> = corner_gap_pairs(&region, *value)
                .into_iter()
                .filter(|(r, _)| owns(core, Point::new(r.x0, r.y0)))
                .collect();
            RulePartial::Spacing { frags, corners, rects: view.rect_count() }
        }
        Rule::MinArea { layer, .. } => min_area_tile(layout, *layer, tile),
        Rule::Density { layer, window, .. } => density_tile(layout, *layer, *window, tile),
        Rule::MinSpaceTo { from, to, value } => {
            let view = layout.view_layers(tile, rule_tile_halo(rule), &[*from, *to]);
            min_space_to_tile(&view, *from, *to, *value, &make)
        }
        Rule::Enclosure { inner, outer, value } => {
            let view = layout.view_layers(tile, rule_tile_halo(rule), &[*inner, *outer]);
            enclosure_tile(&view, *inner, *outer, *value, &make)
        }
        Rule::WideSpace { layer, wide_width, space } => {
            let view = layout.view_layers(tile, rule_tile_halo(rule), &[*layer]);
            wide_space_tile(&view, *layer, *wide_width, *space, &make)
        }
    }
}

/// Merges one rule's per-tile partials (given **in tile order**, one
/// per tile) into the rule's canonical-order violations and the pass's
/// tile statistics — exactly what [`check_rule_tiled`] returns.
///
/// # Errors
///
/// [`TiledDrcError`] when a certified rule refused a tile, or when a
/// partial's kind does not match the rule (a corrupt or mismatched
/// checkpoint — never a panic).
pub fn merge_rule_partials(
    rule: &Rule,
    layout: &TiledLayout,
    partials: Vec<RulePartial>,
) -> Result<(Vec<Violation>, TileStats), TiledDrcError> {
    let id = rule.id();
    let make = |location: Rect, actual: i64, limit: i64| Violation {
        rule: id.clone(),
        location,
        actual,
        limit,
    };
    let mut stats = TileStats::default();
    for p in &partials {
        stats.peak_tile_rects = stats.peak_tile_rects.max(p.rect_count());
    }
    let mismatch = |tile: usize| TiledDrcError {
        rule: id.clone(),
        tile,
        message: "partial result kind does not match the rule".to_string(),
    };
    let mut out = match rule {
        Rule::MinWidth { value, .. } => {
            let mut frags = Vec::new();
            for (tile, p) in partials.into_iter().enumerate() {
                let RulePartial::Fragments { frags: f, .. } = p else {
                    return Err(mismatch(tile));
                };
                frags.extend(f);
            }
            coalesce_fragments(frags)
                .into_iter()
                .map(PairFragment::to_pair)
                .map(|p| make(p.location, p.distance, *value))
                .collect()
        }
        Rule::MinSpace { value, .. } => {
            let mut frags = Vec::new();
            let mut corners = Vec::new();
            for (tile, p) in partials.into_iter().enumerate() {
                let RulePartial::Spacing { frags: f, corners: c, .. } = p else {
                    return Err(mismatch(tile));
                };
                frags.extend(f);
                corners.extend(c);
            }
            let mut v: Vec<Violation> = coalesce_fragments(frags)
                .into_iter()
                .map(PairFragment::to_pair)
                .map(|p| make(p.location, p.distance, *value))
                .collect();
            v.extend(corners.into_iter().map(|(r, d)| make(r, d, *value)));
            v
        }
        Rule::MinArea { value, .. } => {
            let mut complete = Vec::new();
            let mut pieces = Vec::new();
            for (tile, p) in partials.into_iter().enumerate() {
                let RulePartial::Area { complete: c, pieces: pc, .. } = p else {
                    return Err(mismatch(tile));
                };
                complete.extend(c);
                pieces.extend(pc);
            }
            min_area_merge(complete, pieces, *value, &make)
        }
        Rule::Density { window, min, max, .. } => {
            let windows = density_windows(layout.bbox(), *window);
            let mut totals = vec![0i128; windows.len()];
            for (tile, p) in partials.into_iter().enumerate() {
                let RulePartial::Density { partials: ps, .. } = p else {
                    return Err(mismatch(tile));
                };
                for (idx, a) in ps {
                    if idx >= totals.len() {
                        return Err(TiledDrcError {
                            rule: id.clone(),
                            tile,
                            message: format!("density window index {idx} out of range"),
                        });
                    }
                    totals[idx] += a;
                }
            }
            density_merge(&windows, &totals, *min, *max, &make)
        }
        Rule::MinSpaceTo { value, .. } => collect_certified(partials, &id, || {
            format!("a near-component's interaction range (value {value}) crosses the tile window")
        })?,
        Rule::Enclosure { value, .. } => collect_certified(partials, &id, || {
            format!(
                "an under-enclosed component's interaction range (value {value}) crosses the tile window"
            )
        })?,
        Rule::WideSpace { wide_width, space, .. } => collect_certified(partials, &id, || {
            format!(
                "a component near the core (wide {wide_width}, space {space}) crosses the tile window"
            )
        })?,
    };
    sort_violations(&mut out);
    stats.tiles = layout.tile_count();
    Ok((out, stats))
}

/// Streams one rule over the tiles; returns its canonical-order
/// violations and the tile statistics of the pass. Equivalent to
/// computing every [`rule_tile_partial`] and merging — which is
/// literally what it does, through the ordered streaming reduction.
pub fn check_rule_tiled(
    rule: &Rule,
    layout: &TiledLayout,
) -> Result<(Vec<Violation>, TileStats), TiledDrcError> {
    let partials = stream_tiles(layout.tile_count(), |i| rule_tile_partial(rule, layout, i));
    merge_rule_partials(rule, layout, partials)
}

/// One tile's owned fragment strips for a facing-pair sweep of `layer`
/// at interaction range `max` — the per-tile half of
/// [`tiled_facing_pairs`], exposed so a job scheduler can compute it
/// as an independent task. Returns the strips and the tile's canonical
/// rect count.
pub fn facing_pair_partial(
    layout: &TiledLayout,
    layer: Layer,
    max: i64,
    interior_between: bool,
    tile: usize,
) -> (Vec<PairFragment>, usize) {
    let view = layout.view_layers(tile, max + 2, &[layer]);
    let frags =
        own_fragments(raw_pair_fragments(&view.region(layer), max, interior_between), view.core());
    (frags, view.rect_count())
}

/// Merges per-tile fragment strips (in tile order) into the exact flat
/// facing-pair list — the merge half of [`tiled_facing_pairs`].
pub fn merge_facing_pair_partials(
    partials: impl IntoIterator<Item = Vec<PairFragment>>,
) -> Vec<FacingPair> {
    let mut frags = Vec::new();
    for p in partials {
        frags.extend(p);
    }
    coalesce_fragments(frags)
        .into_iter()
        .map(PairFragment::to_pair)
        .collect()
}

/// Facing pairs of one layer computed tile-by-tile — the exact pair
/// list [`crate::interior_facing_pairs`] / [`crate::exterior_facing_pairs`]
/// produce on the flat region, without ever materialising it. This is
/// the input the tiled critical-area path in `dfm-yield` consumes.
pub fn tiled_facing_pairs(
    layout: &TiledLayout,
    layer: Layer,
    max: i64,
    interior_between: bool,
) -> Vec<FacingPair> {
    let fold = stream_tiles(layout.tile_count(), |i| {
        facing_pair_partial(layout, layer, max, interior_between, i).0
    });
    merge_facing_pair_partials(fold)
}

/// Streams `per_tile` over `n` tile indices, returning the outputs in
/// tile order (bounded reorder window, any thread count).
fn stream_tiles<T: Send>(n: usize, per_tile: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let window = (dfm_par::thread_count() * 2).max(1);
    dfm_par::par_reduce_streaming(n, window, per_tile, Vec::with_capacity(n), |mut acc, t| {
        acc.push(t);
        acc
    })
}

/// Collects a certified-rule fold: the first refusing tile (in tile
/// order) wins deterministically; otherwise violations concatenate in
/// tile order.
fn collect_certified(
    partials: Vec<RulePartial>,
    id: &str,
    message: impl Fn() -> String,
) -> Result<Vec<Violation>, TiledDrcError> {
    let mut violations = Vec::new();
    for (i, p) in partials.into_iter().enumerate() {
        let RulePartial::Certified { violations: v, refused, .. } = p else {
            return Err(TiledDrcError {
                rule: id.to_string(),
                tile: i,
                message: "partial result kind does not match the rule".to_string(),
            });
        };
        if let Some(tile) = refused {
            return Err(TiledDrcError { rule: id.to_string(), tile, message: message() });
        }
        violations.extend(v);
    }
    Ok(violations)
}

/// True if the half-open `core` owns point `p`.
fn owns(core: Rect, p: Point) -> bool {
    core.x0 <= p.x && p.x < core.x1 && core.y0 <= p.y && p.y < core.y1
}

/// Canonical component anchor: the leftmost covered cell of the
/// component's bottom row. A pure function of the covered point set
/// (never of its rectangle decomposition), always a covered cell of
/// the component — so every tile that sees the component computes the
/// same anchor, and the anchor's owner tile is guaranteed to have the
/// component's material in its window.
fn region_anchor(c: &Region) -> Point {
    let b = c.bbox();
    let mut x = i64::MAX;
    for r in c.rects() {
        if r.y0 == b.y0 {
            x = x.min(r.x0);
        }
    }
    Point::new(x, b.y0)
}

/// Keeps the core-owned strips of raw fragments: gap coordinate owned
/// by the core on the gap axis, span clipped to the core's span range.
///
/// Owned strips partition every flat fragment's cells across tiles
/// (cores partition the extent), and a fragment whose gap start lies
/// in the core sits deep enough inside the window (halo ≥ value + 2)
/// that its edges and its mid-column coverage are the flat layout's —
/// so merging all owned strips and re-coalescing reproduces the flat
/// coalesced fragment list exactly.
fn own_fragments(frags: Vec<PairFragment>, core: Rect) -> Vec<PairFragment> {
    let mut out = Vec::with_capacity(frags.len());
    for f in frags {
        let (gap_axis_lo, gap_axis_hi, span_axis_lo, span_axis_hi) = if f.vertical {
            (core.x0, core.x1, core.y0, core.y1)
        } else {
            (core.y0, core.y1, core.x0, core.x1)
        };
        if f.gap_lo < gap_axis_lo || f.gap_lo >= gap_axis_hi {
            continue;
        }
        let span_lo = f.span_lo.max(span_axis_lo);
        let span_hi = f.span_hi.min(span_axis_hi);
        if span_lo < span_hi {
            out.push(PairFragment { span_lo, span_hi, ..f });
        }
    }
    out
}

/// A seam-touching min-area component piece shipped to the merge.
#[derive(Clone, Debug, PartialEq)]
pub struct AreaPiece {
    /// Exact covered area of the piece (clipped to its tile's core).
    pub area: i128,
    /// Bounding box of the piece.
    pub bbox: Rect,
    /// The piece's rects flush against a core seam — the touch
    /// candidates the cross-tile union-find connects on.
    pub seam_rects: Vec<Rect>,
}

/// Min-area per-tile half: judges nothing, just splits the tile-core
/// components into complete ones and seam-touching pieces. Exact at
/// any tile size — no halo and no certification needed.
fn min_area_tile(layout: &TiledLayout, layer: Layer, tile: usize) -> RulePartial {
    let extent = layout.bbox();
    let view = layout.view_layers(tile, 0, &[layer]);
    let core = view.core();
    let region = view.region(layer).clipped(core);
    // Seam sides: core edges strictly inside the extent. A
    // component piece whose closure reaches a seam may continue in
    // the neighbour tile; every other piece is a complete
    // component.
    let seam_left = core.x0 > extent.x0;
    let seam_right = core.x1 < extent.x1;
    let seam_bottom = core.y0 > extent.y0;
    let seam_top = core.y1 < extent.y1;
    let mut complete: Vec<(Rect, i128)> = Vec::new();
    let mut pieces: Vec<AreaPiece> = Vec::new();
    for comp in region.connected_components() {
        let seam_rects: Vec<Rect> = comp
            .rects()
            .iter()
            .copied()
            .filter(|r| {
                (seam_left && r.x0 == core.x0)
                    || (seam_right && r.x1 == core.x1)
                    || (seam_bottom && r.y0 == core.y0)
                    || (seam_top && r.y1 == core.y1)
            })
            .collect();
        if seam_rects.is_empty() {
            complete.push((comp.bbox(), comp.area()));
        } else {
            pieces.push(AreaPiece { area: comp.area(), bbox: comp.bbox(), seam_rects });
        }
    }
    RulePartial::Area { complete, pieces, rects: view.rect_count() }
}

/// Min-area merge half: judges complete components directly, then
/// reassembles seam-crossing components with a union-find over closed
/// seam-rect touches (the same 8-connectivity the flat component pass
/// uses) and judges the unions.
fn min_area_merge(
    complete: Vec<(Rect, i128)>,
    pieces: Vec<AreaPiece>,
    value: i64,
    make: &impl Fn(Rect, i64, i64) -> Violation,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (bbox, area) in complete {
        if area < value as i128 {
            violations.push(make(bbox, area as i64, value));
        }
    }

    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut parent: Vec<usize> = (0..pieces.len()).collect();
    for i in 0..pieces.len() {
        for j in (i + 1)..pieces.len() {
            if !pieces[i].bbox.touches(&pieces[j].bbox) {
                continue;
            }
            let touch = pieces[i]
                .seam_rects
                .iter()
                .any(|a| pieces[j].seam_rects.iter().any(|b| a.touches(b)));
            if touch {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                parent[ri] = rj;
            }
        }
    }
    let mut groups: BTreeMap<usize, (Rect, i128)> = BTreeMap::new();
    for (i, piece) in pieces.iter().enumerate() {
        let root = find(&mut parent, i);
        groups
            .entry(root)
            .and_modify(|(bbox, area)| {
                *bbox = bbox.bounding_union(&piece.bbox);
                *area += piece.area;
            })
            .or_insert((piece.bbox, piece.area));
    }
    for (bbox, area) in groups.into_values() {
        if area < value as i128 {
            violations.push(make(bbox, area as i64, value));
        }
    }
    violations
}

/// Density per-tile half: exact distributed partial sums — the i128
/// covered area of `region ∩ core ∩ window` for every canonical
/// density window the tile's core touches. Exact at any tile size, no
/// halo needed.
fn density_tile(layout: &TiledLayout, layer: Layer, window: i64, tile: usize) -> RulePartial {
    let windows = density_windows(layout.bbox(), window);
    let view = layout.view_layers(tile, 0, &[layer]);
    let core = view.core();
    let region = view.region(layer);
    let mut partials: Vec<(usize, i128)> = Vec::new();
    for (idx, w) in windows.iter().enumerate() {
        let Some(wc) = w.intersection(&core) else { continue };
        let covered = region.clipped(wc).area();
        if covered != 0 {
            partials.push((idx, covered));
        }
    }
    RulePartial::Density { partials, rects: view.rect_count() }
}

/// Density merge half: the one f64 division + ppm rounding per window
/// happens here, after the exact integer sums — identical arithmetic
/// to the flat path.
fn density_merge(
    windows: &[Rect],
    totals: &[i128],
    min: f64,
    max: f64,
    make: &impl Fn(Rect, i64, i64) -> Violation,
) -> Vec<Violation> {
    let (min_ppm, max_ppm) = (density_ppm(min), density_ppm(max));
    windows
        .iter()
        .zip(totals)
        .filter_map(|(w, &covered)| {
            let d = covered as f64 / w.area() as f64;
            let ppm = density_ppm(d);
            if ppm < min_ppm || ppm > max_ppm {
                let limit = if ppm < min_ppm { min } else { max };
                Some(make(*w, ppm, density_ppm(limit)))
            } else {
                None
            }
        })
        .collect()
}

/// Cross-layer spacing, certified per candidate: the tile that owns a
/// near-component's anchor re-runs the flat measurement (same clip
/// window, same binary search) after proving the candidate plus its
/// interaction margin sit strictly inside the tile window.
fn min_space_to_tile(
    view: &TileView,
    from: Layer,
    to: Layer,
    value: i64,
    make: &impl Fn(Rect, i64, i64) -> Violation,
) -> RulePartial {
    let core = view.core();
    let window = view.window();
    let from_w = view.region(from);
    let to_w = view.region(to);
    let near = from_w.bloated(value).intersection(&to_w);
    let mut out = Vec::new();
    for c in near.connected_components() {
        let certified = window.contains_rect(&c.bbox().expanded(value + 2));
        if owns(core, region_anchor(&c)) && certified {
            let from_local = from_w.clipped(c.bbox().expanded(value + 1));
            out.push(make(c.bbox(), min_separation(&from_local, &c, value), value));
        } else if !certified && c.bbox().touches(&core) {
            return RulePartial::Certified {
                violations: out,
                rects: view.rect_count(),
                refused: Some(view.index()),
            };
        }
    }
    RulePartial::Certified { violations: out, rects: view.rect_count(), refused: None }
}

/// Enclosure, certified per candidate: the owner tile proves both the
/// under-enclosed candidate and every inner component it touches sit
/// strictly inside the window (with the measurement margin to spare),
/// then re-runs the flat measurement verbatim.
fn enclosure_tile(
    view: &TileView,
    inner: Layer,
    outer: Layer,
    value: i64,
    make: &impl Fn(Rect, i64, i64) -> Violation,
) -> RulePartial {
    let core = view.core();
    let window = view.window();
    let inner_w = view.region(inner);
    let outer_w = view.region(outer);
    let mut out = Vec::new();
    if inner_w.is_empty() {
        return RulePartial::Certified {
            violations: out,
            rects: view.rect_count(),
            refused: None,
        };
    }
    let bad = inner_w.difference(&outer_w.shrunk(value));
    for c in bad.connected_components() {
        let inner_local = inner_w.interacting(&c);
        let certified = window.contains_rect(&c.bbox().expanded(value + 2))
            && window.contains_rect(&inner_local.bbox().expanded(value + 2));
        if owns(core, region_anchor(&c)) && certified {
            let outer_local = outer_w.clipped(inner_local.bbox().expanded(value + 1));
            out.push(make(c.bbox(), enclosure_margin(&inner_local, &outer_local, value), value));
        } else if !certified && c.bbox().touches(&core) {
            return RulePartial::Certified {
                violations: out,
                rects: view.rect_count(),
                refused: Some(view.index()),
            };
        }
    }
    RulePartial::Certified { violations: out, rects: view.rect_count(), refused: None }
}

/// Wide-class spacing, certified per tile *and* per candidate.
///
/// Wide-space is the one rule whose verdict depends on whole-component
/// identity (the wide feature's own component is exempt from the
/// spacing), so before measuring anything the tile proves every
/// component near its core is complete — strictly inside the window.
/// A long wire crossing the window refuses the run rather than risk a
/// wrong wide mask or exemption.
fn wide_space_tile(
    view: &TileView,
    layer: Layer,
    wide_width: i64,
    space: i64,
    make: &impl Fn(Rect, i64, i64) -> Violation,
) -> RulePartial {
    let reach = wide_width + space + 4;
    let refuse = |out: Vec<Violation>| RulePartial::Certified {
        violations: out,
        rects: view.rect_count(),
        refused: Some(view.index()),
    };
    let core = view.core();
    let window = view.window();
    let region = view.region(layer);
    let zone = core.expanded(reach);
    let comps = region.connected_components();
    for comp in &comps {
        if comp.bbox().touches(&zone) && !window.contains_rect(&comp.bbox().expanded(1)) {
            return refuse(Vec::new());
        }
    }
    let wide = region.opened(wide_width / 2);
    let mut out = Vec::new();
    if wide.is_empty() {
        return RulePartial::Certified {
            violations: out,
            rects: view.rect_count(),
            refused: None,
        };
    }
    for comp in &comps {
        let wide_part = comp.intersection(&wide);
        if wide_part.is_empty() {
            continue;
        }
        let others = region.difference(comp);
        let near = wide_part.bloated(space).intersection(&others);
        for c in near.connected_components() {
            let certified = window.contains_rect(&c.bbox().expanded(reach));
            if owns(core, region_anchor(&c)) && certified {
                let wide_local = wide_part.clipped(c.bbox().expanded(space + 1));
                out.push(make(c.bbox(), min_separation(&wide_local, &c, space), space));
            } else if !certified && c.bbox().touches(&core) {
                return refuse(out);
            }
        }
    }
    RulePartial::Certified { violations: out, rects: view.rect_count(), refused: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DrcEngine;
    use dfm_layout::{layers, Cell, FlatLayout, Library, Technology, TilingConfig};

    fn flat_with(layer: Layer, rects: &[Rect]) -> FlatLayout {
        let mut lib = Library::new("t");
        let mut c = Cell::new("TOP");
        for &r in rects {
            c.add_rect(layer, r);
        }
        let id = lib.add_cell(c).expect("add");
        lib.flatten(id).expect("flatten")
    }

    fn tiling(side: i64, halo: i64) -> TilingConfig {
        TilingConfig::builder().tile(side).halo(halo).build().expect("config")
    }

    #[test]
    fn full_deck_matches_flat_on_routed_block() {
        let tech = Technology::n65();
        let lib = dfm_layout::generate::routed_block(
            &tech,
            dfm_layout::generate::RoutedBlockParams::default(),
            7,
        );
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let deck = RuleDeck::for_technology(&tech);
        let reference = DrcEngine::new(&deck).run(&flat);
        let extent = dfm_layout::LayoutView::bbox(&flat);
        let side = ((extent.x1 - extent.x0) / 3).max(1);
        // One divisor-ish and one deliberately awkward tile size.
        for tile in [side, side * 2 / 3 + 7] {
            let tiled =
                TiledLayout::from_flat(flat.clone(), tiling(tile, tech.via_enclosure * 2 + 6));
            for threads in [1usize, 2, 8] {
                let run = dfm_par::with_threads(threads, || {
                    TiledDrcEngine::new(&deck).run(&tiled).expect("certified")
                });
                assert_eq!(
                    run.report, reference,
                    "tile {tile} threads {threads} diverged from flat"
                );
                assert_eq!(run.stats.tiles, tiled.tile_count());
                assert!(run.stats.peak_tile_rects > 0);
            }
        }
    }

    #[test]
    fn min_area_component_straddling_four_tiles_dedups() {
        // A plus-shaped component centred on the four-corner point of a
        // 2x2 tile grid: every tile sees a piece, the merge must count
        // it once with the exact flat area and bbox.
        let rects = [
            Rect::new(90, 98, 110, 102), // horizontal bar across x=100
            Rect::new(98, 90, 102, 110), // vertical bar across y=100
            Rect::new(0, 0, 4, 4),       // small complete comp, tile 0 only
        ];
        let flat = flat_with(layers::METAL1, &rects);
        // Extent is (0,0)-(110,110); tile 100 gives a 2x2 grid.
        let tiled = TiledLayout::from_flat(flat.clone(), tiling(100, 8));
        let rule = Rule::MinArea { layer: layers::METAL1, value: 1000 };
        let reference = crate::check::check_rule(&rule, &flat);
        let (tiled_v, _) = check_rule_tiled(&rule, &tiled).expect("exact");
        assert_eq!(tiled_v, reference);
        // The plus (area 144) and the dot (area 16) both violate.
        assert_eq!(reference.len(), 2);
        assert!(reference.iter().any(|v| v.actual == 144));
    }

    #[test]
    fn density_partials_merge_exactly() {
        let tech = Technology::n65();
        let lib = dfm_layout::generate::routed_block(
            &tech,
            dfm_layout::generate::RoutedBlockParams::default(),
            11,
        );
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let rule = Rule::Density {
            layer: layers::METAL1,
            window: tech.density_window,
            min: 0.25,
            max: 0.65,
        };
        let reference = crate::check::check_rule(&rule, &flat);
        let extent = dfm_layout::LayoutView::bbox(&flat);
        let side = ((extent.x1 - extent.x0) / 4).max(1) + 13;
        let tiled = TiledLayout::from_flat(flat, tiling(side, 4));
        let (tiled_v, _) = check_rule_tiled(&rule, &tiled).expect("exact");
        assert_eq!(tiled_v, reference);
    }

    #[test]
    fn spacing_corner_pairs_own_by_low_corner() {
        // Two squares meeting corner-to-corner across a tile seam.
        let rects = [Rect::new(60, 60, 100, 100), Rect::new(120, 120, 160, 160)];
        let flat = flat_with(layers::METAL1, &rects);
        let rule = Rule::MinSpace { layer: layers::METAL1, value: 40 };
        let reference = crate::check::check_rule(&rule, &flat);
        assert!(!reference.is_empty());
        for tile in [110, 73] {
            let tiled = TiledLayout::from_flat(flat.clone(), tiling(tile, 48));
            let (tiled_v, _) = check_rule_tiled(&rule, &tiled).expect("exact");
            assert_eq!(tiled_v, reference, "tile {tile}");
        }
    }

    #[test]
    fn uncertifiable_enclosure_refuses_instead_of_degrading() {
        // An inner wire far longer than any window at this tile size:
        // the owner tile cannot prove the measurement local.
        let inner = Rect::new(0, 0, 5000, 10);
        let flat = {
            let mut lib = Library::new("t");
            let mut c = Cell::new("TOP");
            c.add_rect(layers::VIA1, inner);
            // No METAL1 at all: everything is under-enclosed.
            let id = lib.add_cell(c).expect("add");
            lib.flatten(id).expect("flatten")
        };
        let tiled = TiledLayout::from_flat(flat, tiling(100, 8));
        let rule = Rule::Enclosure { inner: layers::VIA1, outer: layers::METAL1, value: 10 };
        let err = check_rule_tiled(&rule, &tiled).expect_err("must refuse");
        assert_eq!(err.rule, rule.id());
        let shown = err.to_string();
        assert!(shown.contains("cannot certify"), "{shown}");
    }

    #[test]
    fn tiled_facing_pairs_match_flat() {
        let tech = Technology::n65();
        let lib = dfm_layout::generate::routed_block(
            &tech,
            dfm_layout::generate::RoutedBlockParams::default(),
            3,
        );
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let max = tech.rules(layers::METAL2).min_space * 3;
        let region = flat.region(layers::METAL2);
        let flat_int = crate::interior_facing_pairs(&region, max);
        let flat_ext = crate::exterior_facing_pairs(&region, max);
        let extent = dfm_layout::LayoutView::bbox(&flat);
        let side = ((extent.x1 - extent.x0) / 3).max(1) + 11;
        let tiled = TiledLayout::from_flat(flat, tiling(side, max + 2));
        assert_eq!(tiled_facing_pairs(&tiled, layers::METAL2, max, true), flat_int);
        assert_eq!(tiled_facing_pairs(&tiled, layers::METAL2, max, false), flat_ext);
    }
}
