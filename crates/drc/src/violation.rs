//! Violations and DRC reports.

use dfm_geom::Rect;
use std::collections::BTreeMap;
use std::fmt;

/// One located design-rule violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Stable id of the violated rule (see [`crate::Rule::id`]).
    pub rule: String,
    /// Marker rectangle locating the violation.
    pub location: Rect,
    /// The measured value (width, spacing, enclosure margin, area,
    /// density in ppm…). Always a real measurement of the violating
    /// geometry, never a sentinel.
    pub actual: i64,
    /// The rule limit in the same unit.
    pub limit: i64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Density-max violations exceed their limit; everything else
        // falls short of it. Print the applicable direction.
        let relation = if self.actual > self.limit { ">" } else { "<" };
        write!(
            f,
            "{} at {}: {} {relation} {}",
            self.rule, self.location, self.actual, self.limit
        )
    }
}

/// The result of running a rule deck: all violations plus aggregation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DrcReport {
    violations: Vec<Violation>,
}

impl DrcReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        DrcReport::default()
    }

    /// Appends a violation.
    pub fn push(&mut self, v: Violation) {
        self.violations.push(v);
    }

    /// All violations in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total number of violations.
    pub fn violation_count(&self) -> usize {
        self.violations.len()
    }

    /// True if the layout is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of one rule id.
    pub fn by_rule(&self, rule: &str) -> impl Iterator<Item = &Violation> + '_ {
        let rule = rule.to_string();
        self.violations.iter().filter(move |v| v.rule == rule)
    }

    /// Violation counts per rule id, sorted by id.
    pub fn counts(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for v in &self.violations {
            *m.entry(v.rule.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: DrcReport) {
        self.violations.extend(other.violations);
    }

    /// Score metrics for the manufacturability score (`dfm-score`):
    /// the total violation count as `drc.violations` plus one
    /// `drc.rule.<id>` entry per offending rule, in rule-id order.
    /// Clean rules emit no entry (the score spec's `drc.rule.*`
    /// wildcard governs whatever appears).
    pub fn score_metrics(&self) -> Vec<(String, f64)> {
        let mut out =
            vec![("drc.violations".to_string(), self.violation_count() as f64)];
        for (rule, count) in self.counts() {
            out.push((format!("drc.rule.{rule}"), count as f64));
        }
        out
    }
}

impl fmt::Display for DrcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "DRC clean");
        }
        writeln!(f, "DRC: {} violations", self.violation_count())?;
        for (rule, count) in self.counts() {
            writeln!(f, "  {rule:<18} {count}")?;
        }
        Ok(())
    }
}

impl Extend<Violation> for DrcReport {
    fn extend<I: IntoIterator<Item = Violation>>(&mut self, iter: I) {
        self.violations.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &str) -> Violation {
        Violation {
            rule: rule.into(),
            location: Rect::new(0, 0, 1, 1),
            actual: 5,
            limit: 10,
        }
    }

    #[test]
    fn counting_and_grouping() {
        let mut r = DrcReport::new();
        r.push(v("M1.W"));
        r.push(v("M1.W"));
        r.push(v("M1.S"));
        assert_eq!(r.violation_count(), 3);
        assert_eq!(r.counts()["M1.W"], 2);
        assert_eq!(r.by_rule("M1.S").count(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn display_summary() {
        let mut r = DrcReport::new();
        r.push(v("M1.W"));
        let text = r.to_string();
        assert!(text.contains("1 violations"));
        assert!(text.contains("M1.W"));
        assert_eq!(DrcReport::new().to_string().trim(), "DRC clean");
    }

    #[test]
    fn merge_combines() {
        let mut a = DrcReport::new();
        a.push(v("A"));
        let mut b = DrcReport::new();
        b.push(v("B"));
        a.merge(b);
        assert_eq!(a.violation_count(), 2);
    }
}
