//! The DRC rule vocabulary, rule decks, and the deck DSL parser.

use dfm_layout::{layers, Layer, Technology};
use std::error::Error;
use std::fmt;

/// A single design rule.
#[derive(Clone, PartialEq, Debug)]
pub enum Rule {
    /// Every feature on `layer` must be at least `value` wide in both
    /// axes (facing interior edge pairs).
    MinWidth {
        /// Checked layer.
        layer: Layer,
        /// Minimum width in dbu.
        value: i64,
    },
    /// Exterior-facing edge pairs on `layer` must be at least `value`
    /// apart (includes notches and corner-to-corner separation).
    MinSpace {
        /// Checked layer.
        layer: Layer,
        /// Minimum spacing in dbu.
        value: i64,
    },
    /// Geometry on `from` must stay at least `value` away from geometry on
    /// `to` (Chebyshev metric).
    MinSpaceTo {
        /// First layer.
        from: Layer,
        /// Second layer.
        to: Layer,
        /// Minimum separation in dbu.
        value: i64,
    },
    /// `outer` must enclose every `inner` shape by at least `value` on
    /// all sides.
    Enclosure {
        /// Enclosed layer (e.g. a via).
        inner: Layer,
        /// Enclosing layer (e.g. a metal).
        outer: Layer,
        /// Minimum enclosure in dbu.
        value: i64,
    },
    /// Every connected component on `layer` must have at least `value`
    /// area (dbu²).
    MinArea {
        /// Checked layer.
        layer: Layer,
        /// Minimum area in dbu².
        value: i64,
    },
    /// Features wider than `wide_width` (in both axes) must keep
    /// `space` to everything on the layer — the classic width-dependent
    /// ("fat wire") spacing rule.
    WideSpace {
        /// Checked layer.
        layer: Layer,
        /// Width threshold above which a feature counts as wide.
        wide_width: i64,
        /// Required spacing from wide features.
        space: i64,
    },
    /// Density of `layer` in every `window`-sized window (stepped by half
    /// a window) must lie within `[min, max]`.
    Density {
        /// Checked layer.
        layer: Layer,
        /// Window edge length in dbu.
        window: i64,
        /// Minimum density (0–1).
        min: f64,
        /// Maximum density (0–1).
        max: f64,
    },
}

impl Rule {
    /// A short stable identifier used in reports, e.g. `M1.W`, `V1.EN.M1`.
    pub fn id(&self) -> String {
        fn short(l: Layer) -> String {
            l.name()
                .map(|n| n.to_string())
                .unwrap_or_else(|| l.to_string())
        }
        match self {
            Rule::MinWidth { layer, .. } => format!("{}.W", short(*layer)),
            Rule::MinSpace { layer, .. } => format!("{}.S", short(*layer)),
            Rule::MinSpaceTo { from, to, .. } => format!("{}.S.{}", short(*from), short(*to)),
            Rule::Enclosure { inner, outer, .. } => {
                format!("{}.EN.{}", short(*inner), short(*outer))
            }
            Rule::MinArea { layer, .. } => format!("{}.A", short(*layer)),
            Rule::WideSpace { layer, .. } => format!("{}.WS", short(*layer)),
            Rule::Density { layer, .. } => format!("{}.DEN", short(*layer)),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::MinWidth { layer, value } => write!(f, "min_width {layer} {value}"),
            Rule::MinSpace { layer, value } => write!(f, "min_space {layer} {value}"),
            Rule::MinSpaceTo { from, to, value } => write!(f, "space_to {from} {to} {value}"),
            Rule::Enclosure { inner, outer, value } => {
                write!(f, "enclosure {inner} {outer} {value}")
            }
            Rule::MinArea { layer, value } => write!(f, "min_area {layer} {value}"),
            Rule::WideSpace { layer, wide_width, space } => {
                write!(f, "wide_space {layer} {wide_width} {space}")
            }
            Rule::Density { layer, window, min, max } => {
                write!(f, "density {layer} {window} {min} {max}")
            }
        }
    }
}

/// Error from [`RuleDeck::parse`].
#[derive(Clone, Debug, PartialEq)]
pub struct ParseDeckError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseDeckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deck parse error on line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDeckError {}

/// An ordered collection of design rules.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RuleDeck {
    rules: Vec<Rule>,
}

impl RuleDeck {
    /// Creates an empty deck.
    pub fn new() -> Self {
        RuleDeck { rules: Vec::new() }
    }

    /// Adds a rule, returning `self` for chaining.
    pub fn with(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds a rule in place.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// The rules in deck order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the deck has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Builds the standard sign-off deck for a technology: width, space
    /// and area on every ruled layer; via enclosures; and metal density
    /// windows.
    pub fn for_technology(tech: &Technology) -> Self {
        let mut deck = RuleDeck::new();
        for layer in tech.ruled_layers() {
            let r = tech.rules(layer);
            deck.push(Rule::MinWidth { layer, value: r.min_width });
            deck.push(Rule::MinSpace { layer, value: r.min_space });
            deck.push(Rule::MinArea { layer, value: r.min_area });
        }
        for &via in layers::VIAS {
            if let Some((below, above)) = layers::via_connects(via) {
                deck.push(Rule::Enclosure { inner: via, outer: below, value: tech.via_enclosure });
                deck.push(Rule::Enclosure { inner: via, outer: above, value: tech.via_enclosure });
            }
        }
        deck.push(Rule::Enclosure {
            inner: layers::CONTACT,
            outer: layers::METAL1,
            value: tech.via_enclosure,
        });
        for &m in &[layers::METAL1, layers::METAL2] {
            deck.push(Rule::Density {
                layer: m,
                window: tech.density_window,
                min: tech.min_density,
                max: tech.max_density,
            });
        }
        deck
    }

    /// Parses the tiny deck DSL: one rule per line, `#` comments.
    ///
    /// ```text
    /// # metal-1 rules
    /// min_width METAL1 90
    /// min_space METAL1 90
    /// min_area  METAL1 32400
    /// enclosure VIA1 METAL1 36
    /// space_to  POLY ACTIVE 50
    /// density   METAL1 18000 0.20 0.80
    /// ```
    ///
    /// Layer operands accept standard names (`METAL1`) or numeric
    /// `layer/datatype` (`4/0`).
    ///
    /// # Errors
    ///
    /// Returns [`ParseDeckError`] with the offending line number.
    pub fn parse(text: &str) -> Result<Self, ParseDeckError> {
        let mut deck = RuleDeck::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let err = |message: String| ParseDeckError { line: line_no, message };
            let layer_of = |tok: &str| -> Result<Layer, ParseDeckError> {
                parse_layer(tok).ok_or_else(|| err(format!("unknown layer {tok:?}")))
            };
            let int_of = |tok: &str| -> Result<i64, ParseDeckError> {
                tok.parse::<i64>().map_err(|_| err(format!("bad integer {tok:?}")))
            };
            let float_of = |tok: &str| -> Result<f64, ParseDeckError> {
                tok.parse::<f64>().map_err(|_| err(format!("bad number {tok:?}")))
            };
            let need = |n: usize| -> Result<(), ParseDeckError> {
                if tokens.len() == n {
                    Ok(())
                } else {
                    Err(err(format!("expected {} operands, got {}", n - 1, tokens.len() - 1)))
                }
            };
            let rule = match tokens[0] {
                "min_width" => {
                    need(3)?;
                    Rule::MinWidth { layer: layer_of(tokens[1])?, value: int_of(tokens[2])? }
                }
                "min_space" => {
                    need(3)?;
                    Rule::MinSpace { layer: layer_of(tokens[1])?, value: int_of(tokens[2])? }
                }
                "space_to" => {
                    need(4)?;
                    Rule::MinSpaceTo {
                        from: layer_of(tokens[1])?,
                        to: layer_of(tokens[2])?,
                        value: int_of(tokens[3])?,
                    }
                }
                "enclosure" => {
                    need(4)?;
                    Rule::Enclosure {
                        inner: layer_of(tokens[1])?,
                        outer: layer_of(tokens[2])?,
                        value: int_of(tokens[3])?,
                    }
                }
                "min_area" => {
                    need(3)?;
                    Rule::MinArea { layer: layer_of(tokens[1])?, value: int_of(tokens[2])? }
                }
                "wide_space" => {
                    need(4)?;
                    Rule::WideSpace {
                        layer: layer_of(tokens[1])?,
                        wide_width: int_of(tokens[2])?,
                        space: int_of(tokens[3])?,
                    }
                }
                "density" => {
                    need(5)?;
                    Rule::Density {
                        layer: layer_of(tokens[1])?,
                        window: int_of(tokens[2])?,
                        min: float_of(tokens[3])?,
                        max: float_of(tokens[4])?,
                    }
                }
                other => return Err(err(format!("unknown rule keyword {other:?}"))),
            };
            deck.push(rule);
        }
        Ok(deck)
    }
}

fn parse_layer(tok: &str) -> Option<Layer> {
    if let Some((l, n)) = layers::ALL.iter().find(|(_, n)| *n == tok) {
        let _ = n;
        return Some(*l);
    }
    let (l, d) = tok.split_once('/')?;
    Some(Layer::new(l.parse().ok()?, d.parse().ok()?))
}

impl FromIterator<Rule> for RuleDeck {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        RuleDeck { rules: iter.into_iter().collect() }
    }
}

impl Extend<Rule> for RuleDeck {
    fn extend<I: IntoIterator<Item = Rule>>(&mut self, iter: I) {
        self.rules.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = "\
# comment line
min_width METAL1 90
min_space METAL1 90   # trailing comment
space_to POLY ACTIVE 50
enclosure VIA1 METAL1 36
min_area METAL1 32400
wide_space METAL1 270 135
density METAL1 18000 0.20 0.80
min_width 42/7 120
";
        let deck = RuleDeck::parse(text).expect("parses");
        assert_eq!(deck.len(), 8);
        assert_eq!(
            deck.rules()[0],
            Rule::MinWidth { layer: layers::METAL1, value: 90 }
        );
        assert_eq!(
            deck.rules()[5],
            Rule::WideSpace { layer: layers::METAL1, wide_width: 270, space: 135 }
        );
        assert_eq!(
            deck.rules()[7],
            Rule::MinWidth { layer: Layer::new(42, 7), value: 120 }
        );
        // Re-parse the Display form.
        let text2: String = deck
            .rules()
            .iter()
            .map(|r| {
                // Display uses numeric layers; ensure that re-parses too.
                format!("{r}\n")
            })
            .collect();
        let deck2 = RuleDeck::parse(&text2).expect("display form parses");
        assert_eq!(deck2.len(), deck.len());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = RuleDeck::parse("min_width METAL1 90\nbogus FOO 1\n").expect_err("must fail");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));

        let err = RuleDeck::parse("min_width NOTALAYER 90\n").expect_err("must fail");
        assert!(err.message.contains("NOTALAYER"));

        let err = RuleDeck::parse("min_width METAL1 ninety\n").expect_err("must fail");
        assert!(err.message.contains("ninety"));

        let err = RuleDeck::parse("min_width METAL1\n").expect_err("must fail");
        assert!(err.message.contains("operands"));
    }

    #[test]
    fn technology_deck_covers_all_layers() {
        let tech = Technology::n65();
        let deck = RuleDeck::for_technology(&tech);
        // width+space+area per ruled layer, plus enclosures and densities.
        let ruled = tech.ruled_layers().count();
        assert!(deck.len() >= ruled * 3 + 4);
        assert!(deck
            .rules()
            .iter()
            .any(|r| matches!(r, Rule::Density { layer, .. } if *layer == layers::METAL1)));
    }

    #[test]
    fn rule_ids_are_stable() {
        assert_eq!(
            Rule::MinWidth { layer: layers::METAL1, value: 1 }.id(),
            "METAL1.W"
        );
        assert_eq!(
            Rule::Enclosure { inner: layers::VIA1, outer: layers::METAL2, value: 1 }.id(),
            "VIA1.EN.METAL2"
        );
    }
}
