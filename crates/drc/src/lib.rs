//! # dfm-drc — design-rule checking for the `dfm-practice` workspace
//!
//! An edge- and morphology-based DRC engine over the flattened layouts of
//! [`dfm_layout`]:
//!
//! * [`Rule`] — the rule vocabulary: minimum width, spacing (same-layer,
//!   including notches and corner-to-corner), inter-layer spacing,
//!   enclosure, minimum area, and windowed density,
//! * [`RuleDeck`] — an ordered rule collection, buildable programmatically,
//!   from a [`Technology`](dfm_layout::Technology) preset, or parsed from
//!   the tiny deck DSL ([`RuleDeck::parse`]),
//! * [`DrcEngine`] — runs a deck against a [`FlatLayout`](dfm_layout::FlatLayout)
//!   producing a [`DrcReport`] of located [`Violation`]s,
//! * [`recommended`] — *recommended* (soft) rules with compliance scoring,
//!   the substrate for experiment E10 (do recommended rules correlate
//!   with yield?).
//!
//! Width and same-layer spacing use the classic facing-edge-pair
//! formulation on extracted boundary edges; enclosure and inter-layer
//! spacing use exact morphological set algebra; area uses connected
//! components; density uses stepped windows.
//!
//! ```
//! use dfm_drc::{DrcEngine, RuleDeck};
//! use dfm_layout::{layers, Technology, Cell, Library};
//! use dfm_geom::Rect;
//!
//! let tech = Technology::n65();
//! let mut lib = Library::new("t");
//! let mut c = Cell::new("TOP");
//! c.add_rect(layers::METAL1, Rect::new(0, 0, 50, 50)); // 50 < min width 90
//! let id = lib.add_cell(c)?;
//! let flat = lib.flatten(id)?;
//! let deck = RuleDeck::for_technology(&tech);
//! let report = DrcEngine::new(&deck).run(&flat);
//! assert!(report.violation_count() > 0);
//! # Ok::<(), dfm_layout::LayoutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod recommended;
mod rule;
pub mod tiled;
mod violation;

pub use check::{
    check_rule, density_map, density_ppm, density_windows, enclosure_violations, exterior_facing_pairs,
    interior_facing_pairs, min_space_to_violations, spacing_violations, wide_space_violations,
    width_violations, DrcEngine, FacingPair, PairFragment,
};
pub use rule::{ParseDeckError, Rule, RuleDeck};
pub use tiled::{
    check_rule_tiled, facing_pair_partial, merge_facing_pair_partials, merge_rule_partials,
    rule_tile_halo, rule_tile_partial, tiled_facing_pairs, AreaPiece, RulePartial, TileStats, TiledDrcEngine,
    TiledDrcError, TiledDrcRun,
};
pub use violation::{DrcReport, Violation};
