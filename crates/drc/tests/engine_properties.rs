//! Property-based tests for the DRC engine: detection must agree with
//! construction (dfm-check harness).
//!
//! The seed corpus in `engine_properties.seeds` is replayed before any
//! random cases — it carries the regression cases inherited from the
//! old proptest suite.

use dfm_check::{check, prop_assert, prop_assert_eq, Config};
use dfm_drc::{exterior_facing_pairs, spacing_violations, width_violations};
use dfm_geom::{Rect, Region};

fn cfg() -> Config {
    Config::with_cases(64)
        .corpus(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/engine_properties.seeds"))
}

/// A lone rectangle's width violations fire exactly when either side
/// is below the rule.
#[test]
fn width_detection_matches_construction() {
    check(
        "width_detection_matches_construction",
        &cfg(),
        &(10i64..400, 10i64..400, 10i64..400),
        |v| {
            let (w, h, rule) = (v.0, v.1, v.2);
            let region = Region::from_rect(Rect::new(0, 0, w, h));
            let viols = width_violations(&region, rule);
            let expect = w < rule || h < rule;
            prop_assert_eq!(!viols.is_empty(), expect, "w={} h={} rule={}", w, h, rule);
            // Measured value equals the true dimension.
            if expect {
                let min_dim = w.min(h);
                prop_assert!(viols.iter().any(|&(_, v)| v == min_dim));
            }
            Ok(())
        },
    );
}

/// Two parallel bars' spacing violations fire exactly when the gap is
/// below the rule.
#[test]
fn spacing_detection_matches_construction() {
    check(
        "spacing_detection_matches_construction",
        &cfg(),
        &(1i64..400, 1i64..400, 100i64..3000),
        |v| {
            let (gap, rule, len) = (v.0, v.1, v.2);
            let region = Region::from_rects([
                Rect::new(0, 0, len, 100),
                Rect::new(0, 100 + gap, len, 200 + gap),
            ]);
            let viols = spacing_violations(&region, rule);
            prop_assert_eq!(!viols.is_empty(), gap < rule, "gap={} rule={}", gap, rule);
            if gap < rule {
                prop_assert!(viols.iter().all(|&(_, v)| v == gap));
            }
            Ok(())
        },
    );
}

/// Facing-pair extraction reports every parallel-bar gap below the
/// range, with its exact length.
#[test]
fn facing_pairs_exact() {
    check(
        "facing_pairs_exact",
        &cfg(),
        &dfm_check::vec(20i64..300, 1..6),
        |gaps| {
            let mut rects = Vec::new();
            let mut y = 0i64;
            for &g in gaps {
                rects.push(Rect::new(0, y, 2000, y + 100));
                y += 100 + g;
            }
            rects.push(Rect::new(0, y, 2000, y + 100));
            let region = Region::from_rects(rects);
            let pairs = exterior_facing_pairs(&region, 400);
            // Every adjacent gap is reported with full overlap length. (The
            // midpoint heuristic may additionally report a "through" pair
            // when the midpoint between non-adjacent bars lands on empty
            // space — a documented over-count the critical-area union bound
            // absorbs.)
            let seen: Vec<i64> = pairs.iter().map(|p| p.distance).collect();
            for &g in gaps {
                prop_assert!(seen.contains(&g), "gap {} missing from {:?}", g, seen);
            }
            let n = gaps.len() + 1;
            prop_assert!(pairs.len() <= n * (n - 1) / 2);
            prop_assert!(pairs.iter().all(|p| p.length == 2000));
            Ok(())
        },
    );
}

/// Violation positions always lie within the layout bounding box
/// (nothing is reported out of thin air).
#[test]
fn violations_are_localised() {
    check(
        "violations_are_localised",
        &cfg(),
        &dfm_check::vec((0i64..20, 0i64..20, 1i64..8, 1i64..8), 1..10),
        |specs| {
            let rects: Vec<Rect> = specs
                .iter()
                .map(|&(x, y, w, h)| Rect::new(x * 50, y * 50, x * 50 + w * 25, y * 50 + h * 25))
                .collect();
            let region = Region::from_rects(rects);
            let bbox = region.bbox();
            for (loc, _) in spacing_violations(&region, 60) {
                prop_assert!(bbox.expanded(60).contains_rect(&loc), "{:?} outside {:?}", loc, bbox);
            }
            for (loc, _) in width_violations(&region, 60) {
                prop_assert!(bbox.contains_rect(&loc));
            }
            Ok(())
        },
    );
}
