//! Property tests: the tiled DRC engine is bit-identical to the flat
//! engine on random layouts, at random tile sizes (divisor and
//! non-divisor alike), random halos, and any thread count — plus the
//! pinned seam regressions the tiling design calls out.

use dfm_check::{check, prop_assert_eq, Config};
use dfm_drc::{
    check_rule_tiled, tiled_facing_pairs, DrcEngine, Rule, RuleDeck, TiledDrcEngine,
};
use dfm_geom::{Rect, Region};
use dfm_layout::{layers, FlatLayout, TiledLayout, TilingConfig};

fn cfg() -> Config {
    Config::with_cases(48)
        .corpus(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/tiled_equivalence.seeds"))
}

/// Rect soup on a coarse lattice: adjacent and overlapping shapes merge
/// into multi-rect components, so seams cut through real geometry.
fn soup(specs: &[(i64, i64, i64, i64)]) -> Region {
    Region::from_rects(specs.iter().map(|&(x, y, w, h)| {
        Rect::new(x * 60, y * 60, x * 60 + 40 + w * 55, y * 60 + 40 + h * 55)
    }))
}

fn flat_of(region: &Region) -> FlatLayout {
    let mut flat = FlatLayout::default();
    flat.set_region(layers::METAL1, region.clone());
    flat
}

fn shard(flat: &FlatLayout, tile: i64, halo: i64) -> TiledLayout {
    let cfg = TilingConfig::builder()
        .tile(tile)
        .halo(halo)
        .build()
        .expect("valid tiling");
    TiledLayout::from_flat(flat.clone(), cfg)
}

/// Full deck of every decomposable rule kind over random soups: the
/// merged tiled report equals the flat report exactly, for divisor and
/// non-divisor tile sizes and random extra halo.
#[test]
fn tiled_report_matches_flat_on_random_soups() {
    let deck = RuleDeck::new()
        .with(Rule::MinWidth { layer: layers::METAL1, value: 90 })
        .with(Rule::MinSpace { layer: layers::METAL1, value: 100 })
        .with(Rule::MinArea { layer: layers::METAL1, value: 30_000 })
        .with(Rule::Density {
            layer: layers::METAL1,
            window: 400,
            min: 0.15,
            max: 0.80,
        });
    check(
        "tiled_report_matches_flat_on_random_soups",
        &cfg(),
        &(
            dfm_check::vec((0i64..14, 0i64..14, 0i64..5, 0i64..5), 2..18),
            70i64..900,
            0i64..120,
        ),
        |case| {
            let (specs, tile, halo) = (&case.0, case.1, case.2);
            let region = soup(specs);
            let flat = flat_of(&region);
            let reference = DrcEngine::new(&deck).run(&flat);
            for t in [tile, tile + 13] {
                let tiled = shard(&flat, t, halo);
                let run = TiledDrcEngine::new(&deck)
                    .run(&tiled)
                    .expect("decomposable rules always certify");
                prop_assert_eq!(
                    &run.report,
                    &reference,
                    "tile {} halo {} diverged ({} tiles)",
                    t,
                    halo,
                    tiled.tile_count()
                );
                prop_assert_eq!(run.stats.tiles, tiled.tile_count());
            }
            Ok(())
        },
    );
}

/// Facing-pair extraction (the critical-area substrate) merges to the
/// flat pair lists exactly — same pairs, same canonical order — for
/// both exterior (short) and interior (open) pairs.
#[test]
fn tiled_facing_pairs_match_flat_on_random_soups() {
    check(
        "tiled_facing_pairs_match_flat_on_random_soups",
        &cfg(),
        &(
            dfm_check::vec((0i64..14, 0i64..14, 0i64..5, 0i64..5), 2..16),
            80i64..700,
        ),
        |case| {
            let (specs, tile) = (&case.0, case.1);
            let region = soup(specs);
            let flat = flat_of(&region);
            let max_range = 450;
            for interior in [false, true] {
                let reference = if interior {
                    dfm_drc::interior_facing_pairs(&region, max_range)
                } else {
                    dfm_drc::exterior_facing_pairs(&region, max_range)
                };
                for t in [tile, tile + 29] {
                    let tiled = shard(&flat, t, 0);
                    let pairs =
                        tiled_facing_pairs(&tiled, layers::METAL1, max_range, interior);
                    prop_assert_eq!(
                        &pairs,
                        &reference,
                        "interior={} tile {}",
                        interior,
                        t
                    );
                }
            }
            Ok(())
        },
    );
}

/// Tile-accumulated total area equals the flat accounting for any tile
/// size, including sizes that do not divide the extent.
#[test]
fn tiled_total_area_matches_flat() {
    check(
        "tiled_total_area_matches_flat",
        &cfg(),
        &(
            dfm_check::vec((0i64..14, 0i64..14, 0i64..5, 0i64..5), 1..16),
            40i64..900,
        ),
        |case| {
            let (specs, tile) = (&case.0, case.1);
            let region = soup(specs);
            let flat = flat_of(&region);
            let tiled = shard(&flat, tile, 64);
            prop_assert_eq!(tiled.total_area(), flat.total_area(), "tile {}", tile);
            Ok(())
        },
    );
}

/// Pinned seam regression: one violating component straddling exactly
/// four tiles. The plus-shape is centred on the 2×2 grid's four-corner
/// point, every arm crosses into a different tile, and its area is
/// below the limit — the merged report must carry it exactly once,
/// with the flat bbox and area.
#[test]
fn four_tile_straddle_dedups_to_one_violation() {
    // Extent [0,400)²; tile 200 → cores meet at (200, 200).
    let plus = Region::from_rects([
        Rect::new(180, 120, 220, 280),
        Rect::new(120, 180, 280, 220),
    ]);
    let anchor = Region::from_rects([
        Rect::new(0, 0, 30, 30),
        Rect::new(370, 370, 400, 400),
    ]);
    let region = plus.union(&anchor);
    let flat = flat_of(&region);
    let rule = Rule::MinArea { layer: layers::METAL1, value: 50_000 };
    let reference = dfm_drc::check_rule(&rule, &flat);
    assert_eq!(reference.len(), 3, "plus and both anchors violate");
    for tile in [200, 137] {
        let tiled = shard(&flat, tile, 0);
        let (violations, _) = check_rule_tiled(&rule, &tiled).expect("min-area certifies");
        assert_eq!(violations, reference, "tile {tile}");
    }
    // The same straddle for corner-to-corner spacing: a gap box whose
    // diagonal crosses the four-corner point.
    let corners = Region::from_rects([
        Rect::new(100, 100, 195, 195),
        Rect::new(205, 205, 300, 300),
    ]);
    let flat = flat_of(&corners);
    let rule = Rule::MinSpace { layer: layers::METAL1, value: 40 };
    let reference = dfm_drc::check_rule(&rule, &flat);
    assert!(!reference.is_empty(), "diagonal gap 10 must violate");
    for tile in [200, 151] {
        let tiled = shard(&flat, tile, 0);
        let (violations, _) = check_rule_tiled(&rule, &tiled).expect("spacing certifies");
        assert_eq!(violations, reference, "tile {tile}");
    }
}

/// Thread-count sweep over one random deck run: the report is a pure
/// function of the layout, not of the scheduling.
#[test]
fn tiled_report_is_thread_invariant() {
    let specs: Vec<(i64, i64, i64, i64)> = (0..12)
        .map(|i| (i % 5, (i * 7) % 11, i % 4, (i + 2) % 4))
        .collect();
    let region = soup(&specs);
    let flat = flat_of(&region);
    let deck = RuleDeck::new()
        .with(Rule::MinWidth { layer: layers::METAL1, value: 95 })
        .with(Rule::MinSpace { layer: layers::METAL1, value: 110 })
        .with(Rule::MinArea { layer: layers::METAL1, value: 25_000 });
    let tiled = shard(&flat, 310, 16);
    let reference = dfm_par::with_threads(1, || {
        TiledDrcEngine::new(&deck).run(&tiled).expect("certified").report
    });
    for threads in [2, 4, 8] {
        let run = dfm_par::with_threads(threads, || {
            TiledDrcEngine::new(&deck).run(&tiled).expect("certified")
        });
        assert_eq!(run.report, reference, "threads {threads}");
    }
    assert_eq!(reference, DrcEngine::new(&deck).run(&flat));
}
