//! # dfm-fault — deterministic fault injection
//!
//! Robustness code paths (retry, quarantine, checkpoint fallback,
//! connection teardown) are exactly the paths ordinary tests never
//! exercise. This crate makes failure a first-class, *deterministic*
//! input: a [`FaultPlan`] names injection **sites** (free-form strings
//! like `signoff.tile.compute`) and attaches triggers to them, and a
//! [`FaultPlane`] answers, at each site visit, whether a fault fires
//! and which [`FaultAction`] it is.
//!
//! ## Determinism contract
//!
//! A decision is a **pure function** of
//! `(plan seed, rule, site, key, attempt)`:
//!
//! * `key` scopes the site to a work unit (a tile index, a connection
//!   id) and `attempt` counts the caller's retries of that unit, so
//!   the decision never depends on global call order;
//! * probability triggers hash the whole tuple through
//!   [`dfm_rand`]'s SplitMix64 derivation — no shared counters, no
//!   stream state, no locks on the decision path.
//!
//! Two schedulers visiting the same `(site, key, attempt)` tuples get
//! the same faults, whatever their thread count or interleaving —
//! which is what lets the signoff service promise identical event
//! streams, quarantine sets, and report bytes at 1, 2, or 8 workers
//! under a fixed plan.
//!
//! With no plan (or an empty one) every probe is a cheap no-op; the
//! hooks threaded through `dfm-par` and `dfm-signoff` default to
//! exactly that.
//!
//! ```
//! use dfm_fault::{FaultAction, FaultPlan, FaultPlane};
//!
//! let plan = FaultPlan::parse(
//!     "seed 7\n\
//!      rule signoff.tile.compute panic key=3 attempt<2\n\
//!      rule signoff.ckpt.write error p=0.5\n",
//! )
//! .unwrap();
//! let plane = FaultPlane::new(plan);
//! // Tile 3's first two attempts panic; every other tile is clean.
//! assert!(matches!(
//!     plane.decide("signoff.tile.compute", 3, 0, |_| true),
//!     Some(FaultAction::Panic)
//! ));
//! assert!(plane.decide("signoff.tile.compute", 4, 0, |_| true).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dfm_rand::{Rng, Seed};
use std::collections::HashMap;
use std::sync::Mutex;

/// What an injected fault does at its site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// The site panics (the caller's containment path must survive it).
    Panic,
    /// The site reports an I/O-style error.
    Error,
    /// The site is delayed by this many **virtual** milliseconds.
    /// Virtual time is bookkeeping, not wall time: supervisors compare
    /// it against virtual watchdog budgets, so timeout behaviour is
    /// reproducible and tests never sleep.
    Delay {
        /// Injected virtual delay, ms.
        vms: u64,
    },
    /// The site drops its connection mid-frame.
    Drop,
    /// The process "dies" at this durable-state transition: effects
    /// already on disk stay, everything after the site is skipped, and
    /// the enclosing operation reports failure. Only meaningful at
    /// sites listed in [`crash::SITES`]; the `dfm-sim` harness arms
    /// one of these per registered site and then restarts the stack
    /// over the surviving durable state.
    Crash,
    /// The site behaves as if the disk were full (ENOSPC): the write
    /// is refused *without* retry, and the caller must degrade (skip
    /// the cache store, mark the checkpoint degraded) rather than fail
    /// the job.
    ErrNoSpace,
}

impl FaultAction {
    /// Stable lower-case tag
    /// (`panic`/`error`/`delay`/`drop`/`crash`/`err_nospace`).
    pub fn tag(&self) -> &'static str {
        match self {
            FaultAction::Panic => "panic",
            FaultAction::Error => "error",
            FaultAction::Delay { .. } => "delay",
            FaultAction::Drop => "drop",
            FaultAction::Crash => "crash",
            FaultAction::ErrNoSpace => "err_nospace",
        }
    }
}

/// Which attempts of a `(site, key)` pair a rule covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AttemptFilter {
    /// Every attempt.
    #[default]
    Any,
    /// Attempts `0..n` (the first `n` tries).
    Below(u64),
    /// Exactly attempt `n`.
    Exactly(u64),
}

impl AttemptFilter {
    fn matches(self, attempt: u64) -> bool {
        match self {
            AttemptFilter::Any => true,
            AttemptFilter::Below(n) => attempt < n,
            AttemptFilter::Exactly(n) => attempt == n,
        }
    }
}

/// One trigger: *at this site, for these keys/attempts, with this
/// probability, inject this action.*
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// Exact site name the rule arms.
    pub site: String,
    /// Restrict to one key (`None` = every key).
    pub key: Option<u64>,
    /// Restrict to an attempt window.
    pub attempt: AttemptFilter,
    /// Firing probability in `[0, 1]`; `1.0` fires on every match.
    /// Decided by hashing `(seed, rule, site, key, attempt)` — never
    /// by a stateful stream.
    pub prob: f64,
    /// The injected action.
    pub action: FaultAction,
}

impl FaultRule {
    /// An always-firing rule for `site` with `action`.
    pub fn new(site: impl Into<String>, action: FaultAction) -> FaultRule {
        FaultRule { site: site.into(), key: None, attempt: AttemptFilter::Any, prob: 1.0, action }
    }

    /// Restricts the rule to one key.
    #[must_use]
    pub fn key(mut self, key: u64) -> FaultRule {
        self.key = Some(key);
        self
    }

    /// Restricts the rule to attempts `0..n`.
    #[must_use]
    pub fn first_attempts(mut self, n: u64) -> FaultRule {
        self.attempt = AttemptFilter::Below(n);
        self
    }

    /// Restricts the rule to exactly attempt `n`.
    #[must_use]
    pub fn attempt_exactly(mut self, n: u64) -> FaultRule {
        self.attempt = AttemptFilter::Exactly(n);
        self
    }

    /// Sets the firing probability.
    #[must_use]
    pub fn prob(mut self, p: f64) -> FaultRule {
        self.prob = p;
        self
    }
}

/// A named, seeded set of [`FaultRule`]s — the whole injection
/// configuration of one run, round-trippable through a line-based text
/// format ([`FaultPlan::parse`] / [`FaultPlan::render`]) so CI scripts
/// and the CLI can carry plans in files.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for probabilistic triggers.
    pub seed: u64,
    /// Rules, tried in order; the first matching rule that fires wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// The empty plan: no rule ever fires.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with a seed and no rules yet.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { seed, rules: Vec::new() }
    }

    /// Adds a rule.
    #[must_use]
    pub fn with_rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// True when no rule can ever fire.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The pure decision: does a fault fire at `(site, key, attempt)`,
    /// considering only rules whose action satisfies `accepts`? Equal
    /// inputs give equal answers on every thread, in every process.
    pub fn decide(
        &self,
        site: &str,
        key: u64,
        attempt: u64,
        accepts: impl Fn(&FaultAction) -> bool,
    ) -> Option<FaultAction> {
        for (idx, rule) in self.rules.iter().enumerate() {
            if rule.site != site
                || !accepts(&rule.action)
                || rule.key.is_some_and(|k| k != key)
                || !rule.attempt.matches(attempt)
            {
                continue;
            }
            if rule.prob >= 1.0 || decision_unit(self.seed, idx as u64, site, key, attempt) < rule.prob
            {
                return Some(rule.action);
            }
        }
        None
    }

    /// Parses the text form. Lines: `seed N`, `rule SITE ACTION
    /// [key=K] [attempt<N|attempt=N] [p=F]` where `ACTION` is `panic`,
    /// `error`, `drop`, `crash`, `err_nospace`, or `delay=VMS`. Blank
    /// lines and `#` comments are skipped.
    ///
    /// # Errors
    ///
    /// A diagnostic naming the offending line.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let bad = |what: &str| format!("fault plan line {}: {what}: '{raw}'", n + 1);
            match tokens.next() {
                Some("seed") => {
                    let v = tokens.next().ok_or_else(|| bad("seed needs a value"))?;
                    plan.seed = v.parse().map_err(|_| bad("bad seed"))?;
                    if tokens.next().is_some() {
                        return Err(bad("trailing tokens after seed"));
                    }
                }
                Some("rule") => {
                    let site = tokens.next().ok_or_else(|| bad("rule needs a site"))?;
                    let action = tokens.next().ok_or_else(|| bad("rule needs an action"))?;
                    let action = match action.split_once('=') {
                        None => match action {
                            "panic" => FaultAction::Panic,
                            "error" => FaultAction::Error,
                            "drop" => FaultAction::Drop,
                            "crash" => FaultAction::Crash,
                            "err_nospace" => FaultAction::ErrNoSpace,
                            _ => return Err(bad("unknown action")),
                        },
                        Some(("delay", vms)) => FaultAction::Delay {
                            vms: vms.parse().map_err(|_| bad("bad delay value"))?,
                        },
                        Some(_) => return Err(bad("unknown action")),
                    };
                    let mut rule = FaultRule::new(site, action);
                    for tok in tokens {
                        if let Some(v) = tok.strip_prefix("key=") {
                            rule.key = Some(v.parse().map_err(|_| bad("bad key"))?);
                        } else if let Some(v) = tok.strip_prefix("attempt<") {
                            rule.attempt =
                                AttemptFilter::Below(v.parse().map_err(|_| bad("bad attempt"))?);
                        } else if let Some(v) = tok.strip_prefix("attempt=") {
                            rule.attempt =
                                AttemptFilter::Exactly(v.parse().map_err(|_| bad("bad attempt"))?);
                        } else if let Some(v) = tok.strip_prefix("p=") {
                            let p: f64 = v.parse().map_err(|_| bad("bad probability"))?;
                            if !(0.0..=1.0).contains(&p) {
                                return Err(bad("probability outside [0,1]"));
                            }
                            rule.prob = p;
                        } else {
                            return Err(bad("unknown rule token"));
                        }
                    }
                    plan.rules.push(rule);
                }
                _ => return Err(bad("expected 'seed' or 'rule'")),
            }
        }
        Ok(plan)
    }

    /// Renders the plan back to the [`FaultPlan::parse`] text form.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "seed {}", self.seed);
        for r in &self.rules {
            let _ = write!(out, "rule {} ", r.site);
            match r.action {
                FaultAction::Delay { vms } => {
                    let _ = write!(out, "delay={vms}");
                }
                a => {
                    let _ = write!(out, "{}", a.tag());
                }
            }
            if let Some(k) = r.key {
                let _ = write!(out, " key={k}");
            }
            match r.attempt {
                AttemptFilter::Any => {}
                AttemptFilter::Below(n) => {
                    let _ = write!(out, " attempt<{n}");
                }
                AttemptFilter::Exactly(n) => {
                    let _ = write!(out, " attempt={n}");
                }
            }
            if r.prob < 1.0 {
                let _ = write!(out, " p={}", r.prob);
            }
            out.push('\n');
        }
        out
    }
}

/// Uniform in `[0, 1)` from the decision tuple — the probabilistic
/// trigger's only source of randomness.
fn decision_unit(seed: u64, rule_idx: u64, site: &str, key: u64, attempt: u64) -> f64 {
    let site_hash = fnv1a_64(site.as_bytes());
    let derived = Seed(seed).derive(rule_idx).derive(site_hash).derive(key).derive(attempt);
    Rng::from_seed(derived).f64()
}

/// FNV-1a 64 (local copy; this crate stays leaf-level on purpose).
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One injected fault, as recorded in the [`FaultPlane`] log.
#[derive(Clone, Debug, PartialEq)]
pub struct InjectedFault {
    /// Site name.
    pub site: String,
    /// Work-unit key.
    pub key: u64,
    /// Caller attempt number.
    pub attempt: u64,
    /// The action that fired.
    pub action: FaultAction,
}

/// The shared runtime face of a [`FaultPlan`]: thread-safe decision
/// probes, per-`(site, key)` occurrence counters for sites whose
/// callers do not track attempts themselves, and a log of everything
/// injected (for tests; decisions never read it).
#[derive(Debug, Default)]
pub struct FaultPlane {
    plan: FaultPlan,
    occurrences: Mutex<HashMap<(String, u64), u64>>,
    log: Mutex<Vec<InjectedFault>>,
}

impl FaultPlane {
    /// Wraps a plan.
    pub fn new(plan: FaultPlan) -> FaultPlane {
        FaultPlane { plan, ..FaultPlane::default() }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when no rule can ever fire (every probe is a no-op).
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Decides and logs. See [`FaultPlan::decide`].
    pub fn decide(
        &self,
        site: &str,
        key: u64,
        attempt: u64,
        accepts: impl Fn(&FaultAction) -> bool,
    ) -> Option<FaultAction> {
        if self.plan.is_empty() {
            return None;
        }
        let action = self.plan.decide(site, key, attempt, accepts)?;
        self.log.lock().expect("fault log lock").push(InjectedFault {
            site: site.to_string(),
            key,
            attempt,
            action,
        });
        Some(action)
    }

    /// Panics with a deterministic message when a `panic` rule fires
    /// here. Call inside the containment (`catch_unwind`) boundary the
    /// site claims to have.
    pub fn maybe_panic(&self, site: &str, key: u64, attempt: u64) {
        if self.decide(site, key, attempt, |a| matches!(a, FaultAction::Panic)).is_some() {
            panic!("injected panic at {site} (key {key}, attempt {attempt})");
        }
    }

    /// Returns a deterministic `Err` when an `error` rule fires here.
    ///
    /// # Errors
    ///
    /// The injected I/O-style diagnostic.
    pub fn maybe_error(&self, site: &str, key: u64, attempt: u64) -> Result<(), String> {
        match self.decide(site, key, attempt, |a| matches!(a, FaultAction::Error)) {
            Some(_) => Err(format!("injected I/O error at {site} (key {key}, attempt {attempt})")),
            None => Ok(()),
        }
    }

    /// The injected virtual delay at this site visit, if a `delay`
    /// rule fires.
    pub fn delay_vms(&self, site: &str, key: u64, attempt: u64) -> Option<u64> {
        match self.decide(site, key, attempt, |a| matches!(a, FaultAction::Delay { .. }))? {
            FaultAction::Delay { vms } => Some(vms),
            _ => None,
        }
    }

    /// True when a `drop` rule fires at this site visit.
    pub fn should_drop(&self, site: &str, key: u64, attempt: u64) -> bool {
        self.decide(site, key, attempt, |a| matches!(a, FaultAction::Drop)).is_some()
    }

    /// True when a `crash` rule fires at this site visit: the caller
    /// must abandon the enclosing operation exactly as if the process
    /// had died at this durable instant — keep every effect already
    /// made durable, skip everything after the probe, and report the
    /// operation as failed.
    pub fn crash_point(&self, site: &str, key: u64, attempt: u64) -> bool {
        self.decide(site, key, attempt, |a| matches!(a, FaultAction::Crash)).is_some()
    }

    /// True when an `err_nospace` rule fires at this site visit: the
    /// caller must treat the write as refused by a full disk — degrade
    /// immediately (no retries) without failing the job or touching
    /// existing entries.
    pub fn maybe_nospace(&self, site: &str, key: u64, attempt: u64) -> bool {
        self.decide(site, key, attempt, |a| matches!(a, FaultAction::ErrNoSpace)).is_some()
    }

    /// Returns this visit's 0-based occurrence number for `(site,
    /// key)` and advances the counter — the `attempt` substitute for
    /// sites without caller-side attempt tracking (e.g. "nth frame on
    /// this connection"). Stateful, so only deterministic when the
    /// caller visits a given `(site, key)` from one thread.
    pub fn next_occurrence(&self, site: &str, key: u64) -> u64 {
        let mut map = self.occurrences.lock().expect("fault counter lock");
        let n = map.entry((site.to_string(), key)).or_insert(0);
        let now = *n;
        *n += 1;
        now
    }

    /// Everything injected so far (test observability; order follows
    /// execution and is **not** part of the determinism contract —
    /// compare as a set).
    pub fn injected(&self) -> Vec<InjectedFault> {
        self.log.lock().expect("fault log lock").clone()
    }
}

pub mod crash {
    //! # Registered crash sites
    //!
    //! Every durable-state transition in the stack is a **crash
    //! site**: a named point where the process may die leaving a
    //! characteristic partial state on disk. This registry is the
    //! authoritative catalog — the `dfm-sim` harness enumerates it,
    //! arms the listed action at each site in turn, restarts the stack
    //! over the surviving durable state, and asserts the recovery
    //! invariant (byte-identical reports and the pinned golden
    //! digest). DESIGN.md renders the same table for humans.
    //!
    //! Adding a durable transition to the system means adding its site
    //! here; the sim has a test pinning one scenario per entry, so a
    //! forgotten entry fails CI.

    /// One registered crash site: where the process can die, what is
    /// durable at that instant, and what recovery must guarantee.
    #[derive(Clone, Copy, Debug)]
    pub struct CrashSite {
        /// Site key, as used in [`crate::FaultRule::site`].
        pub site: &'static str,
        /// Plan action the sim arms at this site (`crash`, `panic`,
        /// `error`, `drop`, or `err_nospace` — whichever models death
        /// at this transition).
        pub action: &'static str,
        /// Durable state at the instant of death.
        pub durable: &'static str,
        /// What recovery must guarantee.
        pub invariant: &'static str,
    }

    /// The full crash-site catalog.
    pub const SITES: &[CrashSite] = &[
        CrashSite {
            site: "signoff.ckpt.submit.spec",
            action: "crash",
            durable: "job dir + spec.json written; layout.gds absent",
            invariant: "unloadable submission is skipped on restart; resubmission reuses the dir",
        },
        CrashSite {
            site: "signoff.ckpt.submit.gds",
            action: "crash",
            durable: "full submission on disk; ack never reached the client",
            invariant: "restart loads the job Partial; resume completes it byte-identically",
        },
        CrashSite {
            site: "signoff.ckpt.tile.tmp",
            action: "crash",
            durable: "orphan tile-N.tmp; no tile-N.bin",
            invariant: "tmp swept on open; tile recomputed; bytes identical",
        },
        CrashSite {
            site: "signoff.ckpt.tile.rename",
            action: "crash",
            durable: "tile-N.bin durable though the writer reported failure",
            invariant: "restart loads the tile; recompute skipped; bytes identical (idempotent replay)",
        },
        CrashSite {
            site: "signoff.cache.store.tmp",
            action: "crash",
            durable: "orphan entry tmp in the cache dir; no entry",
            invariant: "tmp swept at cache open; later lookup misses and recomputes",
        },
        CrashSite {
            site: "signoff.cache.store.rename",
            action: "crash",
            durable: "cache entry durable though the store reported failure",
            invariant: "later lookup hits; bytes identical by content address",
        },
        CrashSite {
            site: "signoff.ckpt.read",
            action: "error",
            durable: "checkpoint present but unreadable at resume",
            invariant: "tile skipped at load and recomputed; bytes identical",
        },
        CrashSite {
            site: "signoff.tile.compute",
            action: "panic",
            durable: "no tile checkpoint; attempt died mid-compute",
            invariant: "retry/quarantine settles deterministically; resume recomputes",
        },
        CrashSite {
            site: "signoff.cache.write",
            action: "err_nospace",
            durable: "cache store refused (disk full); existing entries untouched",
            invariant: "store skipped without retry; job still settles Done with correct bytes",
        },
        CrashSite {
            site: "signoff.ckpt.write",
            action: "err_nospace",
            durable: "tile checkpoint refused (disk full); result kept in memory",
            invariant: "CkptDegraded, job not failed; resume recomputes the unpersisted tile",
        },
        CrashSite {
            site: "coord.dispatch",
            action: "error",
            durable: "shard roster durable; dispatch RPC died",
            invariant: "shard marked lost; tiles re-dispatched to a survivor; bytes identical",
        },
        CrashSite {
            site: "coord.pull",
            action: "drop",
            durable: "committed outcome prefix durable; pull stream died mid-job",
            invariant: "survivor takeover recomputes only uncommitted tiles; bytes identical",
        },
        CrashSite {
            site: "coord.ingest",
            action: "crash",
            durable: "coordinator died between pulling an outcome and committing it",
            invariant: "outcome dropped, commit prefix unharmed; redispatch recomputes; bytes identical",
        },
        CrashSite {
            site: "shard.heartbeat",
            action: "drop",
            durable: "shard state durable; heartbeats stop renewing the lease",
            invariant: "virtual-clock lease expiry declares loss; survivor takeover; bytes identical",
        },
    ];

    /// Looks a site up by key.
    pub fn lookup(site: &str) -> Option<&'static CrashSite> {
        SITES.iter().find(|s| s.site == site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any(_: &FaultAction) -> bool {
        true
    }

    #[test]
    fn crash_registry_is_populated_and_unique() {
        assert!(crash::SITES.len() >= 12, "crash registry must list every durable transition");
        let mut keys: Vec<&str> = crash::SITES.iter().map(|s| s.site).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), crash::SITES.len(), "duplicate crash-site keys");
        for s in crash::SITES {
            assert!(
                ["crash", "panic", "error", "drop", "err_nospace"].contains(&s.action),
                "site {} arms unknown action {}",
                s.site,
                s.action
            );
            // Every listed action must round-trip through the plan text
            // form so ci scripts can arm it verbatim.
            let plan = FaultPlan::parse(&format!("rule {} {}", s.site, s.action)).expect(s.site);
            assert_eq!(plan.rules.len(), 1);
        }
        assert!(crash::lookup("signoff.ckpt.tile.tmp").is_some());
        assert!(crash::lookup("no.such.site").is_none());
    }

    #[test]
    fn crash_and_nospace_probes_fire_only_their_action() {
        let plan = FaultPlan::seeded(11)
            .with_rule(FaultRule::new("c", FaultAction::Crash))
            .with_rule(FaultRule::new("n", FaultAction::ErrNoSpace));
        let plane = FaultPlane::new(plan);
        assert!(plane.crash_point("c", 0, 0));
        assert!(!plane.crash_point("n", 0, 0));
        assert!(plane.maybe_nospace("n", 0, 0));
        assert!(!plane.maybe_nospace("c", 0, 0));
        // Crash/nospace rules never leak into the classic probes.
        assert!(plane.maybe_error("c", 0, 0).is_ok());
        assert!(plane.maybe_error("n", 0, 0).is_ok());
        assert!(!plane.should_drop("c", 0, 0));
        plane.maybe_panic("c", 0, 0);
    }

    #[test]
    fn new_actions_round_trip_text_form() {
        let plan = FaultPlan::seeded(8)
            .with_rule(FaultRule::new("signoff.ckpt.tile.tmp", FaultAction::Crash).key(1).first_attempts(1))
            .with_rule(FaultRule::new("signoff.cache.write", FaultAction::ErrNoSpace));
        let text = plan.render();
        assert!(text.contains("crash"), "{text}");
        assert!(text.contains("err_nospace"), "{text}");
        assert_eq!(FaultPlan::parse(&text).expect("round trip"), plan);
    }

    #[test]
    fn decisions_are_pure_functions_of_the_tuple() {
        let plan = FaultPlan::seeded(42)
            .with_rule(FaultRule::new("a.site", FaultAction::Panic).prob(0.5))
            .with_rule(FaultRule::new("b.site", FaultAction::Error).prob(0.3));
        // Same tuple, any probing order, any repetition: same answer.
        let probe = |site: &str, key: u64, attempt: u64| plan.decide(site, key, attempt, any);
        let mut first = Vec::new();
        for key in 0..50 {
            for attempt in 0..4 {
                first.push((probe("a.site", key, attempt), probe("b.site", key, attempt)));
            }
        }
        // Re-probe in reverse order; answers must be position-wise equal.
        let mut again = Vec::new();
        for key in (0..50).rev() {
            for attempt in (0..4).rev() {
                again.push((probe("a.site", key, attempt), probe("b.site", key, attempt)));
            }
        }
        again.reverse();
        assert_eq!(again, first);
        // Different seeds disagree somewhere (sanity that prob < 1 is
        // actually probabilistic).
        let other = FaultPlan { seed: 43, ..plan.clone() };
        let differs = (0..200).any(|k| plan.decide("a.site", k, 0, any) != other.decide("a.site", k, 0, any));
        assert!(differs, "seed must matter");
    }

    #[test]
    fn filters_scope_rules() {
        let plan = FaultPlan::seeded(1)
            .with_rule(FaultRule::new("s", FaultAction::Panic).key(3).first_attempts(2));
        assert!(plan.decide("s", 3, 0, any).is_some());
        assert!(plan.decide("s", 3, 1, any).is_some());
        assert!(plan.decide("s", 3, 2, any).is_none(), "attempt filter");
        assert!(plan.decide("s", 4, 0, any).is_none(), "key filter");
        assert!(plan.decide("t", 3, 0, any).is_none(), "site filter");
        let exact = FaultPlan::seeded(1)
            .with_rule(FaultRule::new("s", FaultAction::Error).attempt_exactly(1));
        assert!(exact.decide("s", 0, 0, any).is_none());
        assert!(exact.decide("s", 0, 1, any).is_some());
    }

    #[test]
    fn action_predicate_selects_among_rules() {
        let plan = FaultPlan::seeded(9)
            .with_rule(FaultRule::new("s", FaultAction::Delay { vms: 7 }))
            .with_rule(FaultRule::new("s", FaultAction::Panic));
        let plane = FaultPlane::new(plan);
        assert_eq!(plane.delay_vms("s", 0, 0), Some(7));
        let panicked = std::panic::catch_unwind(|| plane.maybe_panic("s", 0, 0));
        assert!(panicked.is_err(), "panic rule must still be reachable past the delay rule");
    }

    #[test]
    fn probability_fires_a_sane_fraction() {
        let plan =
            FaultPlan::seeded(5).with_rule(FaultRule::new("p", FaultAction::Error).prob(0.25));
        let fired = (0..2000).filter(|&k| plan.decide("p", k, 0, any).is_some()).count();
        assert!((300..700).contains(&fired), "p=0.25 fired {fired}/2000");
    }

    #[test]
    fn text_form_round_trips() {
        let plan = FaultPlan::seeded(77)
            .with_rule(FaultRule::new("signoff.tile.compute", FaultAction::Panic).key(3).first_attempts(2))
            .with_rule(FaultRule::new("signoff.ckpt.write", FaultAction::Error).attempt_exactly(0).prob(0.5))
            .with_rule(FaultRule::new("signoff.tile.delay", FaultAction::Delay { vms: 120 }))
            .with_rule(FaultRule::new("server.write", FaultAction::Drop));
        let text = plan.render();
        let back = FaultPlan::parse(&text).expect("parse rendered plan");
        assert_eq!(back, plan, "{text}");
        // Comments and blank lines are tolerated.
        let with_noise = format!("# plan\n\n{text}\n# end\n");
        assert_eq!(FaultPlan::parse(&with_noise).expect("noise"), plan);
    }

    #[test]
    fn malformed_plans_are_diagnosed() {
        for bad in [
            "seed",
            "seed x",
            "seed 1 2",
            "rule",
            "rule s",
            "rule s warp",
            "rule s delay=x",
            "rule s panic key=x",
            "rule s panic attempt<x",
            "rule s panic p=2",
            "rule s panic wat=1",
            "noise",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(err.contains("fault plan line 1"), "{bad}: {err}");
        }
    }

    #[test]
    fn empty_plane_is_a_no_op() {
        let plane = FaultPlane::new(FaultPlan::empty());
        assert!(plane.is_empty());
        plane.maybe_panic("anything", 0, 0);
        assert!(plane.maybe_error("anything", 0, 0).is_ok());
        assert_eq!(plane.delay_vms("anything", 0, 0), None);
        assert!(!plane.should_drop("anything", 0, 0));
        assert!(plane.injected().is_empty());
    }

    #[test]
    fn plane_logs_and_counts() {
        let plan = FaultPlan::seeded(3).with_rule(FaultRule::new("s", FaultAction::Error));
        let plane = FaultPlane::new(plan);
        assert!(plane.maybe_error("s", 9, 0).is_err());
        assert_eq!(
            plane.injected(),
            vec![InjectedFault { site: "s".into(), key: 9, attempt: 0, action: FaultAction::Error }]
        );
        assert_eq!(plane.next_occurrence("s", 1), 0);
        assert_eq!(plane.next_occurrence("s", 1), 1);
        assert_eq!(plane.next_occurrence("s", 2), 0);
    }

    #[test]
    fn injected_error_messages_are_deterministic() {
        let plan = FaultPlan::seeded(3).with_rule(FaultRule::new("s", FaultAction::Error));
        let plane = FaultPlane::new(plan);
        let a = plane.maybe_error("s", 4, 1).expect_err("fires");
        let b = plane.maybe_error("s", 4, 1).expect_err("fires");
        assert_eq!(a, b);
        assert_eq!(a, "injected I/O error at s (key 4, attempt 1)");
    }
}
