//! Property-based tests for the GDSII codec: arbitrary libraries must
//! round-trip exactly (dfm-check harness).

use dfm_check::{bools, check, lowercase_string, prop_assert_eq, Config, Gen};
use dfm_geom::{Rect, Rotation, Transform, Vector};
use dfm_layout::{gds, ArrayParams, Cell, CellRef, Label, Layer, Library};

fn cfg() -> Config {
    Config::with_cases(48)
}

fn arb_layer() -> impl Gen<Value = Layer> {
    (0u16..64, 0u16..4).prop_map(|(l, d)| Layer::new(l, d))
}

fn arb_rect() -> impl Gen<Value = Rect> {
    (-10_000i64..10_000, -10_000i64..10_000, 1i64..2_000, 1i64..2_000)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_transform() -> impl Gen<Value = Transform> {
    (-5_000i64..5_000, -5_000i64..5_000, 0u8..4, bools()).prop_map(|(x, y, r, m)| {
        Transform::new(Vector::new(x, y), Rotation::from_quarter_turns(r), m)
    })
}

fn arb_leaf() -> impl Gen<Value = Cell> {
    (
        dfm_check::vec((arb_layer(), arb_rect()), 1..12),
        dfm_check::vec((lowercase_string(1..9), -1000i64..1000, -1000i64..1000), 0..3),
    )
        .prop_map(|(shapes, labels)| {
            let mut c = Cell::new("LEAF");
            for (layer, rect) in shapes {
                c.add_rect(layer, rect);
            }
            for (text, x, y) in labels {
                c.add_label(Label {
                    layer: Layer::new(63, 0),
                    position: dfm_geom::Point::new(x, y),
                    text,
                });
            }
            c
        })
}

fn arb_library() -> impl Gen<Value = Library> {
    (
        arb_leaf(),
        dfm_check::vec(arb_transform(), 1..5),
        (1u16..4, 1u16..4, 100i64..5_000, 100i64..5_000),
    )
        .prop_map(|(leaf, srefs, (cols, rows, cp, rp))| {
            let mut lib = Library::new("prop");
            lib.add_cell(leaf).expect("leaf");
            let mut top = Cell::new("TOP");
            for t in srefs {
                top.add_ref(CellRef::new("LEAF", t));
            }
            top.add_ref(CellRef::array(
                "LEAF",
                Transform::identity(),
                ArrayParams { cols, rows, col_pitch: cp, row_pitch: rp },
            ));
            lib.add_cell(top).expect("top");
            lib
        })
}

/// Serialise → parse reproduces every flattened layer exactly.
#[test]
fn gds_roundtrip_exact() {
    check("gds_roundtrip_exact", &cfg(), &arb_library(), |lib| {
        let bytes = gds::to_bytes(lib).expect("serialise");
        let back = gds::from_bytes(&bytes).expect("parse");
        prop_assert_eq!(back.cell_count(), lib.cell_count());
        let top_a = lib.cell_id("TOP").expect("top");
        let top_b = back.cell_id("TOP").expect("top");
        let fa = lib.flatten(top_a).expect("flatten original");
        let fb = back.flatten(top_b).expect("flatten parsed");
        let layers_a: Vec<Layer> = fa.used_layers().collect();
        let layers_b: Vec<Layer> = fb.used_layers().collect();
        prop_assert_eq!(&layers_a, &layers_b);
        for layer in layers_a {
            prop_assert_eq!(fa.region(layer), fb.region(layer), "layer {}", layer);
        }
        // Labels survive.
        let leaf_a = lib.cell(lib.cell_id("LEAF").expect("leaf"));
        let leaf_b = back.cell(back.cell_id("LEAF").expect("leaf"));
        prop_assert_eq!(&leaf_a.labels, &leaf_b.labels);
        Ok(())
    });
}

/// Serialisation is deterministic.
#[test]
fn gds_bytes_deterministic() {
    check("gds_bytes_deterministic", &cfg(), &arb_library(), |lib| {
        prop_assert_eq!(
            gds::to_bytes(lib).expect("a"),
            gds::to_bytes(lib).expect("b")
        );
        Ok(())
    });
}

/// The flat write-back library reproduces the flat geometry.
#[test]
fn flat_writeback_roundtrip() {
    check("flat_writeback_roundtrip", &cfg(), &arb_library(), |lib| {
        let top = lib.cell_id("TOP").expect("top");
        let flat = lib.flatten(top).expect("flatten");
        let out = flat.to_library("o", "F");
        // Through GDS bytes as well.
        let back = gds::from_bytes(&gds::to_bytes(&out).expect("ser")).expect("parse");
        let reflat = back
            .flatten(back.top().expect("top"))
            .expect("flatten back");
        for layer in flat.used_layers() {
            prop_assert_eq!(flat.region(layer), reflat.region(layer), "layer {}", layer);
        }
        Ok(())
    });
}
