//! Golden GDSII round-trip test.
//!
//! A deterministic generated layout is serialised to GDS bytes, re-read,
//! and checked for structural equality. The byte stream's FNV-1a digest
//! is pinned so any codec change that alters the on-disk format (record
//! order, padding, encoding) is caught immediately. If the change is
//! intentional, regenerate the digest with the instructions printed by
//! the failing assertion.

use dfm_check::fnv1a_64;
use dfm_layout::generate::RoutedBlockParams;
use dfm_layout::{gds, generate, Technology};

/// Pinned digest of `routed_block(n65, dense, seed 42)` serialised to
/// GDS. Generated once; stable because both the generator (dfm-rand,
/// fixed seed) and the codec are fully deterministic.
const GOLDEN_DIGEST: u64 = 0x041e_bb3e_bfdd_7dde;

fn golden_library() -> dfm_layout::Library {
    generate::routed_block(&Technology::n65(), RoutedBlockParams::dense(), 42)
}

#[test]
fn golden_gds_digest_is_stable() {
    let lib = golden_library();
    let bytes = gds::to_bytes(&lib).expect("serialise");
    let digest = fnv1a_64(&bytes);
    assert_eq!(
        digest, GOLDEN_DIGEST,
        "GDS byte stream changed: digest 0x{digest:016x}, expected 0x{GOLDEN_DIGEST:016x}. \
         If the codec or generator change is intentional, update GOLDEN_DIGEST \
         in crates/layout/tests/gds_golden.rs to the new value."
    );
}

#[test]
fn golden_gds_roundtrip_structural_equality() {
    let lib = golden_library();
    let bytes = gds::to_bytes(&lib).expect("serialise");
    let back = gds::from_bytes(&bytes).expect("parse");

    assert_eq!(back.cell_count(), lib.cell_count());
    let top_a = lib.top().expect("top");
    let top_b = back.top().expect("top");
    let fa = lib.flatten(top_a).expect("flatten original");
    let fb = back.flatten(top_b).expect("flatten parsed");
    let layers_a: Vec<_> = fa.used_layers().collect();
    let layers_b: Vec<_> = fb.used_layers().collect();
    assert_eq!(layers_a, layers_b);
    for layer in layers_a {
        assert_eq!(fa.region(layer), fb.region(layer), "layer {layer}");
    }

    // Second serialisation of the parsed library is byte-identical:
    // the codec is a fixed point after one round-trip.
    let bytes2 = gds::to_bytes(&back).expect("re-serialise");
    assert_eq!(bytes, bytes2);
}
