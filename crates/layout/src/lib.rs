//! # dfm-layout — layout database, GDSII I/O, and synthetic layout generators
//!
//! The layout substrate of the `dfm-practice` workspace. It provides:
//!
//! * [`Layer`] — GDSII layer/datatype pairs plus the workspace's standard
//!   layer assignments ([`layers`]),
//! * [`Cell`], [`CellRef`], [`Library`] — a hierarchical layout database
//!   with exact flattening through GDS-style transforms,
//! * [`gds`] — a from-scratch reader/writer for **binary GDSII** stream
//!   format (records, excess-64 reals, `BOUNDARY`/`SREF`/`AREF`/`PATH`),
//! * [`Technology`] — ground-rule presets (65/45/28 nm-class) that drive
//!   both the generators and the DRC decks,
//! * [`generate`] — deterministic synthetic layout generators (standard-
//!   cell blocks, routed metal, via chains, SRAM-like arrays) standing in
//!   for the production designs used by the paper (see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use dfm_layout::{layers, Cell, Library};
//! use dfm_geom::Rect;
//!
//! let mut lib = Library::new("demo");
//! let mut top = Cell::new("TOP");
//! top.add_rect(layers::METAL1, Rect::new(0, 0, 1000, 100));
//! let top_id = lib.add_cell(top)?;
//! lib.set_top(top_id)?;
//! let flat = lib.flatten(top_id)?;
//! assert_eq!(flat.region(layers::METAL1).area(), 100_000);
//! # Ok::<(), dfm_layout::LayoutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod error;
pub mod gds;
pub mod generate;
mod layer;
mod library;
mod tech;
mod tile;
mod view;

pub use cell::{ArrayParams, Cell, CellRef, Label, Shape};
pub use error::LayoutError;
pub use layer::{layers, Layer};
pub use library::{CellId, FlatLayout, Library};
pub use tech::Technology;
pub use tile::{TileView, TiledLayout, TilingConfig, TilingConfigBuilder};
pub use view::LayoutView;
