//! The unified read-only layout abstraction consumed by the engines.
//!
//! [`LayoutView`] is the one signature through which DRC, litho, yield
//! and fill engines see geometry. A view is *some* window onto a layout
//! with per-layer canonical [`Region`]s — either the whole chip
//! ([`FlatLayout`]) or a single tile plus halo
//! ([`crate::TileView`]). Engines written against `&impl LayoutView`
//! run unchanged on both.

use crate::{FlatLayout, Layer};
use dfm_geom::{Rect, Region};

/// A read-only window onto per-layer merged layout geometry.
pub trait LayoutView {
    /// Bounding box of the viewed geometry.
    fn bbox(&self) -> Rect;

    /// Borrows the merged geometry of a layer, if the view carries it.
    fn region_ref(&self, layer: Layer) -> Option<&Region>;

    /// Layers present in the view, in sorted order.
    fn used_layers(&self) -> Vec<Layer>;

    /// The merged geometry of a layer (the empty region if absent).
    fn region(&self, layer: Layer) -> Region {
        self.region_ref(layer).cloned().unwrap_or_default()
    }

    /// The canonical rectangles of a layer (empty slice if absent).
    fn layer_rects(&self, layer: Layer) -> &[Rect] {
        self.region_ref(layer).map_or(&[], |r| r.rects())
    }

    /// Total canonical rectangle count across the view's layers.
    fn rect_count(&self) -> usize {
        self.used_layers()
            .into_iter()
            .map(|l| self.layer_rects(l).len())
            .sum()
    }
}

impl LayoutView for FlatLayout {
    fn bbox(&self) -> Rect {
        FlatLayout::bbox(self)
    }

    fn region_ref(&self, layer: Layer) -> Option<&Region> {
        FlatLayout::region_ref(self, layer)
    }

    fn used_layers(&self) -> Vec<Layer> {
        FlatLayout::used_layers(self).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers;

    fn generic_probe(v: &impl LayoutView) -> (i128, usize, usize) {
        (
            v.region(layers::METAL1).area(),
            v.used_layers().len(),
            v.rect_count(),
        )
    }

    #[test]
    fn flat_layout_implements_view() {
        let mut flat = FlatLayout::default();
        flat.set_region(
            layers::METAL1,
            Region::from_rect(Rect::new(0, 0, 100, 10)),
        );
        flat.set_region(
            layers::METAL2,
            Region::from_rect(Rect::new(0, 0, 10, 100)),
        );
        let (area, layers_n, rects) = generic_probe(&flat);
        assert_eq!(area, 1000);
        assert_eq!(layers_n, 2);
        assert_eq!(rects, 2);
        assert!(flat.region_ref(layers::VIA1).is_none());
        assert!(LayoutView::region(&flat, layers::VIA1).is_empty());
    }
}
