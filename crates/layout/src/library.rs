//! Libraries: collections of cells with hierarchy flattening.

use crate::cell::check_refs;
use crate::{Cell, Layer, LayoutError};
use dfm_geom::{Rect, Region, Transform};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Stable identifier of a cell within one [`Library`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CellId(pub(crate) usize);

/// A flattened view of one cell: per-layer merged geometry.
///
/// Produced by [`Library::flatten`]; every downstream engine (DRC, litho,
/// yield, patterns) consumes this form.
#[derive(Clone, Debug, Default)]
pub struct FlatLayout {
    layers: BTreeMap<Layer, Region>,
    bbox: Rect,
}

impl FlatLayout {
    /// The merged geometry of a layer (the empty region if absent).
    pub fn region(&self, layer: Layer) -> Region {
        self.layers.get(&layer).cloned().unwrap_or_default()
    }

    /// Borrows the merged geometry of a layer, if present.
    pub fn region_ref(&self, layer: Layer) -> Option<&Region> {
        self.layers.get(&layer)
    }

    /// Layers present in the flattened layout.
    pub fn used_layers(&self) -> impl Iterator<Item = Layer> + '_ {
        self.layers.keys().copied()
    }

    /// Bounding box over all layers.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Inserts or replaces a layer's geometry.
    pub fn set_region(&mut self, layer: Layer, region: Region) {
        self.bbox = self.bbox.bounding_union(&region.bbox());
        self.layers.insert(layer, region);
    }

    /// Total shape count (canonical rectangles across layers).
    pub fn rect_count(&self) -> usize {
        self.layers.values().map(|r| r.rect_count()).sum()
    }

    /// Total drawn area across all layers.
    pub fn total_area(&self) -> i128 {
        self.layers.values().map(|r| r.area()).sum()
    }

    /// Converts the flattened layout back into a single-cell [`Library`]
    /// (e.g. to write a processed layout to GDSII).
    ///
    /// Components whose outline is a single hole-free loop are emitted as
    /// polygons (compact); components with holes fall back to their
    /// rectangle decomposition, which GDSII can always represent.
    pub fn to_library(&self, name: impl Into<String>, cell_name: impl Into<String>) -> Library {
        let mut lib = Library::new(name);
        let mut cell = Cell::new(cell_name);
        for (&layer, region) in &self.layers {
            for comp in region.connected_components() {
                let loops = dfm_geom::boundary_loops(&comp);
                if loops.len() == 1 && comp.rect_count() > 1 {
                    cell.add_shape(layer, loops.into_iter().next().expect("one loop"));
                } else if comp.rect_count() == 1 {
                    cell.add_rect(layer, comp.rects()[0]);
                } else {
                    for &r in comp.rects() {
                        cell.add_rect(layer, r);
                    }
                }
            }
        }
        let id = lib.add_cell(cell).expect("fresh library has no duplicates");
        lib.set_top(id).expect("cell id is valid");
        lib
    }
}

/// A library of layout cells sharing a unit system, with an optional
/// designated top cell.
///
/// The database-unit convention in this workspace is 1 dbu = 1 nm
/// (`dbu_in_meters = 1e-9`), matching the integer-nanometre geometry
/// kernel.
#[derive(Clone, Debug)]
pub struct Library {
    /// Library name (GDSII `LIBNAME`).
    pub name: String,
    /// Size of one database unit in user units (GDSII convention; the
    /// default of `1e-3` means 1 dbu = 0.001 µm = 1 nm).
    pub dbu_in_user_units: f64,
    /// Size of one database unit in meters (default `1e-9`).
    pub dbu_in_meters: f64,
    cells: Vec<Cell>,
    by_name: HashMap<String, CellId>,
    top: Option<CellId>,
}

impl Library {
    /// Creates an empty library with the workspace unit convention.
    pub fn new(name: impl Into<String>) -> Self {
        Library {
            name: name.into(),
            dbu_in_user_units: 1e-3,
            dbu_in_meters: 1e-9,
            cells: Vec::new(),
            by_name: HashMap::new(),
            top: None,
        }
    }

    /// Adds a cell, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::DuplicateCell`] if the name is taken.
    pub fn add_cell(&mut self, cell: Cell) -> Result<CellId, LayoutError> {
        if self.by_name.contains_key(&cell.name) {
            return Err(LayoutError::DuplicateCell(cell.name.clone()));
        }
        let id = CellId(self.cells.len());
        self.by_name.insert(cell.name.clone(), id);
        self.cells.push(cell);
        Ok(id)
    }

    /// Looks up a cell id by name.
    pub fn cell_id(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Borrows a cell by id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0]
    }

    /// Mutably borrows a cell by id.
    pub fn cell_mut(&mut self, id: CellId) -> &mut Cell {
        &mut self.cells[id.0]
    }

    /// All cells in insertion order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Designates the top cell.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::UnknownCell`] for an out-of-range id.
    pub fn set_top(&mut self, id: CellId) -> Result<(), LayoutError> {
        if id.0 >= self.cells.len() {
            return Err(LayoutError::UnknownCell(format!("#{}", id.0)));
        }
        self.top = Some(id);
        Ok(())
    }

    /// The designated top cell, or the unique unreferenced cell, if any.
    pub fn top(&self) -> Option<CellId> {
        if self.top.is_some() {
            return self.top;
        }
        // Infer: cells never referenced by any other cell.
        let mut referenced: Vec<bool> = vec![false; self.cells.len()];
        for c in &self.cells {
            for r in &c.refs {
                if let Some(id) = self.cell_id(&r.cell) {
                    referenced[id.0] = true;
                }
            }
        }
        let tops: Vec<CellId> = (0..self.cells.len())
            .filter(|&i| !referenced[i])
            .map(CellId)
            .collect();
        if tops.len() == 1 {
            Some(tops[0])
        } else {
            None
        }
    }

    /// Validates that every reference resolves and the hierarchy is
    /// acyclic.
    ///
    /// # Errors
    ///
    /// [`LayoutError::UnknownCell`] or [`LayoutError::RecursiveHierarchy`].
    pub fn validate(&self) -> Result<(), LayoutError> {
        for c in &self.cells {
            check_refs(c, |name| self.by_name.contains_key(name))?;
        }
        // Cycle detection via DFS colouring.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.cells.len()];
        fn dfs(
            lib: &Library,
            id: CellId,
            marks: &mut Vec<Mark>,
        ) -> Result<(), LayoutError> {
            match marks[id.0] {
                Mark::Black => return Ok(()),
                Mark::Grey => {
                    return Err(LayoutError::RecursiveHierarchy(lib.cells[id.0].name.clone()))
                }
                Mark::White => {}
            }
            marks[id.0] = Mark::Grey;
            let refs: Vec<CellId> = lib.cells[id.0]
                .refs
                .iter()
                .filter_map(|r| lib.cell_id(&r.cell))
                .collect();
            for child in refs {
                dfs(lib, child, marks)?;
            }
            marks[id.0] = Mark::Black;
            Ok(())
        }
        for i in 0..self.cells.len() {
            dfs(self, CellId(i), &mut marks)?;
        }
        Ok(())
    }

    /// Flattens a cell: expands the full reference tree and merges each
    /// layer into a canonical [`Region`].
    ///
    /// # Errors
    ///
    /// Propagates [`Library::validate`] failures.
    pub fn flatten(&self, id: CellId) -> Result<FlatLayout, LayoutError> {
        self.validate()?;
        let mut acc: BTreeMap<Layer, Vec<Rect>> = BTreeMap::new();
        self.collect_flat(id, &Transform::identity(), &mut acc);
        let mut flat = FlatLayout::default();
        for (layer, rects) in acc {
            flat.set_region(layer, Region::from_rects(rects));
        }
        Ok(flat)
    }

    /// Flattens the top cell ([`Library::top`]).
    ///
    /// # Errors
    ///
    /// [`LayoutError::NoTopCell`] if no top cell is set or inferable;
    /// otherwise propagates [`Library::flatten`] failures.
    pub fn flatten_top(&self) -> Result<FlatLayout, LayoutError> {
        let top = self.top().ok_or(LayoutError::NoTopCell)?;
        self.flatten(top)
    }

    fn collect_flat(
        &self,
        id: CellId,
        t: &Transform,
        acc: &mut BTreeMap<Layer, Vec<Rect>>,
    ) {
        let cell = &self.cells[id.0];
        for (layer, shape) in cell.iter_shapes() {
            let moved = shape.transformed(t);
            acc.entry(layer).or_default().extend(moved.to_rects());
        }
        for r in &cell.refs {
            if let Some(child) = self.cell_id(&r.cell) {
                for inst in r.instance_transforms() {
                    let combined = inst.then(t);
                    self.collect_flat(child, &combined, acc);
                }
            }
        }
    }

    /// Counts the fully-expanded instances of each cell under `id`
    /// (including `id` itself once). Useful for hierarchy statistics.
    pub fn instance_counts(&self, id: CellId) -> HashMap<String, u64> {
        let mut counts = HashMap::new();
        fn walk(lib: &Library, id: CellId, mult: u64, counts: &mut HashMap<String, u64>) {
            let cell = &lib.cells[id.0];
            *counts.entry(cell.name.clone()).or_insert(0) += mult;
            for r in &cell.refs {
                if let Some(child) = lib.cell_id(&r.cell) {
                    walk(lib, child, mult * r.instance_count() as u64, counts);
                }
            }
        }
        walk(self, id, 1, &mut counts);
        counts
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "library {} ({} cells)", self.name, self.cells.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{layers, ArrayParams, CellRef};
    use dfm_geom::{Rotation, Vector};

    fn unit_cell(name: &str) -> Cell {
        let mut c = Cell::new(name);
        c.add_rect(layers::METAL1, Rect::new(0, 0, 10, 10));
        c
    }

    #[test]
    fn duplicate_cell_rejected() {
        let mut lib = Library::new("L");
        lib.add_cell(unit_cell("A")).expect("first add");
        assert!(matches!(
            lib.add_cell(unit_cell("A")),
            Err(LayoutError::DuplicateCell(_))
        ));
    }

    #[test]
    fn flatten_simple_hierarchy() {
        let mut lib = Library::new("L");
        lib.add_cell(unit_cell("LEAF")).expect("add leaf");
        let mut top = Cell::new("TOP");
        top.add_ref(CellRef::new("LEAF", Transform::translate(Vector::new(0, 0))));
        top.add_ref(CellRef::new("LEAF", Transform::translate(Vector::new(100, 0))));
        let top_id = lib.add_cell(top).expect("add top");
        let flat = lib.flatten(top_id).expect("flatten");
        assert_eq!(flat.region(layers::METAL1).area(), 200);
        assert_eq!(flat.bbox(), Rect::new(0, 0, 110, 10));
    }

    #[test]
    fn flatten_nested_with_rotation() {
        let mut lib = Library::new("L");
        let mut leaf = Cell::new("LEAF");
        leaf.add_rect(layers::METAL1, Rect::new(0, 0, 20, 10));
        lib.add_cell(leaf).expect("add leaf");
        let mut mid = Cell::new("MID");
        mid.add_ref(CellRef::new(
            "LEAF",
            Transform::new(Vector::new(0, 0), Rotation::R90, false),
        ));
        lib.add_cell(mid).expect("add mid");
        let mut top = Cell::new("TOP");
        top.add_ref(CellRef::new("MID", Transform::translate(Vector::new(50, 50))));
        let top_id = lib.add_cell(top).expect("add top");
        let flat = lib.flatten(top_id).expect("flatten");
        // (0,0,20,10) rotated 90° -> (-10,0,0,20), then +(50,50).
        assert_eq!(flat.region(layers::METAL1).bbox(), Rect::new(40, 50, 50, 70));
    }

    #[test]
    fn flatten_array() {
        let mut lib = Library::new("L");
        lib.add_cell(unit_cell("LEAF")).expect("add leaf");
        let mut top = Cell::new("TOP");
        top.add_ref(CellRef::array(
            "LEAF",
            Transform::identity(),
            ArrayParams { cols: 4, rows: 3, col_pitch: 20, row_pitch: 20 },
        ));
        let top_id = lib.add_cell(top).expect("add top");
        let flat = lib.flatten(top_id).expect("flatten");
        assert_eq!(flat.region(layers::METAL1).area(), 12 * 100);
    }

    #[test]
    fn recursive_hierarchy_detected() {
        let mut lib = Library::new("L");
        let mut a = Cell::new("A");
        a.add_ref(CellRef::new("B", Transform::identity()));
        let mut b = Cell::new("B");
        b.add_ref(CellRef::new("A", Transform::identity()));
        let a_id = lib.add_cell(a).expect("add a");
        lib.add_cell(b).expect("add b");
        assert!(matches!(
            lib.flatten(a_id),
            Err(LayoutError::RecursiveHierarchy(_))
        ));
    }

    #[test]
    fn unknown_ref_detected() {
        let mut lib = Library::new("L");
        let mut a = Cell::new("A");
        a.add_ref(CellRef::new("MISSING", Transform::identity()));
        let a_id = lib.add_cell(a).expect("add");
        assert!(matches!(lib.flatten(a_id), Err(LayoutError::UnknownCell(_))));
    }

    #[test]
    fn top_inference() {
        let mut lib = Library::new("L");
        lib.add_cell(unit_cell("LEAF")).expect("add leaf");
        let mut top = Cell::new("TOP");
        top.add_ref(CellRef::new("LEAF", Transform::identity()));
        let top_id = lib.add_cell(top).expect("add top");
        assert_eq!(lib.top(), Some(top_id));
    }

    #[test]
    fn flat_layout_roundtrips_to_library() {
        let mut lib = Library::new("L");
        let mut c = Cell::new("TOP");
        // An L-shape (traced as one polygon) and an isolated square.
        c.add_rect(layers::METAL1, Rect::new(0, 0, 300, 100));
        c.add_rect(layers::METAL1, Rect::new(0, 100, 100, 300));
        c.add_rect(layers::METAL2, Rect::new(1000, 1000, 1100, 1100));
        let id = lib.add_cell(c).expect("add");
        let flat = lib.flatten(id).expect("flatten");
        let back = flat.to_library("out", "FLAT");
        let reflat = back
            .flatten(back.top().expect("top"))
            .expect("flatten writeback");
        for layer in [layers::METAL1, layers::METAL2] {
            assert_eq!(flat.region(layer), reflat.region(layer), "{layer}");
        }
        // The L went out as one polygon shape, not two rects.
        let cell = back.cell(back.cell_id("FLAT").expect("cell"));
        assert_eq!(cell.shapes(layers::METAL1).len(), 1);
    }

    #[test]
    fn instance_counts() {
        let mut lib = Library::new("L");
        lib.add_cell(unit_cell("LEAF")).expect("leaf");
        let mut mid = Cell::new("MID");
        mid.add_ref(CellRef::array(
            "LEAF",
            Transform::identity(),
            ArrayParams { cols: 2, rows: 2, col_pitch: 20, row_pitch: 20 },
        ));
        lib.add_cell(mid).expect("mid");
        let mut top = Cell::new("TOP");
        top.add_ref(CellRef::new("MID", Transform::identity()));
        top.add_ref(CellRef::new("MID", Transform::translate(Vector::new(100, 0))));
        let top_id = lib.add_cell(top).expect("top");
        let counts = lib.instance_counts(top_id);
        assert_eq!(counts["LEAF"], 8);
        assert_eq!(counts["MID"], 2);
        assert_eq!(counts["TOP"], 1);
    }
}
