//! GDSII layer/datatype pairs and the workspace layer map.

use std::fmt;

/// A GDSII layer: the `(layer, datatype)` pair identifying a mask level.
///
/// ```
/// use dfm_layout::Layer;
/// let m1 = Layer::new(4, 0);
/// assert_eq!(m1.to_string(), "4/0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Layer {
    /// GDSII layer number (0–255 in the classic format).
    pub layer: u16,
    /// GDSII datatype number.
    pub datatype: u16,
}

impl Layer {
    /// Creates a layer from its GDSII numbers.
    pub const fn new(layer: u16, datatype: u16) -> Self {
        Layer { layer, datatype }
    }

    /// A human-readable name for the standard workspace layers, or `None`
    /// for non-standard layers.
    pub fn name(&self) -> Option<&'static str> {
        layers::ALL
            .iter()
            .find(|(l, _)| l == self)
            .map(|(_, n)| *n)
    }
}

impl fmt::Debug for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(n) => write!(f, "{n}({}/{})", self.layer, self.datatype),
            None => write!(f, "{}/{}", self.layer, self.datatype),
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.layer, self.datatype)
    }
}

/// The standard layer assignments used throughout the workspace.
///
/// These mirror a simplified planar CMOS stack: front-end (active, poly,
/// contact), three metal levels with vias, plus a dummy-fill marker layer.
pub mod layers {
    use super::Layer;

    /// Active (diffusion) regions.
    pub const ACTIVE: Layer = Layer::new(1, 0);
    /// Polysilicon gates.
    pub const POLY: Layer = Layer::new(2, 0);
    /// Contacts (active/poly to metal-1).
    pub const CONTACT: Layer = Layer::new(3, 0);
    /// First metal.
    pub const METAL1: Layer = Layer::new(4, 0);
    /// Via metal-1 to metal-2.
    pub const VIA1: Layer = Layer::new(5, 0);
    /// Second metal.
    pub const METAL2: Layer = Layer::new(6, 0);
    /// Via metal-2 to metal-3.
    pub const VIA2: Layer = Layer::new(7, 0);
    /// Third metal.
    pub const METAL3: Layer = Layer::new(8, 0);
    /// N-well.
    pub const NWELL: Layer = Layer::new(9, 0);
    /// Dummy metal fill (written on the target metal's fill datatype).
    pub const FILL_M1: Layer = Layer::new(4, 1);
    /// Dummy metal-2 fill.
    pub const FILL_M2: Layer = Layer::new(6, 1);
    /// Marker layer for DFM annotations (hotspots, violations).
    pub const MARKER: Layer = Layer::new(63, 0);

    /// All standard layers with their names.
    pub const ALL: &[(Layer, &str)] = &[
        (ACTIVE, "ACTIVE"),
        (POLY, "POLY"),
        (CONTACT, "CONTACT"),
        (METAL1, "METAL1"),
        (VIA1, "VIA1"),
        (METAL2, "METAL2"),
        (VIA2, "VIA2"),
        (METAL3, "METAL3"),
        (NWELL, "NWELL"),
        (FILL_M1, "FILL_M1"),
        (FILL_M2, "FILL_M2"),
        (MARKER, "MARKER"),
    ];

    /// The routing metal layers in stack order.
    pub const METALS: &[Layer] = &[METAL1, METAL2, METAL3];

    /// The via layers in stack order (`VIA1` connects `METAL1`–`METAL2`).
    pub const VIAS: &[Layer] = &[VIA1, VIA2];

    /// The metal pair a via layer connects, if it is a standard via layer.
    pub fn via_connects(via: Layer) -> Option<(Layer, Layer)> {
        match via {
            VIA1 => Some((METAL1, METAL2)),
            VIA2 => Some((METAL2, METAL3)),
            CONTACT => Some((POLY, METAL1)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_names() {
        assert_eq!(layers::METAL1.name(), Some("METAL1"));
        assert_eq!(Layer::new(200, 7).name(), None);
        assert_eq!(format!("{:?}", layers::VIA1), "VIA1(5/0)");
    }

    #[test]
    fn via_connectivity() {
        assert_eq!(
            layers::via_connects(layers::VIA1),
            Some((layers::METAL1, layers::METAL2))
        );
        assert_eq!(layers::via_connects(layers::METAL1), None);
    }

    #[test]
    fn fill_shares_layer_number() {
        assert_eq!(layers::FILL_M1.layer, layers::METAL1.layer);
        assert_ne!(layers::FILL_M1, layers::METAL1);
    }
}
