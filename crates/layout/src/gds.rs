//! Binary GDSII stream-format reader and writer.
//!
//! Implemented from scratch against the classic Calma GDSII stream
//! specification: a sequence of records, each `[u16 length][u8 record
//! type][u8 data type]` followed by big-endian payload. Floating-point
//! values (the `UNITS` record, magnification, angles) use the excess-64
//! base-16 "real8" format, encoded and decoded exactly here.
//!
//! Supported constructs: `BOUNDARY`, `PATH` (Manhattan, path types 0/2),
//! `SREF`, `AREF`, `TEXT`, `STRANS`/`ANGLE` restricted to the Manhattan
//! subgroup (multiples of 90°, mirror about x). Magnification other than
//! 1 and non-Manhattan angles are rejected with
//! [`LayoutError::GdsUnsupported`].
//!
//! ```
//! use dfm_layout::{gds, layers, Cell, Library};
//! use dfm_geom::Rect;
//!
//! let mut lib = Library::new("demo");
//! let mut top = Cell::new("TOP");
//! top.add_rect(layers::METAL1, Rect::new(0, 0, 100, 50));
//! lib.add_cell(top)?;
//! let bytes = gds::to_bytes(&lib)?;
//! let back = gds::from_bytes(&bytes)?;
//! assert_eq!(back.cell_count(), 1);
//! # Ok::<(), dfm_layout::LayoutError>(())
//! ```

use crate::{ArrayParams, Cell, CellRef, Label, Layer, LayoutError, Library, Shape};
use dfm_geom::{Point, Polygon, Rect, Rotation, Transform, Vector};

// Record type constants (record-type byte).
const HEADER: u8 = 0x00;
const BGNLIB: u8 = 0x01;
const LIBNAME: u8 = 0x02;
const UNITS: u8 = 0x03;
const ENDLIB: u8 = 0x04;
const BGNSTR: u8 = 0x05;
const STRNAME: u8 = 0x06;
const ENDSTR: u8 = 0x07;
const BOUNDARY: u8 = 0x08;
const PATH: u8 = 0x09;
const SREF: u8 = 0x0A;
const AREF: u8 = 0x0B;
const TEXT: u8 = 0x0C;
const LAYER_REC: u8 = 0x0D;
const DATATYPE: u8 = 0x0E;
const WIDTH: u8 = 0x0F;
const XY: u8 = 0x10;
const ENDEL: u8 = 0x11;
const SNAME: u8 = 0x12;
const COLROW: u8 = 0x13;
const TEXTTYPE: u8 = 0x16;
const STRING: u8 = 0x19;
const STRANS: u8 = 0x1A;
const MAG: u8 = 0x1B;
const ANGLE: u8 = 0x1C;
const PATHTYPE: u8 = 0x21;

// Data type codes.
const DT_NONE: u8 = 0;
const DT_BITARRAY: u8 = 1;
const DT_I16: u8 = 2;
const DT_I32: u8 = 3;
const DT_REAL8: u8 = 5;
const DT_STRING: u8 = 6;

/// Encodes an `f64` as a GDSII excess-64 base-16 real ("real8").
///
/// ```
/// let one = dfm_layout::gds::encode_real8(1.0);
/// assert_eq!(one, [0x41, 0x10, 0, 0, 0, 0, 0, 0]);
/// ```
pub fn encode_real8(v: f64) -> [u8; 8] {
    if v == 0.0 {
        return [0; 8];
    }
    let sign = if v < 0.0 { 0x80u8 } else { 0 };
    let mut a = v.abs();
    // Find exponent e (base 16, excess 64) with mantissa in [1/16, 1).
    let mut e: i32 = 64;
    while a >= 1.0 {
        a /= 16.0;
        e += 1;
    }
    while a < 1.0 / 16.0 {
        a *= 16.0;
        e -= 1;
    }
    let mut mant = (a * 2f64.powi(56)).round() as u64;
    if mant >= 1u64 << 56 {
        mant >>= 4;
        e += 1;
    }
    let e = e.clamp(0, 127) as u8;
    let mut out = [0u8; 8];
    out[0] = sign | e;
    for i in 0..7 {
        out[7 - i] = (mant >> (8 * i)) as u8;
    }
    out
}

/// Decodes a GDSII excess-64 real8 into an `f64`.
pub fn decode_real8(b: [u8; 8]) -> f64 {
    let sign = if b[0] & 0x80 != 0 { -1.0 } else { 1.0 };
    let e = (b[0] & 0x7F) as i32 - 64;
    let mut mant: u64 = 0;
    for &byte in &b[1..8] {
        mant = (mant << 8) | byte as u64;
    }
    sign * (mant as f64 / 2f64.powi(56)) * 16f64.powi(e)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn record(&mut self, rectype: u8, dtype: u8, payload: &[u8]) {
        let len = (payload.len() + 4) as u16;
        self.buf.extend_from_slice(&len.to_be_bytes());
        self.buf.push(rectype);
        self.buf.push(dtype);
        self.buf.extend_from_slice(payload);
    }

    fn rec_none(&mut self, rectype: u8) {
        self.record(rectype, DT_NONE, &[]);
    }

    fn rec_i16(&mut self, rectype: u8, values: &[i16]) {
        let mut p = Vec::with_capacity(values.len() * 2);
        for v in values {
            p.extend_from_slice(&v.to_be_bytes());
        }
        self.record(rectype, DT_I16, &p);
    }

    fn rec_i32(&mut self, rectype: u8, values: &[i32]) {
        let mut p = Vec::with_capacity(values.len() * 4);
        for v in values {
            p.extend_from_slice(&v.to_be_bytes());
        }
        self.record(rectype, DT_I32, &p);
    }

    fn rec_string(&mut self, rectype: u8, s: &str) {
        let mut p = s.as_bytes().to_vec();
        if p.len() % 2 == 1 {
            p.push(0);
        }
        self.record(rectype, DT_STRING, &p);
    }

    fn rec_real8(&mut self, rectype: u8, values: &[f64]) {
        let mut p = Vec::with_capacity(values.len() * 8);
        for &v in values {
            p.extend_from_slice(&encode_real8(v));
        }
        self.record(rectype, DT_REAL8, &p);
    }

    fn xy(&mut self, pts: &[Point]) {
        let mut vals = Vec::with_capacity(pts.len() * 2);
        for p in pts {
            vals.push(p.x as i32);
            vals.push(p.y as i32);
        }
        self.rec_i32(XY, &vals);
    }

    fn strans(&mut self, t: &Transform) {
        let needs_strans = t.mirror_x || t.rotation != Rotation::R0;
        if !needs_strans {
            return;
        }
        let flags: u16 = if t.mirror_x { 0x8000 } else { 0 };
        self.record(STRANS, DT_BITARRAY, &flags.to_be_bytes());
        if t.rotation != Rotation::R0 {
            let deg = t.rotation.quarter_turns() as f64 * 90.0;
            self.rec_real8(ANGLE, &[deg]);
        }
    }
}

/// Serialises a library to GDSII stream bytes.
///
/// Timestamps are written as zeros so output is bit-deterministic.
///
/// # Errors
///
/// Currently infallible in practice but returns `Result` for parity with
/// [`from_bytes`] and to leave room for future validation.
pub fn to_bytes(lib: &Library) -> Result<Vec<u8>, LayoutError> {
    let mut w = Writer::new();
    w.rec_i16(HEADER, &[600]);
    w.rec_i16(BGNLIB, &[0; 12]);
    w.rec_string(LIBNAME, &lib.name);
    w.rec_real8(UNITS, &[lib.dbu_in_user_units, lib.dbu_in_meters]);

    for cell in lib.cells() {
        w.rec_i16(BGNSTR, &[0; 12]);
        w.rec_string(STRNAME, &cell.name);
        for (layer, shape) in cell.iter_shapes() {
            w.rec_none(BOUNDARY);
            w.rec_i16(LAYER_REC, &[layer.layer as i16]);
            w.rec_i16(DATATYPE, &[layer.datatype as i16]);
            let pts: Vec<Point> = match shape {
                Shape::Rect(r) => vec![
                    Point::new(r.x0, r.y0),
                    Point::new(r.x1, r.y0),
                    Point::new(r.x1, r.y1),
                    Point::new(r.x0, r.y1),
                    Point::new(r.x0, r.y0),
                ],
                Shape::Polygon(p) => {
                    let mut v = p.points().to_vec();
                    if let Some(&first) = v.first() {
                        v.push(first);
                    }
                    v
                }
            };
            w.xy(&pts);
            w.rec_none(ENDEL);
        }
        for label in &cell.labels {
            w.rec_none(TEXT);
            w.rec_i16(LAYER_REC, &[label.layer.layer as i16]);
            w.rec_i16(TEXTTYPE, &[label.layer.datatype as i16]);
            w.xy(&[label.position]);
            w.rec_string(STRING, &label.text);
            w.rec_none(ENDEL);
        }
        for r in &cell.refs {
            match r.array {
                None => {
                    w.rec_none(SREF);
                    w.rec_string(SNAME, &r.cell);
                    w.strans(&r.transform);
                    w.xy(&[Point::origin() + r.transform.offset]);
                    w.rec_none(ENDEL);
                }
                Some(a) => {
                    w.rec_none(AREF);
                    w.rec_string(SNAME, &r.cell);
                    w.strans(&r.transform);
                    w.rec_i16(COLROW, &[a.cols as i16, a.rows as i16]);
                    let origin = Point::origin() + r.transform.offset;
                    let col_end = origin
                        + r.transform
                            .linear_apply(Vector::new(a.col_pitch * a.cols as i64, 0));
                    let row_end = origin
                        + r.transform
                            .linear_apply(Vector::new(0, a.row_pitch * a.rows as i64));
                    w.xy(&[origin, col_end, row_end]);
                    w.rec_none(ENDEL);
                }
            }
        }
        w.rec_none(ENDSTR);
    }
    w.rec_none(ENDLIB);
    Ok(w.buf)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct Record<'a> {
    offset: usize,
    rectype: u8,
    payload: &'a [u8],
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn next_record(&mut self) -> Result<Record<'a>, LayoutError> {
        let offset = self.pos;
        if self.pos + 4 > self.data.len() {
            return Err(LayoutError::GdsParse {
                offset,
                message: "truncated record header".into(),
            });
        }
        let len = u16::from_be_bytes([self.data[self.pos], self.data[self.pos + 1]]) as usize;
        if len < 4 || self.pos + len > self.data.len() {
            return Err(LayoutError::GdsParse {
                offset,
                message: format!("bad record length {len}"),
            });
        }
        let rectype = self.data[self.pos + 2];
        let payload = &self.data[self.pos + 4..self.pos + len];
        self.pos += len;
        Ok(Record { offset, rectype, payload })
    }
}

impl Record<'_> {
    fn as_i16s(&self) -> Vec<i16> {
        self.payload
            .chunks_exact(2)
            .map(|c| i16::from_be_bytes([c[0], c[1]]))
            .collect()
    }

    fn as_i32s(&self) -> Vec<i32> {
        self.payload
            .chunks_exact(4)
            .map(|c| i32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    fn as_string(&self) -> String {
        let end = self
            .payload
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        String::from_utf8_lossy(&self.payload[..end]).into_owned()
    }

    fn as_real8s(&self) -> Vec<f64> {
        self.payload
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                decode_real8(b)
            })
            .collect()
    }

    fn points(&self) -> Vec<Point> {
        self.as_i32s()
            .chunks_exact(2)
            .map(|c| Point::new(c[0] as i64, c[1] as i64))
            .collect()
    }
}

fn angle_to_rotation(deg: f64, offset: usize) -> Result<Rotation, LayoutError> {
    let q = (deg / 90.0).round();
    if (deg - q * 90.0).abs() > 1e-6 {
        return Err(LayoutError::GdsUnsupported(format!(
            "non-Manhattan angle {deg}° at byte {offset}"
        )));
    }
    Ok(Rotation::from_quarter_turns(q.rem_euclid(4.0) as u8))
}

/// Converts a Manhattan `PATH` centreline to covering rectangles.
///
/// `pathtype` 0 leaves ends flush; 2 extends both ends by half the width.
/// Corner squares are added at interior vertices so bends are covered.
fn path_to_rects(
    pts: &[Point],
    width: i64,
    pathtype: i16,
    offset: usize,
) -> Result<Vec<Rect>, LayoutError> {
    let hw = width / 2;
    let mut rects = Vec::new();
    for (i, w) in pts.windows(2).enumerate() {
        let (a, b) = (w[0], w[1]);
        let d = b - a;
        if !d.is_manhattan() {
            return Err(LayoutError::GdsUnsupported(format!(
                "non-Manhattan path segment at byte {offset}"
            )));
        }
        let ext_start = if pathtype == 2 && i == 0 { hw } else { 0 };
        let ext_end = if pathtype == 2 && i == pts.len() - 2 { hw } else { 0 };
        let rect = if d.x != 0 {
            let (sx, ex) = if a.x < b.x {
                (a.x - ext_start, b.x + ext_end)
            } else {
                (b.x - ext_end, a.x + ext_start)
            };
            Rect::new(sx, a.y - hw, ex, a.y + hw)
        } else {
            let (sy, ey) = if a.y < b.y {
                (a.y - ext_start, b.y + ext_end)
            } else {
                (b.y - ext_end, a.y + ext_start)
            };
            Rect::new(a.x - hw, sy, a.x + hw, ey)
        };
        rects.push(rect);
        if i > 0 {
            // Corner square at the joint vertex.
            rects.push(Rect::new(a.x - hw, a.y - hw, a.x + hw, a.y + hw));
        }
    }
    Ok(rects)
}

/// Parses GDSII stream bytes into a [`Library`].
///
/// # Errors
///
/// [`LayoutError::GdsParse`] for malformed byte streams and
/// [`LayoutError::GdsUnsupported`] for legal GDSII that the workspace does
/// not model (non-Manhattan angles, magnification ≠ 1).
pub fn from_bytes(data: &[u8]) -> Result<Library, LayoutError> {
    let mut r = Reader { data, pos: 0 };
    let mut lib = Library::new("unnamed");
    let mut cur_cell: Option<Cell> = None;

    loop {
        let rec = r.next_record()?;
        match rec.rectype {
            HEADER | BGNLIB | BGNSTR => {}
            LIBNAME => lib.name = rec.as_string(),
            UNITS => {
                let reals = rec.as_real8s();
                if reals.len() == 2 {
                    lib.dbu_in_user_units = reals[0];
                    lib.dbu_in_meters = reals[1];
                }
            }
            STRNAME => {
                cur_cell = Some(Cell::new(rec.as_string()));
            }
            BOUNDARY | PATH | SREF | AREF | TEXT => {
                let kind = rec.rectype;
                let element = parse_element(&mut r, kind, rec.offset)?;
                let cell = cur_cell.as_mut().ok_or_else(|| LayoutError::GdsParse {
                    offset: rec.offset,
                    message: "element outside of structure".into(),
                })?;
                match element {
                    Element::Shape(layer, shape) => cell.add_shape(layer, shape),
                    Element::Shapes(layer, shapes) => {
                        for s in shapes {
                            cell.add_shape(layer, s);
                        }
                    }
                    Element::Ref(cref) => cell.add_ref(cref),
                    Element::Label(label) => cell.add_label(label),
                }
            }
            ENDSTR => {
                if let Some(c) = cur_cell.take() {
                    lib.add_cell(c)?;
                }
            }
            ENDLIB => break,
            _ => {} // Ignore records we do not model (PROPATTR etc.).
        }
    }
    Ok(lib)
}

enum Element {
    Shape(Layer, Shape),
    Shapes(Layer, Vec<Shape>),
    Ref(CellRef),
    Label(Label),
}

// A record whose payload is too short for even one value of its type
// is malformed; defaulting the value would silently change the layout
// (layer 0, width 0, …), so it is a parse error with the record's
// byte offset instead.

fn short_record(rec: &Record<'_>, what: &str) -> LayoutError {
    LayoutError::GdsParse {
        offset: rec.offset,
        message: format!("{what} record with short payload ({} bytes)", rec.payload.len()),
    }
}

fn first_i16(rec: &Record<'_>, what: &str) -> Result<i16, LayoutError> {
    rec.as_i16s().first().copied().ok_or_else(|| short_record(rec, what))
}

fn first_i32(rec: &Record<'_>, what: &str) -> Result<i32, LayoutError> {
    rec.as_i32s().first().copied().ok_or_else(|| short_record(rec, what))
}

fn first_real8(rec: &Record<'_>, what: &str) -> Result<f64, LayoutError> {
    rec.as_real8s().first().copied().ok_or_else(|| short_record(rec, what))
}

fn parse_element(r: &mut Reader<'_>, kind: u8, start: usize) -> Result<Element, LayoutError> {
    let mut layer: i16 = 0;
    let mut datatype: i16 = 0;
    let mut width: i64 = 0;
    let mut pathtype: i16 = 0;
    let mut pts: Vec<Point> = Vec::new();
    let mut sname = String::new();
    let mut text = String::new();
    let mut mirror = false;
    let mut rotation = Rotation::R0;
    let mut colrow: Option<(i16, i16)> = None;

    loop {
        let rec = r.next_record()?;
        match rec.rectype {
            LAYER_REC => layer = first_i16(&rec, "LAYER")?,
            DATATYPE | TEXTTYPE => datatype = first_i16(&rec, "DATATYPE")?,
            WIDTH => width = first_i32(&rec, "WIDTH")? as i64,
            PATHTYPE => pathtype = first_i16(&rec, "PATHTYPE")?,
            XY => pts = rec.points(),
            SNAME => sname = rec.as_string(),
            STRING => text = rec.as_string(),
            STRANS => {
                if let Some(&b0) = rec.payload.first() {
                    mirror = b0 & 0x80 != 0;
                }
            }
            ANGLE => {
                let deg = first_real8(&rec, "ANGLE")?;
                rotation = angle_to_rotation(deg, rec.offset)?;
            }
            MAG => {
                let mag = first_real8(&rec, "MAG")?;
                if (mag - 1.0).abs() > 1e-9 {
                    return Err(LayoutError::GdsUnsupported(format!(
                        "magnification {mag} at byte {}",
                        rec.offset
                    )));
                }
            }
            COLROW => {
                let v = rec.as_i16s();
                if v.len() != 2 {
                    return Err(LayoutError::GdsParse {
                        offset: rec.offset,
                        message: format!("COLROW record with {} values, want 2", v.len()),
                    });
                }
                colrow = Some((v[0], v[1]));
            }
            ENDEL => break,
            _ => {}
        }
    }

    if layer < 0 || datatype < 0 {
        return Err(LayoutError::GdsParse {
            offset: start,
            message: format!("negative layer/datatype {layer}/{datatype}"),
        });
    }
    let lay = Layer::new(layer as u16, datatype as u16);
    match kind {
        BOUNDARY => {
            if pts.len() < 4 {
                return Err(LayoutError::GdsParse {
                    offset: start,
                    message: "boundary with fewer than 4 points".into(),
                });
            }
            // Drop the closing point if present.
            if pts.first() == pts.last() {
                pts.pop();
            }
            let shape = match Polygon::new(pts.clone()) {
                Ok(p) => match p.as_rect() {
                    Some(rect) => Shape::Rect(rect),
                    None => Shape::Polygon(p),
                },
                Err(e) => {
                    return Err(LayoutError::GdsUnsupported(format!(
                        "boundary at byte {start} is not a valid rectilinear polygon: {e}"
                    )))
                }
            };
            Ok(Element::Shape(lay, shape))
        }
        PATH => {
            let rects = path_to_rects(&pts, width, pathtype, start)?;
            Ok(Element::Shapes(lay, rects.into_iter().map(Shape::Rect).collect()))
        }
        SREF => {
            let origin = pts.first().copied().ok_or_else(|| LayoutError::GdsParse {
                offset: start,
                message: "sref without an xy origin".into(),
            })?;
            Ok(Element::Ref(CellRef::new(
                sname,
                Transform::new(origin.to_vector(), rotation, mirror),
            )))
        }
        AREF => {
            let (cols, rows) = colrow.ok_or_else(|| LayoutError::GdsParse {
                offset: start,
                message: "aref without colrow".into(),
            })?;
            if pts.len() != 3 {
                return Err(LayoutError::GdsParse {
                    offset: start,
                    message: "aref xy must have 3 points".into(),
                });
            }
            let origin = pts[0];
            let t = Transform::new(origin.to_vector(), rotation, mirror);
            let inv = Transform::new(Vector::zero(), rotation, mirror).inverse();
            let col_total = inv.linear_apply(pts[1] - origin);
            let row_total = inv.linear_apply(pts[2] - origin);
            let col_pitch = if cols > 0 { col_total.x / cols as i64 } else { 0 };
            let row_pitch = if rows > 0 { row_total.y / rows as i64 } else { 0 };
            Ok(Element::Ref(CellRef::array(
                sname,
                t,
                ArrayParams {
                    cols: cols as u16,
                    rows: rows as u16,
                    col_pitch,
                    row_pitch,
                },
            )))
        }
        TEXT => {
            let position = pts.first().copied().ok_or_else(|| LayoutError::GdsParse {
                offset: start,
                message: "text without an xy position".into(),
            })?;
            Ok(Element::Label(Label { layer: lay, position, text }))
        }
        other => Err(LayoutError::GdsParse {
            offset: start,
            message: format!("unexpected element kind 0x{other:02x}"),
        }),
    }
}


/// Renders a library as a human-readable ASCII dump of its GDSII
/// structure (in the spirit of `gds2txt`), for debugging and diffs.
pub fn to_text(lib: &Library) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "LIB {} (dbu {} uu, {} m)", lib.name, lib.dbu_in_user_units, lib.dbu_in_meters);
    for cell in lib.cells() {
        let _ = writeln!(out, "STR {}", cell.name);
        for (layer, shape) in cell.iter_shapes() {
            match shape {
                Shape::Rect(r) => {
                    let _ = writeln!(out, "  BOUNDARY L{layer} RECT {r}");
                }
                Shape::Polygon(p) => {
                    let _ = write!(out, "  BOUNDARY L{layer} POLY");
                    for pt in p.points() {
                        let _ = write!(out, " {pt}");
                    }
                    let _ = writeln!(out);
                }
            }
        }
        for label in &cell.labels {
            let _ = writeln!(out, "  TEXT L{} {:?} at {}", label.layer, label.text, label.position);
        }
        for r in &cell.refs {
            match r.array {
                None => {
                    let _ = writeln!(out, "  SREF {} {:?}", r.cell, r.transform);
                }
                Some(a) => {
                    let _ = writeln!(
                        out,
                        "  AREF {} {:?} {}x{} pitch {}x{}",
                        r.cell, r.transform, a.cols, a.rows, a.col_pitch, a.row_pitch
                    );
                }
            }
        }
        let _ = writeln!(out, "ENDSTR");
    }
    out
}

/// Writes a library to a file.
///
/// # Errors
///
/// Propagates I/O failures and serialisation errors.
pub fn write_file(lib: &Library, path: impl AsRef<std::path::Path>) -> Result<(), LayoutError> {
    let bytes = to_bytes(lib)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Reads a library from a file.
///
/// # Errors
///
/// Propagates I/O failures and [`LayoutError::GdsParse`] /
/// [`LayoutError::GdsUnsupported`].
pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<Library, LayoutError> {
    let bytes = std::fs::read(path)?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers;

    #[test]
    fn real8_known_values() {
        assert_eq!(encode_real8(1.0), [0x41, 0x10, 0, 0, 0, 0, 0, 0]);
        assert_eq!(encode_real8(0.0), [0; 8]);
        assert_eq!(encode_real8(-1.0)[0], 0xC1);
        assert_eq!(decode_real8([0x41, 0x10, 0, 0, 0, 0, 0, 0]), 1.0);
    }

    #[test]
    fn real8_roundtrip() {
        for &v in &[1e-3, 1e-9, 2.0, 0.5, 12345.678, -0.001, 1e12, -7.25e-8] {
            let enc = encode_real8(v);
            let dec = decode_real8(enc);
            assert!(
                ((dec - v) / v).abs() < 1e-14,
                "roundtrip failed for {v}: got {dec}"
            );
        }
    }

    fn sample_library() -> Library {
        let mut lib = Library::new("testlib");
        let mut leaf = Cell::new("LEAF");
        leaf.add_rect(layers::METAL1, Rect::new(0, 0, 100, 50));
        leaf.add_shape(
            layers::POLY,
            Polygon::new([
                Point::new(0, 0),
                Point::new(30, 0),
                Point::new(30, 10),
                Point::new(10, 10),
                Point::new(10, 30),
                Point::new(0, 30),
            ])
            .expect("valid polygon"),
        );
        leaf.add_label(Label {
            layer: layers::MARKER,
            position: Point::new(5, 5),
            text: "net42".into(),
        });
        lib.add_cell(leaf).expect("add leaf");
        let mut top = Cell::new("TOP");
        top.add_ref(CellRef::new(
            "LEAF",
            Transform::new(Vector::new(500, 0), Rotation::R90, true),
        ));
        top.add_ref(CellRef::array(
            "LEAF",
            Transform::translate(Vector::new(0, 1000)),
            ArrayParams { cols: 3, rows: 2, col_pitch: 200, row_pitch: 100 },
        ));
        lib.add_cell(top).expect("add top");
        lib
    }

    #[test]
    fn library_roundtrip_preserves_geometry() {
        let lib = sample_library();
        let bytes = to_bytes(&lib).expect("serialise");
        let back = from_bytes(&bytes).expect("parse");
        assert_eq!(back.name, "testlib");
        assert_eq!(back.cell_count(), 2);

        let top = back.cell_id("TOP").expect("top exists");
        let flat_orig = lib
            .flatten(lib.cell_id("TOP").expect("orig top"))
            .expect("flatten original");
        let flat_back = back.flatten(top).expect("flatten parsed");
        for layer in [layers::METAL1, layers::POLY] {
            assert_eq!(
                flat_orig.region(layer).area(),
                flat_back.region(layer).area(),
                "layer {layer} area mismatch"
            );
            assert_eq!(flat_orig.region(layer).bbox(), flat_back.region(layer).bbox());
        }
        let leaf = back.cell(back.cell_id("LEAF").expect("leaf"));
        assert_eq!(leaf.labels.len(), 1);
        assert_eq!(leaf.labels[0].text, "net42");
    }

    #[test]
    fn units_roundtrip() {
        let lib = sample_library();
        let back = from_bytes(&to_bytes(&lib).expect("ser")).expect("parse");
        assert!((back.dbu_in_user_units - 1e-3).abs() < 1e-12);
        assert!((back.dbu_in_meters - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn deterministic_output() {
        let lib = sample_library();
        assert_eq!(to_bytes(&lib).expect("a"), to_bytes(&lib).expect("b"));
    }

    #[test]
    fn truncated_stream_rejected() {
        let lib = sample_library();
        let bytes = to_bytes(&lib).expect("ser");
        let err = from_bytes(&bytes[..bytes.len() - 6]);
        assert!(matches!(err, Err(LayoutError::GdsParse { .. })));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(
            from_bytes(&[0x00, 0x01]),
            Err(LayoutError::GdsParse { .. })
        ));
    }

    #[test]
    fn path_conversion_straight() {
        let rects = path_to_rects(
            &[Point::new(0, 0), Point::new(100, 0)],
            20,
            0,
            0,
        )
        .expect("convert");
        assert_eq!(rects, vec![Rect::new(0, -10, 100, 10)]);
    }

    #[test]
    fn path_conversion_extended_ends() {
        let rects = path_to_rects(
            &[Point::new(0, 0), Point::new(100, 0)],
            20,
            2,
            0,
        )
        .expect("convert");
        assert_eq!(rects, vec![Rect::new(-10, -10, 110, 10)]);
    }

    #[test]
    fn path_conversion_bend_covers_corner() {
        let rects = path_to_rects(
            &[Point::new(0, 0), Point::new(100, 0), Point::new(100, 100)],
            20,
            0,
            0,
        )
        .expect("convert");
        let region = dfm_geom::Region::from_rects(rects);
        // The corner pixel outside both straight segments must be covered.
        assert!(region.contains_point(Point::new(105, 5)) || region.contains_point(Point::new(95, 5)));
        assert!(region.contains_point(Point::new(50, 0)));
        assert!(region.contains_point(Point::new(100, 50)));
    }

    #[test]
    fn non_manhattan_angle_rejected() {
        // Hand-craft a minimal stream with a 45° SREF.
        let mut w = Writer::new();
        w.rec_i16(HEADER, &[600]);
        w.rec_i16(BGNLIB, &[0; 12]);
        w.rec_string(LIBNAME, "x");
        w.rec_real8(UNITS, &[1e-3, 1e-9]);
        w.rec_i16(BGNSTR, &[0; 12]);
        w.rec_string(STRNAME, "TOP");
        w.rec_none(SREF);
        w.rec_string(SNAME, "LEAF");
        w.record(STRANS, DT_BITARRAY, &[0, 0]);
        w.rec_real8(ANGLE, &[45.0]);
        w.xy(&[Point::new(0, 0)]);
        w.rec_none(ENDEL);
        w.rec_none(ENDSTR);
        w.rec_none(ENDLIB);
        assert!(matches!(
            from_bytes(&w.buf),
            Err(LayoutError::GdsUnsupported(_))
        ));
    }

    /// A stream prelude up to and including `BGNSTR`/`STRNAME`, ready
    /// for one hand-crafted element.
    fn element_stream(build: impl FnOnce(&mut Writer)) -> Vec<u8> {
        let mut w = Writer::new();
        w.rec_i16(HEADER, &[600]);
        w.rec_i16(BGNLIB, &[0; 12]);
        w.rec_string(LIBNAME, "x");
        w.rec_real8(UNITS, &[1e-3, 1e-9]);
        w.rec_i16(BGNSTR, &[0; 12]);
        w.rec_string(STRNAME, "TOP");
        build(&mut w);
        w.rec_none(ENDSTR);
        w.rec_none(ENDLIB);
        w.buf
    }

    fn expect_parse_error(bytes: &[u8], needle: &str) {
        match from_bytes(bytes) {
            Err(LayoutError::GdsParse { message, .. }) => {
                assert!(message.contains(needle), "diagnostic '{message}' lacks '{needle}'");
            }
            other => panic!("wanted GdsParse mentioning '{needle}', got {other:?}"),
        }
    }

    #[test]
    fn empty_scalar_records_are_diagnosed_not_defaulted() {
        // Each of these records legally carries at least one value; an
        // empty payload used to silently default (layer 0, width 0,
        // angle 0°…) and now must name the record in a parse error.
        type BuildCase = (&'static str, Box<dyn Fn(&mut Writer)>);
        let cases: [BuildCase; 5] = [
            ("LAYER", Box::new(|w: &mut Writer| {
                w.rec_none(BOUNDARY);
                w.record(LAYER_REC, DT_I16, &[]);
            })),
            ("DATATYPE", Box::new(|w: &mut Writer| {
                w.rec_none(BOUNDARY);
                w.rec_i16(LAYER_REC, &[4]);
                w.record(DATATYPE, DT_I16, &[]);
            })),
            ("WIDTH", Box::new(|w: &mut Writer| {
                w.rec_none(PATH);
                w.rec_i16(LAYER_REC, &[4]);
                w.record(WIDTH, DT_I32, &[0, 1]); // 2 bytes: short for an i32
            })),
            ("PATHTYPE", Box::new(|w: &mut Writer| {
                w.rec_none(PATH);
                w.rec_i16(LAYER_REC, &[4]);
                w.record(PATHTYPE, DT_I16, &[9]); // 1 byte: short for an i16
            })),
            ("ANGLE", Box::new(|w: &mut Writer| {
                w.rec_none(SREF);
                w.rec_string(SNAME, "LEAF");
                w.record(ANGLE, DT_REAL8, &[0x41, 0x10]); // 2 bytes: short real8
            })),
        ];
        for (needle, build) in cases {
            let bytes = element_stream(|w| {
                build(w);
                w.rec_none(ENDEL);
            });
            expect_parse_error(&bytes, needle);
        }
    }

    #[test]
    fn empty_mag_record_is_diagnosed() {
        let bytes = element_stream(|w| {
            w.rec_none(SREF);
            w.rec_string(SNAME, "LEAF");
            w.record(MAG, DT_REAL8, &[]);
            w.xy(&[Point::new(0, 0)]);
            w.rec_none(ENDEL);
        });
        expect_parse_error(&bytes, "MAG");
    }

    #[test]
    fn sref_without_xy_origin_is_diagnosed() {
        let bytes = element_stream(|w| {
            w.rec_none(SREF);
            w.rec_string(SNAME, "LEAF");
            w.rec_none(ENDEL); // no XY record at all
        });
        expect_parse_error(&bytes, "sref without an xy origin");

        let bytes = element_stream(|w| {
            w.rec_none(SREF);
            w.rec_string(SNAME, "LEAF");
            w.xy(&[]); // XY present but empty
            w.rec_none(ENDEL);
        });
        expect_parse_error(&bytes, "sref without an xy origin");
    }

    #[test]
    fn text_without_xy_position_is_diagnosed() {
        let bytes = element_stream(|w| {
            w.rec_none(TEXT);
            w.rec_i16(LAYER_REC, &[63]);
            w.rec_i16(TEXTTYPE, &[0]);
            w.rec_string(STRING, "label");
            w.rec_none(ENDEL);
        });
        expect_parse_error(&bytes, "text without an xy position");
    }

    #[test]
    fn malformed_colrow_is_diagnosed() {
        let bytes = element_stream(|w| {
            w.rec_none(AREF);
            w.rec_string(SNAME, "LEAF");
            w.rec_i16(COLROW, &[3]); // one value, want two
            w.xy(&[Point::new(0, 0), Point::new(600, 0), Point::new(0, 200)]);
            w.rec_none(ENDEL);
        });
        expect_parse_error(&bytes, "COLROW");
    }

    #[test]
    fn negative_layer_is_diagnosed_not_wrapped() {
        let bytes = element_stream(|w| {
            w.rec_none(BOUNDARY);
            w.rec_i16(LAYER_REC, &[-2]);
            w.rec_i16(DATATYPE, &[0]);
            w.xy(&[
                Point::new(0, 0),
                Point::new(10, 0),
                Point::new(10, 10),
                Point::new(0, 10),
                Point::new(0, 0),
            ]);
            w.rec_none(ENDEL);
        });
        expect_parse_error(&bytes, "negative layer");
    }

    #[test]
    fn diagnostics_carry_the_record_offset() {
        let bytes = element_stream(|w| {
            w.rec_none(BOUNDARY);
            w.record(LAYER_REC, DT_I16, &[]);
        });
        match from_bytes(&bytes) {
            Err(LayoutError::GdsParse { offset, .. }) => {
                assert!(offset > 0 && offset < bytes.len(), "offset {offset} out of stream");
            }
            other => panic!("wanted GdsParse, got {other:?}"),
        }
    }

    #[test]
    fn text_dump_mentions_everything() {
        let lib = sample_library();
        let text = to_text(&lib);
        assert!(text.contains("LIB testlib"));
        assert!(text.contains("STR LEAF"));
        assert!(text.contains("STR TOP"));
        assert!(text.contains("BOUNDARY"));
        assert!(text.contains("SREF LEAF"));
        assert!(text.contains("AREF LEAF"));
        assert!(text.contains("net42"));
    }

    #[test]
    fn file_roundtrip() {
        let lib = sample_library();
        let dir = std::env::temp_dir();
        let path = dir.join("dfm_layout_gds_test.gds");
        write_file(&lib, &path).expect("write");
        let back = read_file(&path).expect("read");
        assert_eq!(back.cell_count(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
