//! Technology ground rules: the parameter sets driving generators, DRC
//! decks and DFM cost models.

use crate::{layers, Layer};
use std::collections::BTreeMap;
use std::fmt;

/// Per-layer ground rules in nanometres.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LayerRules {
    /// Minimum drawn width.
    pub min_width: i64,
    /// Minimum same-layer spacing.
    pub min_space: i64,
    /// Minimum shape area (nm²).
    pub min_area: i64,
}

/// A simplified technology definition: node name, layer ground rules,
/// via geometry, and density windows.
///
/// Three presets approximate the nodes debated at the DAC 2008 panel
/// (65 nm in production, 45 nm ramping, 32/28 nm in development):
/// [`Technology::n65`], [`Technology::n45`], [`Technology::n28`].
///
/// ```
/// let t = dfm_layout::Technology::n45();
/// assert_eq!(t.node_nm, 45);
/// assert!(t.rules(dfm_layout::layers::METAL1).min_width > 0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Technology {
    /// Marketing node name in nanometres.
    pub node_nm: u32,
    /// Per-layer width/space/area rules.
    rules: BTreeMap<Layer, LayerRules>,
    /// Via cut edge length (vias are square).
    pub via_size: i64,
    /// Required metal enclosure of a via on each side.
    pub via_enclosure: i64,
    /// Required via-to-via spacing.
    pub via_space: i64,
    /// Contacted poly pitch (gate pitch) for standard cells.
    pub gate_pitch: i64,
    /// Metal-1 routing pitch.
    pub m1_pitch: i64,
    /// Metal-2 routing pitch.
    pub m2_pitch: i64,
    /// Standard-cell row height.
    pub cell_height: i64,
    /// Metal density window edge for CMP rules.
    pub density_window: i64,
    /// Minimum metal density in any window (0–1).
    pub min_density: f64,
    /// Maximum metal density in any window (0–1).
    pub max_density: f64,
}

impl Technology {
    fn base(node_nm: u32, scale: i64) -> Self {
        // `scale` is the half-pitch-ish scaling unit: 65nm -> 65 etc.
        let mut rules = BTreeMap::new();
        let metal = LayerRules {
            min_width: scale,
            min_space: scale,
            min_area: scale * scale * 4,
        };
        let poly = LayerRules {
            min_width: (scale * 6) / 10,
            min_space: (scale * 12) / 10,
            min_area: scale * scale * 2,
        };
        let active = LayerRules {
            min_width: scale,
            min_space: scale,
            min_area: scale * scale * 4,
        };
        rules.insert(layers::ACTIVE, active);
        rules.insert(layers::POLY, poly);
        rules.insert(layers::METAL1, metal);
        rules.insert(layers::METAL2, metal);
        rules.insert(
            layers::METAL3,
            LayerRules {
                min_width: scale * 2,
                min_space: scale * 2,
                min_area: scale * scale * 8,
            },
        );
        let via = LayerRules {
            min_width: scale,
            min_space: scale,
            min_area: scale * scale,
        };
        rules.insert(layers::CONTACT, via);
        rules.insert(layers::VIA1, via);
        rules.insert(layers::VIA2, via);
        Technology {
            node_nm,
            rules,
            via_size: scale,
            via_enclosure: (scale * 4) / 10,
            via_space: (scale * 12) / 10,
            gate_pitch: scale * 4,
            // Routing pitch of 3× the half-pitch leaves room for via
            // landing pads and double-width wires without spacing
            // violations (see `generate::routed_block`).
            m1_pitch: scale * 3,
            m2_pitch: scale * 3,
            cell_height: scale * 18,
            density_window: scale * 200,
            min_density: 0.20,
            max_density: 0.80,
        }
    }

    /// A 65 nm-class technology (in volume production at the panel date).
    pub fn n65() -> Self {
        Technology::base(65, 90)
    }

    /// A 45 nm-class technology (ramping at the panel date).
    pub fn n45() -> Self {
        Technology::base(45, 65)
    }

    /// A 28 nm-class technology (the next-node stress case).
    pub fn n28() -> Self {
        Technology::base(28, 45)
    }

    /// Ground rules for a layer.
    ///
    /// # Panics
    ///
    /// Panics for layers without defined rules (fill and marker layers
    /// deliberately have none).
    pub fn rules(&self, layer: Layer) -> LayerRules {
        self.rules
            .get(&layer)
            .copied()
            .unwrap_or_else(|| panic!("no ground rules for layer {layer}"))
    }

    /// Ground rules for a layer, if defined.
    pub fn rules_opt(&self, layer: Layer) -> Option<LayerRules> {
        self.rules.get(&layer).copied()
    }

    /// Layers with ground rules defined.
    pub fn ruled_layers(&self) -> impl Iterator<Item = Layer> + '_ {
        self.rules.keys().copied()
    }

    /// Drawn via rectangle dimensions: a square of `via_size`.
    pub fn via_rect_at(&self, center: dfm_geom::Point) -> dfm_geom::Rect {
        dfm_geom::Rect::centered_at(center, self.via_size, self.via_size)
    }

    /// Metal landing-pad rectangle for a via at `center`: the via expanded
    /// by the enclosure rule.
    pub fn via_pad_at(&self, center: dfm_geom::Point) -> dfm_geom::Rect {
        self.via_rect_at(center).expanded(self.via_enclosure)
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm-class technology", self.node_nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_monotonically() {
        let (a, b, c) = (Technology::n65(), Technology::n45(), Technology::n28());
        assert!(a.rules(layers::METAL1).min_width > b.rules(layers::METAL1).min_width);
        assert!(b.rules(layers::METAL1).min_width > c.rules(layers::METAL1).min_width);
        assert!(a.gate_pitch > b.gate_pitch && b.gate_pitch > c.gate_pitch);
    }

    #[test]
    fn via_pad_is_enclosed_via() {
        let t = Technology::n65();
        let c = dfm_geom::Point::new(1000, 1000);
        let via = t.via_rect_at(c);
        let pad = t.via_pad_at(c);
        assert!(pad.contains_rect(&via));
        assert_eq!(pad.width(), via.width() + 2 * t.via_enclosure);
    }

    #[test]
    #[should_panic(expected = "no ground rules")]
    fn marker_layer_has_no_rules() {
        let _ = Technology::n65().rules(layers::MARKER);
    }

    #[test]
    fn density_window_sane() {
        let t = Technology::n45();
        assert!(t.min_density > 0.0 && t.max_density < 1.0);
        assert!(t.density_window > 100 * t.m1_pitch / 2);
    }
}
