//! Error type for the layout database and GDSII codec.

use std::error::Error;
use std::fmt;

/// Errors produced by the layout database and GDSII reader/writer.
#[derive(Debug)]
pub enum LayoutError {
    /// A cell name was added twice to one library.
    DuplicateCell(String),
    /// A cell id or name does not exist in the library.
    UnknownCell(String),
    /// The reference graph contains a cycle through the named cell.
    RecursiveHierarchy(String),
    /// The GDSII byte stream is malformed.
    GdsParse {
        /// Byte offset of the offending record.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A GDSII construct that the workspace does not model (e.g. non-
    /// Manhattan angles).
    GdsUnsupported(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A tiling configuration is unusable (non-positive tile size,
    /// negative halo, empty layer filter...).
    InvalidTiling(String),
    /// An operation needed a top cell but none is set and none can be
    /// inferred.
    NoTopCell,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::DuplicateCell(name) => write!(f, "duplicate cell name {name:?}"),
            LayoutError::UnknownCell(name) => write!(f, "unknown cell {name:?}"),
            LayoutError::RecursiveHierarchy(name) => {
                write!(f, "recursive hierarchy through cell {name:?}")
            }
            LayoutError::GdsParse { offset, message } => {
                write!(f, "malformed GDSII at byte {offset}: {message}")
            }
            LayoutError::GdsUnsupported(what) => write!(f, "unsupported GDSII construct: {what}"),
            LayoutError::Io(e) => write!(f, "i/o error: {e}"),
            LayoutError::InvalidTiling(why) => write!(f, "invalid tiling: {why}"),
            LayoutError::NoTopCell => write!(f, "no top cell set or inferable"),
        }
    }
}

impl Error for LayoutError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LayoutError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LayoutError {
    fn from(e: std::io::Error) -> Self {
        LayoutError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = LayoutError::DuplicateCell("TOP".into());
        assert_eq!(e.to_string(), "duplicate cell name \"TOP\"");
        let e = LayoutError::GdsParse { offset: 12, message: "truncated record".into() };
        assert!(e.to_string().contains("byte 12"));
    }
}
