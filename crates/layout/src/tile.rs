//! Tile-sharded layout store: spatial partitioning with halos.
//!
//! [`TiledLayout`] shards a layout into fixed-size tiles (see
//! [`TileGrid`]) and materialises one [`TileView`] at a time, so
//! interaction-limited engines can stream over a full-chip design while
//! holding only O(tile + halo) geometry in memory. The source is either
//! an already-flattened [`FlatLayout`] or a hierarchical [`Library`],
//! in which case each view is collected *directly from the hierarchy*
//! (transform-pruned by memoized cell bounding boxes) and a full-chip
//! flat region is never built.
//!
//! Both sources produce, for each tile, per-layer regions whose point
//! set is exactly `layer ∩ window`. Engines that only depend on the
//! covered point set (all of ours, by construction) therefore merge to
//! results bit-identical to the flat path.

use crate::view::LayoutView;
use crate::{CellId, FlatLayout, Layer, LayoutError, Library};
use dfm_geom::{Coord, Rect, Region, TileGrid, Transform};
use std::collections::BTreeMap;

/// Configuration of a tile shard: tile size, halo margin, layer filter.
///
/// Built via [`TilingConfig::builder`]; validation happens in
/// [`TilingConfigBuilder::build`].
///
/// ```
/// use dfm_layout::TilingConfig;
/// let cfg = TilingConfig::builder().tile_size(4096, 4096).halo(600).build()?;
/// assert_eq!(cfg.tile_size(), (4096, 4096));
/// # Ok::<(), dfm_layout::LayoutError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TilingConfig {
    tile_w: Coord,
    tile_h: Coord,
    halo: Coord,
    layers: Option<Vec<Layer>>,
}

impl TilingConfig {
    /// Starts a builder with the defaults (8192 × 8192 tiles, 512 halo,
    /// all layers).
    pub fn builder() -> TilingConfigBuilder {
        TilingConfigBuilder::default()
    }

    /// Nominal tile size `(w, h)` in dbu.
    pub fn tile_size(&self) -> (Coord, Coord) {
        (self.tile_w, self.tile_h)
    }

    /// Baseline halo margin in dbu. Engines may request larger halos
    /// per rule; this is the floor carried by the config.
    pub fn halo(&self) -> Coord {
        self.halo
    }

    /// The layer filter, if any (`None` means all layers).
    pub fn layer_filter(&self) -> Option<&[Layer]> {
        self.layers.as_deref()
    }

    fn wants(&self, layer: Layer) -> bool {
        self.layers.as_ref().is_none_or(|ls| ls.contains(&layer))
    }
}

impl Default for TilingConfig {
    fn default() -> Self {
        TilingConfig { tile_w: 8192, tile_h: 8192, halo: 512, layers: None }
    }
}

/// Builder for [`TilingConfig`].
#[derive(Clone, Debug, Default)]
pub struct TilingConfigBuilder {
    cfg: TilingConfig,
}

impl TilingConfigBuilder {
    /// Sets the nominal tile size in dbu.
    pub fn tile_size(mut self, w: Coord, h: Coord) -> Self {
        self.cfg.tile_w = w;
        self.cfg.tile_h = h;
        self
    }

    /// Sets both tile dimensions to `side`.
    pub fn tile(self, side: Coord) -> Self {
        self.tile_size(side, side)
    }

    /// Sets the baseline halo margin in dbu.
    pub fn halo(mut self, halo: Coord) -> Self {
        self.cfg.halo = halo;
        self
    }

    /// Restricts the shard to the given layers.
    pub fn layer_filter(mut self, layers: impl IntoIterator<Item = Layer>) -> Self {
        self.cfg.layers = Some(layers.into_iter().collect());
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// [`LayoutError::InvalidTiling`] on a non-positive tile size, a
    /// negative halo, or an explicitly empty layer filter.
    pub fn build(self) -> Result<TilingConfig, LayoutError> {
        let c = &self.cfg;
        if c.tile_w <= 0 || c.tile_h <= 0 {
            return Err(LayoutError::InvalidTiling(format!(
                "tile size {}x{} must be positive",
                c.tile_w, c.tile_h
            )));
        }
        if c.halo < 0 {
            return Err(LayoutError::InvalidTiling(format!(
                "halo {} must be non-negative",
                c.halo
            )));
        }
        if let Some(ls) = &c.layers {
            if ls.is_empty() {
                return Err(LayoutError::InvalidTiling(
                    "layer filter selects no layers".into(),
                ));
            }
        }
        Ok(self.cfg)
    }
}

/// One materialised tile: per-layer geometry of `layer ∩ window`.
///
/// The *core* is the tile's half-open ownership rectangle (cores
/// partition the layout extent); the *window* is the core expanded by
/// the halo the engine asked for. Result ownership rules ("a violation
/// belongs to the tile whose core contains its canonical anchor point")
/// are what make the per-tile results merge without seam duplicates.
#[derive(Clone, Debug)]
pub struct TileView {
    index: usize,
    core: Rect,
    window: Rect,
    layers: BTreeMap<Layer, Region>,
}

impl TileView {
    /// Row-major tile index in the owning grid.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The tile's half-open ownership rectangle.
    pub fn core(&self) -> Rect {
        self.core
    }

    /// The clip window (`core` expanded by the requested halo).
    pub fn window(&self) -> Rect {
        self.window
    }
}

impl LayoutView for TileView {
    /// The view's clip window (not the tight geometry bbox): engines
    /// use it as the extent the view is authoritative for.
    fn bbox(&self) -> Rect {
        self.window
    }

    fn region_ref(&self, layer: Layer) -> Option<&Region> {
        self.layers.get(&layer)
    }

    fn used_layers(&self) -> Vec<Layer> {
        self.layers.keys().copied().collect()
    }
}

impl TileView {
    /// FNV-1a 64 digest of the view's canonical content: core, window,
    /// and every carried layer's canonical rect decomposition (sorted
    /// layer order). Two views digest equal iff they clip the same
    /// core/window to the same per-layer point sets — the property a
    /// content-addressed result cache keys on. The tile *index* is
    /// deliberately excluded: position is already pinned by the core
    /// coordinates, so an identical tile at the same place in an
    /// edited layout keeps its digest.
    pub fn content_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for r in [self.core, self.window] {
            h = fnv_rect(h, r);
        }
        for (layer, region) in &self.layers {
            h = fnv_u64(h, 0x004c_4159_4552_u64); // "LAYER" marker
            h = fnv_u64(h, layer.layer as u64);
            h = fnv_u64(h, layer.datatype as u64);
            let rects = region.rects();
            h = fnv_u64(h, rects.len() as u64);
            for &r in rects {
                h = fnv_rect(h, r);
            }
        }
        h
    }
}

enum Source {
    Flat(FlatLayout),
    Hier {
        lib: Library,
        top: CellId,
        /// Local-frame bbox of every cell's full subtree, indexed by
        /// `CellId`; used to prune the hierarchy walk per window.
        subtree_bboxes: Vec<Rect>,
    },
}

/// A spatially sharded layout: a [`TileGrid`] over the layout extent
/// plus a source to materialise [`TileView`]s from on demand.
pub struct TiledLayout {
    config: TilingConfig,
    grid: TileGrid,
    bbox: Rect,
    layers: Vec<Layer>,
    source: Source,
}

impl TiledLayout {
    /// Shards an already-flattened layout.
    pub fn from_flat(flat: FlatLayout, config: TilingConfig) -> TiledLayout {
        let bbox = flat.bbox();
        let layers = flat
            .used_layers()
            .filter(|&l| config.wants(l))
            .collect();
        let grid = TileGrid::new(bbox, config.tile_w, config.tile_h);
        TiledLayout { config, grid, bbox, layers, source: Source::Flat(flat) }
    }

    /// Shards a hierarchical library at its top cell **without
    /// flattening it**: tile views are collected straight from the
    /// hierarchy.
    ///
    /// # Errors
    ///
    /// [`LayoutError::NoTopCell`] when no top cell is set or inferable,
    /// plus any [`Library::validate`] failure.
    pub fn from_library(lib: Library, config: TilingConfig) -> Result<TiledLayout, LayoutError> {
        lib.validate()?;
        let top = lib.top().ok_or(LayoutError::NoTopCell)?;
        let subtree_bboxes = compute_subtree_bboxes(&lib);
        let bbox = subtree_bboxes[top.index()];
        let mut layers: Vec<Layer> = Vec::new();
        collect_used_layers(&lib, top, &mut layers);
        layers.retain(|&l| config.wants(l));
        layers.dedup();
        let grid = TileGrid::new(bbox, config.tile_w, config.tile_h);
        Ok(TiledLayout {
            config,
            grid,
            bbox,
            layers,
            source: Source::Hier { lib, top, subtree_bboxes },
        })
    }

    /// Parses a GDSII stream and shards it in one step — the
    /// job-scoped handle a signoff service builds per uploaded job.
    /// The hierarchy is kept (tile views stream straight from it, with
    /// subtree-bbox pruning); nothing is flattened up front.
    ///
    /// # Errors
    ///
    /// Any [`crate::gds::from_bytes`] parse diagnostic (offset +
    /// message for corrupt uploads), plus the [`from_library`]
    /// validation errors.
    ///
    /// [`from_library`]: TiledLayout::from_library
    pub fn from_gds_bytes(bytes: &[u8], config: TilingConfig) -> Result<TiledLayout, LayoutError> {
        TiledLayout::from_library(crate::gds::from_bytes(bytes)?, config)
    }

    /// The shard configuration.
    pub fn config(&self) -> &TilingConfig {
        &self.config
    }

    /// The tile grid over the layout extent.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Bounding box of the layout (the grid extent).
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.grid.len()
    }

    /// Layers carried by the shard (after the config's layer filter).
    pub fn used_layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Materialises the view of tile `i` with the given halo, carrying
    /// all configured layers. The effective halo is
    /// `max(halo, config.halo())`.
    pub fn view(&self, i: usize, halo: Coord) -> TileView {
        let layers: Vec<Layer> = self.layers.clone();
        self.view_layers(i, halo, &layers)
    }

    /// Materialises the view of tile `i` restricted to `layers`
    /// (intersected with the config's filter).
    pub fn view_layers(&self, i: usize, halo: Coord, layers: &[Layer]) -> TileView {
        let core = self.grid.core(i);
        let window = self.grid.window(i, halo.max(self.config.halo));
        let mut out: BTreeMap<Layer, Region> = BTreeMap::new();
        for &layer in layers {
            if !self.layers.contains(&layer) {
                continue;
            }
            let region = match &self.source {
                Source::Flat(flat) => flat
                    .region_ref(layer)
                    .map(|r| r.clipped(window))
                    .unwrap_or_default(),
                Source::Hier { lib, top, subtree_bboxes } => {
                    let mut rects = Vec::new();
                    collect_window_rects(
                        lib,
                        *top,
                        &Transform::identity(),
                        layer,
                        window,
                        subtree_bboxes,
                        &mut rects,
                    );
                    Region::from_rects(rects)
                }
            };
            out.insert(layer, region);
        }
        TileView { index: i, core, window, layers: out }
    }

    /// Canonical content digest of tile `i` at the given halo —
    /// [`TileView::content_digest`] of the view carrying all
    /// configured layers. A cache keyed on this digest (plus whatever
    /// digests of its *other* inputs the caller adds) is sound for any
    /// computation that reads at most this halo: an edit anywhere
    /// outside the window leaves the digest unchanged, an edit inside
    /// it changes the rect decomposition and therefore the digest.
    pub fn tile_content_digest(&self, i: usize, halo: Coord) -> u64 {
        self.view(i, halo).content_digest()
    }

    /// Total drawn area across all configured layers, accumulated
    /// tile-by-tile over the (disjoint) cores. Because cores partition
    /// the extent exactly, this equals [`FlatLayout::total_area`] of
    /// the flattened layout restricted to the same layers.
    pub fn total_area(&self) -> i128 {
        let mut sum = 0i128;
        for i in 0..self.tile_count() {
            let v = self.view(i, 0);
            for &l in &self.layers {
                if let Some(r) = v.region_ref(l) {
                    sum += r.clipped(v.core()).area();
                }
            }
        }
        sum
    }
}

impl CellId {
    /// Position of the cell in [`Library::cells`] order.
    pub fn index(self) -> usize {
        self.0
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn fnv_rect(mut h: u64, r: Rect) -> u64 {
    for c in [r.x0, r.y0, r.x1, r.y1] {
        h = fnv_u64(h, c as u64);
    }
    h
}

/// Local-frame bounding box of each cell's fully expanded subtree.
fn compute_subtree_bboxes(lib: &Library) -> Vec<Rect> {
    fn bbox_of(lib: &Library, id: CellId, memo: &mut Vec<Option<Rect>>) -> Rect {
        if let Some(b) = memo[id.index()] {
            return b;
        }
        let cell = lib.cell(id);
        let mut b = cell.local_bbox();
        for r in &cell.refs {
            if let Some(child) = lib.cell_id(&r.cell) {
                let cb = bbox_of(lib, child, memo);
                if cb.is_empty() {
                    continue;
                }
                for t in r.instance_transforms() {
                    b = b.bounding_union(&t.apply_rect(cb));
                }
            }
        }
        memo[id.index()] = Some(b);
        b
    }
    let mut memo = vec![None; lib.cell_count()];
    for i in 0..lib.cell_count() {
        bbox_of(lib, CellId(i), &mut memo);
    }
    memo.into_iter().map(|b| b.unwrap_or_else(Rect::empty)).collect()
}

fn collect_used_layers(lib: &Library, top: CellId, out: &mut Vec<Layer>) {
    fn walk(lib: &Library, id: CellId, seen: &mut Vec<bool>, out: &mut Vec<Layer>) {
        if seen[id.index()] {
            return;
        }
        seen[id.index()] = true;
        let cell = lib.cell(id);
        out.extend(cell.used_layers());
        for r in &cell.refs {
            if let Some(child) = lib.cell_id(&r.cell) {
                walk(lib, child, seen, out);
            }
        }
    }
    let mut seen = vec![false; lib.cell_count()];
    walk(lib, top, &mut seen, out);
    out.sort();
    out.dedup();
}

/// Streams `layer` geometry of the subtree at `id` (placed by `t`) into
/// `out`, clipped to `window`, pruning subtrees whose transformed bbox
/// misses the window.
fn collect_window_rects(
    lib: &Library,
    id: CellId,
    t: &Transform,
    layer: Layer,
    window: Rect,
    subtree_bboxes: &[Rect],
    out: &mut Vec<Rect>,
) {
    let sub = subtree_bboxes[id.index()];
    if sub.is_empty() || t.apply_rect(sub).intersection(&window).is_none() {
        return;
    }
    let cell = lib.cell(id);
    for shape in cell.shapes(layer) {
        let moved = shape.transformed(t);
        if moved.bbox().intersection(&window).is_none() {
            continue;
        }
        for r in moved.to_rects() {
            if let Some(clipped) = r.intersection(&window) {
                out.push(clipped);
            }
        }
    }
    for r in &cell.refs {
        if let Some(child) = lib.cell_id(&r.cell) {
            for inst in r.instance_transforms() {
                let combined = inst.then(t);
                collect_window_rects(lib, child, &combined, layer, window, subtree_bboxes, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{layers, Cell, CellRef};
    use dfm_geom::{Point, Vector};

    fn sample_library() -> Library {
        let mut lib = Library::new("L");
        let mut leaf = Cell::new("LEAF");
        leaf.add_rect(layers::METAL1, Rect::new(0, 0, 60, 60));
        leaf.add_rect(layers::METAL2, Rect::new(10, 10, 50, 50));
        lib.add_cell(leaf).expect("leaf");
        let mut top = Cell::new("TOP");
        for k in 0..8 {
            top.add_ref(CellRef::new(
                "LEAF",
                Transform::translate(Vector::new(k * 100, (k % 3) * 90)),
            ));
        }
        top.add_rect(layers::METAL1, Rect::new(-40, -40, 900, -20));
        let id = lib.add_cell(top).expect("top");
        lib.set_top(id).expect("top id");
        lib
    }

    #[test]
    fn builder_validates() {
        assert!(TilingConfig::builder().tile(0).build().is_err());
        assert!(TilingConfig::builder().halo(-1).build().is_err());
        assert!(TilingConfig::builder()
            .layer_filter(std::iter::empty())
            .build()
            .is_err());
        let cfg = TilingConfig::builder()
            .tile_size(100, 200)
            .halo(7)
            .layer_filter([layers::METAL1])
            .build()
            .expect("valid");
        assert_eq!(cfg.tile_size(), (100, 200));
        assert_eq!(cfg.halo(), 7);
        assert_eq!(cfg.layer_filter(), Some(&[layers::METAL1][..]));
    }

    #[test]
    fn flat_and_hier_views_carry_identical_point_sets() {
        let lib = sample_library();
        let flat = lib.flatten_top().expect("flatten");
        let cfg = TilingConfig::builder().tile(150).halo(25).build().expect("cfg");
        let from_flat = TiledLayout::from_flat(flat.clone(), cfg.clone());
        let from_hier = TiledLayout::from_library(lib, cfg).expect("hier");
        assert_eq!(from_flat.bbox(), from_hier.bbox());
        assert_eq!(from_flat.tile_count(), from_hier.tile_count());
        assert_eq!(from_flat.used_layers(), from_hier.used_layers());
        for i in 0..from_flat.tile_count() {
            let a = from_flat.view(i, 30);
            let b = from_hier.view(i, 30);
            assert_eq!(a.core(), b.core());
            assert_eq!(a.window(), b.window());
            for &l in from_flat.used_layers() {
                let (ra, rb) = (LayoutView::region(&a, l), LayoutView::region(&b, l));
                // Same point set regardless of decomposition details.
                assert!(ra.xor(&rb).is_empty(), "tile {i} layer {l}");
            }
        }
    }

    #[test]
    fn views_window_clip_matches_flat_clip() {
        let lib = sample_library();
        let flat = lib.flatten_top().expect("flatten");
        let cfg = TilingConfig::builder().tile(170).halo(40).build().expect("cfg");
        let tiled = TiledLayout::from_flat(flat.clone(), cfg);
        for i in 0..tiled.tile_count() {
            let v = tiled.view(i, 40);
            for &l in tiled.used_layers() {
                let direct = flat.region(l).clipped(v.window());
                assert!(LayoutView::region(&v, l).xor(&direct).is_empty());
            }
        }
    }

    #[test]
    fn total_area_matches_flat_exactly() {
        let lib = sample_library();
        let flat = lib.flatten_top().expect("flatten");
        for tile in [64, 97, 150, 1000] {
            let cfg = TilingConfig::builder().tile(tile).build().expect("cfg");
            let tiled = TiledLayout::from_library(sample_library(), cfg).expect("hier");
            assert_eq!(tiled.total_area(), flat.total_area(), "tile {tile}");
        }
    }

    #[test]
    fn layer_filter_restricts_views() {
        let lib = sample_library();
        let cfg = TilingConfig::builder()
            .tile(500)
            .layer_filter([layers::METAL2])
            .build()
            .expect("cfg");
        let tiled = TiledLayout::from_library(lib, cfg).expect("hier");
        assert_eq!(tiled.used_layers(), &[layers::METAL2]);
        let v = tiled.view(0, 0);
        assert!(v.region_ref(layers::METAL1).is_none());
        assert!(v.region_ref(layers::METAL2).is_some());
    }

    #[test]
    fn ownership_anchor_is_unique() {
        let lib = sample_library();
        let flat = lib.flatten_top().expect("flatten");
        let cfg = TilingConfig::builder().tile(123).build().expect("cfg");
        let tiled = TiledLayout::from_flat(flat, cfg);
        let g = *tiled.grid();
        // Every interior point is owned by exactly one core.
        for p in [Point::new(0, 0), Point::new(122, 90), Point::new(123, 0)] {
            let owner = g.tile_of(p).expect("inside");
            let mut owners = 0;
            for i in 0..g.len() {
                let c = g.core(i);
                if c.x0 <= p.x && p.x < c.x1 && c.y0 <= p.y && p.y < c.y1 {
                    owners += 1;
                    assert_eq!(i, owner);
                }
            }
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn content_digest_tracks_window_content_only() {
        let lib = sample_library();
        let flat = lib.flatten_top().expect("flatten");
        let cfg = TilingConfig::builder().tile(150).halo(25).build().expect("cfg");
        let tiled = TiledLayout::from_flat(flat.clone(), cfg.clone());
        assert!(tiled.tile_count() > 2, "fixture must be multi-tile");
        // Reproducible, and identical between flat and hier sources
        // (same point sets → same canonical decomposition).
        let hier = TiledLayout::from_library(lib, cfg.clone()).expect("hier");
        for i in 0..tiled.tile_count() {
            assert_eq!(
                tiled.tile_content_digest(i, 30),
                hier.tile_content_digest(i, 30),
                "tile {i}: source must not leak into the digest"
            );
        }
        // A mutation inside tile 0's window changes that digest; tiles
        // whose windows miss the new rect keep theirs.
        let mut edited = flat.clone();
        let mut rects = flat.region(layers::METAL1).rects().to_vec();
        rects.push(Rect::new(5, 70, 15, 80));
        edited.set_region(layers::METAL1, Region::from_rects(rects));
        let edited = TiledLayout::from_flat(edited, cfg);
        assert_ne!(
            tiled.tile_content_digest(0, 30),
            edited.tile_content_digest(0, 30),
            "dirty tile must change digest"
        );
        let mut unchanged = 0;
        for i in 0..tiled.tile_count() {
            let w = tiled.view(i, 30).window();
            if w.intersection(&Rect::new(5, 70, 15, 80)).is_none() {
                assert_eq!(
                    tiled.tile_content_digest(i, 30),
                    edited.tile_content_digest(i, 30),
                    "tile {i} is clean, digest must hold"
                );
                unchanged += 1;
            }
        }
        assert!(unchanged > 0, "edit must be tile-local in this fixture");
        // The requested halo participates: a wider window is a
        // different content claim.
        assert_ne!(tiled.tile_content_digest(0, 30), tiled.tile_content_digest(0, 60));
    }

    #[test]
    fn from_library_requires_top() {
        let mut lib = Library::new("L");
        lib.add_cell(Cell::new("A")).expect("a");
        lib.add_cell(Cell::new("B")).expect("b");
        let cfg = TilingConfig::builder().build().expect("cfg");
        assert!(matches!(
            TiledLayout::from_library(lib, cfg),
            Err(LayoutError::NoTopCell)
        ));
    }
}
