//! Cells: named containers of shapes, labels and hierarchical references.

use crate::{Layer, LayoutError};
use dfm_geom::{Point, Polygon, Rect, Region, Transform};
use std::collections::BTreeMap;
use std::fmt;

/// A geometric shape on a layer: either a rectangle (the common case,
/// stored compactly) or a general rectilinear polygon.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Shape {
    /// An axis-aligned rectangle.
    Rect(Rect),
    /// A rectilinear polygon.
    Polygon(Polygon),
}

impl Shape {
    /// Bounding box of the shape.
    pub fn bbox(&self) -> Rect {
        match self {
            Shape::Rect(r) => *r,
            Shape::Polygon(p) => p.bbox(),
        }
    }

    /// Area of the shape.
    pub fn area(&self) -> i128 {
        match self {
            Shape::Rect(r) => r.area(),
            Shape::Polygon(p) => p.area(),
        }
    }

    /// Decomposes the shape into disjoint rectangles.
    pub fn to_rects(&self) -> Vec<Rect> {
        match self {
            Shape::Rect(r) => vec![*r],
            Shape::Polygon(p) => p.to_rects(),
        }
    }

    /// Applies a placement transform.
    pub fn transformed(&self, t: &Transform) -> Shape {
        match self {
            Shape::Rect(r) => Shape::Rect(t.apply_rect(*r)),
            Shape::Polygon(p) => Shape::Polygon(p.transformed(t)),
        }
    }
}

impl From<Rect> for Shape {
    fn from(r: Rect) -> Self {
        Shape::Rect(r)
    }
}

impl From<Polygon> for Shape {
    fn from(p: Polygon) -> Self {
        Shape::Polygon(p)
    }
}

/// Array replication parameters for an [`CellRef`] (GDSII `AREF`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArrayParams {
    /// Number of columns (placements along the column vector).
    pub cols: u16,
    /// Number of rows.
    pub rows: u16,
    /// Step between columns, in dbu (applied in the referenced frame
    /// *after* the transform's linear part).
    pub col_pitch: i64,
    /// Step between rows, in dbu.
    pub row_pitch: i64,
}

/// A placement of another cell, with optional array replication.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellRef {
    /// Name of the referenced cell (resolved inside a [`crate::Library`]).
    pub cell: String,
    /// Placement transform of the (first) instance.
    pub transform: Transform,
    /// Array replication (GDSII `AREF`), if any.
    pub array: Option<ArrayParams>,
}

impl CellRef {
    /// A single placement of `cell` under `transform`.
    pub fn new(cell: impl Into<String>, transform: Transform) -> Self {
        CellRef { cell: cell.into(), transform, array: None }
    }

    /// An arrayed placement.
    pub fn array(cell: impl Into<String>, transform: Transform, array: ArrayParams) -> Self {
        CellRef { cell: cell.into(), transform, array: Some(array) }
    }

    /// Iterates over the effective transforms of every instance in the
    /// (possibly arrayed) reference.
    pub fn instance_transforms(&self) -> Vec<Transform> {
        match self.array {
            None => vec![self.transform],
            Some(a) => {
                let mut out = Vec::with_capacity(a.cols as usize * a.rows as usize);
                for row in 0..a.rows as i64 {
                    for col in 0..a.cols as i64 {
                        // Array displacement happens in the parent frame
                        // along the transformed axes (GDSII semantics).
                        let step = self.transform.linear_apply(dfm_geom::Vector::new(
                            col * a.col_pitch,
                            row * a.row_pitch,
                        ));
                        let mut t = self.transform;
                        t.offset = t.offset + step;
                        out.push(t);
                    }
                }
                out
            }
        }
    }

    /// Number of instances this reference expands to.
    pub fn instance_count(&self) -> usize {
        match self.array {
            None => 1,
            Some(a) => a.cols as usize * a.rows as usize,
        }
    }
}

/// A text label (GDSII `TEXT`), used for net names and markers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Label {
    /// Layer carrying the label.
    pub layer: Layer,
    /// Anchor position.
    pub position: Point,
    /// Label text.
    pub text: String,
}

/// A named layout cell: per-layer shapes, labels, and references to other
/// cells.
///
/// ```
/// use dfm_layout::{layers, Cell};
/// use dfm_geom::Rect;
/// let mut c = Cell::new("INV");
/// c.add_rect(layers::POLY, Rect::new(0, 0, 60, 400));
/// assert_eq!(c.shape_count(), 1);
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Cell {
    /// Cell name (unique within a library).
    pub name: String,
    shapes: BTreeMap<Layer, Vec<Shape>>,
    /// Hierarchical references placed in this cell.
    pub refs: Vec<CellRef>,
    /// Text labels in this cell.
    pub labels: Vec<Label>,
}

impl Cell {
    /// Creates an empty cell with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Cell { name: name.into(), ..Default::default() }
    }

    /// Adds a shape on a layer.
    pub fn add_shape(&mut self, layer: Layer, shape: impl Into<Shape>) {
        self.shapes.entry(layer).or_default().push(shape.into());
    }

    /// Adds a rectangle on a layer (convenience for the common case).
    pub fn add_rect(&mut self, layer: Layer, rect: Rect) {
        self.add_shape(layer, Shape::Rect(rect));
    }

    /// Adds a hierarchical reference.
    pub fn add_ref(&mut self, r: CellRef) {
        self.refs.push(r);
    }

    /// Adds a text label.
    pub fn add_label(&mut self, label: Label) {
        self.labels.push(label);
    }

    /// The layers that carry shapes in this cell, in sorted order.
    pub fn used_layers(&self) -> impl Iterator<Item = Layer> + '_ {
        self.shapes.keys().copied()
    }

    /// Shapes on a given layer (empty slice if none).
    pub fn shapes(&self, layer: Layer) -> &[Shape] {
        self.shapes.get(&layer).map_or(&[], |v| v.as_slice())
    }

    /// Mutable access to the shapes on a layer, creating the layer entry.
    pub fn shapes_mut(&mut self, layer: Layer) -> &mut Vec<Shape> {
        self.shapes.entry(layer).or_default()
    }

    /// Iterates over `(layer, shape)` for all shapes.
    pub fn iter_shapes(&self) -> impl Iterator<Item = (Layer, &Shape)> + '_ {
        self.shapes
            .iter()
            .flat_map(|(l, v)| v.iter().map(move |s| (*l, s)))
    }

    /// Total number of local shapes (references not expanded).
    pub fn shape_count(&self) -> usize {
        self.shapes.values().map(|v| v.len()).sum()
    }

    /// Local geometry of one layer as a [`Region`] (references not
    /// expanded; see [`crate::Library::flatten`] for the hierarchy).
    pub fn layer_region(&self, layer: Layer) -> Region {
        Region::from_rects(self.shapes(layer).iter().flat_map(|s| s.to_rects()))
    }

    /// Bounding box of the local shapes only.
    pub fn local_bbox(&self) -> Rect {
        let mut b = Rect::empty();
        for (_, s) in self.iter_shapes() {
            b = b.bounding_union(&s.bbox());
        }
        b
    }

    /// Replaces all shapes on `layer` with the rectangles of `region`.
    pub fn set_layer_region(&mut self, layer: Layer, region: &Region) {
        let v = self.shapes.entry(layer).or_default();
        v.clear();
        v.extend(region.rects().iter().map(|&r| Shape::Rect(r)));
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} ({} shapes, {} refs)",
            self.name,
            self.shape_count(),
            self.refs.len()
        )
    }
}

/// Validation helper shared with [`crate::Library`]: checks a cell's refs
/// against a name-resolution function.
pub(crate) fn check_refs(
    cell: &Cell,
    mut resolve: impl FnMut(&str) -> bool,
) -> Result<(), LayoutError> {
    for r in &cell.refs {
        if !resolve(&r.cell) {
            return Err(LayoutError::UnknownCell(r.cell.clone()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers;
    use dfm_geom::{Rotation, Vector};

    #[test]
    fn add_and_query_shapes() {
        let mut c = Cell::new("X");
        c.add_rect(layers::METAL1, Rect::new(0, 0, 10, 10));
        c.add_rect(layers::METAL1, Rect::new(20, 0, 30, 10));
        c.add_rect(layers::METAL2, Rect::new(0, 0, 5, 5));
        assert_eq!(c.shape_count(), 3);
        assert_eq!(c.shapes(layers::METAL1).len(), 2);
        assert_eq!(c.shapes(layers::VIA1).len(), 0);
        assert_eq!(c.layer_region(layers::METAL1).area(), 200);
        assert_eq!(c.used_layers().count(), 2);
        assert_eq!(c.local_bbox(), Rect::new(0, 0, 30, 10));
    }

    #[test]
    fn array_instance_transforms() {
        let r = CellRef::array(
            "A",
            Transform::translate(Vector::new(100, 200)),
            ArrayParams { cols: 3, rows: 2, col_pitch: 10, row_pitch: 20 },
        );
        let ts = r.instance_transforms();
        assert_eq!(ts.len(), 6);
        assert_eq!(ts[0].offset, Vector::new(100, 200));
        assert_eq!(ts[1].offset, Vector::new(110, 200));
        assert_eq!(ts[3].offset, Vector::new(100, 220));
    }

    #[test]
    fn rotated_array_steps_along_rotated_axes() {
        let r = CellRef::array(
            "A",
            Transform::new(Vector::zero(), Rotation::R90, false),
            ArrayParams { cols: 2, rows: 1, col_pitch: 10, row_pitch: 0 },
        );
        let ts = r.instance_transforms();
        // Column axis rotated 90°: step (10,0) becomes (0,10).
        assert_eq!(ts[1].offset, Vector::new(0, 10));
    }

    #[test]
    fn set_layer_region_replaces() {
        let mut c = Cell::new("X");
        c.add_rect(layers::METAL1, Rect::new(0, 0, 10, 10));
        c.set_layer_region(layers::METAL1, &Region::from_rect(Rect::new(5, 5, 6, 6)));
        assert_eq!(c.layer_region(layers::METAL1).area(), 1);
    }
}
