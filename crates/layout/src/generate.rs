//! Deterministic synthetic layout generators.
//!
//! The paper's evaluation ran on production designs that cannot be
//! redistributed; these generators produce synthetic-but-realistic stand-ins
//! that exercise the same code paths (see the substitution table in
//! `DESIGN.md`). Every generator takes an explicit `seed`, so all
//! experiments are bit-reproducible.

use crate::{layers, ArrayParams, Cell, CellRef, Label, Library, Technology};
use dfm_geom::{Point, Rect, Transform, Vector};
use dfm_rand::Rng;

/// Parameters for [`routed_block`].
#[derive(Clone, Copy, Debug)]
pub struct RoutedBlockParams {
    /// Block width in dbu.
    pub width: i64,
    /// Block height in dbu.
    pub height: i64,
    /// Fraction of each metal-1 track occupied by wire (0–1).
    pub m1_fill: f64,
    /// Fraction of each metal-2 track occupied by wire (0–1).
    pub m2_fill: f64,
    /// Probability that an M1/M2 crossing receives a via.
    pub via_prob: f64,
    /// Probability that a wire segment takes a one-track jog mid-span.
    pub jog_prob: f64,
    /// Probability that a wire is drawn at double width.
    pub wide_prob: f64,
}

impl Default for RoutedBlockParams {
    fn default() -> Self {
        RoutedBlockParams {
            width: 40_000,
            height: 40_000,
            m1_fill: 0.45,
            m2_fill: 0.40,
            via_prob: 0.25,
            jog_prob: 0.15,
            wide_prob: 0.10,
        }
    }
}

impl RoutedBlockParams {
    /// A denser variant (stress case for spacing-driven yield loss).
    pub fn dense() -> Self {
        RoutedBlockParams {
            m1_fill: 0.70,
            m2_fill: 0.65,
            via_prob: 0.35,
            jog_prob: 0.25,
            ..Default::default()
        }
    }

    /// A sparse variant (fill-insertion stress case).
    pub fn sparse() -> Self {
        RoutedBlockParams {
            m1_fill: 0.15,
            m2_fill: 0.12,
            via_prob: 0.10,
            jog_prob: 0.05,
            ..Default::default()
        }
    }
}

/// One drawn straight wire piece, axis-aligned along its track.
#[derive(Clone, Copy, Debug)]
struct Span {
    /// Centreline position on the cross axis.
    center: i64,
    /// Along-axis start (snapped to the routing grid).
    lo: i64,
    /// Along-axis end (snapped to the routing grid).
    hi: i64,
    /// Half-width of the wire.
    half: i64,
}

/// Fills one track with wire runs on an integer slot grid. Runs are
/// `[lo, hi)` in dbu; at least one empty slot separates consecutive runs,
/// which guarantees along-track spacing ≥ `grid`.
fn fill_track(rng: &mut Rng, slots: i64, fill: f64, grid: i64) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    let mut pos = 0i64;
    while pos + 2 <= slots {
        if rng.f64() < fill {
            let len = 2 + rng.range(0..10i64).min(slots - pos - 2);
            out.push((pos * grid, (pos + len) * grid));
            pos += len + 1;
        } else {
            pos += 1 + rng.range(0..4i64);
        }
    }
    out
}

/// Generates a routed two-metal block: horizontal metal-1 wires, vertical
/// metal-2 wires, and vias (with landing pads) at a random subset of
/// crossings. Wires occasionally jog to the adjacent track, producing the
/// 2-D configurations that pattern-based DFM targets.
///
/// The block is **clean by construction** for width, spacing, enclosure
/// and area rules: every endpoint, jog and via centre sits on a routing
/// grid equal to the metal pitch (3× the minimum width), which leaves
/// spacing margin for double-width wires and via landing pads.
///
/// The output is a flat single-cell library named `ROUTED`.
pub fn routed_block(tech: &Technology, params: RoutedBlockParams, seed: u64) -> Library {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cell = Cell::new("ROUTED");
    let w1 = tech.rules(layers::METAL1).min_width;
    let w2 = tech.rules(layers::METAL2).min_width;
    let p1 = tech.m1_pitch;
    let p2 = tech.m2_pitch;

    let mut m1_spans: Vec<Span> = Vec::new();
    let mut m2_spans: Vec<Span> = Vec::new();

    // Metal-1: horizontal tracks at y = t*p1 + p1/2; endpoints on the
    // x-grid of pitch p2 (shared with M2 track centres and via centres).
    let n1 = (params.height / p1 - 1).max(0);
    let x_slots = params.width / p2;
    for t in 0..n1 {
        let y = t * p1 + p1 / 2;
        for (lo, hi) in fill_track(&mut rng, x_slots, params.m1_fill, p2) {
            let half = if rng.f64() < params.wide_prob { w1 } else { w1 / 2 };
            let jog = rng.f64() < params.jog_prob
                && hi - lo >= 4 * p2
                && t + 1 < n1;
            if jog {
                let mid = lo + ((hi - lo) / (2 * p2)) * p2;
                let y2 = (t + 1) * p1 + p1 / 2;
                m1_spans.push(Span { center: y, lo, hi: mid, half });
                m1_spans.push(Span { center: y2, lo: mid, hi, half });
                // Vertical jog connector (drawn directly, not a via site).
                cell.add_rect(
                    layers::METAL1,
                    Rect::new(mid - half, y - half, mid + half, y2 + half),
                );
            } else {
                m1_spans.push(Span { center: y, lo, hi, half });
            }
        }
    }
    // Metal-2: vertical tracks at x = t*p2 (on the shared x-grid);
    // endpoints on the y-grid of pitch p1.
    let n2 = (params.width / p2 - 1).max(1);
    let y_slots = params.height / p1;
    for t in 1..n2 {
        let x = t * p2;
        for (lo, hi) in fill_track(&mut rng, y_slots, params.m2_fill, p1) {
            let half = if rng.f64() < params.wide_prob { w2 } else { w2 / 2 };
            m2_spans.push(Span { center: x, lo, hi, half });
        }
    }

    for s in &m1_spans {
        cell.add_rect(layers::METAL1, Rect::new(s.lo, s.center - s.half, s.hi, s.center + s.half));
    }
    for s in &m2_spans {
        cell.add_rect(layers::METAL2, Rect::new(s.center - s.half, s.lo, s.center + s.half, s.lo.max(s.hi)));
    }

    // Vias at drawn-span crossings where the landing pad fits entirely
    // within both wires' along-axis extent.
    let pad_half = tech.via_size / 2 + tech.via_enclosure;
    for m1 in &m1_spans {
        for m2 in &m2_spans {
            let x = m2.center;
            let y = m1.center;
            if x - pad_half >= m1.lo
                && x + pad_half <= m1.hi
                && y - pad_half >= m2.lo
                && y + pad_half <= m2.hi
                && rng.f64() < params.via_prob
            {
                let c = Point::new(x, y);
                cell.add_rect(layers::VIA1, tech.via_rect_at(c));
                cell.add_rect(layers::METAL1, tech.via_pad_at(c));
                cell.add_rect(layers::METAL2, tech.via_pad_at(c));
            }
        }
    }

    let mut lib = Library::new(format!("routed_{}", tech.node_nm));
    let id = lib.add_cell(cell).expect("fresh library has no name clash");
    lib.set_top(id).expect("id is valid");
    lib
}

/// Builds a small standard-cell family (INV, NAND2, FILL) for `tech`.
fn build_std_cells(tech: &Technology, lib: &mut Library) {
    let gp = tech.gate_pitch;
    let h = tech.cell_height;
    let pw = tech.rules(layers::POLY).min_width;
    let m1w = tech.rules(layers::METAL1).min_width;
    let cs = tech.via_size;

    let make = |name: &str, gates: i64| -> Cell {
        let mut c = Cell::new(name);
        let w = gp * (gates + 1);
        // Power rails.
        c.add_rect(layers::METAL1, Rect::new(0, 0, w, m1w * 2));
        c.add_rect(layers::METAL1, Rect::new(0, h - m1w * 2, w, h));
        // Active regions (p over n).
        c.add_rect(layers::ACTIVE, Rect::new(gp / 2, h / 8, w - gp / 2, h * 3 / 8));
        c.add_rect(layers::ACTIVE, Rect::new(gp / 2, h * 5 / 8, w - gp / 2, h * 7 / 8));
        for g in 0..gates {
            let x = gp + g * gp;
            // Poly gate crossing both actives.
            c.add_rect(layers::POLY, Rect::new(x - pw / 2, h / 16, x + pw / 2, h * 15 / 16));
            // Gate contact landing.
            c.add_rect(
                layers::POLY,
                Rect::new(x - pw, h * 7 / 16, x + pw, h * 9 / 16),
            );
            c.add_rect(
                layers::CONTACT,
                Rect::centered_at(Point::new(x, h / 2), cs, cs),
            );
            c.add_rect(
                layers::METAL1,
                Rect::centered_at(Point::new(x, h / 2), cs + 2 * tech.via_enclosure, cs + 2 * tech.via_enclosure),
            );
        }
        // Source/drain contacts between gates.
        for g in 0..=gates {
            let x = gp / 2 + g * gp;
            for yc in [h / 4, h * 3 / 4] {
                c.add_rect(layers::CONTACT, Rect::centered_at(Point::new(x, yc), cs, cs));
                c.add_rect(
                    layers::METAL1,
                    Rect::centered_at(
                        Point::new(x, yc),
                        cs + 2 * tech.via_enclosure,
                        cs + 2 * tech.via_enclosure,
                    ),
                );
            }
        }
        c
    };

    lib.add_cell(make("INV", 1)).expect("INV unique");
    lib.add_cell(make("NAND2", 2)).expect("NAND2 unique");
    let mut fill = Cell::new("FILL");
    fill.add_rect(layers::METAL1, Rect::new(0, 0, tech.gate_pitch, 2 * m1w));
    fill.add_rect(
        layers::METAL1,
        Rect::new(0, h - 2 * m1w, tech.gate_pitch, h),
    );
    lib.add_cell(fill).expect("FILL unique");
}

/// Generates a standard-cell block: `rows` rows of randomly chosen cells
/// (INV/NAND2/FILL), placed edge-to-edge, with alternate rows flipped as
/// in real row-based placement.
///
/// Returns a hierarchical library with top cell `BLOCK`.
pub fn standard_cell_block(tech: &Technology, rows: usize, row_width: i64, seed: u64) -> Library {
    let mut rng = Rng::seed_from_u64(seed);
    let mut lib = Library::new(format!("stdcells_{}", tech.node_nm));
    build_std_cells(tech, &mut lib);
    let widths = [
        ("INV", tech.gate_pitch * 2),
        ("NAND2", tech.gate_pitch * 3),
        ("FILL", tech.gate_pitch),
    ];
    let mut top = Cell::new("BLOCK");
    for row in 0..rows as i64 {
        let y = row * tech.cell_height;
        let flipped = row % 2 == 1;
        let mut x = 0i64;
        while x < row_width {
            let (name, w) = widths[rng.range(0..widths.len())];
            let t = if flipped {
                // Flip about x then shift so the cell occupies [y, y+h).
                Transform::new(
                    Vector::new(x, y + tech.cell_height),
                    dfm_geom::Rotation::R0,
                    true,
                )
            } else {
                Transform::translate(Vector::new(x, y))
            };
            top.add_ref(CellRef::new(name, t));
            x += w;
        }
    }
    let id = lib.add_cell(top).expect("BLOCK unique");
    lib.set_top(id).expect("valid id");
    lib
}

/// Generates a via chain: `n` alternating metal-1/metal-2 straps connected
/// by single vias — the canonical via-yield test structure.
///
/// Returns a flat library with top cell `VIACHAIN`.
pub fn via_chain(tech: &Technology, n: usize) -> Library {
    let mut cell = Cell::new("VIACHAIN");
    let step = tech.via_size + tech.via_space + 2 * tech.via_enclosure;
    let m1w = tech.rules(layers::METAL1).min_width.max(tech.via_size + 2 * tech.via_enclosure);
    for i in 0..n as i64 {
        let x = i * step * 2;
        let c1 = Point::new(x, 0);
        let c2 = Point::new(x + step, 0);
        cell.add_rect(layers::VIA1, tech.via_rect_at(c1));
        cell.add_rect(layers::VIA1, tech.via_rect_at(c2));
        // M1 strap joining the two vias of this link.
        let pad1 = tech.via_pad_at(c1);
        let pad2 = tech.via_pad_at(c2);
        cell.add_rect(
            layers::METAL1,
            Rect::new(pad1.x0, -m1w / 2, pad2.x1, m1w / 2),
        );
        // M2 strap joining to the next link.
        let c3 = Point::new(x + 2 * step, 0);
        let pad3 = tech.via_pad_at(c3);
        cell.add_rect(
            layers::METAL2,
            Rect::new(pad2.x0, -m1w / 2, pad3.x1.min(pad2.x1 + step * 2), m1w / 2),
        );
    }
    let mut lib = Library::new(format!("viachain_{}", tech.node_nm));
    let id = lib.add_cell(cell).expect("fresh library");
    lib.set_top(id).expect("valid id");
    lib
}

/// Generates an SRAM-like array: a dense bitcell arrayed `rows × cols`
/// with GDSII `AREF` replication. Exercises hierarchy expansion and the
/// dense, highly-regular patterns where pattern catalogs shine.
pub fn sram_array(tech: &Technology, rows: u16, cols: u16) -> Library {
    let mut lib = Library::new(format!("sram_{}", tech.node_nm));
    let pw = tech.rules(layers::POLY).min_width;
    let m1w = tech.rules(layers::METAL1).min_width;
    let cs = tech.via_size;
    let cw = tech.gate_pitch * 2; // bitcell width
    let ch = tech.cell_height / 2; // bitcell height

    let mut bit = Cell::new("BITCELL");
    bit.add_rect(layers::ACTIVE, Rect::new(cw / 8, ch / 8, cw * 3 / 8, ch * 7 / 8));
    bit.add_rect(layers::ACTIVE, Rect::new(cw * 5 / 8, ch / 8, cw * 7 / 8, ch * 7 / 8));
    // Two horizontal poly wordline fingers.
    bit.add_rect(layers::POLY, Rect::new(0, ch / 4 - pw / 2, cw, ch / 4 + pw / 2));
    bit.add_rect(layers::POLY, Rect::new(0, ch * 3 / 4 - pw / 2, cw, ch * 3 / 4 + pw / 2));
    // Bitline metal.
    bit.add_rect(layers::METAL1, Rect::new(cw / 4 - m1w / 2, 0, cw / 4 + m1w / 2, ch));
    bit.add_rect(
        layers::METAL1,
        Rect::new(cw * 3 / 4 - m1w / 2, 0, cw * 3 / 4 + m1w / 2, ch),
    );
    // Cell contact.
    bit.add_rect(
        layers::CONTACT,
        Rect::centered_at(Point::new(cw / 4, ch / 2), cs, cs),
    );
    bit.add_label(Label {
        layer: layers::MARKER,
        position: Point::new(cw / 2, ch / 2),
        text: "bit".into(),
    });
    lib.add_cell(bit).expect("BITCELL unique");

    let mut top = Cell::new("ARRAY");
    top.add_ref(CellRef::array(
        "BITCELL",
        Transform::identity(),
        ArrayParams {
            cols,
            rows,
            col_pitch: cw,
            row_pitch: ch,
        },
    ));
    let id = lib.add_cell(top).expect("ARRAY unique");
    lib.set_top(id).expect("valid id");
    lib
}

/// Generates classic lithography test structures on metal-1: line/space
/// gratings at several pitches, an isolated line, a line-end gap pair, and
/// a T-junction. Used by the OPC and process-window experiments (E3).
///
/// Returns a flat library with top cell `LITHOTEST`; each structure group
/// is annotated with a MARKER label at its anchor.
pub fn litho_test_patterns(tech: &Technology) -> Library {
    let w = tech.rules(layers::METAL1).min_width;
    let mut cell = Cell::new("LITHOTEST");
    let mut y = 0i64;
    let len = w * 40;

    // Gratings at pitch multipliers 2..5 (dense .. semi-isolated).
    for mult in 2..=5i64 {
        let pitch = w * mult;
        for i in 0..7i64 {
            cell.add_rect(layers::METAL1, Rect::new(0, y + i * pitch, len, y + i * pitch + w));
        }
        cell.add_label(Label {
            layer: layers::MARKER,
            position: Point::new(0, y),
            text: format!("grating_p{mult}"),
        });
        y += 8 * pitch + w * 10;
    }

    // Isolated line.
    cell.add_rect(layers::METAL1, Rect::new(0, y, len, y + w));
    cell.add_label(Label {
        layer: layers::MARKER,
        position: Point::new(0, y),
        text: "iso_line".into(),
    });
    y += w * 12;

    // Line-end gap pair (tip-to-tip): classic pinch/bridge site.
    let gap = w * 2;
    cell.add_rect(layers::METAL1, Rect::new(0, y, len / 2 - gap / 2, y + w));
    cell.add_rect(layers::METAL1, Rect::new(len / 2 + gap / 2, y, len, y + w));
    cell.add_label(Label {
        layer: layers::MARKER,
        position: Point::new(len / 2, y),
        text: "line_end_gap".into(),
    });
    y += w * 12;

    // T-junction.
    cell.add_rect(layers::METAL1, Rect::new(0, y, len, y + w));
    cell.add_rect(
        layers::METAL1,
        Rect::new(len / 2 - w / 2, y, len / 2 + w / 2, y + w * 10),
    );
    cell.add_label(Label {
        layer: layers::MARKER,
        position: Point::new(len / 2, y),
        text: "t_junction".into(),
    });

    let mut lib = Library::new(format!("lithotest_{}", tech.node_nm));
    let id = lib.add_cell(cell).expect("fresh library");
    lib.set_top(id).expect("valid id");
    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers;

    #[test]
    fn routed_block_is_deterministic() {
        let tech = Technology::n65();
        let a = routed_block(&tech, RoutedBlockParams::default(), 7);
        let b = routed_block(&tech, RoutedBlockParams::default(), 7);
        let fa = a.flatten(a.top().expect("top")).expect("flatten");
        let fb = b.flatten(b.top().expect("top")).expect("flatten");
        assert_eq!(fa.region(layers::METAL1).area(), fb.region(layers::METAL1).area());
        assert_eq!(fa.region(layers::VIA1).rect_count(), fb.region(layers::VIA1).rect_count());
    }

    #[test]
    fn routed_block_seeds_differ() {
        let tech = Technology::n65();
        let a = routed_block(&tech, RoutedBlockParams::default(), 1);
        let b = routed_block(&tech, RoutedBlockParams::default(), 2);
        let fa = a.flatten(a.top().expect("top")).expect("flatten");
        let fb = b.flatten(b.top().expect("top")).expect("flatten");
        assert_ne!(fa.region(layers::METAL1).area(), fb.region(layers::METAL1).area());
    }

    #[test]
    fn routed_block_has_all_route_layers() {
        let tech = Technology::n45();
        let lib = routed_block(&tech, RoutedBlockParams::default(), 3);
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        assert!(flat.region(layers::METAL1).area() > 0);
        assert!(flat.region(layers::METAL2).area() > 0);
        assert!(flat.region(layers::VIA1).rect_count() > 0);
    }

    #[test]
    fn vias_are_enclosed_by_both_metals() {
        let tech = Technology::n65();
        let lib = routed_block(&tech, RoutedBlockParams::default(), 11);
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        let m1 = flat.region(layers::METAL1);
        let m2 = flat.region(layers::METAL2);
        for via in flat.region(layers::VIA1).rects() {
            let pad = via.expanded(tech.via_enclosure);
            let pad_region = dfm_geom::Region::from_rect(pad);
            assert!(pad_region.difference(&m1).is_empty(), "via {via:?} not enclosed by M1");
            assert!(pad_region.difference(&m2).is_empty(), "via {via:?} not enclosed by M2");
        }
    }

    #[test]
    fn denser_params_give_more_metal() {
        let tech = Technology::n65();
        let dense = routed_block(&tech, RoutedBlockParams::dense(), 5);
        let sparse = routed_block(&tech, RoutedBlockParams::sparse(), 5);
        let fd = dense.flatten(dense.top().expect("t")).expect("f");
        let fs = sparse.flatten(sparse.top().expect("t")).expect("f");
        assert!(fd.region(layers::METAL1).area() > 2 * fs.region(layers::METAL1).area());
    }

    #[test]
    fn std_cell_block_flattens() {
        let tech = Technology::n65();
        let lib = standard_cell_block(&tech, 4, 20_000, 9);
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        assert!(flat.region(layers::POLY).area() > 0);
        assert!(flat.region(layers::CONTACT).rect_count() > 10);
        // Rows stack to rows*cell_height.
        assert!(flat.bbox().height() <= 4 * tech.cell_height);
    }

    #[test]
    fn via_chain_counts() {
        let tech = Technology::n65();
        let lib = via_chain(&tech, 25);
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        assert_eq!(flat.region(layers::VIA1).rect_count(), 50);
    }

    #[test]
    fn sram_array_replicates() {
        let tech = Technology::n45();
        let lib = sram_array(&tech, 8, 16);
        let flat = lib.flatten(lib.top().expect("top")).expect("flatten");
        // 128 bitcells, one contact each.
        assert_eq!(flat.region(layers::CONTACT).rect_count(), 128);
    }

    #[test]
    fn litho_patterns_have_markers() {
        let tech = Technology::n65();
        let lib = litho_test_patterns(&tech);
        let cell = lib.cell(lib.top().expect("top"));
        assert!(cell.labels.iter().any(|l| l.text == "iso_line"));
        assert!(cell.labels.iter().any(|l| l.text.starts_with("grating_")));
    }
}
