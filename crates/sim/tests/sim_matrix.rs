//! The crash-matrix acceptance suite: every registered crash site
//! must recover byte-identically to the crash-free baseline, and the
//! non-matrix robustness scenarios (reconnect, idempotent resubmit,
//! drain, ENOSPC) must hold.

use dfm_fault::crash;
use dfm_sim::{
    quick_baseline, run_all, run_drain, run_enospc, run_idem, run_reconnect, SimConfig,
    GOLDEN_REPORT_DIGEST,
};

fn cfg(tag: &str) -> SimConfig {
    SimConfig::new(
        std::env::temp_dir().join(format!("dfm-sim-test-{tag}-{}", std::process::id())),
    )
}

#[test]
fn registry_enumerates_at_least_twelve_crash_sites() {
    assert!(
        crash::SITES.len() >= 12,
        "crash-site registry shrank to {} entries",
        crash::SITES.len()
    );
    // Every registry entry must be findable by key.
    for site in crash::SITES {
        assert!(crash::lookup(site.site).is_some(), "lookup({}) failed", site.site);
    }
}

#[test]
fn crash_matrix_recovers_byte_identically_at_every_site() {
    let cfg = cfg("matrix");
    let report = run_all(&cfg).expect("sim run");
    let _ = std::fs::remove_dir_all(&cfg.root);
    assert_eq!(
        report.baseline_digest, GOLDEN_REPORT_DIGEST,
        "coordinated baseline drifted off the golden digest"
    );
    assert_eq!(
        report.sites.len(),
        crash::SITES.len(),
        "matrix did not cover the whole registry"
    );
    for site in &report.sites {
        assert!(
            site.pass(),
            "site {} violated its recovery invariant: life1 {} life2 {} match {} fired {} tmp {}/{}",
            site.site, site.life1, site.life2, site.matched, site.fired,
            site.tmp_between, site.tmp_after
        );
    }
    for extra in &report.extras {
        assert!(extra.pass, "scenario {} failed: {}", extra.name, extra.detail);
    }
    assert!(report.pass(), "transcript-level verdict disagrees with per-scenario checks");
}

#[test]
fn reconnect_resumes_gapless_and_identical() {
    let cfg = cfg("reconnect");
    let base = quick_baseline(cfg.threads).expect("quick baseline");
    let result = run_reconnect(&cfg, &base).expect("reconnect scenario");
    assert!(result.pass, "reconnect: {}", result.detail);
}

#[test]
fn idempotent_resubmit_after_torn_ack_mints_one_job() {
    let cfg = cfg("idem");
    let result = run_idem(&cfg).expect("idem scenario");
    assert!(result.pass, "idem: {}", result.detail);
}

#[test]
fn drain_mid_job_loses_no_computed_tiles() {
    let cfg = cfg("drain");
    let base = quick_baseline(cfg.threads).expect("quick baseline");
    let result = run_drain(&cfg, &base).expect("drain scenario");
    let _ = std::fs::remove_dir_all(&cfg.root);
    assert!(result.pass, "drain: {}", result.detail);
}

#[test]
fn enospc_plan_degrades_without_failing_the_job() {
    let cfg = cfg("enospc");
    let base = quick_baseline(cfg.threads).expect("quick baseline");
    let result = run_enospc(&cfg, &base).expect("enospc scenario");
    let _ = std::fs::remove_dir_all(&cfg.root);
    assert!(result.pass, "enospc: {}", result.detail);
}
