//! `dfm-sim` — run the deterministic crash-simulation harness from
//! the command line.
//!
//! ```text
//! dfm-sim [--threads N] [--seed S] [--root DIR] [--keep]
//! ```
//!
//! Prints the deterministic transcript and exits non-zero when any
//! scenario violates its recovery invariant. `--threads` defaults to
//! the `DFM_THREADS` environment variable (then 4); the transcript is
//! byte-identical at every worker count, which CI enforces by diffing
//! runs at `DFM_THREADS=1` and `DFM_THREADS=4`.

use dfm_sim::{run_all, SimConfig};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: dfm-sim [--threads N] [--seed S] [--root DIR] [--keep]");
    std::process::exit(2);
}

fn main() {
    let mut threads: Option<usize> = None;
    let mut seed: u64 = 7;
    let mut root: Option<PathBuf> = None;
    let mut keep = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).or_else(|| usage())
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--root" => root = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--keep" => keep = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let threads = threads
        .or_else(|| std::env::var("DFM_THREADS").ok().and_then(|v| v.parse().ok()))
        .unwrap_or(4);
    let root = root.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("dfm-sim-{}", std::process::id()))
    });

    let cfg = SimConfig { threads, seed, root: root.clone() };
    let report = match run_all(&cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("dfm-sim: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());
    if !keep {
        let _ = std::fs::remove_dir_all(&root);
    }
    std::process::exit(if report.pass() { 0 } else { 1 });
}
