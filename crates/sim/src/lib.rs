//! # dfm-sim — deterministic crash-simulation harness
//!
//! Runs the whole signoff stack — an in-process coordinator fanning
//! out to two shard servers over loopback TCP, with a shared tile
//! cache and checkpoint roots — under the `dfm_fault` injection plane,
//! and systematically kills-and-restarts process state at **every
//! registered crash site** ([`dfm_fault::crash::SITES`]).
//!
//! Each site runs as a two-life scenario:
//!
//! 1. **Life 1** — a fresh stack with the site's registered action
//!    armed on the component that owns it. The canonical 16-tile job
//!    is submitted; the injected death makes the owning operation
//!    abort exactly as if the process died at that durable instant,
//!    and the job settles deterministically through normal
//!    supervision (`Done` via survivor takeover, `Partial` via
//!    quarantine, or a refused submit). Every service is then
//!    dropped — the process state is gone; only the durable state
//!    (checkpoint roots, cache dir) survives.
//! 2. **Life 2** — a fresh, fault-free stack over the same
//!    directories. The job is resumed (or resubmitted, for deaths
//!    before the submission was durable) and must settle `Done` with
//!    a report **byte-identical** to the crash-free baseline, hashing
//!    to the pinned golden digest, leaving no orphaned `*.tmp` files.
//!
//! The harness renders a deterministic transcript: identical runs —
//! including runs at different worker counts — must print identical
//! bytes, which CI enforces by diffing `DFM_THREADS=1` against
//! `DFM_THREADS=4` output.
//!
//! On top of the crash matrix, [`run_all`] exercises the four
//! robustness flows that don't map to a single site: client reconnect
//! with gapless event resume, idempotent resubmission after an
//! ambiguous connection drop, graceful drain mid-job, and a full
//! disk-full (ENOSPC) plan across the cache and checkpoint write
//! paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dfm_cache::TileCache;
use dfm_fault::{crash, FaultAction, FaultPlan, FaultPlane, FaultRule};
use dfm_layout::{gds, generate, layers, Technology};
use dfm_signoff::server::SITE_SERVER_WRITE;
use dfm_signoff::service::{JobEvent, JobEventKind, JobState, SITE_CACHE_WRITE, SITE_CKPT_WRITE};
use dfm_signoff::{Client, Server, ServiceConfig, SignoffService, JobSpec};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Digest of the canonical job's report text — the same pin as
/// `tests/signoff_determinism.rs`. Every recovery must reproduce it.
pub const GOLDEN_REPORT_DIGEST: u64 = 0xf486_2273_eb78_3655;

/// How a sim run is parameterised.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Worker threads per service (coordinator and each shard).
    pub threads: usize,
    /// Seed for the fault plans (pure decision hashing — the same
    /// seed reproduces the same injections).
    pub seed: u64,
    /// Scratch root; every scenario gets its own subdirectory.
    pub root: PathBuf,
}

impl SimConfig {
    /// A config over `root` with the default seed and thread count.
    pub fn new(root: impl Into<PathBuf>) -> SimConfig {
        SimConfig { threads: 4, seed: 7, root: root.into() }
    }
}

/// The outcome of one crash-site scenario.
#[derive(Clone, Debug)]
pub struct SiteResult {
    /// The registered site key.
    pub site: &'static str,
    /// The registered action armed there.
    pub action: &'static str,
    /// Life 1's deterministic settle ("Done", "Partial", or
    /// "submit-refused").
    pub life1: String,
    /// Life 2's settle after recovery (must be "Done").
    pub life2: String,
    /// Whether life 2's report was byte-identical to the crash-free
    /// baseline (and therefore hashes to the golden digest).
    pub matched: bool,
    /// Whether the armed fault actually fired (a scenario whose fault
    /// never fires proves nothing).
    pub fired: bool,
    /// Orphaned `*.tmp` files found between the lives.
    pub tmp_between: usize,
    /// Orphaned `*.tmp` files left after recovery (must be 0).
    pub tmp_after: usize,
}

impl SiteResult {
    /// Whether the scenario upheld the recovery invariant.
    pub fn pass(&self) -> bool {
        self.life2 == JobState::Done.to_string()
            && self.matched
            && self.fired
            && self.tmp_after == 0
    }
}

/// The outcome of one non-matrix scenario (reconnect, idem, drain,
/// ENOSPC).
#[derive(Clone, Debug)]
pub struct ExtraResult {
    /// Scenario name.
    pub name: &'static str,
    /// Deterministic one-line detail.
    pub detail: String,
    /// Whether the scenario's assertions held.
    pub pass: bool,
}

/// Everything one sim run produced.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Digest of the crash-free baseline report.
    pub baseline_digest: u64,
    /// One result per registered crash site, in registry order.
    pub sites: Vec<SiteResult>,
    /// Non-matrix scenarios.
    pub extras: Vec<ExtraResult>,
}

impl SimReport {
    /// Whether every scenario passed and the baseline hit the pin.
    pub fn pass(&self) -> bool {
        self.baseline_digest == GOLDEN_REPORT_DIGEST
            && self.sites.len() == crash::SITES.len()
            && self.sites.iter().all(SiteResult::pass)
            && self.extras.iter().all(|e| e.pass)
    }

    /// Renders the deterministic transcript: identical runs (at any
    /// worker count) print identical bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("dfm-sim crash matrix\n");
        out.push_str(&format!(
            "baseline: digest {:#018x} golden {}\n",
            self.baseline_digest,
            self.baseline_digest == GOLDEN_REPORT_DIGEST
        ));
        for s in &self.sites {
            out.push_str(&format!(
                "site {} [{}] life1 {} life2 {} match {} fired {} tmp {}/{}\n",
                s.site, s.action, s.life1, s.life2, s.matched, s.fired, s.tmp_between, s.tmp_after
            ));
        }
        out.push_str(&format!("sites covered: {}/{}\n", self.sites.len(), crash::SITES.len()));
        for e in &self.extras {
            out.push_str(&format!("{}: {}\n", e.name, e.detail));
        }
        out.push_str(&format!("result: {}\n", if self.pass() { "PASS" } else { "FAIL" }));
        out
    }
}

/// The canonical job's layout: the pinned 6000×6000 routed block.
pub fn canonical_gds() -> Vec<u8> {
    let tech = Technology::n65();
    let params =
        generate::RoutedBlockParams { width: 6_000, height: 6_000, ..Default::default() };
    gds::to_bytes(&generate::routed_block(&tech, params, 47)).expect("serialise canonical block")
}

/// The canonical job's spec: 16 tiles, DRC + litho + CA — the job the
/// golden digest pins.
pub fn canonical_spec() -> JobSpec {
    JobSpec {
        name: "determinism".to_string(),
        tile: 1700,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

/// A small 4-tile job for the reconnect/idem/drain/ENOSPC scenarios,
/// where byte-identity is asserted against its own crash-free baseline
/// rather than the golden digest.
pub fn quick_gds() -> Vec<u8> {
    let tech = Technology::n65();
    let params =
        generate::RoutedBlockParams { width: 2_000, height: 2_000, ..Default::default() };
    gds::to_bytes(&generate::routed_block(&tech, params, 47)).expect("serialise quick block")
}

/// Spec for [`quick_gds`].
pub fn quick_spec() -> JobSpec {
    JobSpec {
        name: "sim-quick".to_string(),
        tile: 1_100,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

/// The crash-free baseline of the quick job: report text and event
/// stream from an uninterrupted single-process run.
pub struct QuickBaseline {
    /// Final report text.
    pub text: String,
    /// Full event stream.
    pub events: Vec<JobEvent>,
}

/// Computes [`QuickBaseline`].
///
/// # Errors
///
/// Service diagnostics.
pub fn quick_baseline(threads: usize) -> Result<QuickBaseline, String> {
    let svc = SignoffService::with_config(ServiceConfig::builder().threads(threads).build());
    let id = svc.submit(quick_spec(), quick_gds())?;
    let status = svc.wait(id)?;
    if status.state != JobState::Done {
        return Err(format!("quick baseline settled {}", status.state));
    }
    let events = svc.events(id, 0)?;
    let (_, text) = svc.report_text(id, false)?;
    Ok(QuickBaseline { text, events })
}

// ---------------------------------------------------------------------------
// Stack plumbing
// ---------------------------------------------------------------------------

/// One life of the coordinated stack: an in-process coordinator over
/// two loopback shard servers sharing a cache dir, every component on
/// its own checkpoint root under the scenario directory.
struct Stack {
    coord: SignoffService,
    shard_addrs: Vec<String>,
    coord_plane: Option<Arc<FaultPlane>>,
    shard_plane: Option<Arc<FaultPlane>>,
}

impl Stack {
    /// Boots the stack over `root` (dirs persist across lives).
    fn start(
        root: &Path,
        threads: usize,
        coord_plan: Option<FaultPlan>,
        shard_plan: Option<FaultPlan>,
    ) -> Result<Stack, String> {
        let cache = Arc::new(
            TileCache::open(root.join("cache"), None).map_err(|e| format!("open cache: {e}"))?,
        );
        let shard_plane = shard_plan.map(|p| Arc::new(FaultPlane::new(p)));
        let mut shard_addrs = Vec::new();
        for k in 0..2u64 {
            let mut cfg = ServiceConfig::builder()
                .threads(threads)
                .shard_of(k, 2)
                .ckpt_root(root.join(format!("shard-{k}")))
                .cache(Arc::clone(&cache));
            if let Some(plane) = &shard_plane {
                cfg = cfg.fault_plane(Arc::clone(plane));
            }
            let service = Arc::new(SignoffService::with_config(cfg.build()));
            let server = Server::bind(service, 0)?;
            shard_addrs.push(server.local_addr().to_string());
            std::thread::spawn(move || {
                let _ = server.serve();
            });
        }
        let coord_plane = coord_plan.map(|p| Arc::new(FaultPlane::new(p)));
        let mut cfg = ServiceConfig::builder()
            .threads(threads)
            .ckpt_root(root.join("coord"))
            .shards(shard_addrs.clone());
        if let Some(plane) = &coord_plane {
            cfg = cfg.fault_plane(Arc::clone(plane));
        }
        let coord = SignoffService::with_config(cfg.build());
        Ok(Stack { coord, shard_addrs, coord_plane, shard_plane })
    }

    /// Whether any armed fault fired anywhere in the stack.
    fn fired(&self) -> bool {
        let hits = |p: &Option<Arc<FaultPlane>>| {
            p.as_ref().is_some_and(|p| !p.injected().is_empty())
        };
        hits(&self.coord_plane) || hits(&self.shard_plane)
    }

    /// Kills the stack: shard servers shut down, coordinator dropped.
    /// Durable state stays on disk.
    fn stop(self) {
        for addr in &self.shard_addrs {
            if let Ok(mut client) = Client::connect(addr) {
                let _ = client.shutdown();
            }
        }
    }
}

/// Counts `*.tmp` files anywhere under `root`.
fn count_tmp(root: &Path) -> usize {
    let mut n = 0;
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "tmp") {
                n += 1;
            }
        }
    }
    n
}

/// A fresh scenario directory under the config root.
fn scenario_dir(cfg: &SimConfig, tag: &str) -> PathBuf {
    let dir = cfg.root.join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// The crash matrix
// ---------------------------------------------------------------------------

/// Which component a scenario arms its fault on.
enum ArmedOn {
    /// The coordinator's fault plane, life 1.
    Coord,
    /// Both shard services' (shared) fault plane, life 1.
    Shards,
    /// The coordinator's plane in **life 2** — for recovery-path
    /// faults like an unreadable checkpoint at resume.
    RecoveryCoord,
}

/// What life 1 is expected to do.
enum Life1 {
    /// The submit itself is refused by the injected death; no job
    /// exists in life 1.
    SubmitRefused,
    /// The job settles through normal supervision (Done or Partial).
    Settles,
}

/// How life 2 recovers.
enum Life2 {
    /// Resubmit the same job (the life-1 death predates a durable,
    /// loadable submission).
    Resubmit,
    /// Resume the persisted job.
    Resume,
}

/// The scenario table: one entry per registry site. Returns an error
/// for a site the harness doesn't know — so adding a crash site to the
/// registry without teaching the sim about it fails loudly.
fn scenario_for(
    site: &'static crash::CrashSite,
) -> Result<(ArmedOn, Option<u64>, Life1, Life2), String> {
    use {ArmedOn::*, Life1::*, Life2::*};
    // Keys: tile-granular sites pin tile 5 (mid-job, lands on shard 0
    // of the canonical 16-tile partition); coordinator⇄shard sites pin
    // shard 0 so shard 1 survives as the takeover target.
    Ok(match site.site {
        "signoff.ckpt.submit.spec" => (Coord, None, SubmitRefused, Resubmit),
        "signoff.ckpt.submit.gds" => (Coord, None, SubmitRefused, Resume),
        "signoff.ckpt.tile.tmp" => (Coord, Some(5), Settles, Resume),
        "signoff.ckpt.tile.rename" => (Coord, Some(5), Settles, Resume),
        "signoff.cache.store.tmp" => (Shards, Some(5), Settles, Resume),
        "signoff.cache.store.rename" => (Shards, Some(5), Settles, Resume),
        "signoff.ckpt.read" => (RecoveryCoord, Some(5), Settles, Resume),
        "signoff.tile.compute" => (Shards, Some(5), Settles, Resume),
        "signoff.cache.write" => (Shards, None, Settles, Resume),
        "signoff.ckpt.write" => (Shards, None, Settles, Resume),
        "coord.dispatch" => (Coord, Some(0), Settles, Resume),
        "coord.pull" => (Coord, Some(0), Settles, Resume),
        "coord.ingest" => (Coord, Some(0), Settles, Resume),
        "shard.heartbeat" => (Coord, Some(0), Settles, Resume),
        other => return Err(format!("no sim scenario for registered crash site {other}")),
    })
}

fn action_for(site: &crash::CrashSite) -> Result<FaultAction, String> {
    Ok(match site.action {
        "crash" => FaultAction::Crash,
        "panic" => FaultAction::Panic,
        "error" => FaultAction::Error,
        "drop" => FaultAction::Drop,
        "err_nospace" => FaultAction::ErrNoSpace,
        other => return Err(format!("site {} registers unknown action {other}", site.site)),
    })
}

/// Runs one crash-site scenario end to end.
///
/// # Errors
///
/// Harness diagnostics (a scenario that can't even run its lives);
/// invariant violations are reported in the [`SiteResult`], not as
/// errors.
pub fn run_site(
    cfg: &SimConfig,
    site: &'static crash::CrashSite,
    baseline_text: &str,
) -> Result<SiteResult, String> {
    let (armed, key, life1_kind, life2_kind) = scenario_for(site)?;
    let mut rule = FaultRule::new(site.site, action_for(site)?);
    if let Some(key) = key {
        rule = rule.key(key);
    }
    let plan = FaultPlan::seeded(cfg.seed).with_rule(rule);
    let root = scenario_dir(cfg, &format!("site-{}", site.site.replace('.', "-")));

    // Life 1: the armed stack.
    let (coord_plan, shard_plan, life2_plan) = match armed {
        ArmedOn::Coord => (Some(plan), None, None),
        ArmedOn::Shards => (None, Some(plan), None),
        ArmedOn::RecoveryCoord => (None, None, Some(plan)),
    };
    let stack = Stack::start(&root, cfg.threads, coord_plan, shard_plan)?;
    let (life1, job_id) = match life1_kind {
        Life1::SubmitRefused => match stack.coord.submit(canonical_spec(), canonical_gds()) {
            Ok(id) => (format!("unexpectedly admitted job {id}"), None),
            Err(_) => ("submit-refused".to_string(), None),
        },
        Life1::Settles => {
            let id = stack.coord.submit(canonical_spec(), canonical_gds())?;
            let status = stack.coord.wait(id)?;
            (status.state.to_string(), Some(id))
        }
    };
    let mut fired = stack.fired();
    stack.stop();
    let tmp_between = count_tmp(&root);

    // Life 2: a fresh stack over the surviving durable state — fault
    // free, except for recovery-path sites which arm at resume.
    let stack = Stack::start(&root, cfg.threads, life2_plan, None)?;
    let id = match life2_kind {
        Life2::Resubmit => stack.coord.submit(canonical_spec(), canonical_gds())?,
        Life2::Resume => {
            let id = job_id.unwrap_or(1);
            stack.coord.resume(id).map_err(|e| format!("resume job {id}: {e}"))?;
            id
        }
    };
    let status = stack.coord.wait(id)?;
    let life2 = status.state.to_string();
    let (_, text) = stack.coord.report_text(id, true)?;
    fired = fired || stack.fired();
    stack.stop();
    let tmp_after = count_tmp(&root);
    let _ = std::fs::remove_dir_all(&root);

    Ok(SiteResult {
        site: site.site,
        action: site.action,
        life1,
        life2,
        matched: text == baseline_text,
        fired,
        tmp_between,
        tmp_after,
    })
}

/// Runs the crash-free coordinated baseline over fresh directories and
/// returns the canonical report text.
///
/// # Errors
///
/// Harness diagnostics, or a baseline that fails to settle `Done`.
pub fn run_baseline(cfg: &SimConfig) -> Result<String, String> {
    let root = scenario_dir(cfg, "baseline");
    let stack = Stack::start(&root, cfg.threads, None, None)?;
    let id = stack.coord.submit(canonical_spec(), canonical_gds())?;
    let status = stack.coord.wait(id)?;
    if status.state != JobState::Done {
        return Err(format!("baseline settled {}", status.state));
    }
    let (_, text) = stack.coord.report_text(id, false)?;
    stack.stop();
    let _ = std::fs::remove_dir_all(&root);
    Ok(text)
}

/// Enumerates every registered crash site against one shared baseline.
///
/// # Errors
///
/// Harness diagnostics.
pub fn run_crash_matrix(cfg: &SimConfig, baseline_text: &str) -> Result<Vec<SiteResult>, String> {
    crash::SITES.iter().map(|site| run_site(cfg, site, baseline_text)).collect()
}

// ---------------------------------------------------------------------------
// Non-matrix scenarios
// ---------------------------------------------------------------------------

/// Client reconnect with gapless event resume: a server whose fault
/// plane tears every connection's fourth response frame mid-line. The
/// client polls the event stream through the tears; it must reconnect
/// transparently and deliver a gapless, duplicate-free stream
/// identical to the crash-free baseline's.
///
/// # Errors
///
/// Harness diagnostics.
pub fn run_reconnect(cfg: &SimConfig, base: &QuickBaseline) -> Result<ExtraResult, String> {
    let plan = FaultPlan::seeded(cfg.seed)
        .with_rule(FaultRule::new(SITE_SERVER_WRITE, FaultAction::Drop).attempt_exactly(3));
    let service = Arc::new(SignoffService::with_config(
        ServiceConfig::builder()
            .threads(cfg.threads)
            .fault_plane(Arc::new(FaultPlane::new(plan)))
            .build(),
    ));
    let server = Server::bind(service, 0)?;
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || {
        let _ = server.serve();
    });
    let mut client = Client::connect(&addr)?;
    let id = client.submit(quick_spec(), quick_gds())?;
    let mut events = Vec::new();
    let mut cursor = 0;
    loop {
        let (delta, next) = client.events(id, cursor)?;
        events.extend(delta);
        cursor = next;
        if client.status(id)?.state.is_settled() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let (delta, _) = client.events(id, cursor)?;
    events.extend(delta);
    let _ = client.shutdown();

    let gapless = events.iter().enumerate().all(|(i, e)| e.seq == i as u64);
    let identical = events == base.events;
    let reconnected = client.reconnects() > 0;
    Ok(ExtraResult {
        name: "reconnect",
        detail: format!(
            "reconnected {reconnected} gapless {gapless} identical {identical}"
        ),
        pass: reconnected && gapless && identical,
    })
}

/// Idempotent resubmission after an ambiguous connection drop: the
/// server tears the very first response frame (the submit ack), so the
/// client cannot know whether its submit landed. Under an idempotency
/// key the client transparently resends; the server's dedupe answers
/// with the already-minted job — exactly one job exists afterwards.
///
/// # Errors
///
/// Harness diagnostics.
pub fn run_idem(cfg: &SimConfig) -> Result<ExtraResult, String> {
    let plan = FaultPlan::seeded(cfg.seed)
        .with_rule(FaultRule::new(SITE_SERVER_WRITE, FaultAction::Drop).key(0).attempt_exactly(0));
    let service = Arc::new(SignoffService::with_config(
        ServiceConfig::builder()
            .threads(cfg.threads)
            .fault_plane(Arc::new(FaultPlane::new(plan)))
            .build(),
    ));
    let server = Server::bind(service, 0)?;
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || {
        let _ = server.serve();
    });
    let mut client = Client::connect(&addr)?;
    // The ack for this submit is torn mid-frame; the idempotency key
    // makes the resend safe and the dedupe collapses both to one job.
    let id = client.submit_idem(quick_spec(), quick_gds(), Some("sim-idem"))?;
    let resubmit = client.submit_idem(quick_spec(), quick_gds(), Some("sim-idem"))?;
    let status = client.wait(id)?;
    let jobs = client.list()?.len();
    let _ = client.shutdown();
    let one_job = jobs == 1 && resubmit == id;
    let reconnected = client.reconnects() == 1;
    Ok(ExtraResult {
        name: "idem",
        detail: format!(
            "jobs {jobs} deduped {one_job} reconnects-once {reconnected} state {}",
            status.state
        ),
        pass: one_job && reconnected && status.state == JobState::Done,
    })
}

/// Graceful drain mid-job: a checkpointed server is drained while the
/// quick job is in flight. The drain ack implies every computed tile
/// is durable; a restart over the same root resumes the job to a
/// report byte-identical to the crash-free baseline — no computed
/// tile is lost, and a draining service refuses new work.
///
/// # Errors
///
/// Harness diagnostics.
pub fn run_drain(cfg: &SimConfig, base: &QuickBaseline) -> Result<ExtraResult, String> {
    let root = scenario_dir(cfg, "drain");
    let service = Arc::new(SignoffService::with_config(
        ServiceConfig::builder()
            .threads(cfg.threads)
            .ckpt_root(root.join("ckpt"))
            .tile_delay(Duration::from_millis(40))
            .build(),
    ));
    let server = Server::bind(Arc::clone(&service), 0)?;
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || {
        let _ = server.serve();
    });
    let mut client = Client::connect(&addr)?;
    let id = client.submit(quick_spec(), quick_gds())?;
    // Let some — but not all — tiles finish before draining.
    std::thread::sleep(Duration::from_millis(60));
    client.shutdown_mode(true)?;
    // The ack means the drain completed: in-flight tiles finished and
    // checkpointed, the pool is idle. New work must now be refused.
    let refused = service.submit(quick_spec(), quick_gds()).is_err();
    drop(service);

    // Life 2: restart over the same root; resume recomputes only the
    // tiles the drain never got to.
    let restarted = SignoffService::with_config(
        ServiceConfig::builder().threads(cfg.threads).ckpt_root(root.join("ckpt")).build(),
    );
    restarted.resume(id).map_err(|e| format!("resume after drain: {e}"))?;
    let status = restarted.wait(id)?;
    let (_, text) = restarted.report_text(id, false)?;
    let _ = std::fs::remove_dir_all(&root);
    let matched = text == base.text;
    Ok(ExtraResult {
        name: "drain",
        detail: format!(
            "refused-while-draining {refused} life2 {} match {matched}",
            status.state
        ),
        pass: refused && status.state == JobState::Done && matched,
    })
}

/// Disk-full degradation: an ENOSPC plan on **both** durable write
/// paths (cache store and tile checkpoint). Every store is refused and
/// every checkpoint degrades — and the job still settles `Done` with
/// byte-correct results, no entry corrupted, no job failed.
///
/// # Errors
///
/// Harness diagnostics.
pub fn run_enospc(cfg: &SimConfig, base: &QuickBaseline) -> Result<ExtraResult, String> {
    let root = scenario_dir(cfg, "enospc");
    let cache = Arc::new(
        TileCache::open(root.join("cache"), None).map_err(|e| format!("open cache: {e}"))?,
    );
    let plan = FaultPlan::seeded(cfg.seed)
        .with_rule(FaultRule::new(SITE_CACHE_WRITE, FaultAction::ErrNoSpace))
        .with_rule(FaultRule::new(SITE_CKPT_WRITE, FaultAction::ErrNoSpace));
    let service = SignoffService::with_config(
        ServiceConfig::builder()
            .threads(cfg.threads)
            .ckpt_root(root.join("ckpt"))
            .cache(Arc::clone(&cache))
            .fault_plane(Arc::new(FaultPlane::new(plan)))
            .build(),
    );
    let id = service.submit(quick_spec(), quick_gds())?;
    let status = service.wait(id)?;
    let events = service.events(id, 0)?;
    let (_, text) = service.report_text(id, true)?;
    let degraded = events.iter().any(|e| matches!(e.kind, JobEventKind::CkptDegraded { .. }));
    let stored = events.iter().any(|e| matches!(e.kind, JobEventKind::TileCacheStore { .. }));
    let _ = std::fs::remove_dir_all(&root);
    let matched = text == base.text;
    Ok(ExtraResult {
        name: "enospc",
        detail: format!(
            "state {} degraded {degraded} stored {stored} match {matched}",
            status.state
        ),
        pass: status.state == JobState::Done && degraded && !stored && matched,
    })
}

/// Runs everything: baseline, the full crash matrix, and the four
/// non-matrix scenarios.
///
/// # Errors
///
/// Harness diagnostics.
pub fn run_all(cfg: &SimConfig) -> Result<SimReport, String> {
    let baseline_text = run_baseline(cfg)?;
    let baseline_digest = dfm_check::fnv1a_64(baseline_text.as_bytes());
    let sites = run_crash_matrix(cfg, &baseline_text)?;
    let quick = quick_baseline(cfg.threads)?;
    let extras = vec![
        run_reconnect(cfg, &quick)?,
        run_idem(cfg)?,
        run_drain(cfg, &quick)?,
        run_enospc(cfg, &quick)?,
    ];
    Ok(SimReport { baseline_digest, sites, extras })
}
