//! # dfm-cache — content-addressed tile-result store
//!
//! A persistent, bounded, on-disk cache mapping a **content digest**
//! of a work unit to the bytes of its result. The signoff service uses
//! it to skip recomputing tiles whose inputs have not changed between
//! job submissions — the iterate-check-fix loop the DFM scoring flow
//! lives in — but the crate itself knows nothing about tiles: keys are
//! opaque digest triples and payloads are opaque bytes.
//!
//! ## Why caching is safe here
//!
//! Tile computation upstream is a pure function of
//! `(spec, rule deck, tile content)` — that is the determinism
//! contract the whole workspace tests against. A [`CacheKey`] digests
//! exactly those three inputs, so a cached payload is
//! byte-indistinguishable from a recomputation. The cache can
//! therefore fail in only one safe direction: a **miss** (entry
//! absent, evicted, corrupt, truncated, or unreadable) costs a
//! recompute and nothing else. No read path ever returns an error to
//! the caller and no corrupt entry is ever returned as a hit.
//!
//! ## On-disk format
//!
//! One file per entry, named from the key
//! (`e-<spec>-<deck>-<tile>.bin`), written with the same atomic
//! tmp+rename idiom as the checkpoint store and sealed with a trailing
//! FNV-1a 64 checksum over everything before it:
//!
//! ```text
//! magic "DFMC" | version u32 | spec u64 | deck u64 | tile u64
//! | seq u64 | payload len u64 | payload bytes | checksum u64
//! ```
//!
//! A reader validates the checksum, magic, version, key echo, and
//! exact length; any mismatch is a silent miss and the bad file is
//! removed.
//!
//! ## Deterministic eviction
//!
//! The store is bounded by a byte budget. When a store would exceed
//! it, entries are evicted **in insertion order** (lowest sequence
//! number first) — no clocks, no access-time reordering — so two
//! caches fed the same store sequence hold the same entries. Eviction
//! only ever converts future hits into recomputes; it can never change
//! result bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MAGIC: &[u8; 4] = b"DFMC";
const VERSION: u32 = 1;
/// Fixed bytes around the payload: magic + version + key (3×u64) +
/// seq + payload length + trailing checksum.
const OVERHEAD: usize = 4 + 4 + 8 * 3 + 8 + 8 + 8;

/// FNV-1a 64 over a byte slice (the workspace-standard digest).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The content address of one cached result: digests of the three
/// inputs the result is a pure function of.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Digest of the job spec's *analysis* fields (labels excluded).
    pub spec: u64,
    /// Digest of the rule deck (0 when no deck participates).
    pub deck: u64,
    /// Digest of the tile's canonical content, halo geometry included.
    pub tile: u64,
}

impl CacheKey {
    fn file_name(&self) -> String {
        format!("e-{:016x}-{:016x}-{:016x}.bin", self.spec, self.deck, self.tile)
    }
}

/// Counters and sizes of a [`TileCache`], for the `cache stats` CLI
/// and the bench gauges. Counters are per-process (they reset on
/// reopen); `entries`/`bytes` reflect the store itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Live entries in the store.
    pub entries: usize,
    /// Total on-disk bytes of live entries (headers included).
    pub bytes: u64,
    /// Lookups answered from the store this process.
    pub hits: u64,
    /// Lookups that found nothing usable this process.
    pub misses: u64,
    /// Successful stores this process.
    pub stores: u64,
    /// Entries evicted by the byte budget this process.
    pub evictions: u64,
    /// Corrupt or truncated entries dropped (open, lookup, or verify).
    pub corrupt_dropped: u64,
    /// Orphaned `*.tmp` files swept at open (crash debris from a
    /// store that died between tmp-write and rename).
    pub tmp_swept: u64,
}

/// The staged durable transitions of one atomic store, as seen by the
/// crash probe of [`TileCache::store_staged`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreStage {
    /// Tmp file written and synced; rename not yet done.
    Tmp,
    /// Entry renamed into place; success not yet reported.
    Rename,
}

/// Result of a full-store [`TileCache::verify`] sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Entries whose bytes checked out.
    pub ok: usize,
    /// Entries that failed validation and were removed.
    pub removed: usize,
}

struct EntryMeta {
    seq: u64,
    len: u64,
}

#[derive(Default)]
struct Index {
    entries: BTreeMap<CacheKey, EntryMeta>,
    by_seq: BTreeMap<u64, CacheKey>,
    total_bytes: u64,
    next_seq: u64,
    hits: u64,
    misses: u64,
    stores: u64,
    evictions: u64,
    corrupt_dropped: u64,
    tmp_swept: u64,
}

impl Index {
    fn remove(&mut self, key: &CacheKey) -> Option<EntryMeta> {
        let meta = self.entries.remove(key)?;
        self.by_seq.remove(&meta.seq);
        self.total_bytes = self.total_bytes.saturating_sub(meta.len);
        Some(meta)
    }

    fn insert(&mut self, key: CacheKey, seq: u64, len: u64) {
        self.remove(&key);
        self.entries.insert(key, EntryMeta { seq, len });
        self.by_seq.insert(seq, key);
        self.total_bytes += len;
    }
}

/// A persistent content-addressed byte store rooted at one directory.
///
/// Thread-safe: lookups and stores serialise on an internal lock, so a
/// pool of workers can share one handle. Multiple *processes* sharing
/// a root are safe too (writes are atomic renames, reads validate
/// checksums) — they just maintain independent budgets and counters.
pub struct TileCache {
    root: PathBuf,
    max_bytes: Option<u64>,
    index: Mutex<Index>,
}

impl TileCache {
    /// Opens (creating if needed) the store rooted at `root`, scanning
    /// existing entries into the index. Corrupt or truncated entries
    /// found during the scan are removed. `max_bytes` bounds the total
    /// on-disk size (`None` = unbounded).
    ///
    /// # Errors
    ///
    /// Only on a root that cannot be created or listed — never on bad
    /// entry files.
    pub fn open(root: impl Into<PathBuf>, max_bytes: Option<u64>) -> io::Result<TileCache> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut index = Index::default();
        let mut max_seq = 0u64;
        for dirent in fs::read_dir(&root)? {
            let dirent = dirent?;
            let name = dirent.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") {
                // Crash debris: a store died between tmp-write and
                // rename. The entry never existed; sweep the orphan.
                if fs::remove_file(dirent.path()).is_ok() {
                    index.tmp_swept += 1;
                }
                continue;
            }
            if !name.starts_with("e-") || !name.ends_with(".bin") {
                continue;
            }
            let path = dirent.path();
            match fs::read(&path).ok().and_then(|bytes| decode_entry(&bytes)) {
                Some((key, seq, _payload, len)) => {
                    max_seq = max_seq.max(seq);
                    index.insert(key, seq, len);
                }
                None => {
                    let _ = fs::remove_file(&path);
                    index.corrupt_dropped += 1;
                }
            }
        }
        index.next_seq = max_seq + 1;
        Ok(TileCache { root, max_bytes, index: Mutex::new(index) })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Looks up a key. Returns the payload bytes on a validated hit;
    /// `None` on absence, corruption, truncation, or any read error —
    /// a corrupt entry is removed so it is not re-read next time.
    pub fn lookup(&self, key: CacheKey) -> Option<Vec<u8>> {
        let mut index = self.index.lock().expect("cache lock");
        if !index.entries.contains_key(&key) {
            index.misses += 1;
            return None;
        }
        let path = self.root.join(key.file_name());
        match fs::read(&path).ok().and_then(|bytes| decode_entry(&bytes)) {
            Some((k, _, payload, _)) if k == key => {
                index.hits += 1;
                Some(payload)
            }
            _ => {
                index.remove(&key);
                let _ = fs::remove_file(&path);
                index.misses += 1;
                index.corrupt_dropped += 1;
                None
            }
        }
    }

    /// Stores a payload under a key, evicting oldest-inserted entries
    /// as needed to respect the byte budget. Returns `true` when the
    /// entry landed on disk; `false` when the write failed (treated
    /// like eviction: the result is simply recomputed next time).
    pub fn store(&self, key: CacheKey, payload: &[u8]) -> bool {
        self.store_staged(key, payload, None)
    }

    /// [`TileCache::store`] with a crash probe at the two staged
    /// transitions of the atomic write. When `crash` returns `true`
    /// for a [`StoreStage`], the store behaves as if the process died
    /// there: at [`StoreStage::Tmp`] the orphan tmp file stays and no
    /// entry exists; at [`StoreStage::Rename`] the entry is durable on
    /// disk but never acknowledged (this process's index ignores it —
    /// a reopened cache finds it by content address). Either way the
    /// call reports `false`.
    pub fn store_staged(
        &self,
        key: CacheKey,
        payload: &[u8],
        crash: Option<&dyn Fn(StoreStage) -> bool>,
    ) -> bool {
        let mut index = self.index.lock().expect("cache lock");
        let seq = index.next_seq;
        index.next_seq += 1;
        let bytes = encode_entry(key, seq, payload);
        let len = bytes.len() as u64;
        let path = self.root.join(key.file_name());
        let tmp = path.with_extension("tmp");
        let staged = (|| -> io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            Ok(())
        })();
        if staged.is_err() {
            return false;
        }
        if crash.is_some_and(|c| c(StoreStage::Tmp)) {
            return false;
        }
        if fs::rename(&tmp, &path).is_err() {
            return false;
        }
        if crash.is_some_and(|c| c(StoreStage::Rename)) {
            return false;
        }
        index.insert(key, seq, len);
        index.stores += 1;
        if let Some(max) = self.max_bytes {
            while index.total_bytes > max && index.entries.len() > 1 {
                let (&oldest_seq, &oldest_key) =
                    index.by_seq.iter().next().expect("non-empty by_seq");
                let _ = oldest_seq;
                index.remove(&oldest_key);
                let _ = fs::remove_file(self.root.join(oldest_key.file_name()));
                index.evictions += 1;
            }
        }
        true
    }

    /// Current counters and sizes.
    pub fn stats(&self) -> CacheStats {
        let index = self.index.lock().expect("cache lock");
        CacheStats {
            entries: index.entries.len(),
            bytes: index.total_bytes,
            hits: index.hits,
            misses: index.misses,
            stores: index.stores,
            evictions: index.evictions,
            corrupt_dropped: index.corrupt_dropped,
            tmp_swept: index.tmp_swept,
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.index.lock().expect("cache lock").entries.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the store currently holds an entry for `key` (no
    /// bytes are read and no counters move).
    pub fn contains(&self, key: CacheKey) -> bool {
        self.index.lock().expect("cache lock").entries.contains_key(&key)
    }

    /// Re-validates every entry's bytes against its checksum and key,
    /// removing the ones that fail.
    pub fn verify(&self) -> VerifyReport {
        let mut index = self.index.lock().expect("cache lock");
        let keys: Vec<CacheKey> = index.entries.keys().copied().collect();
        let mut report = VerifyReport::default();
        for key in keys {
            let path = self.root.join(key.file_name());
            let good = matches!(
                fs::read(&path).ok().and_then(|bytes| decode_entry(&bytes)),
                Some((k, _, _, _)) if k == key
            );
            if good {
                report.ok += 1;
            } else {
                index.remove(&key);
                let _ = fs::remove_file(&path);
                index.corrupt_dropped += 1;
                report.removed += 1;
            }
        }
        report
    }

    /// Removes every entry. Returns how many were dropped.
    ///
    /// # Errors
    ///
    /// On a file removal that fails for a reason other than the file
    /// already being gone.
    pub fn clear(&self) -> io::Result<usize> {
        let mut index = self.index.lock().expect("cache lock");
        let keys: Vec<CacheKey> = index.entries.keys().copied().collect();
        for key in &keys {
            let path = self.root.join(key.file_name());
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            index.remove(key);
        }
        Ok(keys.len())
    }
}

/// Serialises one entry (header + payload + trailing checksum).
fn encode_entry(key: CacheKey, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(OVERHEAD + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&key.spec.to_le_bytes());
    out.extend_from_slice(&key.deck.to_le_bytes());
    out.extend_from_slice(&key.tile.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a_64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Validates and splits one entry file. `None` on *any* defect —
/// truncation, bad checksum, bad magic/version, trailing garbage.
fn decode_entry(bytes: &[u8]) -> Option<(CacheKey, u64, Vec<u8>, u64)> {
    if bytes.len() < OVERHEAD {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let checksum = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv1a_64(body) != checksum {
        return None;
    }
    if &body[..4] != MAGIC {
        return None;
    }
    let u32_at = |at: usize| -> Option<u32> { Some(u32::from_le_bytes(body.get(at..at + 4)?.try_into().ok()?)) };
    let u64_at = |at: usize| -> Option<u64> { Some(u64::from_le_bytes(body.get(at..at + 8)?.try_into().ok()?)) };
    if u32_at(4)? != VERSION {
        return None;
    }
    let key = CacheKey { spec: u64_at(8)?, deck: u64_at(16)?, tile: u64_at(24)? };
    let seq = u64_at(32)?;
    let payload_len = u64_at(40)? as usize;
    let payload = body.get(48..)?;
    if payload.len() != payload_len {
        return None;
    }
    Some((key, seq, payload.to_vec(), bytes.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn fresh_root(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("dfmc-{tag}-{}-{n}", std::process::id()))
    }

    fn key(tile: u64) -> CacheKey {
        CacheKey { spec: 0x51, deck: 0xDE, tile }
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let root = fresh_root("roundtrip");
        let cache = TileCache::open(&root, None).expect("open");
        assert!(cache.is_empty());
        assert!(cache.lookup(key(1)).is_none(), "cold lookup misses");
        assert!(cache.store(key(1), b"tile one"));
        assert!(cache.store(key(2), b""));
        assert_eq!(cache.lookup(key(1)).as_deref(), Some(&b"tile one"[..]));
        assert_eq!(cache.lookup(key(2)).as_deref(), Some(&b""[..]));
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses, stats.stores), (2, 2, 1, 2));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_rebuilds_the_index_and_preserves_sequence() {
        let root = fresh_root("reopen");
        {
            let cache = TileCache::open(&root, None).expect("open");
            for t in 0..4 {
                assert!(cache.store(key(t), format!("payload {t}").as_bytes()));
            }
        }
        let cache = TileCache::open(&root, Some(0)).expect("reopen");
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.lookup(key(3)).as_deref(), Some(&b"payload 3"[..]));
        // A bounded reopen evicts in the original insertion order: the
        // next store trims everything but itself (budget 0 keeps the
        // newest entry only, by the >1 floor).
        assert!(cache.store(key(9), b"newest"));
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(key(9)), "insertion-order eviction keeps the newest");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn eviction_is_oldest_insertion_first_and_deterministic() {
        let root = fresh_root("evict");
        // Budget for roughly two entries of this payload size.
        let payload = [7u8; 100];
        let entry = (OVERHEAD + payload.len()) as u64;
        let cache = TileCache::open(&root, Some(2 * entry)).expect("open");
        for t in [10u64, 20, 30] {
            assert!(cache.store(key(t), &payload));
        }
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains(key(10)), "oldest insertion evicted first");
        assert!(cache.contains(key(20)));
        assert!(cache.contains(key(30)));
        assert_eq!(cache.stats().evictions, 1);
        // Restoring an existing key replaces it and re-ranks it newest.
        assert!(cache.store(key(20), &payload));
        assert!(cache.store(key(40), &payload));
        assert!(!cache.contains(key(30)), "30 is now the oldest insertion");
        assert!(cache.contains(key(20)));
        assert!(cache.contains(key(40)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_truncated_and_empty_entries_are_silent_misses() {
        let root = fresh_root("corrupt");
        let cache = TileCache::open(&root, None).expect("open");
        for t in 0..3 {
            assert!(cache.store(key(t), b"good bytes of a cached tile result"));
        }
        let path_of = |t: u64| root.join(key(t).file_name());
        // Bit-flip.
        let mut bytes = fs::read(path_of(0)).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(path_of(0), &bytes).expect("write");
        // Truncate.
        let bytes = fs::read(path_of(1)).expect("read");
        fs::write(path_of(1), &bytes[..bytes.len() - 5]).expect("write");
        // Zero-length.
        fs::write(path_of(2), b"").expect("write");
        for t in 0..3 {
            assert!(cache.lookup(key(t)).is_none(), "entry {t} must miss, not err");
            assert!(!path_of(t).exists(), "entry {t} removed after detection");
        }
        let stats = cache.stats();
        assert_eq!(stats.corrupt_dropped, 3);
        assert_eq!(stats.entries, 0);
        // The same damage found at open() time is likewise dropped.
        assert!(cache.store(key(7), b"fine"));
        let mut bytes = fs::read(path_of(7)).expect("read");
        bytes[0] ^= 0xFF;
        fs::write(path_of(7), &bytes).expect("write");
        let reopened = TileCache::open(&root, None).expect("reopen");
        assert_eq!(reopened.len(), 0);
        assert_eq!(reopened.stats().corrupt_dropped, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn verify_removes_bad_entries_and_clear_empties_the_store() {
        let root = fresh_root("verify");
        let cache = TileCache::open(&root, None).expect("open");
        for t in 0..5 {
            assert!(cache.store(key(t), &[t as u8; 9]));
        }
        let bad = root.join(key(2).file_name());
        let mut bytes = fs::read(&bad).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&bad, &bytes).expect("write");
        let report = cache.verify();
        assert_eq!(report, VerifyReport { ok: 4, removed: 1 });
        assert_eq!(cache.verify(), VerifyReport { ok: 4, removed: 0 });
        assert_eq!(cache.clear().expect("clear"), 4);
        assert!(cache.is_empty());
        assert!(cache.lookup(key(0)).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn staged_crashes_leave_recoverable_state_and_open_sweeps_tmp() {
        let root = fresh_root("staged");
        {
            let cache = TileCache::open(&root, None).expect("open");
            // Crash after the tmp write: no entry, an orphan tmp file.
            assert!(!cache.store_staged(key(1), b"one", Some(&|s| s == StoreStage::Tmp)));
            assert!(cache.lookup(key(1)).is_none());
            let tmp = root.join(key(1).file_name()).with_extension("tmp");
            assert!(tmp.exists(), "orphan tmp is the documented debris");
            // Crash after the rename: durable but unacknowledged — this
            // process keeps treating it as absent.
            assert!(!cache.store_staged(key(2), b"two", Some(&|s| s == StoreStage::Rename)));
            assert!(cache.lookup(key(2)).is_none(), "index died with the process");
            assert_eq!(cache.stats().stores, 0);
        }
        // The restarted process sweeps the orphan and finds the
        // renamed entry by content address.
        let cache = TileCache::open(&root, None).expect("reopen");
        assert_eq!(cache.stats().tmp_swept, 1);
        assert!(!root.join(key(1).file_name()).with_extension("tmp").exists());
        assert!(cache.lookup(key(1)).is_none());
        assert_eq!(cache.lookup(key(2)).as_deref(), Some(&b"two"[..]));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_mismatch_under_a_renamed_file_is_a_miss() {
        // A file whose embedded key disagrees with its name (e.g. a
        // stray copy) must never satisfy the named key.
        let root = fresh_root("rename");
        let cache = TileCache::open(&root, None).expect("open");
        assert!(cache.store(key(1), b"one"));
        assert!(cache.store(key(2), b"two"));
        fs::copy(root.join(key(1).file_name()), root.join(key(2).file_name())).expect("copy");
        assert!(cache.lookup(key(2)).is_none(), "embedded key wins over file name");
        assert_eq!(cache.lookup(key(1)).as_deref(), Some(&b"one"[..]));
        let _ = fs::remove_dir_all(&root);
    }
}
