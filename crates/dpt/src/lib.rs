//! # dfm-dpt — double-patterning decomposition and manufacturability
//! scoring
//!
//! Double patterning (DPT) splits one drawn layer onto two exposure
//! masks so that same-mask spacings relax to what single exposure can
//! resolve. Decomposition is graph 2-colouring: features closer than the
//! same-mask minimum conflict and must take different colours; odd cycles
//! are uncolourable and need either a **stitch** (splitting a feature so
//! its halves take different colours) or a layout change.
//!
//! This crate provides:
//!
//! * [`conflict_graph`] / [`two_color`] — exact conflict extraction and
//!   BFS 2-colouring with odd-cycle witnesses,
//! * [`decompose`] — full decomposition with automatic stitch insertion
//!   on odd cycles,
//! * [`score`] — the composite DPT manufacturability score (mask density
//!   balance, stitch count and overlap, residual conflicts) used by
//!   experiment E6.
//!
//! ```
//! use dfm_geom::{Rect, Region};
//! use dfm_dpt::{decompose, DptParams};
//!
//! // Three dense lines: 2-colourable (A, B, A).
//! let layer = Region::from_rects([
//!     Rect::new(0, 0, 5000, 90),
//!     Rect::new(0, 180, 5000, 270),
//!     Rect::new(0, 360, 5000, 450),
//! ]);
//! let d = decompose(&layer, DptParams::default());
//! assert!(d.conflicts.is_empty());
//! assert_eq!(d.stitches.len(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dfm_geom::{Coord, Rect, Region};

/// Decomposition parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DptParams {
    /// Minimum spacing two features need to share a mask.
    pub min_same_mask_space: Coord,
    /// Overlap length built into every stitch (misalignment margin).
    pub stitch_overlap: Coord,
}

impl Default for DptParams {
    fn default() -> Self {
        DptParams { min_same_mask_space: 130, stitch_overlap: 40 }
    }
}

impl DptParams {
    /// Parameters scaled from the drawn minimum spacing: same-mask
    /// spacing ≈ 1.4× drawn, stitch overlap ≈ half the minimum width.
    pub fn for_min_space(s: Coord) -> Self {
        DptParams {
            min_same_mask_space: s * 14 / 10,
            stitch_overlap: s / 2,
        }
    }
}

/// The outcome of a decomposition.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// First exposure mask.
    pub mask_a: Region,
    /// Second exposure mask.
    pub mask_b: Region,
    /// Stitch regions (overlap areas where a feature changes masks).
    pub stitches: Vec<Rect>,
    /// Bounding boxes of features left in unresolved odd cycles.
    pub conflicts: Vec<Rect>,
}

impl Decomposition {
    /// Total feature pieces across both masks.
    pub fn piece_count(&self) -> usize {
        self.mask_a.rect_count() + self.mask_b.rect_count()
    }
}

/// Builds the conflict graph over `components`: an edge joins two
/// components whose separation is below `min_space` (Chebyshev).
pub fn conflict_graph(components: &[Region], min_space: Coord) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    let bboxes: Vec<Rect> = components.iter().map(|c| c.bbox()).collect();
    for i in 0..components.len() {
        for j in (i + 1)..components.len() {
            // Bounding-box prefilter.
            let (dx, dy) = bboxes[i].gap(&bboxes[j]);
            if dx.max(dy) >= min_space {
                continue;
            }
            // Exact: does bloating one by `min_space` reach the other?
            // (Half-open semantics make "overlap after bloat s" ⇔
            // separation < s.)
            let near = components[i].bloated(min_space).intersection(&components[j]);
            if !near.is_empty() {
                edges.push((i, j));
            }
        }
    }
    edges
}

/// BFS 2-colouring.
///
/// Returns the colour vector, or an odd cycle witness (a list of node
/// indices involved) if the graph is not bipartite.
pub fn two_color(n: usize, edges: &[(usize, usize)]) -> Result<Vec<bool>, Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut color: Vec<Option<bool>> = vec![None; n];
    let mut parent: Vec<usize> = (0..n).collect();
    for start in 0..n {
        if color[start].is_some() {
            continue;
        }
        color[start] = Some(false);
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let cu = color[u].expect("queued nodes are coloured");
            for &v in &adj[u] {
                match color[v] {
                    None => {
                        color[v] = Some(!cu);
                        parent[v] = u;
                        queue.push_back(v);
                    }
                    Some(cv) if cv == cu => {
                        // Odd cycle: collect the tree paths of both ends.
                        let mut members = vec![u, v];
                        let mut x = u;
                        while parent[x] != x {
                            x = parent[x];
                            members.push(x);
                        }
                        let mut y = v;
                        while parent[y] != y {
                            y = parent[y];
                            members.push(y);
                        }
                        members.sort_unstable();
                        members.dedup();
                        return Err(members);
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(color.into_iter().map(|c| c.unwrap_or(false)).collect())
}

/// Splits a component into two overlapping pieces at the midpoint of its
/// largest rectangle. Returns `(piece_low, piece_high, stitch_rect)`, or
/// `None` if the component is too small to stitch.
fn split_component(comp: &Region, overlap: Coord) -> Option<(Region, Region, Rect)> {
    let r = comp.rects().iter().max_by_key(|r| r.area())?;
    let horizontal = r.width() >= r.height();
    let bbox = comp.bbox();
    if horizontal {
        if r.width() < 3 * overlap {
            return None;
        }
        let mid = r.x0 + r.width() / 2;
        let low = comp.clipped(Rect::new(bbox.x0, bbox.y0, mid + overlap / 2, bbox.y1));
        let high = comp.clipped(Rect::new(mid - overlap / 2, bbox.y0, bbox.x1, bbox.y1));
        let stitch = Rect::new(mid - overlap / 2, r.y0, mid + overlap / 2, r.y1);
        Some((low, high, stitch))
    } else {
        if r.height() < 3 * overlap {
            return None;
        }
        let mid = r.y0 + r.height() / 2;
        let low = comp.clipped(Rect::new(bbox.x0, bbox.y0, bbox.x1, mid + overlap / 2));
        let high = comp.clipped(Rect::new(bbox.x0, mid - overlap / 2, bbox.x1, bbox.y1));
        let stitch = Rect::new(r.x0, mid - overlap / 2, r.x1, mid + overlap / 2);
        Some((low, high, stitch))
    }
}

/// Decomposes a layer onto two masks, inserting stitches to break odd
/// cycles where possible.
pub fn decompose(layer: &Region, params: DptParams) -> Decomposition {
    let mut pieces: Vec<Region> = layer.connected_components();
    let mut stitches: Vec<Rect> = Vec::new();
    let mut conflicts: Vec<Rect> = Vec::new();
    let mut attempts = pieces.len() + 8;

    loop {
        let edges = conflict_graph(&pieces, params.min_same_mask_space);
        match two_color(pieces.len(), &edges) {
            Ok(colors) => {
                let mut a = Vec::new();
                let mut b = Vec::new();
                for (piece, color) in pieces.iter().zip(colors) {
                    let rects = piece.rects().to_vec();
                    if color {
                        b.extend(rects);
                    } else {
                        a.extend(rects);
                    }
                }
                return Decomposition {
                    mask_a: Region::from_rects(a),
                    mask_b: Region::from_rects(b),
                    stitches,
                    conflicts,
                };
            }
            Err(cycle) => {
                if attempts == 0 {
                    // Give up on the remaining cycles: report and drop
                    // the smallest member to restore colourability.
                    let worst = cycle
                        .iter()
                        .copied()
                        .min_by_key(|&i| pieces[i].area())
                        .expect("cycle is non-empty");
                    conflicts.push(pieces[worst].bbox());
                    pieces.remove(worst);
                    continue;
                }
                attempts -= 1;
                // Stitch the largest member of the cycle.
                let candidate = cycle
                    .iter()
                    .copied()
                    .max_by_key(|&i| pieces[i].area())
                    .expect("cycle is non-empty");
                match split_component(&pieces[candidate], params.stitch_overlap) {
                    Some((low, high, stitch)) => {
                        pieces.swap_remove(candidate);
                        pieces.push(low);
                        pieces.push(high);
                        stitches.push(stitch);
                    }
                    None => {
                        conflicts.push(pieces[candidate].bbox());
                        pieces.swap_remove(candidate);
                    }
                }
            }
        }
    }
}

/// The composite DPT manufacturability score.
pub mod score {
    use super::{Decomposition, DptParams};
    use dfm_geom::Region;
    use std::fmt;

    /// Component scores, each in `[0, 1]`.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct DptScore {
        /// Mask area balance: 1 when both masks carry equal density.
        pub density_balance: f64,
        /// Stitch economy: 1 with no stitches, decaying with stitch
        /// density per feature.
        pub stitch_economy: f64,
        /// Stitch robustness: fraction of stitches meeting the required
        /// overlap.
        pub stitch_robustness: f64,
        /// Conflict cleanliness: 1 with no unresolved odd cycles.
        pub conflict_cleanliness: f64,
    }

    impl DptScore {
        /// Weighted composite score in `[0, 1]` (balance 0.25, economy
        /// 0.25, robustness 0.2, cleanliness 0.3).
        pub fn composite(&self) -> f64 {
            0.25 * self.density_balance
                + 0.25 * self.stitch_economy
                + 0.20 * self.stitch_robustness
                + 0.30 * self.conflict_cleanliness
        }
    }

    impl fmt::Display for DptScore {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "DPT score {:.2} (balance {:.2}, stitches {:.2}/{:.2}, conflicts {:.2})",
                self.composite(),
                self.density_balance,
                self.stitch_economy,
                self.stitch_robustness,
                self.conflict_cleanliness
            )
        }
    }

    /// Scores a decomposition of `layer`.
    pub fn evaluate(decomp: &Decomposition, layer: &Region, params: DptParams) -> DptScore {
        let a = decomp.mask_a.area() as f64;
        let b = decomp.mask_b.area() as f64;
        let density_balance = if a + b > 0.0 { 1.0 - (a - b).abs() / (a + b) } else { 1.0 };

        let features = layer.connected_components().len().max(1) as f64;
        let stitch_density = decomp.stitches.len() as f64 / features;
        let stitch_economy = 1.0 / (1.0 + 4.0 * stitch_density);

        let stitch_robustness = if decomp.stitches.is_empty() {
            1.0
        } else {
            let ok = decomp
                .stitches
                .iter()
                .filter(|s| s.width().min(s.height()) >= params.stitch_overlap)
                .count();
            ok as f64 / decomp.stitches.len() as f64
        };

        let conflict_cleanliness = 1.0 / (1.0 + decomp.conflicts.len() as f64);

        DptScore {
            density_balance,
            stitch_economy,
            stitch_robustness,
            conflict_cleanliness,
        }
    }
}


/// Multi-patterning (k ≥ 2 masks) via greedy DSATUR colouring.
///
/// Double patterning's odd cycles vanish with a third mask — at triple
/// the mask cost. This module quantifies that trade (the "LELE vs LELELE"
/// debate that followed the panel).
pub mod multi {
    use super::{conflict_graph, DptParams};
    use dfm_geom::{Rect, Region};

    /// A k-mask decomposition.
    #[derive(Clone, Debug)]
    pub struct MultiDecomposition {
        /// One region per mask, in mask order.
        pub masks: Vec<Region>,
        /// Features that could not be coloured with k masks.
        pub conflicts: Vec<Rect>,
    }

    impl MultiDecomposition {
        /// Number of masks requested.
        pub fn mask_count(&self) -> usize {
            self.masks.len()
        }
    }

    /// Greedy DSATUR k-colouring.
    ///
    /// Returns one colour per node, `None` marking nodes that could not
    /// be coloured within `k` colours.
    pub fn color_k(n: usize, edges: &[(usize, usize)], k: usize) -> Vec<Option<u8>> {
        assert!((1..=8).contains(&k), "1..=8 masks supported");
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut color: Vec<Option<u8>> = vec![None; n];
        let mut uncolorable: Vec<bool> = vec![false; n];
        for _ in 0..n {
            // DSATUR: pick the uncoloured node with the most distinctly-
            // coloured neighbours (ties by degree, then index).
            let mut best: Option<(usize, usize, usize)> = None; // (sat, deg, idx)
            for v in 0..n {
                if color[v].is_some() || uncolorable[v] {
                    continue;
                }
                let mut seen = [false; 8];
                for &u in &adj[v] {
                    if let Some(c) = color[u] {
                        seen[c as usize] = true;
                    }
                }
                let sat = seen.iter().filter(|&&s| s).count();
                let key = (sat, adj[v].len(), usize::MAX - v);
                if best.is_none_or(|(s, d, i)| key > (s, d, i)) {
                    best = Some(key);
                }
            }
            let Some((_, _, inv_idx)) = best else { break };
            let v = usize::MAX - inv_idx;
            let mut used = [false; 8];
            for &u in &adj[v] {
                if let Some(c) = color[u] {
                    used[c as usize] = true;
                }
            }
            match (0..k).find(|&c| !used[c]) {
                Some(c) => color[v] = Some(c as u8),
                None => uncolorable[v] = true,
            }
        }
        color
    }

    /// Decomposes a layer onto `k` masks (no stitching — the extra mask
    /// replaces it).
    pub fn decompose_k(layer: &Region, params: DptParams, k: usize) -> MultiDecomposition {
        let pieces = layer.connected_components();
        let edges = conflict_graph(&pieces, params.min_same_mask_space);
        let colors = color_k(pieces.len(), &edges, k);
        let mut masks: Vec<Vec<Rect>> = vec![Vec::new(); k];
        let mut conflicts = Vec::new();
        for (piece, color) in pieces.iter().zip(&colors) {
            match color {
                Some(c) => masks[*c as usize].extend(piece.rects().iter().copied()),
                None => conflicts.push(piece.bbox()),
            }
        }
        MultiDecomposition {
            masks: masks.into_iter().map(Region::from_rects).collect(),
            conflicts,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use dfm_geom::Rect;

        #[test]
        fn triangle_needs_three_masks() {
            let edges = [(0, 1), (1, 2), (2, 0)];
            let two = color_k(3, &edges, 2);
            assert!(two.iter().any(|c| c.is_none()));
            let three = color_k(3, &edges, 3);
            assert!(three.iter().all(|c| c.is_some()));
            // Proper colouring.
            for &(a, b) in &edges {
                assert_ne!(three[a], three[b]);
            }
        }

        #[test]
        fn k4_defeats_three_masks() {
            let edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
            let three = color_k(4, &edges, 3);
            assert_eq!(three.iter().filter(|c| c.is_none()).count(), 1);
            let four = color_k(4, &edges, 4);
            assert!(four.iter().all(|c| c.is_some()));
        }

        #[test]
        fn native_dpt_conflict_resolves_with_triple() {
            // The compact triangle that double patterning cannot fix.
            let layer = Region::from_rects([
                Rect::new(0, 0, 2000, 90),
                Rect::new(0, 180, 2000, 270),
                Rect::new(2090, -200, 2180, 500),
            ]);
            let params = DptParams::default();
            let double = super::super::decompose(&layer, params);
            assert!(!double.conflicts.is_empty(), "DPT must fail on this");
            let triple = decompose_k(&layer, params, 3);
            assert!(triple.conflicts.is_empty(), "TPT must succeed");
            let union = triple
                .masks
                .iter()
                .fold(Region::new(), |acc, m| acc.union(m));
            assert_eq!(union, layer);
        }

        #[test]
        fn masks_are_mutually_clear() {
            let layer = Region::from_rects(
                (0..9).map(|i| Rect::new(0, i * 180, 4000, i * 180 + 90)),
            );
            let d = decompose_k(&layer, DptParams::default(), 3);
            assert!(d.conflicts.is_empty());
            // Within each mask, separation is at least the same-mask rule.
            for m in &d.masks {
                for pair in dfm_drc_probe(m) {
                    assert!(pair >= DptParams::default().min_same_mask_space);
                }
            }
        }

        fn dfm_drc_probe(mask: &Region) -> Vec<i64> {
            let rects = mask.rects();
            let mut gaps = Vec::new();
            for i in 0..rects.len() {
                for j in (i + 1)..rects.len() {
                    let (dx, dy) = rects[i].gap(&rects[j]);
                    gaps.push(dx.max(dy));
                }
            }
            gaps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grating(n: i64, pitch: Coord, w: Coord) -> Region {
        Region::from_rects((0..n).map(|i| Rect::new(0, i * pitch, 4000, i * pitch + w)))
    }

    /// Smallest vertical gap between rects of a region (for tests).
    fn min_vertical_gap(mask: &Region) -> Coord {
        let rects = mask.rects();
        let mut best = Coord::MAX;
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                let (dx, dy) = rects[i].gap(&rects[j]);
                if dx == 0 && dy > 0 {
                    best = best.min(dy);
                }
            }
        }
        best
    }

    #[test]
    fn dense_grating_alternates() {
        // 90/90: drawn spacing 90 < same-mask minimum 130.
        let layer = grating(6, 180, 90);
        let d = decompose(&layer, DptParams::default());
        assert!(d.conflicts.is_empty());
        assert!(d.stitches.is_empty());
        assert_eq!(d.mask_a.rect_count() + d.mask_b.rect_count(), 6);
        assert_eq!(d.mask_a.rect_count(), 3);
        // Same-mask spacing is now a full pitch: 270 ≥ 130.
        assert!(min_vertical_gap(&d.mask_a) >= 270);
    }

    #[test]
    fn sparse_layer_needs_no_splitting() {
        let layer = grating(4, 600, 90);
        let d = decompose(&layer, DptParams::default());
        assert!(d.conflicts.is_empty());
        assert_eq!(d.mask_a.rect_count() + d.mask_b.rect_count(), 4);
    }

    #[test]
    fn ring_odd_cycle_gets_stitched() {
        // A three-piece ring: bottom bar, right bar, and an L (top bar +
        // left arm). Pairwise conflicts sit at three *different* corners,
        // so splitting the L between its two conflict zones turns the odd
        // cycle into an even one — the textbook stitchable case.
        let p1 = Rect::new(0, 0, 1000, 90); // bottom
        let p2 = Rect::new(1090, 0, 1180, 1000); // right
        let p3_bar = Rect::new(0, 1090, 1090, 1180); // top (L part)
        let p3_arm = Rect::new(0, 180, 90, 1180); // left arm (L part)
        let layer = Region::from_rects([p1, p2, p3_bar, p3_arm]);
        let params = DptParams::default();
        let comps = layer.connected_components();
        assert_eq!(comps.len(), 3);
        let edges = conflict_graph(&comps, params.min_same_mask_space);
        assert_eq!(edges.len(), 3, "ring expected: {edges:?}");
        assert!(two_color(3, &edges).is_err());

        let d = decompose(&layer, params);
        assert!(d.conflicts.is_empty(), "conflicts: {:?}", d.conflicts);
        assert!(!d.stitches.is_empty());
        // Decomposition preserves the drawn geometry.
        assert_eq!(d.mask_a.union(&d.mask_b), layer);
    }

    #[test]
    fn compact_triangle_is_a_native_conflict() {
        // Two long parallel bars plus a vertical bar near their right
        // ends: the three features are mutually close *in one compact
        // neighbourhood*, which no stitching can fix — a native DPT
        // conflict that requires a layout change.
        let layer = Region::from_rects([
            Rect::new(0, 0, 2000, 90),
            Rect::new(0, 180, 2000, 270),
            Rect::new(2090, -200, 2180, 500),
        ]);
        let d = decompose(&layer, DptParams::default());
        assert!(!d.conflicts.is_empty());
    }

    #[test]
    fn unstitchable_conflict_reported() {
        // Three tiny squares in mutual conflict: too small to stitch.
        let layer = Region::from_rects([
            Rect::new(0, 0, 60, 60),
            Rect::new(120, 0, 180, 60),
            Rect::new(60, 100, 120, 160),
        ]);
        let d = decompose(&layer, DptParams::default());
        assert!(!d.conflicts.is_empty());
    }

    #[test]
    fn two_color_simple_graphs() {
        assert!(two_color(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).is_ok());
        let cycle = two_color(3, &[(0, 1), (1, 2), (2, 0)]).expect_err("triangle is odd");
        assert!(!cycle.is_empty());
        assert!(two_color(5, &[(0, 1), (3, 4)]).is_ok());
    }

    #[test]
    fn scores_in_range_and_ordered() {
        let params = DptParams::default();
        let clean_layer = grating(6, 180, 90);
        let clean = decompose(&clean_layer, params);
        let clean_score = score::evaluate(&clean, &clean_layer, params);
        assert!(clean_score.composite() > 0.9, "{clean_score}");

        let messy_layer = Region::from_rects([
            Rect::new(0, 0, 2000, 90),
            Rect::new(0, 180, 2000, 270),
            Rect::new(2090, -200, 2180, 500),
        ]);
        let messy = decompose(&messy_layer, params);
        let messy_score = score::evaluate(&messy, &messy_layer, params);
        assert!(messy_score.composite() < clean_score.composite());
        for s in [
            messy_score.density_balance,
            messy_score.stitch_economy,
            messy_score.stitch_robustness,
            messy_score.conflict_cleanliness,
        ] {
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn decomposition_preserves_geometry() {
        let layer = grating(8, 180, 90);
        let d = decompose(&layer, DptParams::default());
        assert_eq!(d.mask_a.union(&d.mask_b), layer);
        assert!(d.mask_a.intersection(&d.mask_b).is_empty());
    }
}
