//! Property test: tile-streamed critical-area analysis is bit-identical
//! to the flat analysis — same pairs, same order, same f64 bits — on
//! random layouts and tile sizes.

use dfm_check::{check, prop_assert, prop_assert_eq, Config};
use dfm_geom::{Rect, Region};
use dfm_layout::{layers, FlatLayout, TiledLayout, TilingConfig};
use dfm_yield::{critical_area, DefectModel};

#[test]
fn analyze_tiled_matches_flat_on_random_layouts() {
    let cfg = Config::with_cases(48);
    check(
        "analyze_tiled_matches_flat_on_random_layouts",
        &cfg,
        &(
            dfm_check::vec((0i64..14, 0i64..14, 0i64..5, 0i64..5), 2..16),
            90i64..800,
            0i64..90,
        ),
        |case| {
            let (specs, tile, halo) = (&case.0, case.1, case.2);
            let region = Region::from_rects(specs.iter().map(|&(x, y, w, h)| {
                Rect::new(x * 60, y * 60, x * 60 + 40 + w * 55, y * 60 + 40 + h * 55)
            }));
            let defects = DefectModel::new(50, 1.0);
            let reference = critical_area::analyze(&region, &defects);
            let mut flat = FlatLayout::default();
            flat.set_region(layers::METAL1, region.clone());
            prop_assert_eq!(
                critical_area::analyze_view(&flat, layers::METAL1, &defects),
                reference.clone(),
                "flat view diverged"
            );
            for t in [tile, tile + 31] {
                let shard_cfg = TilingConfig::builder()
                    .tile(t)
                    .halo(halo)
                    .build()
                    .expect("valid tiling");
                let tiled = TiledLayout::from_flat(flat.clone(), shard_cfg);
                let ca = critical_area::analyze_tiled(&tiled, layers::METAL1, &defects);
                prop_assert_eq!(&ca, &reference, "tile {} halo {}", t, halo);
                prop_assert!(
                    ca.short_ca_nm2.to_bits() == reference.short_ca_nm2.to_bits()
                        && ca.open_ca_nm2.to_bits() == reference.open_ca_nm2.to_bits(),
                    "CA sums must match to the bit"
                );
            }
            Ok(())
        },
    );
}
