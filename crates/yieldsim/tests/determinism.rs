//! Run-to-run determinism: every stochastic path in the yield stack is
//! seeded, so consecutive `cargo test` invocations (and any two
//! machines) compute bit-identical results. These tests re-run the
//! Monte-Carlo estimators in-process and compare exact f64 bits — any
//! hidden entropy source (time, ASLR-dependent hashing, thread count)
//! would break them.

use dfm_geom::{Rect, Region};
use dfm_rand::Rng;
use dfm_yield::{monte_carlo, DefectModel};

fn wires() -> Region {
    Region::from_rects((0..8).map(|i| Rect::new(0, i * 260, 4_000, i * 260 + 100)))
}

#[test]
fn short_ca_estimate_is_bit_identical_across_runs() {
    let metal = wires();
    let defects = DefectModel::new(45, 1.0);
    let a = monte_carlo::estimate_short_ca(&metal, &defects, 3_000, 7);
    let b = monte_carlo::estimate_short_ca(&metal, &defects, 3_000, 7);
    assert_eq!(a.short_ca_nm2.to_bits(), b.short_ca_nm2.to_bits());
    assert_eq!(a.std_err_nm2.to_bits(), b.std_err_nm2.to_bits());
    assert_eq!(a.kills, b.kills);

    // A different seed must actually change the estimate — otherwise the
    // "determinism" above would be vacuous.
    let c = monte_carlo::estimate_short_ca(&metal, &defects, 3_000, 8);
    assert_ne!(a.kills, c.kills);
}

#[test]
fn open_ca_estimate_is_bit_identical_across_runs() {
    let metal = wires();
    let defects = DefectModel::new(45, 1.0);
    let a = monte_carlo::estimate_open_ca(&metal, &defects, 3_000, 11);
    let b = monte_carlo::estimate_open_ca(&metal, &defects, 3_000, 11);
    assert_eq!(a.short_ca_nm2.to_bits(), b.short_ca_nm2.to_bits());
    assert_eq!(a.kills, b.kills);
}

#[test]
fn defect_sampler_stream_is_reproducible() {
    let m = DefectModel::new(45, 1.0);
    let mut r1 = Rng::seed_from_u64(9);
    let mut r2 = Rng::seed_from_u64(9);
    let s1: Vec<i64> = (0..4_096).map(|_| m.sample_diameter(&mut r1)).collect();
    let s2: Vec<i64> = (0..4_096).map(|_| m.sample_diameter(&mut r2)).collect();
    assert_eq!(s1, s2);
}
