//! Property-based tests for the yield models.

use dfm_geom::{Rect, Region};
use dfm_yield::{critical_area, model, via_model, DefectModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Yield models stay in (0, 1] and are monotone in their arguments.
    #[test]
    fn yield_model_bounds(ac in 0.0f64..1e12, d0 in 0.0f64..1e5, alpha in 0.1f64..100.0) {
        let y = model::poisson_yield(ac, d0);
        prop_assert!((0.0..=1.0).contains(&y));
        let nb = model::negative_binomial_yield(ac, d0, alpha);
        prop_assert!((0.0..=1.0).contains(&nb));
        // Clustering never hurts yield relative to Poisson.
        prop_assert!(nb >= y - 1e-12);
        // Monotone in critical area.
        prop_assert!(model::poisson_yield(ac * 2.0, d0) <= y + 1e-12);
    }

    /// Short CA grows monotonically as wires move closer.
    #[test]
    fn short_ca_monotone_in_spacing(s1 in 60i64..200, delta in 1i64..200, len in 1_000i64..50_000) {
        let defects = DefectModel::new(45, 1.0);
        let make = |gap: i64| {
            Region::from_rects([
                Rect::new(0, 0, len, 100),
                Rect::new(0, 100 + gap, len, 200 + gap),
            ])
        };
        let close = critical_area::analyze(&make(s1), &defects).short_ca_nm2;
        let far = critical_area::analyze(&make(s1 + delta), &defects).short_ca_nm2;
        prop_assert!(close >= far, "closer {close} < farther {far}");
    }

    /// The closed form matches the hand formula on a single pair.
    #[test]
    fn pair_formula_exact(s in 50i64..400, len in 100i64..10_000, x0 in 10i64..50) {
        // For s >= x0 the average CA of one pair is L·x0²/s.
        prop_assume!(s >= x0);
        let got = critical_area::pair_average_ca(s, len, x0);
        let want = len as f64 * (x0 * x0) as f64 / s as f64;
        prop_assert!((got - want).abs() < 1e-9);
    }

    /// Via yield: redundancy monotone, bounds respected.
    #[test]
    fn via_yield_properties(single in 0usize..1000, redundant in 0usize..1000, p in 0.0f64..0.5) {
        let stats = via_model::ViaStats { single, redundant };
        let y = via_model::via_yield(stats, p);
        prop_assert!((0.0..=1.0).contains(&y));
        // Converting singles to redundant pairs never lowers yield.
        if single > 0 {
            let improved = via_model::ViaStats { single: single - 1, redundant: redundant + 1 };
            prop_assert!(via_model::via_yield(improved, p) >= y - 1e-12);
        }
        // λ is consistent with the yield to first order at small p.
        let lambda = via_model::expected_failures(stats, p);
        if lambda < 0.01 {
            prop_assert!((y - (-lambda).exp()).abs() < 1e-3);
        }
    }

    /// The defect survival function integrates the sampler: empirical
    /// exceedance matches (x0/x)² within Monte-Carlo noise.
    #[test]
    fn sampler_matches_survival(x0 in 10i64..100, factor in 2i64..6) {
        use rand::SeedableRng;
        let m = DefectModel::new(x0, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 20_000;
        let threshold = x0 * factor;
        let over = (0..n)
            .filter(|_| m.sample_diameter(&mut rng) > threshold)
            .count() as f64
            / n as f64;
        let want = m.survival(threshold);
        prop_assert!((over - want).abs() < 0.02, "{over} vs {want}");
    }
}
