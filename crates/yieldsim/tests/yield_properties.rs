//! Property-based tests for the yield models (dfm-check harness).

use dfm_check::{check, prop_assert, prop_assume, Config};
use dfm_geom::{Rect, Region};
use dfm_yield::{critical_area, model, via_model, DefectModel};

fn cfg() -> Config {
    Config::with_cases(64)
}

/// Yield models stay in (0, 1] and are monotone in their arguments.
#[test]
fn yield_model_bounds() {
    check(
        "yield_model_bounds",
        &cfg(),
        &(0.0f64..1e12, 0.0f64..1e5, 0.1f64..100.0),
        |v| {
            let (ac, d0, alpha) = *v;
            let y = model::poisson_yield(ac, d0);
            prop_assert!((0.0..=1.0).contains(&y));
            let nb = model::negative_binomial_yield(ac, d0, alpha);
            prop_assert!((0.0..=1.0).contains(&nb));
            // Clustering never hurts yield relative to Poisson.
            prop_assert!(nb >= y - 1e-12);
            // Monotone in critical area.
            prop_assert!(model::poisson_yield(ac * 2.0, d0) <= y + 1e-12);
            Ok(())
        },
    );
}

/// Short CA grows monotonically as wires move closer.
#[test]
fn short_ca_monotone_in_spacing() {
    check(
        "short_ca_monotone_in_spacing",
        &cfg(),
        &(60i64..200, 1i64..200, 1_000i64..50_000),
        |v| {
            let (s1, delta, len) = *v;
            let defects = DefectModel::new(45, 1.0);
            let make = |gap: i64| {
                Region::from_rects([
                    Rect::new(0, 0, len, 100),
                    Rect::new(0, 100 + gap, len, 200 + gap),
                ])
            };
            let close = critical_area::analyze(&make(s1), &defects).short_ca_nm2;
            let far = critical_area::analyze(&make(s1 + delta), &defects).short_ca_nm2;
            prop_assert!(close >= far, "closer {close} < farther {far}");
            Ok(())
        },
    );
}

/// The closed form matches the hand formula on a single pair.
#[test]
fn pair_formula_exact() {
    check(
        "pair_formula_exact",
        &cfg(),
        &(50i64..400, 100i64..10_000, 10i64..50),
        |v| {
            let (s, len, x0) = *v;
            // For s >= x0 the average CA of one pair is L·x0²/s.
            prop_assume!(s >= x0);
            let got = critical_area::pair_average_ca(s, len, x0);
            let want = len as f64 * (x0 * x0) as f64 / s as f64;
            prop_assert!((got - want).abs() < 1e-9);
            Ok(())
        },
    );
}

/// Via yield: redundancy monotone, bounds respected.
#[test]
fn via_yield_properties() {
    check(
        "via_yield_properties",
        &cfg(),
        &(0usize..1000, 0usize..1000, 0.0f64..0.5),
        |v| {
            let (single, redundant, p) = *v;
            let stats = via_model::ViaStats { single, redundant };
            let y = via_model::via_yield(stats, p);
            prop_assert!((0.0..=1.0).contains(&y));
            // Converting singles to redundant pairs never lowers yield.
            if single > 0 {
                let improved =
                    via_model::ViaStats { single: single - 1, redundant: redundant + 1 };
                prop_assert!(via_model::via_yield(improved, p) >= y - 1e-12);
            }
            // λ is consistent with the yield to first order at small p.
            let lambda = via_model::expected_failures(stats, p);
            if lambda < 0.01 {
                prop_assert!((y - (-lambda).exp()).abs() < 1e-3);
            }
            Ok(())
        },
    );
}

/// The defect survival function integrates the sampler: empirical
/// exceedance matches (x0/x)² within Monte-Carlo noise.
#[test]
fn sampler_matches_survival() {
    check(
        "sampler_matches_survival",
        &cfg(),
        &(10i64..100, 2i64..6),
        |v| {
            let (x0, factor) = *v;
            let m = DefectModel::new(x0, 1.0);
            let mut rng = dfm_rand::Rng::seed_from_u64(9);
            let n = 20_000;
            let threshold = x0 * factor;
            let over = (0..n)
                .filter(|_| m.sample_diameter(&mut rng) > threshold)
                .count() as f64
                / n as f64;
            let want = m.survival(threshold);
            prop_assert!((over - want).abs() < 0.02, "{over} vs {want}");
            Ok(())
        },
    );
}

/// Brute-force numeric integration of the same piecewise model the
/// closed form in `monte_carlo::integrate_size_distribution` encodes:
/// constant CA per geometric bin, linear (or degenerate-constant) tail,
/// against the 2x0²/x³ defect-size pdf. The trapezoid rule runs in
/// u = 1/x, where both the bin integrand (ca·u) and the tail integrand
/// (c0·u + c1) are linear, so the only error is tail truncation.
fn brute_force_size_mean(sizes: &[i64], ca: &[f64], x0: f64) -> f64 {
    let n = sizes.len();
    if n == 0 {
        return 0.0;
    }
    let mut bounds = vec![x0];
    for j in 1..n {
        bounds.push((sizes[j - 1] as f64 * sizes[j] as f64).sqrt());
    }
    let b_last = sizes[n - 1] as f64 * 2f64.sqrt();
    bounds.push(b_last);
    let integrate = |a: f64, b: f64, f: &dyn Fn(f64) -> f64| -> f64 {
        let (ua, ub) = (1.0 / b, 1.0 / a);
        let steps = 4000usize;
        let h = (ub - ua) / steps as f64;
        let g = |u: f64| f(1.0 / u) * u;
        let mut s = (g(ua) + g(ub)) / 2.0;
        for k in 1..steps {
            s += g(ua + h * k as f64);
        }
        2.0 * x0 * x0 * s * h
    };
    let mut mean = 0.0;
    for j in 0..n {
        mean += integrate(bounds[j], bounds[j + 1], &|_| ca[j]);
    }
    let (c0, c1) = if n >= 2 && sizes[n - 1] > sizes[n - 2] {
        let (d1, d2) = (sizes[n - 2] as f64, sizes[n - 1] as f64);
        let slope = (ca[n - 1] - ca[n - 2]) / (d2 - d1);
        (ca[n - 1] - slope * d2, slope)
    } else {
        (ca[n - 1], 0.0) // single sample or repeated top size: flat tail
    };
    mean + integrate(b_last, b_last * 1e7, &|x| c0 + c1 * x).max(0.0)
}

/// The closed-form size-distribution integration matches brute force on
/// random spectra — including the degenerate single-size (n == 1) case
/// that used to lose its tail mass, and repeated top sizes.
#[test]
fn size_integration_matches_brute_force() {
    check(
        "size_integration_matches_brute_force",
        &cfg(),
        &(dfm_check::vec((0i64..400, 0i64..1_000_000), 1..9), 10i64..200),
        |v| {
            let (steps, x0_int) = v;
            let x0 = *x0_int as f64;
            let mut sizes: Vec<i64> = Vec::new();
            let mut ca: Vec<f64> = Vec::new();
            let mut d = *x0_int;
            for (gap, c) in steps {
                d += 1 + gap; // strictly increasing, ≥ x0 + 1
                sizes.push(d);
                ca.push(*c as f64 * 10.0);
            }
            let se = vec![0.0; sizes.len()];
            let (mean, var) =
                dfm_yield::monte_carlo::integrate_size_distribution(&sizes, &ca, &se, x0);
            prop_assert!(mean.is_finite() && var == 0.0, "mean {mean} var {var}");
            let brute = brute_force_size_mean(&sizes, &ca, x0);
            let tol = 1e-5 * mean.abs().max(brute.abs()).max(1.0);
            prop_assert!(
                (mean - brute).abs() <= tol,
                "closed form {mean} vs brute force {brute} (n = {})",
                sizes.len()
            );
            Ok(())
        },
    );
}
