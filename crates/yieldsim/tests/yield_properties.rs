//! Property-based tests for the yield models (dfm-check harness).

use dfm_check::{check, prop_assert, prop_assume, Config};
use dfm_geom::{Rect, Region};
use dfm_yield::{critical_area, model, via_model, DefectModel};

fn cfg() -> Config {
    Config::with_cases(64)
}

/// Yield models stay in (0, 1] and are monotone in their arguments.
#[test]
fn yield_model_bounds() {
    check(
        "yield_model_bounds",
        &cfg(),
        &(0.0f64..1e12, 0.0f64..1e5, 0.1f64..100.0),
        |v| {
            let (ac, d0, alpha) = *v;
            let y = model::poisson_yield(ac, d0);
            prop_assert!((0.0..=1.0).contains(&y));
            let nb = model::negative_binomial_yield(ac, d0, alpha);
            prop_assert!((0.0..=1.0).contains(&nb));
            // Clustering never hurts yield relative to Poisson.
            prop_assert!(nb >= y - 1e-12);
            // Monotone in critical area.
            prop_assert!(model::poisson_yield(ac * 2.0, d0) <= y + 1e-12);
            Ok(())
        },
    );
}

/// Short CA grows monotonically as wires move closer.
#[test]
fn short_ca_monotone_in_spacing() {
    check(
        "short_ca_monotone_in_spacing",
        &cfg(),
        &(60i64..200, 1i64..200, 1_000i64..50_000),
        |v| {
            let (s1, delta, len) = *v;
            let defects = DefectModel::new(45, 1.0);
            let make = |gap: i64| {
                Region::from_rects([
                    Rect::new(0, 0, len, 100),
                    Rect::new(0, 100 + gap, len, 200 + gap),
                ])
            };
            let close = critical_area::analyze(&make(s1), &defects).short_ca_nm2;
            let far = critical_area::analyze(&make(s1 + delta), &defects).short_ca_nm2;
            prop_assert!(close >= far, "closer {close} < farther {far}");
            Ok(())
        },
    );
}

/// The closed form matches the hand formula on a single pair.
#[test]
fn pair_formula_exact() {
    check(
        "pair_formula_exact",
        &cfg(),
        &(50i64..400, 100i64..10_000, 10i64..50),
        |v| {
            let (s, len, x0) = *v;
            // For s >= x0 the average CA of one pair is L·x0²/s.
            prop_assume!(s >= x0);
            let got = critical_area::pair_average_ca(s, len, x0);
            let want = len as f64 * (x0 * x0) as f64 / s as f64;
            prop_assert!((got - want).abs() < 1e-9);
            Ok(())
        },
    );
}

/// Via yield: redundancy monotone, bounds respected.
#[test]
fn via_yield_properties() {
    check(
        "via_yield_properties",
        &cfg(),
        &(0usize..1000, 0usize..1000, 0.0f64..0.5),
        |v| {
            let (single, redundant, p) = *v;
            let stats = via_model::ViaStats { single, redundant };
            let y = via_model::via_yield(stats, p);
            prop_assert!((0.0..=1.0).contains(&y));
            // Converting singles to redundant pairs never lowers yield.
            if single > 0 {
                let improved =
                    via_model::ViaStats { single: single - 1, redundant: redundant + 1 };
                prop_assert!(via_model::via_yield(improved, p) >= y - 1e-12);
            }
            // λ is consistent with the yield to first order at small p.
            let lambda = via_model::expected_failures(stats, p);
            if lambda < 0.01 {
                prop_assert!((y - (-lambda).exp()).abs() < 1e-3);
            }
            Ok(())
        },
    );
}

/// The defect survival function integrates the sampler: empirical
/// exceedance matches (x0/x)² within Monte-Carlo noise.
#[test]
fn sampler_matches_survival() {
    check(
        "sampler_matches_survival",
        &cfg(),
        &(10i64..100, 2i64..6),
        |v| {
            let (x0, factor) = *v;
            let m = DefectModel::new(x0, 1.0);
            let mut rng = dfm_rand::Rng::seed_from_u64(9);
            let n = 20_000;
            let threshold = x0 * factor;
            let over = (0..n)
                .filter(|_| m.sample_diameter(&mut rng) > threshold)
                .count() as f64
                / n as f64;
            let want = m.survival(threshold);
            prop_assert!((over - want).abs() < 0.02, "{over} vs {want}");
            Ok(())
        },
    );
}
