//! Via-failure statistics: single versus redundant vias.
//!
//! Via opens are a dominant random-defect mechanism; doubling a via cuts
//! the connection's failure probability from `p` to roughly `p²`. This
//! module classifies the vias of a layout into redundancy groups and
//! evaluates the resulting connection yield — the quantitative core of
//! experiment E2 ("redundant vias: hit or hype?").

use dfm_geom::{GridIndex, Region};

/// Redundancy census of a via layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViaStats {
    /// Connections served by a single via cut.
    pub single: usize,
    /// Connections served by two or more cuts.
    pub redundant: usize,
}

impl ViaStats {
    /// Total connections.
    pub fn connections(&self) -> usize {
        self.single + self.redundant
    }

    /// Fraction of connections with redundancy.
    pub fn redundancy_rate(&self) -> f64 {
        if self.connections() == 0 {
            return 0.0;
        }
        self.redundant as f64 / self.connections() as f64
    }
}

/// Groups via cuts into connections: cuts whose rectangles lie within
/// `pair_distance` of each other (edge-to-edge, Chebyshev) are assumed to
/// serve the same connection redundantly.
pub fn classify(vias: &Region, pair_distance: i64) -> ViaStats {
    let rects = vias.rects();
    let n = rects.len();
    if n == 0 {
        return ViaStats::default();
    }
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let cell = (pair_distance.max(1)) * 4;
    let mut index = GridIndex::new(cell);
    for (i, r) in rects.iter().enumerate() {
        index.insert(*r, i);
    }
    let mut searcher = index.searcher();
    for (i, r) in rects.iter().enumerate() {
        for &&j in searcher.query(r.expanded(pair_distance)).iter() {
            if j > i {
                let (dx, dy) = r.gap(&rects[j]);
                if dx.max(dy) <= pair_distance {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
    }
    let mut sizes = std::collections::HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        *sizes.entry(root).or_insert(0usize) += 1;
    }
    let mut stats = ViaStats::default();
    for (_, size) in sizes {
        if size >= 2 {
            stats.redundant += 1;
        } else {
            stats.single += 1;
        }
    }
    stats
}

/// Connection yield given per-cut failure probability `p_fail`: single
/// cuts fail with `p`, redundant groups with `p²` (independent cuts).
pub fn via_yield(stats: ViaStats, p_fail: f64) -> f64 {
    let single = (1.0 - p_fail).powi(stats.single as i32);
    let redundant = (1.0 - p_fail * p_fail).powi(stats.redundant as i32);
    single * redundant
}

/// Expected failing connections, the `λ` of the via yield Poisson.
pub fn expected_failures(stats: ViaStats, p_fail: f64) -> f64 {
    stats.single as f64 * p_fail + stats.redundant as f64 * p_fail * p_fail
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::Rect;

    fn via(cx: i64, cy: i64) -> Rect {
        Rect::new(cx - 45, cy - 45, cx + 45, cy + 45)
    }

    #[test]
    fn classify_singles_and_pairs() {
        let vias = Region::from_rects([
            via(0, 0),
            via(5000, 0),
            // A redundant pair: 60 apart edge-to-edge.
            via(10_000, 0),
            via(10_150, 0),
        ]);
        let stats = classify(&vias, 100);
        assert_eq!(stats.single, 2);
        assert_eq!(stats.redundant, 1);
        assert_eq!(stats.connections(), 3);
        assert!((stats.redundancy_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pair_distance_controls_grouping() {
        let vias = Region::from_rects([via(0, 0), via(300, 0)]); // 210 gap
        assert_eq!(classify(&vias, 100).single, 2);
        assert_eq!(classify(&vias, 250).redundant, 1);
    }

    #[test]
    fn redundancy_boosts_yield() {
        let p = 1e-3;
        let all_single = ViaStats { single: 1000, redundant: 0 };
        let all_double = ViaStats { single: 0, redundant: 1000 };
        let ys = via_yield(all_single, p);
        let yd = via_yield(all_double, p);
        assert!(yd > ys);
        // Doubling turns ~63% loss into ~0.1% loss at p=1e-3, n=1000.
        assert!(ys < 0.40);
        assert!(yd > 0.99);
    }

    #[test]
    fn expected_failures_linearity() {
        let stats = ViaStats { single: 100, redundant: 50 };
        let p = 1e-2;
        let lambda = expected_failures(stats, p);
        assert!((lambda - (1.0 + 50.0 * 1e-4)).abs() < 1e-12);
    }

    #[test]
    fn empty_region() {
        let stats = classify(&Region::new(), 100);
        assert_eq!(stats.connections(), 0);
        assert_eq!(via_yield(stats, 0.5), 1.0);
    }

    #[test]
    fn zero_connections_redundancy_rate_is_zero_not_nan() {
        // Regression: redundant / connections() on a via-free layout is
        // 0/0 = NaN without the guard, and NaN poisons any aggregate it
        // is folded into (e.g. the manufacturability score, where the
        // weighted mean of anything with NaN is NaN).
        let stats = classify(&Region::new(), 100);
        let rate = stats.redundancy_rate();
        assert!(rate.is_finite(), "redundancy rate must be finite, got {rate}");
        assert_eq!(rate, 0.0);
        let manual = ViaStats { single: 0, redundant: 0 };
        assert_eq!(manual.redundancy_rate(), 0.0);
        // The neutral value must stay out of the way of an average.
        assert_eq!((rate + 1.0) / 2.0, 0.5);
    }
}
