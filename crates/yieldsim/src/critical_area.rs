//! Critical-area extraction and the closed-form average critical area.

use crate::DefectModel;
use dfm_drc::{
    exterior_facing_pairs, facing_pair_partial, interior_facing_pairs, merge_facing_pair_partials,
    tiled_facing_pairs, FacingPair, PairFragment,
};
use dfm_geom::Region;
use dfm_layout::{Layer, LayoutView, TiledLayout};

/// The result of a critical-area analysis of one layer.
#[derive(Clone, Debug, PartialEq)]
pub struct CaResult {
    /// Average critical area for shorts (defects bridging a spacing), nm².
    pub short_ca_nm2: f64,
    /// Average critical area for opens (defects severing a width), nm².
    pub open_ca_nm2: f64,
    /// The facing spacing pairs that contributed (distance, length).
    pub short_pairs: Vec<FacingPair>,
    /// The facing width pairs that contributed.
    pub open_pairs: Vec<FacingPair>,
}

impl CaResult {
    /// Combined average critical area, nm².
    pub fn total_ca_nm2(&self) -> f64 {
        self.short_ca_nm2 + self.open_ca_nm2
    }
}

/// Closed-form average critical area of one facing pair under the
/// `2·x₀²/x³` size distribution:
///
/// * distance `s ≥ x₀`:  `L · x₀² / s`
/// * distance `s < x₀`:  `L · (2·x₀ − s)`
pub fn pair_average_ca(distance: i64, length: i64, x0: i64) -> f64 {
    let (s, l, x0f) = (distance as f64, length as f64, x0 as f64);
    if distance >= x0 {
        l * x0f * x0f / s
    } else {
        l * (2.0 * x0f - s)
    }
}

/// Analyses a layer with the default extraction range of `10·x₀`
/// (pairs farther apart contribute under 1% each and are truncated).
pub fn analyze(region: &Region, defects: &DefectModel) -> CaResult {
    analyze_with_range(region, defects, 10 * defects.x0)
}

/// Analyses a layer considering facing pairs up to `max_range` apart.
pub fn analyze_with_range(region: &Region, defects: &DefectModel, max_range: i64) -> CaResult {
    let short_pairs = exterior_facing_pairs(region, max_range);
    let open_pairs = interior_facing_pairs(region, max_range);
    from_pairs(short_pairs, open_pairs, defects)
}

/// Analyses one layer of any [`LayoutView`] (whole chip or tile view)
/// with the default extraction range.
pub fn analyze_view(view: &impl LayoutView, layer: Layer, defects: &DefectModel) -> CaResult {
    analyze(&view.region(layer), defects)
}

/// Tile-streamed analysis: pair extraction runs per tile through
/// [`dfm_drc::tiled_facing_pairs`] without ever materialising the full
/// layer region, and the merged pair list — hence every CA figure — is
/// bit-identical to [`analyze`] on the flat layer.
pub fn analyze_tiled(layout: &TiledLayout, layer: Layer, defects: &DefectModel) -> CaResult {
    analyze_tiled_with_range(layout, layer, defects, 10 * defects.x0)
}

/// Tile-streamed analysis with an explicit extraction range.
pub fn analyze_tiled_with_range(
    layout: &TiledLayout,
    layer: Layer,
    defects: &DefectModel,
    max_range: i64,
) -> CaResult {
    let short_pairs = tiled_facing_pairs(layout, layer, max_range, false);
    let open_pairs = tiled_facing_pairs(layout, layer, max_range, true);
    from_pairs(short_pairs, open_pairs, defects)
}

/// One tile's mergeable critical-area partial: the core-owned facing
/// fragment strips of both senses (exterior gaps for shorts, interior
/// runs for opens), plus the tile's canonical rect count.
#[derive(Clone, Debug, PartialEq)]
pub struct CaTilePartial {
    /// Owned exterior (spacing) fragment strips — the short candidates.
    pub short: Vec<PairFragment>,
    /// Owned interior (width) fragment strips — the open candidates.
    pub open: Vec<PairFragment>,
    /// Canonical rect count of the materialised tile view.
    pub rects: usize,
}

/// Computes one tile's [`CaTilePartial`] — a pure function of
/// `(layout, layer, max_range, tile index)` a job scheduler can run as
/// an independent task and persist across restarts. Merging every
/// tile's partial in tile order with [`merge_ca_partials`] reproduces
/// [`analyze_with_range`] on the flat layer bit-for-bit.
pub fn ca_tile_partial(
    layout: &TiledLayout,
    layer: Layer,
    max_range: i64,
    tile: usize,
) -> CaTilePartial {
    let (short, rects) = facing_pair_partial(layout, layer, max_range, false, tile);
    let (open, _) = facing_pair_partial(layout, layer, max_range, true, tile);
    CaTilePartial { short, open, rects }
}

/// Merges per-tile partials (given in tile order) into the exact flat
/// [`CaResult`]: fragments re-coalesce into the canonical flat pair
/// order, so the f64 accumulation — and therefore every CA figure's
/// bits — match [`analyze_with_range`].
pub fn merge_ca_partials(
    partials: impl IntoIterator<Item = CaTilePartial>,
    defects: &DefectModel,
) -> CaResult {
    let mut short = Vec::new();
    let mut open = Vec::new();
    for p in partials {
        short.push(p.short);
        open.push(p.open);
    }
    from_pairs(
        merge_facing_pair_partials(short),
        merge_facing_pair_partials(open),
        defects,
    )
}

/// Sums the closed-form contributions. Both extraction paths hand this
/// the pairs in the same canonical (coalesced-fragment) order, so the
/// f64 accumulation order — and therefore the sum's bits — match.
fn from_pairs(
    short_pairs: Vec<FacingPair>,
    open_pairs: Vec<FacingPair>,
    defects: &DefectModel,
) -> CaResult {
    let short_ca_nm2 = short_pairs
        .iter()
        .map(|p| pair_average_ca(p.distance, p.length, defects.x0))
        .sum();
    let open_ca_nm2 = open_pairs
        .iter()
        .map(|p| pair_average_ca(p.distance, p.length, defects.x0))
        .sum();
    CaResult { short_ca_nm2, open_ca_nm2, short_pairs, open_pairs }
}

/// Critical area for a *specific* defect diameter `x` (not averaged):
/// `Σ L · max(0, x − distance)` over the given pairs. Used by the
/// Monte-Carlo validation.
pub fn ca_at_diameter(pairs: &[FacingPair], x: i64) -> f64 {
    pairs
        .iter()
        .map(|p| (p.length * (x - p.distance).max(0)) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::Rect;

    fn two_wires(spacing: i64, width: i64, len: i64) -> Region {
        Region::from_rects([
            Rect::new(0, 0, len, width),
            Rect::new(0, width + spacing, len, 2 * width + spacing),
        ])
    }

    #[test]
    fn closed_form_matches_hand_calculation() {
        // Two 100k-long wires, 100 apart, x0=50:
        // short CA = L · x0²/s = 1e5 · 2500/100 = 2.5e6.
        let region = two_wires(100, 200, 100_000);
        let defects = DefectModel::new(50, 1.0);
        let ca = analyze(&region, &defects);
        assert!(
            (ca.short_ca_nm2 - 2.5e6).abs() < 1e-6,
            "short CA {}",
            ca.short_ca_nm2
        );
        // Open CA: two widths of 200: 2 · 1e5 · 2500/200 = 2.5e6.
        assert!(
            (ca.open_ca_nm2 - 2.5e6).abs() < 1e-6,
            "open CA {}",
            ca.open_ca_nm2
        );
    }

    #[test]
    fn closer_wires_have_more_short_ca() {
        let defects = DefectModel::new(50, 1.0);
        let close = analyze(&two_wires(100, 200, 100_000), &defects);
        let far = analyze(&two_wires(400, 200, 100_000), &defects);
        assert!(close.short_ca_nm2 > far.short_ca_nm2);
        // Open CA identical (same widths).
        assert!((close.open_ca_nm2 - far.open_ca_nm2).abs() < 1e-9);
    }

    #[test]
    fn wider_wires_have_less_open_ca() {
        let defects = DefectModel::new(50, 1.0);
        let narrow = analyze(&two_wires(200, 100, 100_000), &defects);
        let wide = analyze(&two_wires(200, 300, 100_000), &defects);
        assert!(wide.open_ca_nm2 < narrow.open_ca_nm2);
    }

    #[test]
    fn sub_x0_distance_uses_linear_form() {
        // s < x0: contribution L(2·x0 − s).
        assert_eq!(pair_average_ca(30, 1000, 50), 1000.0 * 70.0);
        // Continuity at s = x0: both forms give L·x0.
        assert_eq!(pair_average_ca(50, 1000, 50), 1000.0 * 50.0);
    }

    #[test]
    fn ca_at_diameter_is_piecewise_linear() {
        let region = two_wires(100, 200, 100_000);
        let defects = DefectModel::new(50, 1.0);
        let ca = analyze(&region, &defects);
        assert_eq!(ca_at_diameter(&ca.short_pairs, 100), 0.0);
        assert_eq!(ca_at_diameter(&ca.short_pairs, 150), 100_000.0 * 50.0);
    }

    #[test]
    fn empty_region_zero_ca() {
        let defects = DefectModel::new(50, 1.0);
        let ca = analyze(&Region::new(), &defects);
        assert_eq!(ca.total_ca_nm2(), 0.0);
        assert!(ca.short_pairs.is_empty());
    }

    #[test]
    fn isolated_wire_has_open_ca_only() {
        let region = Region::from_rect(Rect::new(0, 0, 100_000, 100));
        let defects = DefectModel::new(50, 1.0);
        let ca = analyze(&region, &defects);
        assert_eq!(ca.short_ca_nm2, 0.0);
        assert!(ca.open_ca_nm2 > 0.0);
    }

    #[test]
    fn tiled_analysis_is_bit_identical_to_flat() {
        let region = Region::from_rects([
            Rect::new(0, 0, 900, 100),
            Rect::new(0, 250, 900, 350),
            Rect::new(400, 500, 520, 900),
            Rect::new(700, 500, 820, 900),
        ]);
        let mut flat_layout = dfm_layout::FlatLayout::default();
        flat_layout.set_region(dfm_layout::layers::METAL1, region.clone());
        let defects = DefectModel::new(50, 1.0);
        let reference = analyze(&region, &defects);
        assert_eq!(
            analyze_view(&flat_layout, dfm_layout::layers::METAL1, &defects),
            reference
        );
        for tile in [300, 177] {
            let cfg = dfm_layout::TilingConfig::builder()
                .tile(tile)
                .halo(8)
                .build()
                .expect("config");
            let tiled = TiledLayout::from_flat(flat_layout.clone(), cfg);
            let ca = analyze_tiled(&tiled, dfm_layout::layers::METAL1, &defects);
            assert_eq!(ca, reference, "tile {tile}");
            assert!(ca.short_ca_nm2 > 0.0 && ca.open_ca_nm2 > 0.0);
        }
    }

    #[test]
    fn per_tile_partials_merge_to_flat_result() {
        // The scheduler-facing path: compute each tile's partial
        // independently (any order), merge in tile order, and land on
        // the exact flat analysis.
        let region = two_wires(120, 200, 2_000);
        let mut flat_layout = dfm_layout::FlatLayout::default();
        flat_layout.set_region(dfm_layout::layers::METAL1, region.clone());
        let defects = DefectModel::new(50, 1.0);
        let max_range = 10 * defects.x0;
        let reference = analyze_with_range(&region, &defects, max_range);
        let cfg = dfm_layout::TilingConfig::builder()
            .tile(700)
            .halo(8)
            .build()
            .expect("config");
        let tiled = TiledLayout::from_flat(flat_layout, cfg);
        // Deliberately compute partials in reverse tile order, then
        // merge in tile order.
        let mut partials: Vec<CaTilePartial> = (0..tiled.tile_count())
            .rev()
            .map(|i| ca_tile_partial(&tiled, dfm_layout::layers::METAL1, max_range, i))
            .collect();
        partials.reverse();
        let merged = merge_ca_partials(partials, &defects);
        assert_eq!(merged, reference);
    }
}
