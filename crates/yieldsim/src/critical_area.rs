//! Critical-area extraction and the closed-form average critical area.

use crate::DefectModel;
use dfm_drc::{exterior_facing_pairs, interior_facing_pairs, FacingPair};
use dfm_geom::Region;

/// The result of a critical-area analysis of one layer.
#[derive(Clone, Debug)]
pub struct CaResult {
    /// Average critical area for shorts (defects bridging a spacing), nm².
    pub short_ca_nm2: f64,
    /// Average critical area for opens (defects severing a width), nm².
    pub open_ca_nm2: f64,
    /// The facing spacing pairs that contributed (distance, length).
    pub short_pairs: Vec<FacingPair>,
    /// The facing width pairs that contributed.
    pub open_pairs: Vec<FacingPair>,
}

impl CaResult {
    /// Combined average critical area, nm².
    pub fn total_ca_nm2(&self) -> f64 {
        self.short_ca_nm2 + self.open_ca_nm2
    }
}

/// Closed-form average critical area of one facing pair under the
/// `2·x₀²/x³` size distribution:
///
/// * distance `s ≥ x₀`:  `L · x₀² / s`
/// * distance `s < x₀`:  `L · (2·x₀ − s)`
pub fn pair_average_ca(distance: i64, length: i64, x0: i64) -> f64 {
    let (s, l, x0f) = (distance as f64, length as f64, x0 as f64);
    if distance >= x0 {
        l * x0f * x0f / s
    } else {
        l * (2.0 * x0f - s)
    }
}

/// Analyses a layer with the default extraction range of `10·x₀`
/// (pairs farther apart contribute under 1% each and are truncated).
pub fn analyze(region: &Region, defects: &DefectModel) -> CaResult {
    analyze_with_range(region, defects, 10 * defects.x0)
}

/// Analyses a layer considering facing pairs up to `max_range` apart.
pub fn analyze_with_range(region: &Region, defects: &DefectModel, max_range: i64) -> CaResult {
    let short_pairs = exterior_facing_pairs(region, max_range);
    let open_pairs = interior_facing_pairs(region, max_range);
    let short_ca_nm2 = short_pairs
        .iter()
        .map(|p| pair_average_ca(p.distance, p.length, defects.x0))
        .sum();
    let open_ca_nm2 = open_pairs
        .iter()
        .map(|p| pair_average_ca(p.distance, p.length, defects.x0))
        .sum();
    CaResult { short_ca_nm2, open_ca_nm2, short_pairs, open_pairs }
}

/// Critical area for a *specific* defect diameter `x` (not averaged):
/// `Σ L · max(0, x − distance)` over the given pairs. Used by the
/// Monte-Carlo validation.
pub fn ca_at_diameter(pairs: &[FacingPair], x: i64) -> f64 {
    pairs
        .iter()
        .map(|p| (p.length * (x - p.distance).max(0)) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_geom::Rect;

    fn two_wires(spacing: i64, width: i64, len: i64) -> Region {
        Region::from_rects([
            Rect::new(0, 0, len, width),
            Rect::new(0, width + spacing, len, 2 * width + spacing),
        ])
    }

    #[test]
    fn closed_form_matches_hand_calculation() {
        // Two 100k-long wires, 100 apart, x0=50:
        // short CA = L · x0²/s = 1e5 · 2500/100 = 2.5e6.
        let region = two_wires(100, 200, 100_000);
        let defects = DefectModel::new(50, 1.0);
        let ca = analyze(&region, &defects);
        assert!(
            (ca.short_ca_nm2 - 2.5e6).abs() < 1e-6,
            "short CA {}",
            ca.short_ca_nm2
        );
        // Open CA: two widths of 200: 2 · 1e5 · 2500/200 = 2.5e6.
        assert!(
            (ca.open_ca_nm2 - 2.5e6).abs() < 1e-6,
            "open CA {}",
            ca.open_ca_nm2
        );
    }

    #[test]
    fn closer_wires_have_more_short_ca() {
        let defects = DefectModel::new(50, 1.0);
        let close = analyze(&two_wires(100, 200, 100_000), &defects);
        let far = analyze(&two_wires(400, 200, 100_000), &defects);
        assert!(close.short_ca_nm2 > far.short_ca_nm2);
        // Open CA identical (same widths).
        assert!((close.open_ca_nm2 - far.open_ca_nm2).abs() < 1e-9);
    }

    #[test]
    fn wider_wires_have_less_open_ca() {
        let defects = DefectModel::new(50, 1.0);
        let narrow = analyze(&two_wires(200, 100, 100_000), &defects);
        let wide = analyze(&two_wires(200, 300, 100_000), &defects);
        assert!(wide.open_ca_nm2 < narrow.open_ca_nm2);
    }

    #[test]
    fn sub_x0_distance_uses_linear_form() {
        // s < x0: contribution L(2·x0 − s).
        assert_eq!(pair_average_ca(30, 1000, 50), 1000.0 * 70.0);
        // Continuity at s = x0: both forms give L·x0.
        assert_eq!(pair_average_ca(50, 1000, 50), 1000.0 * 50.0);
    }

    #[test]
    fn ca_at_diameter_is_piecewise_linear() {
        let region = two_wires(100, 200, 100_000);
        let defects = DefectModel::new(50, 1.0);
        let ca = analyze(&region, &defects);
        assert_eq!(ca_at_diameter(&ca.short_pairs, 100), 0.0);
        assert_eq!(ca_at_diameter(&ca.short_pairs, 150), 100_000.0 * 50.0);
    }

    #[test]
    fn empty_region_zero_ca() {
        let defects = DefectModel::new(50, 1.0);
        let ca = analyze(&Region::new(), &defects);
        assert_eq!(ca.total_ca_nm2(), 0.0);
        assert!(ca.short_pairs.is_empty());
    }

    #[test]
    fn isolated_wire_has_open_ca_only() {
        let region = Region::from_rect(Rect::new(0, 0, 100_000, 100));
        let defects = DefectModel::new(50, 1.0);
        let ca = analyze(&region, &defects);
        assert_eq!(ca.short_ca_nm2, 0.0);
        assert!(ca.open_ca_nm2 > 0.0);
    }
}
