//! The random-defect model: size distribution and density.

use dfm_rand::Rng;

/// Square nanometres per square centimetre.
pub const NM2_PER_CM2: f64 = 1e14;

/// The classic particulate defect model: defect diameters follow the
/// density `f(x) = 2·x₀² / x³` for `x ≥ x₀` (normalised), with a total
/// areal density of `d0_per_cm2` defects per cm².
///
/// The `1/x³` tail is the universal fab observation the critical-area
/// literature builds on: most defects are near the minimum observable
/// size, and the expected count above size `x` falls as `(x₀/x)²`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DefectModel {
    /// Minimum (modal) defect diameter in nm.
    pub x0: i64,
    /// Total defect density in defects per cm².
    pub d0_per_cm2: f64,
}

impl DefectModel {
    /// Creates a defect model.
    ///
    /// # Panics
    ///
    /// Panics if `x0 <= 0` or `d0_per_cm2 < 0`.
    pub fn new(x0: i64, d0_per_cm2: f64) -> Self {
        assert!(x0 > 0, "minimum defect size must be positive");
        assert!(d0_per_cm2 >= 0.0, "defect density must be non-negative");
        DefectModel { x0, d0_per_cm2 }
    }

    /// Probability that a defect's diameter exceeds `x`:
    /// `(x₀/x)²` for `x ≥ x₀`, else 1.
    pub fn survival(&self, x: i64) -> f64 {
        if x <= self.x0 {
            1.0
        } else {
            let r = self.x0 as f64 / x as f64;
            r * r
        }
    }

    /// Samples a defect diameter by inverse-CDF: `x = x₀ / √(1−u)`.
    pub fn sample_diameter(&self, rng: &mut Rng) -> i64 {
        let u: f64 = rng.f64().min(1.0 - 1e-12);
        (self.x0 as f64 / (1.0 - u).sqrt()).round() as i64
    }

    /// Expected number of defects landing on `area_nm2` of chip.
    pub fn expected_defects(&self, area_nm2: f64) -> f64 {
        self.d0_per_cm2 * area_nm2 / NM2_PER_CM2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_function() {
        let m = DefectModel::new(50, 1.0);
        assert_eq!(m.survival(25), 1.0);
        assert_eq!(m.survival(50), 1.0);
        assert!((m.survival(100) - 0.25).abs() < 1e-12);
        assert!((m.survival(500) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn sampled_sizes_match_distribution() {
        let m = DefectModel::new(50, 1.0);
        let mut rng = Rng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<i64> = (0..n).map(|_| m.sample_diameter(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= m.x0));
        // Empirical survival at 2·x₀ should be ≈ 0.25.
        let over = samples.iter().filter(|&&x| x > 100).count() as f64 / n as f64;
        assert!((over - 0.25).abs() < 0.02, "empirical survival {over}");
        // ... and ≈ 0.01 at 10·x₀.
        let over10 = samples.iter().filter(|&&x| x > 500).count() as f64 / n as f64;
        assert!((over10 - 0.01).abs() < 0.005, "empirical survival {over10}");
    }

    #[test]
    fn expected_defect_counts() {
        let m = DefectModel::new(50, 100.0); // 100 defects / cm²
        // A 1 mm² block = 0.01 cm² → 1 defect expected.
        let area_nm2 = 1e6 * 1e6;
        assert!((m.expected_defects(area_nm2) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_x0_panics() {
        let _ = DefectModel::new(0, 1.0);
    }
}
