//! Monte-Carlo defect injection: an independent check on the analytic
//! critical area (experiment E12).
//!
//! The estimator follows standard practice: estimate the critical-area
//! *curve* `CA(d)` by Monte Carlo at a geometric grid of defect sizes
//! (each size has a finite-variance binomial estimator), then average
//! over the `2x₀²/x³` size distribution in closed form, extrapolating the
//! tail linearly (CA grows asymptotically linearly in defect size). A
//! naive single-pass estimator that samples sizes *and* positions jointly
//! has a log-divergent second moment — rare giant defects carry huge
//! position-window weights — and converges erratically.

use crate::DefectModel;
use dfm_geom::{GridIndex, Point, Rect, Region, Searcher};
use dfm_rand::Rng;

/// Position samples per Monte-Carlo stratum. The stratum partition and
/// each stratum's forked stream depend only on the sample budget and
/// the parent generator — never on the thread count — so estimates are
/// bit-identical at any `DFM_THREADS`.
const MC_STRATUM: usize = 4096;

/// Result of a Monte-Carlo short-critical-area estimation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McResult {
    /// Estimated average short critical area, nm².
    pub short_ca_nm2: f64,
    /// Standard error of the estimate, nm².
    pub std_err_nm2: f64,
    /// Total defects sampled (across all size strata).
    pub samples: usize,
    /// Defects that caused a short.
    pub kills: usize,
}

struct ComponentIndex {
    index: GridIndex<usize>,
}

impl ComponentIndex {
    fn build(metal: &Region, cell: i64) -> Self {
        let components = metal.connected_components();
        let mut index: GridIndex<usize> = GridIndex::new(cell.max(64));
        for (ci, comp) in components.iter().enumerate() {
            for r in comp.rects() {
                index.insert(*r, ci);
            }
        }
        ComponentIndex { index }
    }

    /// Per-thread query handle (amortised generation-stamp dedup).
    fn searcher(&self) -> Searcher<'_, usize> {
        self.index.searcher()
    }
}

/// True if `square` strictly overlaps at least two distinct components.
fn bridges(searcher: &mut Searcher<'_, usize>, square: Rect) -> bool {
    let mut first: Option<usize> = None;
    for (rect, &ci) in searcher.query_with_rects(square) {
        if !rect.overlaps(&square) {
            continue;
        }
        match first {
            None => first = Some(ci),
            Some(f) if f != ci => return true,
            _ => {}
        }
    }
    false
}

/// Monte-Carlo estimate of the short critical area for one fixed defect
/// diameter `d`: positions uniform over the bounding box expanded by
/// `d/2 + 1`. Returns `(ca_nm2, std_err_nm2, kills)`.
pub fn estimate_ca_at_diameter(
    metal: &Region,
    d: i64,
    samples: usize,
    rng: &mut Rng,
) -> (f64, f64, usize) {
    let bbox = metal.bbox();
    if bbox.is_empty() || samples == 0 || d <= 0 {
        return (0.0, 0.0, 0);
    }
    let components = ComponentIndex::build(metal, d.max(256) * 2);
    let window = bbox.expanded(d / 2 + 1);
    let area = window.area() as f64;
    // Fixed-size strata, streams pre-forked sequentially from the
    // parent generator, kill counts summed in stratum order.
    let n_strata = samples.div_ceil(MC_STRATUM);
    let seeds: Vec<u64> = (0..n_strata).map(|_| rng.next_u64()).collect();
    let kills: usize = dfm_par::par_map(&seeds, |si, &seed| {
        let mut rng = Rng::seed_from_u64(seed);
        let n = MC_STRATUM.min(samples - si * MC_STRATUM);
        let mut searcher = components.searcher();
        let mut kills = 0usize;
        for _ in 0..n {
            let cx = rng.range(window.x0..window.x1);
            let cy = rng.range(window.y0..window.y1);
            let square = Rect::centered_at(Point::new(cx, cy), d, d);
            if bridges(&mut searcher, square) {
                kills += 1;
            }
        }
        kills
    })
    .into_iter()
    .sum();
    let p = kills as f64 / samples as f64;
    let var = p * (1.0 - p) / samples as f64;
    (area * p, area * var.sqrt(), kills)
}

/// Estimates the distribution-averaged short critical area of `metal`,
/// comparable to [`crate::critical_area::analyze`]'s `short_ca_nm2`.
///
/// `samples` is the total position-sample budget, split evenly across a
/// geometric grid of defect sizes from `x₀` to `64·x₀`; the size average
/// is taken in closed form with a linear tail extrapolation.
pub fn estimate_short_ca(
    metal: &Region,
    defects: &DefectModel,
    samples: usize,
    seed: u64,
) -> McResult {
    let bbox = metal.bbox();
    if bbox.is_empty() || samples == 0 {
        return McResult { short_ca_nm2: 0.0, std_err_nm2: 0.0, samples, kills: 0 };
    }
    let mut rng = Rng::seed_from_u64(seed);

    // Size grid: x0 · 2^(j/2), j = 0..12 (up to 64·x0).
    let x0 = defects.x0 as f64;
    let sizes: Vec<i64> = (0..=12)
        .map(|j| (x0 * 2f64.powf(j as f64 / 2.0)).round() as i64)
        .collect();
    let per_size = (samples / sizes.len()).max(100);

    let mut ca: Vec<f64> = Vec::with_capacity(sizes.len());
    let mut se: Vec<f64> = Vec::with_capacity(sizes.len());
    let mut total_kills = 0usize;
    for &d in &sizes {
        let (c, s, k) = estimate_ca_at_diameter(metal, d, per_size, &mut rng);
        ca.push(c);
        se.push(s);
        total_kills += k;
    }

    let (mean, var) = integrate_size_distribution(&sizes, &ca, &se, x0);
    McResult {
        short_ca_nm2: mean,
        std_err_nm2: var.sqrt(),
        samples: per_size * sizes.len(),
        kills: total_kills,
    }
}


/// Monte-Carlo estimate of the *open* critical area for one fixed defect
/// diameter: a defect kills when it severs a connected component (the
/// local clip minus the defect splits into more pieces than before).
pub fn estimate_open_ca_at_diameter(
    metal: &Region,
    d: i64,
    samples: usize,
    rng: &mut Rng,
) -> (f64, f64, usize) {
    let bbox = metal.bbox();
    if bbox.is_empty() || samples == 0 || d <= 0 {
        return (0.0, 0.0, 0);
    }
    let window = bbox.expanded(d / 2 + 1);
    let area = window.area() as f64;
    let n_strata = samples.div_ceil(MC_STRATUM);
    let seeds: Vec<u64> = (0..n_strata).map(|_| rng.next_u64()).collect();
    let kills: usize = dfm_par::par_map(&seeds, |si, &seed| {
        let mut rng = Rng::seed_from_u64(seed);
        let n = MC_STRATUM.min(samples - si * MC_STRATUM);
        let mut kills = 0usize;
        for _ in 0..n {
            let cx = rng.range(window.x0..window.x1);
            let cy = rng.range(window.y0..window.y1);
            let square = Rect::centered_at(Point::new(cx, cy), d, d);
            let local_window = square.expanded(2 * d);
            let local = metal.clipped(local_window);
            if local.is_empty() {
                continue;
            }
            let before = local.connected_components().len();
            let after_region = local.difference(&Region::from_rect(square));
            let after = after_region.connected_components().len();
            if after > before {
                kills += 1;
            }
        }
        kills
    })
    .into_iter()
    .sum();
    let p = kills as f64 / samples as f64;
    let var = p * (1.0 - p) / samples as f64;
    (area * p, area * var.sqrt(), kills)
}

/// Distribution-averaged *open* critical area, comparable to
/// [`crate::critical_area::analyze`]'s `open_ca_nm2` (same size-grid
/// strategy as [`estimate_short_ca`]).
pub fn estimate_open_ca(
    metal: &Region,
    defects: &DefectModel,
    samples: usize,
    seed: u64,
) -> McResult {
    let bbox = metal.bbox();
    if bbox.is_empty() || samples == 0 {
        return McResult { short_ca_nm2: 0.0, std_err_nm2: 0.0, samples, kills: 0 };
    }
    let mut rng = Rng::seed_from_u64(seed);
    let x0 = defects.x0 as f64;
    let sizes: Vec<i64> = (0..=12)
        .map(|j| (x0 * 2f64.powf(j as f64 / 2.0)).round() as i64)
        .collect();
    let per_size = (samples / sizes.len()).max(100);
    let mut ca = Vec::with_capacity(sizes.len());
    let mut se = Vec::with_capacity(sizes.len());
    let mut total_kills = 0usize;
    for &d in &sizes {
        let (c, s, k) = estimate_open_ca_at_diameter(metal, d, per_size, &mut rng);
        ca.push(c);
        se.push(s);
        total_kills += k;
    }
    let (mean, var) = integrate_size_distribution(&sizes, &ca, &se, x0);
    McResult {
        short_ca_nm2: mean,
        std_err_nm2: var.sqrt(),
        samples: per_size * sizes.len(),
        kills: total_kills,
    }
}

/// Closed-form integration of a sampled CA(d) curve against the
/// 2x0²/x³ defect-size distribution. Returns `(mean, variance)`.
///
/// The model: each measured size owns the bin between the geometric
/// means to its neighbours (first bin starts at `x0`, last bin ends at
/// `sizes[n-1]·√2`), CA is constant per bin, and beyond the last bound
/// CA extrapolates linearly through the last two samples (clamped so
/// the tail contribution is never negative).
///
/// Degenerate spectra are defined, not panics:
///
/// * `n == 0` — no samples, no mass: `(0.0, 0.0)`.
/// * `n == 1` — a single-size spectrum gets a degenerate single-bin
///   split: the lone sample owns the entire distribution mass (its bin
///   plus a constant tail at `ca[0]`), so the mean is exactly `ca[0]`
///   and the variance `se[0]²`.
/// * equal last two sizes — no slope is measurable; the tail falls
///   back to the same constant extrapolation as `n == 1`.
pub fn integrate_size_distribution(
    sizes: &[i64],
    ca: &[f64],
    se: &[f64],
    x0: f64,
) -> (f64, f64) {
    let survival = |x: f64| -> f64 {
        if x <= x0 {
            1.0
        } else {
            (x0 / x) * (x0 / x)
        }
    };
    let n = sizes.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    if n == 1 {
        // Degenerate single-bin split: bin weight + constant tail sum
        // to the whole distribution mass, which is 1.
        return (ca[0], se[0] * se[0]);
    }
    let mut bounds = Vec::with_capacity(n + 1);
    bounds.push(x0);
    for j in 1..n {
        bounds.push((sizes[j - 1] as f64 * sizes[j] as f64).sqrt());
    }
    let b_last = sizes[n - 1] as f64 * 2f64.sqrt();
    bounds.push(b_last);
    let mut mean = 0.0;
    let mut var = 0.0;
    for j in 0..n {
        let w = survival(bounds[j]) - survival(bounds[j + 1]);
        mean += w * ca[j];
        var += (w * se[j]) * (w * se[j]);
    }
    let (d1, d2) = (sizes[n - 2] as f64, sizes[n - 1] as f64);
    // A repeated top size has no measurable slope: extrapolate flat.
    let c1 = if d2 > d1 { (ca[n - 1] - ca[n - 2]) / (d2 - d1) } else { 0.0 };
    let c0 = ca[n - 1] - c1 * d2;
    let tail = c0 * survival(b_last) + c1 * 2.0 * x0 * x0 / b_last;
    mean += tail.max(0.0);
    var += (survival(b_last) * se[n - 1]) * (survival(b_last) * se[n - 1]);
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_area;

    #[test]
    fn mc_matches_analytic_on_parallel_wires() {
        let metal = Region::from_rects([
            Rect::new(0, 0, 100_000, 200),
            Rect::new(0, 300, 100_000, 500),
        ]);
        let defects = DefectModel::new(50, 1.0);
        let analytic = critical_area::analyze(&metal, &defects).short_ca_nm2;
        let mc = estimate_short_ca(&metal, &defects, 120_000, 7);
        let err = (mc.short_ca_nm2 - analytic).abs();
        assert!(
            err < 4.0 * mc.std_err_nm2 + 0.05 * analytic,
            "MC {} vs analytic {analytic} (stderr {})",
            mc.short_ca_nm2,
            mc.std_err_nm2
        );
    }

    #[test]
    fn fixed_size_curve_is_monotone() {
        let metal = Region::from_rects([
            Rect::new(0, 0, 100_000, 200),
            Rect::new(0, 300, 100_000, 500),
        ]);
        let mut rng = Rng::seed_from_u64(3);
        let (small, _, _) = estimate_ca_at_diameter(&metal, 150, 20_000, &mut rng);
        let (large, _, _) = estimate_ca_at_diameter(&metal, 400, 20_000, &mut rng);
        assert!(large > small, "CA(d) must grow with d: {small} vs {large}");
        // Sub-gap defects never short.
        let (zero, _, k) = estimate_ca_at_diameter(&metal, 90, 5_000, &mut rng);
        assert_eq!(zero, 0.0);
        assert_eq!(k, 0);
    }

    #[test]
    fn open_mc_matches_analytic_on_single_wire() {
        let metal = Region::from_rect(Rect::new(0, 0, 100_000, 200));
        let defects = DefectModel::new(50, 1.0);
        let analytic = critical_area::analyze(&metal, &defects).open_ca_nm2;
        let mc = estimate_open_ca(&metal, &defects, 16_000, 5);
        let err = (mc.short_ca_nm2 - analytic).abs();
        assert!(
            err < 4.0 * mc.std_err_nm2 + 0.10 * analytic,
            "open MC {} vs analytic {analytic} (stderr {})",
            mc.short_ca_nm2,
            mc.std_err_nm2
        );
    }

    #[test]
    fn narrower_wire_has_more_open_ca() {
        let defects = DefectModel::new(50, 1.0);
        let narrow = Region::from_rect(Rect::new(0, 0, 100_000, 100));
        let wide = Region::from_rect(Rect::new(0, 0, 100_000, 400));
        let mc_n = estimate_open_ca(&narrow, &defects, 8_000, 9);
        let mc_w = estimate_open_ca(&wide, &defects, 8_000, 9);
        assert!(mc_n.short_ca_nm2 > mc_w.short_ca_nm2);
    }

    #[test]
    fn single_wire_has_no_short_ca() {
        let metal = Region::from_rect(Rect::new(0, 0, 100_000, 200));
        let defects = DefectModel::new(50, 1.0);
        let mc = estimate_short_ca(&metal, &defects, 5_000, 3);
        assert_eq!(mc.kills, 0);
        assert_eq!(mc.short_ca_nm2, 0.0);
    }

    #[test]
    fn closer_wires_kill_more() {
        let defects = DefectModel::new(50, 1.0);
        let close = Region::from_rects([
            Rect::new(0, 0, 100_000, 200),
            Rect::new(0, 280, 100_000, 480),
        ]);
        let far = Region::from_rects([
            Rect::new(0, 0, 100_000, 200),
            Rect::new(0, 700, 100_000, 900),
        ]);
        let mc_close = estimate_short_ca(&close, &defects, 30_000, 11);
        let mc_far = estimate_short_ca(&far, &defects, 30_000, 11);
        assert!(mc_close.short_ca_nm2 > mc_far.short_ca_nm2);
    }

    #[test]
    fn estimate_identical_across_thread_counts() {
        let metal = Region::from_rects([
            Rect::new(0, 0, 10_000, 100),
            Rect::new(0, 200, 10_000, 300),
        ]);
        let defects = DefectModel::new(50, 1.0);
        let run = || estimate_short_ca(&metal, &defects, 20_000, 42);
        let seq = dfm_par::with_threads(1, run);
        let two = dfm_par::with_threads(2, run);
        let eight = dfm_par::with_threads(8, run);
        assert_eq!(seq, two);
        assert_eq!(seq, eight);
        let run_open = || estimate_open_ca(&metal, &defects, 6_000, 42);
        let a = dfm_par::with_threads(1, run_open);
        let b = dfm_par::with_threads(8, run_open);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_given_seed() {
        let metal = Region::from_rects([
            Rect::new(0, 0, 10_000, 100),
            Rect::new(0, 200, 10_000, 300),
        ]);
        let defects = DefectModel::new(50, 1.0);
        let a = estimate_short_ca(&metal, &defects, 10_000, 42);
        let b = estimate_short_ca(&metal, &defects, 10_000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_spectrum_integrates_to_zero() {
        // Regression: n == 0 used to index sizes[n - 1] and panic.
        assert_eq!(integrate_size_distribution(&[], &[], &[], 50.0), (0.0, 0.0));
    }

    #[test]
    fn single_size_spectrum_is_a_degenerate_single_bin() {
        // Regression: n == 1 used to silently drop the tail mass (the
        // linear extrapolation needs two samples). The defined
        // semantics: the lone size owns the whole distribution.
        let (mean, var) = integrate_size_distribution(&[120], &[7.5e5], &[300.0], 50.0);
        assert_eq!(mean, 7.5e5);
        assert_eq!(var, 300.0 * 300.0);
        assert!(mean.is_finite() && var.is_finite());
    }

    #[test]
    fn repeated_top_size_extrapolates_flat_not_nan() {
        // Equal last two sizes have no measurable slope; the tail must
        // fall back to a constant, not divide by zero.
        let (mean, var) =
            integrate_size_distribution(&[100, 100], &[1.0e5, 1.0e5], &[0.0, 0.0], 50.0);
        assert!(mean.is_finite(), "mean {mean}");
        assert!(var.is_finite());
        // Constant CA across the whole spectrum integrates to itself.
        assert!((mean - 1.0e5).abs() < 1e-6, "mean {mean}");
    }
}
