//! Yield models: Poisson and negative binomial.

use crate::defect::NM2_PER_CM2;

/// Poisson yield: `Y = exp(−D0 · Ac)` with `Ac` in nm² and `D0` in
/// defects/cm².
pub fn poisson_yield(ac_nm2: f64, d0_per_cm2: f64) -> f64 {
    (-d0_per_cm2 * ac_nm2 / NM2_PER_CM2).exp()
}

/// Negative-binomial yield with clustering parameter `alpha`:
/// `Y = (1 + D0·Ac/α)^(−α)`. As `α → ∞` this converges to Poisson;
/// small `α` models clustered defects (higher yield at equal density).
///
/// # Panics
///
/// Panics if `alpha <= 0`.
pub fn negative_binomial_yield(ac_nm2: f64, d0_per_cm2: f64, alpha: f64) -> f64 {
    assert!(alpha > 0.0, "clustering parameter must be positive");
    let lambda = d0_per_cm2 * ac_nm2 / NM2_PER_CM2;
    (1.0 + lambda / alpha).powf(-alpha)
}

/// Combines independent yield mechanisms multiplicatively.
pub fn combined_yield<I: IntoIterator<Item = f64>>(yields: I) -> f64 {
    yields.into_iter().product()
}

/// Converts a yield into defectivity loss in percent.
pub fn loss_percent(y: f64) -> f64 {
    (1.0 - y) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_basics() {
        assert_eq!(poisson_yield(0.0, 100.0), 1.0);
        // Ac = 1 cm², D0 = 1/cm² → Y = 1/e.
        let y = poisson_yield(NM2_PER_CM2, 1.0);
        assert!((y - (-1.0f64).exp()).abs() < 1e-12);
        // Monotone decreasing in both arguments.
        assert!(poisson_yield(1e10, 100.0) > poisson_yield(2e10, 100.0));
        assert!(poisson_yield(1e10, 100.0) > poisson_yield(1e10, 200.0));
    }

    #[test]
    fn negative_binomial_clusters_help() {
        let ac = 0.5 * NM2_PER_CM2;
        let d0 = 1.0;
        let poisson = poisson_yield(ac, d0);
        let clustered = negative_binomial_yield(ac, d0, 0.5);
        let nearly_poisson = negative_binomial_yield(ac, d0, 1e6);
        assert!(clustered > poisson);
        assert!((nearly_poisson - poisson).abs() < 1e-4);
    }

    #[test]
    fn combined_multiplies() {
        let y = combined_yield([0.9, 0.8, 0.5]);
        assert!((y - 0.36).abs() < 1e-12);
        assert_eq!(combined_yield(std::iter::empty::<f64>()), 1.0);
    }

    #[test]
    fn loss_percent_complement() {
        assert!((loss_percent(0.95) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_alpha_panics() {
        let _ = negative_binomial_yield(1.0, 1.0, 0.0);
    }
}
