//! # dfm-yield — critical area analysis and yield models
//!
//! The quantitative backbone of the "hit or hype" question: every DFM
//! technique's *benefit* is ultimately a yield number. This crate
//! implements the industry-standard random-defect machinery:
//!
//! * [`DefectModel`] — the `k/x³` defect size distribution with total
//!   density `D0`,
//! * [`critical_area`] — exact critical-area extraction for **shorts**
//!   (facing spacings) and **opens** (facing widths) from layout
//!   geometry, with the closed-form average critical area under the
//!   `1/x³` distribution,
//! * [`model`] — Poisson and negative-binomial yield models,
//! * [`via_model`] — via-failure statistics for single versus redundant
//!   vias (experiment E2),
//! * [`monte_carlo`] — random defect injection that independently
//!   validates the analytic critical area (experiment E12).
//!
//! ```
//! use dfm_geom::{Rect, Region};
//! use dfm_yield::{critical_area, model, DefectModel};
//!
//! // Two long parallel wires at 100 nm spacing.
//! let metal = Region::from_rects([
//!     Rect::new(0, 0, 100_000, 100),
//!     Rect::new(0, 200, 100_000, 300),
//! ]);
//! let defects = DefectModel::new(50, 1.0); // x₀=50 nm, D0=1/cm²
//! let ca = critical_area::analyze(&metal, &defects);
//! assert!(ca.short_ca_nm2 > 0.0);
//! let y = model::poisson_yield(ca.total_ca_nm2(), defects.d0_per_cm2);
//! assert!(y > 0.99); // tiny structure, almost no yield loss
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critical_area;
pub mod model;
pub mod monte_carlo;
pub mod via_model;

mod defect;

pub use defect::DefectModel;
