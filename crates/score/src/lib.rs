//! # dfm-score — weighted manufacturability scoring
//!
//! Folds heterogeneous analysis results (DRC violation counts, litho
//! print fidelity, critical area, pattern statistics, via redundancy)
//! into **one number in `[0, 1]`** plus a per-metric breakdown, so a
//! CI gate or a fix loop can compare layouts with a single `<`.
//!
//! The model is a three-stage pipeline:
//!
//! 1. **metric** — a named raw measurement (`"drc.violations"`,
//!    `"ca.short_nm2"`, …) produced by the analysis crates,
//! 2. **scorer** — a pluggable map from the raw value to `[0, 1]`
//!    ([`Scorer`]: identity clamp, inverse decay, linear ramp, hard
//!    step, or a Poisson yield model for critical-area metrics),
//! 3. **weight / aggregate** — a weighted arithmetic mean over every
//!    matched metric; per-metric `min` floors veto the pass verdict
//!    independently of the aggregate.
//!
//! Which scorer and weight apply to which metric is configured by a
//! [`ScoreSpec`]: a line-oriented text format (see [`ScoreSpec::parse`])
//! with exact and trailing-`*` wildcard metric keys, so a deck-wide
//! default (`drc.rule.*`) and a targeted override (`drc.rule.M1_WIDTH`)
//! coexist — the per-rule weighting methodology of Tripathi et al.'s
//! in-design DFM rule scoring.
//!
//! The output [`ScoreReport`] renders to JSON with a **stable field
//! order** (metrics sorted by key, values written with shortest
//! round-trip float formatting), so equal inputs produce byte-identical
//! reports — the property the signoff determinism suites pin with a
//! golden digest. [`exit_code`] maps a report onto the CLI contract
//! `0 = pass, 1 = below threshold, 2 = partial, 3 = operational
//! error, 4 = submission rejected at admission`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dfm_bench::json::JsonValue;
use std::collections::BTreeMap;

/// Process exit code: score met the pass threshold and every floor.
pub const EXIT_PASS: u8 = 0;
/// Process exit code: score below threshold (or a metric under its floor).
pub const EXIT_BELOW: u8 = 1;
/// Process exit code: the job settled `Partial` (quarantined tiles), so
/// the score covers only the surviving tiles.
pub const EXIT_PARTIAL: u8 = 2;
/// Process exit code: operational error (bad arguments, I/O, protocol).
pub const EXIT_ERROR: u8 = 3;
/// Process exit code: the service refused the submission at admission
/// (tenant quota, global backpressure, or unknown tenant) — retry
/// later; nothing was enqueued.
pub const EXIT_REJECTED: u8 = 4;

/// Maps a verdict onto the CLI exit-code contract. `partial` dominates:
/// a score computed from a partial result set is not trustworthy enough
/// to pass, but is distinguishable from a clean fail.
#[must_use]
pub fn exit_code(pass: bool, partial: bool) -> u8 {
    if partial {
        EXIT_PARTIAL
    } else if pass {
        EXIT_PASS
    } else {
        EXIT_BELOW
    }
}

/// A map from a raw metric value to a score in `[0, 1]`.
///
/// Every scorer is total over finite inputs and clamps its output to
/// `[0, 1]`; non-finite inputs score 0 (a NaN measurement is treated as
/// maximally bad rather than poisoning the aggregate).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scorer {
    /// The value already is a score: `clamp(v, 0, 1)`.
    Identity,
    /// Smooth decay for unbounded badness counts: `1 / (1 + v/scale)`.
    /// `v = 0` scores 1, `v = scale` scores 0.5.
    Inverse {
        /// Count at which the score halves (must be > 0).
        scale: f64,
    },
    /// Linear ramp down: `clamp(1 - v/limit, 0, 1)`.
    Linear {
        /// Value at (and beyond) which the score reaches 0 (must be > 0).
        limit: f64,
    },
    /// Hard gate: 1 if `v <= limit`, else 0.
    Step {
        /// Inclusive upper bound for a perfect score.
        limit: f64,
    },
    /// Poisson yield for a critical area in nm²:
    /// `exp(-v · d0 / 1e14)` with `d0` defects per cm².
    PoissonYield {
        /// Defect density in defects per cm² (must be >= 0).
        d0_per_cm2: f64,
    },
}

impl Scorer {
    /// Applies the scorer to a raw value.
    #[must_use]
    pub fn apply(&self, v: f64) -> f64 {
        if !v.is_finite() {
            return 0.0;
        }
        let s = match *self {
            Scorer::Identity => v,
            Scorer::Inverse { scale } => 1.0 / (1.0 + v.max(0.0) / scale),
            Scorer::Linear { limit } => 1.0 - v / limit,
            Scorer::Step { limit } => {
                if v <= limit {
                    1.0
                } else {
                    0.0
                }
            }
            // 1 cm² = 1e14 nm².
            Scorer::PoissonYield { d0_per_cm2 } => (-v.max(0.0) * d0_per_cm2 * 1e-14).exp(),
        };
        s.clamp(0.0, 1.0)
    }

    /// The spec-text spelling (`identity`, `inverse S`, `linear L`,
    /// `step L`, `yield D0`).
    #[must_use]
    pub fn render(&self) -> String {
        match *self {
            Scorer::Identity => "identity".to_string(),
            Scorer::Inverse { scale } => format!("inverse {scale}"),
            Scorer::Linear { limit } => format!("linear {limit}"),
            Scorer::Step { limit } => format!("step {limit}"),
            Scorer::PoissonYield { d0_per_cm2 } => format!("yield {d0_per_cm2}"),
        }
    }

    fn parse(kind: &str, param: Option<&str>, line_no: usize) -> Result<Scorer, String> {
        let need = |what: &str| -> Result<f64, String> {
            let raw = param
                .ok_or_else(|| format!("line {line_no}: scorer `{kind}` needs a {what}"))?;
            let v: f64 = raw
                .parse()
                .map_err(|_| format!("line {line_no}: bad scorer parameter `{raw}`"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("line {line_no}: scorer parameter must be > 0, got `{raw}`"));
            }
            Ok(v)
        };
        match kind {
            "identity" => {
                if param.is_some() {
                    return Err(format!("line {line_no}: scorer `identity` takes no parameter"));
                }
                Ok(Scorer::Identity)
            }
            "inverse" => Ok(Scorer::Inverse { scale: need("scale")? }),
            "linear" => Ok(Scorer::Linear { limit: need("limit")? }),
            "step" => {
                // A step limit of 0 ("any violation fails") is legitimate.
                let raw = param
                    .ok_or_else(|| format!("line {line_no}: scorer `step` needs a limit"))?;
                let limit: f64 = raw
                    .parse()
                    .map_err(|_| format!("line {line_no}: bad scorer parameter `{raw}`"))?;
                if !limit.is_finite() {
                    return Err(format!("line {line_no}: step limit must be finite"));
                }
                Ok(Scorer::Step { limit })
            }
            "yield" => Ok(Scorer::PoissonYield { d0_per_cm2: need("defect density")? }),
            other => Err(format!("line {line_no}: unknown scorer `{other}`")),
        }
    }
}

/// One spec line: which metrics it matches and how they score.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricRule {
    /// Metric key to match: exact, or a prefix ending in `*`.
    pub pattern: String,
    /// Aggregate weight. Zero keeps the metric in the breakdown but
    /// out of the aggregate (informational).
    pub weight: f64,
    /// The value → score map.
    pub scorer: Scorer,
    /// Per-metric floor: a matched metric scoring below this vetoes
    /// the pass verdict regardless of the aggregate.
    pub min_score: Option<f64>,
}

impl MetricRule {
    /// Whether this rule's pattern matches a metric key. A trailing
    /// `*` matches any suffix; otherwise the match is exact.
    #[must_use]
    pub fn matches(&self, key: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => key.starts_with(prefix),
            None => self.pattern == key,
        }
    }
}

/// A parsed scoring specification: the rule table plus the pass
/// threshold for the aggregate.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreSpec {
    /// Metric rules in declaration order.
    pub rules: Vec<MetricRule>,
    /// Aggregate score at or above which the layout passes.
    pub pass_threshold: f64,
}

/// The built-in default spec: covers every metric family the signoff
/// engines emit, weighted towards yield-relevant critical area.
pub const DEFAULT_SPEC_TEXT: &str = "\
# Built-in default manufacturability score spec.
pass 0.5
metric drc.violations        weight 2   scorer inverse 10
metric drc.rule.*            weight 0   scorer inverse 5
metric ca.short_nm2          weight 2   scorer yield 1000
metric ca.open_nm2           weight 2   scorer yield 1000
metric litho.area_ratio      weight 1   scorer identity
metric litho.printed_nm2     weight 0   scorer identity
metric via.redundancy        weight 1   scorer identity
metric pattern.top8_coverage weight 0.5 scorer identity
metric pattern.classes       weight 0   scorer inverse 256
";

impl ScoreSpec {
    /// The built-in default spec (always parses).
    ///
    /// # Panics
    ///
    /// Never — the default text is covered by a test.
    #[must_use]
    pub fn default_spec() -> ScoreSpec {
        ScoreSpec::parse(DEFAULT_SPEC_TEXT).expect("default spec text parses")
    }

    /// Parses the line-oriented spec text.
    ///
    /// Grammar (one directive per line, `#` comments, blank lines
    /// ignored):
    ///
    /// ```text
    /// pass 0.8
    /// metric KEY weight W scorer KIND [PARAM] [min FLOOR]
    /// ```
    ///
    /// `KEY` is an exact metric key or a prefix wildcard (`drc.rule.*`).
    /// Matching precedence at scoring time: exact key first, then the
    /// longest matching wildcard prefix, then declaration order.
    ///
    /// # Errors
    ///
    /// A diagnostic naming the offending line.
    pub fn parse(text: &str) -> Result<ScoreSpec, String> {
        let mut rules = Vec::new();
        let mut pass_threshold: Option<f64> = None;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("pass") => {
                    let raw = words
                        .next()
                        .ok_or_else(|| format!("line {line_no}: `pass` needs a threshold"))?;
                    let v: f64 = raw
                        .parse()
                        .map_err(|_| format!("line {line_no}: bad pass threshold `{raw}`"))?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!(
                            "line {line_no}: pass threshold must be in [0,1], got `{raw}`"
                        ));
                    }
                    if pass_threshold.replace(v).is_some() {
                        return Err(format!("line {line_no}: duplicate `pass` directive"));
                    }
                }
                Some("metric") => {
                    rules.push(parse_metric_line(&mut words, line_no)?);
                }
                Some(other) => {
                    return Err(format!("line {line_no}: unknown directive `{other}`"));
                }
                None => unreachable!("blank lines are skipped"),
            }
        }
        if rules.is_empty() {
            return Err("score spec has no `metric` lines".to_string());
        }
        Ok(ScoreSpec { rules, pass_threshold: pass_threshold.unwrap_or(0.5) })
    }

    /// Resolves CLI-style spec input: `None` or `"default"` gives the
    /// built-in spec, anything else is parsed as spec text.
    ///
    /// # Errors
    ///
    /// Parse diagnostics for non-default text.
    pub fn resolve(text: Option<&str>) -> Result<ScoreSpec, String> {
        match text {
            None => Ok(ScoreSpec::default_spec()),
            Some(t) if t.trim() == "default" || t.trim().is_empty() => {
                Ok(ScoreSpec::default_spec())
            }
            Some(t) => ScoreSpec::parse(t),
        }
    }

    /// The rule governing a metric key: exact match first, then the
    /// longest matching wildcard prefix (earliest declaration wins
    /// ties), else `None` (the metric is ignored).
    #[must_use]
    pub fn rule_for(&self, key: &str) -> Option<&MetricRule> {
        if let Some(exact) =
            self.rules.iter().find(|r| !r.pattern.ends_with('*') && r.pattern == key)
        {
            return Some(exact);
        }
        self.rules
            .iter()
            .filter(|r| r.pattern.ends_with('*') && r.matches(key))
            .max_by_key(|r| r.pattern.len())
    }
}

fn parse_metric_line<'a>(
    words: &mut impl Iterator<Item = &'a str>,
    line_no: usize,
) -> Result<MetricRule, String> {
    let pattern = words
        .next()
        .ok_or_else(|| format!("line {line_no}: `metric` needs a key"))?
        .to_string();
    if let Some(star) = pattern.find('*') {
        if star != pattern.len() - 1 {
            return Err(format!("line {line_no}: `*` is only allowed at the end of a key"));
        }
    }
    let mut weight: Option<f64> = None;
    let mut scorer: Option<Scorer> = None;
    let mut min_score: Option<f64> = None;
    let mut pending: Vec<&str> = words.collect();
    pending.reverse(); // pop() now yields words left to right
    while let Some(word) = pending.pop() {
        match word {
            "weight" => {
                let raw = pending
                    .pop()
                    .ok_or_else(|| format!("line {line_no}: `weight` needs a value"))?;
                let v: f64 = raw
                    .parse()
                    .map_err(|_| format!("line {line_no}: bad weight `{raw}`"))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("line {line_no}: weight must be >= 0, got `{raw}`"));
                }
                weight = Some(v);
            }
            "scorer" => {
                let kind = pending
                    .pop()
                    .ok_or_else(|| format!("line {line_no}: `scorer` needs a kind"))?;
                // The parameter is the next word unless it is another
                // clause keyword (identity takes none).
                let param = match pending.last() {
                    Some(&w) if w != "min" && w != "weight" && w != "scorer" => {
                        pending.pop()
                    }
                    _ => None,
                };
                scorer = Some(Scorer::parse(kind, param, line_no)?);
            }
            "min" => {
                let raw = pending
                    .pop()
                    .ok_or_else(|| format!("line {line_no}: `min` needs a floor"))?;
                let v: f64 = raw
                    .parse()
                    .map_err(|_| format!("line {line_no}: bad min floor `{raw}`"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("line {line_no}: min floor must be in [0,1]"));
                }
                min_score = Some(v);
            }
            other => {
                return Err(format!("line {line_no}: unexpected word `{other}`"));
            }
        }
    }
    Ok(MetricRule {
        pattern,
        weight: weight.ok_or_else(|| format!("line {line_no}: metric needs `weight W`"))?,
        scorer: scorer.ok_or_else(|| format!("line {line_no}: metric needs `scorer KIND`"))?,
        min_score,
    })
}

/// One scored metric in the report breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricScore {
    /// The metric key.
    pub key: String,
    /// The raw measured value.
    pub value: f64,
    /// The scorer output in `[0, 1]`.
    pub score: f64,
    /// The aggregate weight applied.
    pub weight: f64,
    /// Whether this metric scored below its `min` floor.
    pub below_floor: bool,
}

/// The scoring result: aggregate, verdict, and per-metric breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreReport {
    /// Weighted aggregate in `[0, 1]`. A spec whose matched weights sum
    /// to zero scores 1 (vacuously clean).
    pub score: f64,
    /// `score >= pass_threshold` and no metric below its floor.
    pub pass: bool,
    /// The spec's pass threshold, echoed for self-contained reports.
    pub pass_threshold: f64,
    /// Matched metrics sorted by key.
    pub metrics: Vec<MetricScore>,
}

impl ScoreReport {
    /// The deterministic JSON rendering: top-level fields in fixed
    /// order, metrics sorted by key, floats written with shortest
    /// round-trip formatting. Equal inputs give byte-identical output.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                JsonValue::obj(vec![
                    ("key", JsonValue::str(&m.key)),
                    ("value", JsonValue::Num(m.value)),
                    ("score", JsonValue::Num(m.score)),
                    ("weight", JsonValue::Num(m.weight)),
                    ("below_floor", JsonValue::Bool(m.below_floor)),
                ])
            })
            .collect();
        JsonValue::obj(vec![
            ("score", JsonValue::Num(self.score)),
            ("pass", JsonValue::Bool(self.pass)),
            ("pass_threshold", JsonValue::Num(self.pass_threshold)),
            ("metrics", JsonValue::Arr(metrics)),
        ])
    }

    /// The rendered JSON line (no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// FNV-1a digest of the rendered JSON — the golden-pin handle for
    /// determinism tests.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a_64(self.render().as_bytes())
    }

    /// The score of one metric by key, if present.
    #[must_use]
    pub fn metric(&self, key: &str) -> Option<&MetricScore> {
        self.metrics.iter().find(|m| m.key == key)
    }

    /// The CLI exit code for this verdict (`partial` forces 2).
    #[must_use]
    pub fn exit_code(&self, partial: bool) -> u8 {
        exit_code(self.pass, partial)
    }
}

/// Scores a metric set against a spec.
///
/// Metrics without a matching rule are dropped (the spec decides what
/// counts); duplicate keys keep the last value. The aggregate is the
/// weighted arithmetic mean of the matched scores; if every matched
/// weight is zero the aggregate is 1.0 (nothing weighed in, vacuous
/// pass — floors still apply).
#[must_use]
pub fn score(metrics: &[(String, f64)], spec: &ScoreSpec) -> ScoreReport {
    let mut by_key: BTreeMap<&str, f64> = BTreeMap::new();
    for (k, v) in metrics {
        by_key.insert(k.as_str(), *v);
    }
    let mut rows = Vec::new();
    let mut weighted_sum = 0.0;
    let mut weight_sum = 0.0;
    let mut any_below = false;
    for (key, value) in by_key {
        let Some(rule) = spec.rule_for(key) else { continue };
        let s = rule.scorer.apply(value);
        let below = rule.min_score.is_some_and(|floor| s < floor);
        any_below |= below;
        weighted_sum += rule.weight * s;
        weight_sum += rule.weight;
        rows.push(MetricScore {
            key: key.to_string(),
            value,
            score: s,
            weight: rule.weight,
            below_floor: below,
        });
    }
    let aggregate = if weight_sum > 0.0 { weighted_sum / weight_sum } else { 1.0 };
    ScoreReport {
        score: aggregate,
        pass: aggregate >= spec.pass_threshold && !any_below,
        pass_threshold: spec.pass_threshold,
        metrics: rows,
    }
}

/// FNV-1a 64-bit hash (the workspace's standard digest).
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(text: &str) -> ScoreSpec {
        ScoreSpec::parse(text).expect("spec parses")
    }

    #[test]
    fn default_spec_parses_and_covers_families() {
        let s = ScoreSpec::default_spec();
        assert!(s.rule_for("drc.violations").is_some());
        assert!(s.rule_for("drc.rule.M1_SPACE").is_some());
        assert!(s.rule_for("ca.short_nm2").is_some());
        assert!(s.rule_for("via.redundancy").is_some());
        assert!(s.rule_for("pattern.top8_coverage").is_some());
        assert!(s.rule_for("unknown.metric").is_none());
        assert_eq!(s.pass_threshold, 0.5);
    }

    #[test]
    fn scorers_map_into_unit_interval() {
        for (scorer, v, want) in [
            (Scorer::Identity, 0.7, 0.7),
            (Scorer::Identity, 3.0, 1.0),
            (Scorer::Identity, -1.0, 0.0),
            (Scorer::Inverse { scale: 10.0 }, 0.0, 1.0),
            (Scorer::Inverse { scale: 10.0 }, 10.0, 0.5),
            (Scorer::Linear { limit: 4.0 }, 1.0, 0.75),
            (Scorer::Linear { limit: 4.0 }, 9.0, 0.0),
            (Scorer::Step { limit: 2.0 }, 2.0, 1.0),
            (Scorer::Step { limit: 2.0 }, 2.5, 0.0),
            (Scorer::PoissonYield { d0_per_cm2: 1000.0 }, 0.0, 1.0),
        ] {
            let got = scorer.apply(v);
            assert!((got - want).abs() < 1e-12, "{scorer:?}({v}) = {got}, want {want}");
        }
        // Poisson yield is monotone decreasing in critical area.
        let y = Scorer::PoissonYield { d0_per_cm2: 1000.0 };
        assert!(y.apply(1e8) < y.apply(1e7));
    }

    #[test]
    fn nan_measurements_score_zero_not_nan() {
        for scorer in [
            Scorer::Identity,
            Scorer::Inverse { scale: 1.0 },
            Scorer::Linear { limit: 1.0 },
            Scorer::Step { limit: 1.0 },
            Scorer::PoissonYield { d0_per_cm2: 1.0 },
        ] {
            assert_eq!(scorer.apply(f64::NAN), 0.0);
            assert_eq!(scorer.apply(f64::INFINITY), 0.0);
        }
        let s = spec("pass 0.5\nmetric m weight 1 scorer identity\n");
        let r = score(&[("m".to_string(), f64::NAN)], &s);
        assert!(r.score.is_finite());
        assert_eq!(r.score, 0.0);
    }

    #[test]
    fn exact_match_beats_wildcard_and_longest_wildcard_wins() {
        let s = spec(
            "pass 0.5\n\
             metric drc.rule.* weight 1 scorer inverse 5\n\
             metric drc.* weight 9 scorer identity\n\
             metric drc.rule.M1 weight 3 scorer step 0\n",
        );
        assert_eq!(s.rule_for("drc.rule.M1").expect("rule").weight, 3.0);
        assert_eq!(s.rule_for("drc.rule.M2").expect("rule").weight, 1.0);
        assert_eq!(s.rule_for("drc.violations").expect("rule").weight, 9.0);
    }

    #[test]
    fn aggregate_is_weighted_mean_and_floors_veto() {
        let s = spec(
            "pass 0.6\n\
             metric a weight 3 scorer identity\n\
             metric b weight 1 scorer identity min 0.5\n",
        );
        // (3·1.0 + 1·0.2) / 4 = 0.8 ≥ 0.6, but b is under its floor.
        let r = score(&[("a".to_string(), 1.0), ("b".to_string(), 0.2)], &s);
        assert!((r.score - 0.8).abs() < 1e-12);
        assert!(!r.pass, "floor must veto");
        assert!(r.metric("b").expect("b").below_floor);
        // Lift b above the floor: passes.
        let r2 = score(&[("a".to_string(), 1.0), ("b".to_string(), 0.6)], &s);
        assert!(r2.pass);
    }

    #[test]
    fn zero_weight_metrics_are_breakdown_only() {
        let s = spec(
            "pass 0.5\n\
             metric good weight 1 scorer identity\n\
             metric info weight 0 scorer identity\n",
        );
        let r = score(&[("good".to_string(), 0.9), ("info".to_string(), 0.0)], &s);
        assert!((r.score - 0.9).abs() < 1e-12, "info must not drag the aggregate");
        assert!(r.metric("info").is_some(), "info still appears in the breakdown");
    }

    #[test]
    fn all_zero_weights_score_one() {
        let s = spec("pass 0.5\nmetric a weight 0 scorer identity\n");
        let r = score(&[("a".to_string(), 0.0)], &s);
        assert_eq!(r.score, 1.0);
        assert!(r.pass);
    }

    #[test]
    fn unmatched_metrics_are_ignored() {
        let s = spec("pass 0.5\nmetric a weight 1 scorer identity\n");
        let r = score(&[("a".to_string(), 1.0), ("zzz".to_string(), 0.0)], &s);
        assert_eq!(r.metrics.len(), 1);
        assert_eq!(r.score, 1.0);
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let s = spec(
            "pass 0.5\n\
             metric b weight 1 scorer identity\n\
             metric a weight 1 scorer identity\n",
        );
        // Input order must not matter.
        let r1 = score(&[("b".to_string(), 0.5), ("a".to_string(), 0.25)], &s);
        let r2 = score(&[("a".to_string(), 0.25), ("b".to_string(), 0.5)], &s);
        assert_eq!(r1.render(), r2.render());
        assert_eq!(r1.digest(), r2.digest());
        let json = r1.render();
        let a = json.find("\"key\":\"a\"").expect("a present");
        let b = json.find("\"key\":\"b\"").expect("b present");
        assert!(a < b, "metrics must be sorted by key: {json}");
    }

    #[test]
    fn spec_parse_diagnostics_name_the_line() {
        for (text, needle) in [
            ("pass 2.0\nmetric a weight 1 scorer identity\n", "line 1"),
            ("metric a weight -1 scorer identity\n", "weight must be >= 0"),
            ("metric a weight 1 scorer bogus\n", "unknown scorer"),
            ("metric a weight 1\n", "needs `scorer KIND`"),
            ("metric a scorer identity\n", "needs `weight W`"),
            ("metric a* b weight 1 scorer identity\n", "unexpected word"),
            ("metric a*b weight 1 scorer identity\n", "only allowed at the end"),
            ("frobnicate 3\n", "unknown directive"),
            ("pass 0.5\n", "no `metric` lines"),
            ("metric a weight 1 scorer inverse 0\n", "must be > 0"),
        ] {
            let err = ScoreSpec::parse(text).expect_err(text);
            assert!(err.contains(needle), "`{text}` gave `{err}`, wanted `{needle}`");
        }
    }

    #[test]
    fn resolve_accepts_default_keyword() {
        assert_eq!(ScoreSpec::resolve(None).expect("ok"), ScoreSpec::default_spec());
        assert_eq!(
            ScoreSpec::resolve(Some("default")).expect("ok"),
            ScoreSpec::default_spec()
        );
        assert!(ScoreSpec::resolve(Some("garbage here")).is_err());
    }

    #[test]
    fn exit_codes_follow_the_contract() {
        assert_eq!(exit_code(true, false), EXIT_PASS);
        assert_eq!(exit_code(false, false), EXIT_BELOW);
        assert_eq!(exit_code(true, true), EXIT_PARTIAL);
        assert_eq!(exit_code(false, true), EXIT_PARTIAL);
    }

    #[test]
    fn min_clause_parses_in_any_position() {
        let s = spec("pass 0.5\nmetric a min 0.9 weight 1 scorer identity\n");
        assert_eq!(s.rules[0].min_score, Some(0.9));
        let s2 = spec("pass 0.5\nmetric a weight 1 scorer inverse 2 min 0.9\n");
        assert_eq!(s2.rules[0].min_score, Some(0.9));
        assert_eq!(s2.rules[0].scorer, Scorer::Inverse { scale: 2.0 });
    }
}
