//! The wire protocol: line-delimited JSON over TCP.
//!
//! Every frame is one JSON value on one `\n`-terminated line, rendered
//! by the workspace's hand-rolled writer ([`dfm_bench::json`]) and
//! parsed by the total parser in [`crate::codec`]. Requests carry a
//! `cmd` discriminator; responses carry `ok` plus a payload (or an
//! `error` diagnostic). GDS bytes travel hex-encoded so frames stay
//! valid UTF-8 text.
//!
//! # Versioning
//!
//! Since v2 every frame carries a `"v"` field and failures travel as a
//! machine-readable [`ErrorObj`] (`{code, message, retry_after_vms?}`)
//! instead of a bare string. Compatibility is bidirectional:
//!
//! * a frame **without** `"v"` is a v1 frame — the server still
//!   accepts it and answers in v1 shape (no `"v"`, string `error`), so
//!   old clients keep working against a v2 server;
//! * [`Response::parse`] accepts both error shapes (a string becomes
//!   an [`ErrorObj`] with code `"error"`), so a v2 client keeps
//!   working against a v1 server.
//!
//! Both directions are implemented symmetrically (`to_json` and
//! `parse`) so the test suite can round-trip every frame kind.

use crate::codec::{from_hex, parse_json, to_hex};
use crate::sched::Rejection;
use crate::service::{JobEvent, JobEventKind, JobState, JobStatus};
use crate::shard::{ShardGrant, TileCacheMark, TileOutcome, TileOutcomeKind, TileRetry};
use crate::spec::{json_i64, JobSpec};
use dfm_bench::json::JsonValue;

/// The protocol version this build speaks natively.
pub const PROTO_VERSION: u64 = 2;

/// A machine-readable failure: the v2 shape of the `error` field.
///
/// `code` is a stable, snake_case discriminator clients can switch on
/// (`"unknown_tenant"`, `"quota_exceeded"`, `"busy"`, `"not_found"`,
/// `"bad_request"`, or the catch-all `"error"`); `message` is the
/// human diagnostic. Backpressure rejections also carry
/// `retry_after_vms`, a deterministic virtual-milliseconds hint for
/// when to retry the submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorObj {
    /// Stable machine-readable discriminator (snake_case).
    pub code: String,
    /// Human-readable diagnostic.
    pub message: String,
    /// Retry hint in virtual milliseconds, on backpressure rejections.
    pub retry_after_vms: Option<u64>,
}

impl ErrorObj {
    /// An error with the catch-all `"error"` code and no retry hint —
    /// the shape every v1 string diagnostic maps onto.
    pub fn msg(message: impl Into<String>) -> ErrorObj {
        ErrorObj { code: "error".to_string(), message: message.into(), retry_after_vms: None }
    }

    /// Renders the v2 `error` payload (`retry_after_vms` is omitted
    /// when absent).
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("code".to_string(), JsonValue::str(&self.code)),
            ("message".to_string(), JsonValue::str(&self.message)),
        ];
        if let Some(vms) = self.retry_after_vms {
            fields.push(("retry_after_vms".to_string(), JsonValue::Num(vms as f64)));
        }
        JsonValue::Obj(fields)
    }

    /// Parses an `error` payload of either protocol generation: a v1
    /// string becomes the catch-all shape, a v2 object is read
    /// field-by-field.
    ///
    /// # Errors
    ///
    /// A diagnostic when the value is neither a string nor a
    /// well-formed error object.
    pub fn from_json(v: &JsonValue) -> Result<ErrorObj, String> {
        if let Some(s) = v.as_str() {
            return Ok(ErrorObj::msg(s));
        }
        let code = v
            .get("code")
            .and_then(JsonValue::as_str)
            .ok_or("error object needs a string \"code\"")?
            .to_string();
        let message = v
            .get("message")
            .and_then(JsonValue::as_str)
            .ok_or("error object needs a string \"message\"")?
            .to_string();
        let retry_after_vms = match v.get("retry_after_vms") {
            None | Some(JsonValue::Null) => None,
            Some(n) => Some(field_u64(n, "retry_after_vms")?),
        };
        Ok(ErrorObj { code, message, retry_after_vms })
    }
}

impl From<Rejection> for ErrorObj {
    fn from(r: Rejection) -> ErrorObj {
        ErrorObj {
            code: r.code.name().to_string(),
            message: r.message,
            retry_after_vms: r.retry_after_vms,
        }
    }
}

impl std::fmt::Display for ErrorObj {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)?;
        if let Some(vms) = self.retry_after_vms {
            write!(f, " (retry after {vms} vms)")?;
        }
        Ok(())
    }
}

/// A client→server frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit a job: a spec plus hex-encoded GDS bytes.
    Submit {
        /// The job spec.
        spec: JobSpec,
        /// Raw GDSII stream bytes.
        gds: Vec<u8>,
        /// Client idempotency key (v2-only): a resubmission under the
        /// same key after an ambiguous connection drop answers with
        /// the job id the key first minted instead of double-running.
        idem: Option<String>,
    },
    /// Fetch a job's status.
    Status {
        /// Job id.
        job: u64,
    },
    /// Fetch a job's events from a sequence number on.
    Events {
        /// Job id.
        job: u64,
        /// First sequence number wanted.
        since: u64,
    },
    /// Fetch a job's merged report.
    Results {
        /// Job id.
        job: u64,
        /// Allow a prefix merge of an unfinished job.
        partial: bool,
    },
    /// Fetch a job's manufacturability score (JSON line).
    Score {
        /// Job id.
        job: u64,
    },
    /// Cancel a job (completed tiles are kept).
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Resume a partial/cancelled job.
    Resume {
        /// Job id.
        job: u64,
    },
    /// List all jobs.
    List,
    /// Stop the server. With `drain` (v2-only) the service first stops
    /// admitting, finishes or checkpoints in-flight tiles, and raises
    /// the draining flag on shard pulls before exiting.
    Shutdown {
        /// Graceful drain instead of an immediate stop.
        drain: bool,
    },
    /// Coordinator→shard: run tile range(s) of a job as a shard job
    /// keyed by the coordinator's `(coord, origin, gen)`. v2-only.
    ShardDispatch {
        /// The coordinator's identity — distinguishes jobs from
        /// different coordinator instances that collide on `origin`.
        coord: u64,
        /// The coordinator's job id.
        origin: u64,
        /// The coordinator's dispatch generation (bumped on takeover).
        gen: u64,
        /// The job spec.
        spec: JobSpec,
        /// Raw GDSII stream bytes.
        gds: Vec<u8>,
        /// Half-open tile ranges to run; `None` uses the shard's own
        /// `--shard-of` partition.
        ranges: Option<Vec<(usize, usize)>>,
    },
    /// Coordinator→shard: look up the grant a prior dispatch of
    /// `(coord, origin, gen)` minted, without resubmitting the job.
    /// v2-only.
    ShardAttach {
        /// The coordinator's identity.
        coord: u64,
        /// The coordinator's job id.
        origin: u64,
        /// The coordinator's dispatch generation.
        gen: u64,
    },
    /// Coordinator→shard: poll a shard job's outcome log from a
    /// cursor on. v2-only.
    ShardPull {
        /// The shard-local job id from the grant.
        job: u64,
        /// First outcome-log index wanted.
        since: u64,
    },
    /// Coordinator→shard: lease-renewing liveness probe for a shard
    /// job. v2-only.
    ShardHeartbeat {
        /// The shard-local job id from the grant.
        job: u64,
    },
}

impl Request {
    /// Renders the request frame in the native ([`PROTO_VERSION`])
    /// shape — the body plus a leading `"v"` field.
    pub fn to_json(&self) -> JsonValue {
        match self.body_json() {
            JsonValue::Obj(mut fields) => {
                fields.insert(0, ("v".to_string(), JsonValue::Num(PROTO_VERSION as f64)));
                JsonValue::Obj(fields)
            }
            other => other,
        }
    }

    /// Renders the request body without the version marker — the exact
    /// v1 frame shape, kept for compat tests and v1-speaking callers.
    pub fn body_json(&self) -> JsonValue {
        match self {
            Request::Ping => JsonValue::obj([("cmd", JsonValue::str("ping"))]),
            Request::Submit { spec, gds, idem } => {
                let mut fields = vec![
                    ("cmd".to_string(), JsonValue::str("submit")),
                    ("spec".to_string(), spec.to_json()),
                    ("gds_hex".to_string(), JsonValue::str(to_hex(gds))),
                ];
                if let Some(key) = idem {
                    fields.push(("idem".to_string(), JsonValue::str(key)));
                }
                JsonValue::Obj(fields)
            }
            Request::Status { job } => JsonValue::obj([
                ("cmd", JsonValue::str("status")),
                ("job", JsonValue::Num(*job as f64)),
            ]),
            Request::Events { job, since } => JsonValue::obj([
                ("cmd", JsonValue::str("events")),
                ("job", JsonValue::Num(*job as f64)),
                ("since", JsonValue::Num(*since as f64)),
            ]),
            Request::Results { job, partial } => JsonValue::obj([
                ("cmd", JsonValue::str("results")),
                ("job", JsonValue::Num(*job as f64)),
                ("partial", JsonValue::Bool(*partial)),
            ]),
            Request::Score { job } => JsonValue::obj([
                ("cmd", JsonValue::str("score")),
                ("job", JsonValue::Num(*job as f64)),
            ]),
            Request::Cancel { job } => JsonValue::obj([
                ("cmd", JsonValue::str("cancel")),
                ("job", JsonValue::Num(*job as f64)),
            ]),
            Request::Resume { job } => JsonValue::obj([
                ("cmd", JsonValue::str("resume")),
                ("job", JsonValue::Num(*job as f64)),
            ]),
            Request::List => JsonValue::obj([("cmd", JsonValue::str("list"))]),
            Request::Shutdown { drain } => {
                let mut fields = vec![("cmd".to_string(), JsonValue::str("shutdown"))];
                if *drain {
                    fields.push(("drain".to_string(), JsonValue::Bool(true)));
                }
                JsonValue::Obj(fields)
            }
            Request::ShardDispatch { coord, origin, gen, spec, gds, ranges } => {
                let mut fields = vec![
                    ("cmd".to_string(), JsonValue::str("shard.dispatch")),
                    ("coord".to_string(), JsonValue::Num(*coord as f64)),
                    ("origin".to_string(), JsonValue::Num(*origin as f64)),
                    ("gen".to_string(), JsonValue::Num(*gen as f64)),
                    ("spec".to_string(), spec.to_json()),
                    ("gds_hex".to_string(), JsonValue::str(to_hex(gds))),
                ];
                if let Some(ranges) = ranges {
                    fields.push(("ranges".to_string(), ranges_to_json(ranges)));
                }
                JsonValue::Obj(fields)
            }
            Request::ShardAttach { coord, origin, gen } => JsonValue::obj([
                ("cmd", JsonValue::str("shard.attach")),
                ("coord", JsonValue::Num(*coord as f64)),
                ("origin", JsonValue::Num(*origin as f64)),
                ("gen", JsonValue::Num(*gen as f64)),
            ]),
            Request::ShardPull { job, since } => JsonValue::obj([
                ("cmd", JsonValue::str("shard.pull")),
                ("job", JsonValue::Num(*job as f64)),
                ("since", JsonValue::Num(*since as f64)),
            ]),
            Request::ShardHeartbeat { job } => JsonValue::obj([
                ("cmd", JsonValue::str("shard.heartbeat")),
                ("job", JsonValue::Num(*job as f64)),
            ]),
        }
    }

    /// Parses one request line, discarding the protocol version.
    ///
    /// # Errors
    ///
    /// As [`Request::parse_versioned`].
    pub fn parse(line: &str) -> Result<Request, String> {
        Ok(Request::parse_versioned(line)?.0)
    }

    /// Parses one request line along with the protocol version it was
    /// framed in: `"v":2` for v2, **no** `"v"` field for v1. The
    /// server echoes this version back so each client hears the
    /// dialect it spoke.
    ///
    /// # Errors
    ///
    /// A diagnostic for malformed JSON, an unsupported version, an
    /// unknown `cmd`, or a missing or mistyped field. Never panics,
    /// whatever the bytes.
    pub fn parse_versioned(line: &str) -> Result<(Request, u64), String> {
        let v = parse_json(line)?;
        let version = match v.get("v") {
            None => 1,
            Some(n) => field_u64(n, "v")?,
        };
        if !(1..=PROTO_VERSION).contains(&version) {
            return Err(format!(
                "unsupported protocol version {version} (this server speaks 1..={PROTO_VERSION})"
            ));
        }
        let request = Request::from_json(&v)?;
        // The shard plane rides v2 exclusively: the frames did not
        // exist in v1, so an unversioned line must not smuggle them in.
        if version < 2
            && matches!(
                request,
                Request::ShardDispatch { .. }
                    | Request::ShardAttach { .. }
                    | Request::ShardPull { .. }
                    | Request::ShardHeartbeat { .. }
            )
        {
            return Err("shard frames require protocol v2 (add \"v\":2)".to_string());
        }
        // So are the v2 field extensions: a v1 dialect has no words for
        // idempotent submission or graceful drain, and silently
        // ignoring them would betray the caller's intent.
        if version < 2 {
            if matches!(&request, Request::Submit { idem: Some(_), .. }) {
                return Err("idempotency keys require protocol v2 (add \"v\":2)".to_string());
            }
            if matches!(request, Request::Shutdown { drain: true }) {
                return Err("drain shutdown requires protocol v2 (add \"v\":2)".to_string());
            }
        }
        Ok((request, version))
    }

    fn from_json(v: &JsonValue) -> Result<Request, String> {
        let cmd = v
            .get("cmd")
            .and_then(JsonValue::as_str)
            .ok_or("request needs a string \"cmd\" field")?;
        match cmd {
            "ping" => Ok(Request::Ping),
            "submit" => {
                let spec =
                    JobSpec::from_json(v.get("spec").ok_or("submit needs a \"spec\" object")?)?;
                let hex = v
                    .get("gds_hex")
                    .and_then(JsonValue::as_str)
                    .ok_or("submit needs a \"gds_hex\" string")?;
                let idem = match v.get("idem") {
                    None | Some(JsonValue::Null) => None,
                    Some(k) => Some(
                        k.as_str()
                            .ok_or("submit \"idem\" must be a string")?
                            .to_string(),
                    ),
                };
                Ok(Request::Submit { spec, gds: from_hex(hex)?, idem })
            }
            "status" => Ok(Request::Status { job: job_id(v)? }),
            "events" => Ok(Request::Events {
                job: job_id(v)?,
                since: v.get("since").map_or(Ok(0), |s| field_u64(s, "since"))?,
            }),
            "results" => Ok(Request::Results {
                job: job_id(v)?,
                partial: v.get("partial").and_then(JsonValue::as_bool).unwrap_or(false),
            }),
            "score" => Ok(Request::Score { job: job_id(v)? }),
            "cancel" => Ok(Request::Cancel { job: job_id(v)? }),
            "resume" => Ok(Request::Resume { job: job_id(v)? }),
            "list" => Ok(Request::List),
            "shutdown" => Ok(Request::Shutdown {
                drain: match v.get("drain") {
                    None | Some(JsonValue::Null) => false,
                    Some(d) => d.as_bool().ok_or("shutdown \"drain\" must be a boolean")?,
                },
            }),
            "shard.dispatch" => {
                let spec = JobSpec::from_json(
                    v.get("spec").ok_or("shard.dispatch needs a \"spec\" object")?,
                )?;
                let hex = v
                    .get("gds_hex")
                    .and_then(JsonValue::as_str)
                    .ok_or("shard.dispatch needs a \"gds_hex\" string")?;
                let ranges = match v.get("ranges") {
                    None | Some(JsonValue::Null) => None,
                    Some(r) => Some(ranges_from_json(r)?),
                };
                Ok(Request::ShardDispatch {
                    coord: field_u64(
                        v.get("coord").ok_or("shard.dispatch needs a \"coord\"")?,
                        "coord",
                    )?,
                    origin: field_u64(
                        v.get("origin").ok_or("shard.dispatch needs an \"origin\"")?,
                        "origin",
                    )?,
                    gen: field_u64(v.get("gen").ok_or("shard.dispatch needs a \"gen\"")?, "gen")?,
                    spec,
                    gds: from_hex(hex)?,
                    ranges,
                })
            }
            "shard.attach" => Ok(Request::ShardAttach {
                coord: field_u64(
                    v.get("coord").ok_or("shard.attach needs a \"coord\"")?,
                    "coord",
                )?,
                origin: field_u64(
                    v.get("origin").ok_or("shard.attach needs an \"origin\"")?,
                    "origin",
                )?,
                gen: field_u64(v.get("gen").ok_or("shard.attach needs a \"gen\"")?, "gen")?,
            }),
            "shard.pull" => Ok(Request::ShardPull {
                job: job_id(v)?,
                since: v.get("since").map_or(Ok(0), |s| field_u64(s, "since"))?,
            }),
            "shard.heartbeat" => Ok(Request::ShardHeartbeat { job: job_id(v)? }),
            other => Err(format!("unknown cmd '{other}'")),
        }
    }
}

/// A server→client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Ping answer.
    Pong,
    /// Job accepted.
    Submitted {
        /// The new job's id.
        job: u64,
    },
    /// One job's status.
    Status(JobStatus),
    /// A job's event delta.
    Events {
        /// Events with `seq >= since`, in order.
        events: Vec<JobEvent>,
        /// The sequence number to poll from next.
        next_seq: u64,
    },
    /// A job's merged report.
    Results {
        /// Status at merge time.
        status: JobStatus,
        /// The canonical report text ([`crate::SignoffReport::render_text`]).
        report_text: String,
    },
    /// A job's manufacturability score.
    Score {
        /// Status at score time.
        status: JobStatus,
        /// The score report's deterministic JSON line
        /// ([`dfm_score::ScoreReport::render`]), shipped as an opaque
        /// string so byte-identity survives the wire untouched.
        score_json: String,
    },
    /// All jobs.
    List {
        /// Status per job, ordered by id.
        jobs: Vec<JobStatus>,
    },
    /// The server acknowledges shutdown.
    ShuttingDown,
    /// A shard acknowledges a dispatch or attach with its grant.
    ShardDispatched {
        /// The shard-local job id, acknowledged ranges, and whether an
        /// existing `(origin, gen)` job was re-attached.
        grant: ShardGrant,
    },
    /// A slice of a shard job's outcome log.
    ShardOutcomes {
        /// Outcome-log entries from the requested cursor on, in order.
        outcomes: Vec<TileOutcome>,
        /// The cursor to poll from next.
        next: u64,
        /// True once the shard job has settled (no more outcomes ever).
        settled: bool,
        /// True when the shard's service is draining — a settle under
        /// this flag is a planned handoff, not a loss. Absent on the
        /// wire means `false` (pre-drain servers).
        draining: bool,
    },
    /// A shard answers a heartbeat: the lease is renewed.
    ShardAlive {
        /// True once the shard job has settled.
        settled: bool,
        /// True when the shard's service is draining.
        draining: bool,
    },
    /// The request failed.
    Error {
        /// The structured diagnostic. (A v1 peer sees only its
        /// `message`; a parsed v1 string error carries code `"error"`.)
        error: ErrorObj,
    },
}

impl Response {
    /// Renders the response frame in the native ([`PROTO_VERSION`])
    /// shape.
    pub fn to_json(&self) -> JsonValue {
        self.to_json_for(PROTO_VERSION)
    }

    /// Renders the response frame in the dialect of the given protocol
    /// version — the one [`Request::parse_versioned`] said the peer
    /// spoke. v1 frames have no `"v"` field and carry the error as a
    /// bare message string; v2 frames lead with `"v":2` and carry the
    /// full [`ErrorObj`].
    pub fn to_json_for(&self, version: u64) -> JsonValue {
        let versioned = |mut fields: Vec<(String, JsonValue)>| {
            if version >= 2 {
                fields.insert(0, ("v".to_string(), JsonValue::Num(version as f64)));
            }
            JsonValue::Obj(fields)
        };
        let ok = |fields: Vec<(String, JsonValue)>| {
            let mut all = vec![("ok".to_string(), JsonValue::Bool(true))];
            all.extend(fields);
            versioned(all)
        };
        match self {
            Response::Pong => ok(vec![("pong".to_string(), JsonValue::Bool(true))]),
            Response::Submitted { job } => {
                ok(vec![("job".to_string(), JsonValue::Num(*job as f64))])
            }
            Response::Status(status) => ok(vec![("status".to_string(), status_to_json(status))]),
            Response::Events { events, next_seq } => ok(vec![
                (
                    "events".to_string(),
                    JsonValue::Arr(events.iter().map(event_to_json).collect()),
                ),
                ("next_seq".to_string(), JsonValue::Num(*next_seq as f64)),
            ]),
            Response::Results { status, report_text } => ok(vec![
                ("status".to_string(), status_to_json(status)),
                ("report_text".to_string(), JsonValue::str(report_text)),
            ]),
            Response::Score { status, score_json } => ok(vec![
                ("status".to_string(), status_to_json(status)),
                ("score_json".to_string(), JsonValue::str(score_json)),
            ]),
            Response::List { jobs } => ok(vec![(
                "jobs".to_string(),
                JsonValue::Arr(jobs.iter().map(status_to_json).collect()),
            )]),
            Response::ShuttingDown => {
                ok(vec![("shutting_down".to_string(), JsonValue::Bool(true))])
            }
            Response::ShardDispatched { grant } => ok(vec![
                ("job".to_string(), JsonValue::Num(grant.job as f64)),
                ("total".to_string(), JsonValue::Num(grant.total as f64)),
                ("ranges".to_string(), ranges_to_json(&grant.ranges)),
                ("attached".to_string(), JsonValue::Bool(grant.attached)),
            ]),
            Response::ShardOutcomes { outcomes, next, settled, draining } => ok(vec![
                (
                    "outcomes".to_string(),
                    JsonValue::Arr(outcomes.iter().map(outcome_to_json).collect()),
                ),
                ("next".to_string(), JsonValue::Num(*next as f64)),
                ("settled".to_string(), JsonValue::Bool(*settled)),
                ("draining".to_string(), JsonValue::Bool(*draining)),
            ]),
            Response::ShardAlive { settled, draining } => ok(vec![
                ("alive".to_string(), JsonValue::Bool(true)),
                ("settled".to_string(), JsonValue::Bool(*settled)),
                ("draining".to_string(), JsonValue::Bool(*draining)),
            ]),
            Response::Error { error } => versioned(vec![
                ("ok".to_string(), JsonValue::Bool(false)),
                (
                    "error".to_string(),
                    if version >= 2 { error.to_json() } else { JsonValue::str(&error.message) },
                ),
            ]),
        }
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// A diagnostic for malformed JSON or an unrecognisable frame.
    /// Never panics, whatever the bytes.
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = parse_json(line)?;
        let ok = v
            .get("ok")
            .and_then(JsonValue::as_bool)
            .ok_or("response needs a boolean \"ok\" field")?;
        if !ok {
            let error = v.get("error").ok_or("error response needs an \"error\" field")?;
            return Ok(Response::Error { error: ErrorObj::from_json(error)? });
        }
        if v.get("pong").is_some() {
            return Ok(Response::Pong);
        }
        if v.get("shutting_down").is_some() {
            return Ok(Response::ShuttingDown);
        }
        // Shard frames are keyed on fields no legacy frame carries —
        // checked before "events"/"job", which they would also match.
        if v.get("alive").is_some() {
            return Ok(Response::ShardAlive {
                settled: v
                    .get("settled")
                    .and_then(JsonValue::as_bool)
                    .ok_or("heartbeat ack needs a boolean \"settled\"")?,
                draining: v
                    .get("draining")
                    .and_then(JsonValue::as_bool)
                    .ok_or("heartbeat ack needs a boolean \"draining\"")?,
            });
        }
        if v.get("attached").is_some() {
            let ranges =
                ranges_from_json(v.get("ranges").ok_or("shard grant needs \"ranges\"")?)?;
            return Ok(Response::ShardDispatched {
                grant: ShardGrant {
                    job: field_u64(v.get("job").ok_or("shard grant needs \"job\"")?, "job")?,
                    total: field_u64(v.get("total").ok_or("shard grant needs \"total\"")?, "total")?
                        as usize,
                    ranges,
                    attached: v
                        .get("attached")
                        .and_then(JsonValue::as_bool)
                        .ok_or("\"attached\" must be a boolean")?,
                },
            });
        }
        if let Some(outcomes) = v.get("outcomes") {
            let arr = outcomes.as_arr().ok_or("\"outcomes\" must be an array")?;
            let outcomes = arr.iter().map(outcome_from_json).collect::<Result<_, _>>()?;
            return Ok(Response::ShardOutcomes {
                outcomes,
                next: v.get("next").map_or(Ok(0), |n| field_u64(n, "next"))?,
                settled: v
                    .get("settled")
                    .and_then(JsonValue::as_bool)
                    .ok_or("shard outcomes need a boolean \"settled\"")?,
                // Absent means false: a pre-drain server never drains.
                draining: match v.get("draining") {
                    None | Some(JsonValue::Null) => false,
                    Some(d) => d
                        .as_bool()
                        .ok_or("shard outcomes \"draining\" must be a boolean")?,
                },
            });
        }
        if let Some(events) = v.get("events") {
            let arr = events.as_arr().ok_or("\"events\" must be an array")?;
            let events = arr.iter().map(event_from_json).collect::<Result<_, _>>()?;
            let next_seq = v
                .get("next_seq")
                .map_or(Ok(0), |s| field_u64(s, "next_seq"))?;
            return Ok(Response::Events { events, next_seq });
        }
        if let Some(report_text) = v.get("report_text") {
            let report_text =
                report_text.as_str().ok_or("\"report_text\" must be a string")?.to_string();
            let status =
                status_from_json(v.get("status").ok_or("results response needs \"status\"")?)?;
            return Ok(Response::Results { status, report_text });
        }
        if let Some(score_json) = v.get("score_json") {
            let score_json =
                score_json.as_str().ok_or("\"score_json\" must be a string")?.to_string();
            let status =
                status_from_json(v.get("status").ok_or("score response needs \"status\"")?)?;
            return Ok(Response::Score { status, score_json });
        }
        if let Some(status) = v.get("status") {
            return Ok(Response::Status(status_from_json(status)?));
        }
        if let Some(jobs) = v.get("jobs") {
            let arr = jobs.as_arr().ok_or("\"jobs\" must be an array")?;
            let jobs = arr.iter().map(status_from_json).collect::<Result<_, _>>()?;
            return Ok(Response::List { jobs });
        }
        if let Some(job) = v.get("job") {
            return Ok(Response::Submitted { job: field_u64(job, "job")? });
        }
        Err("unrecognised response frame".to_string())
    }
}

fn job_id(v: &JsonValue) -> Result<u64, String> {
    field_u64(v.get("job").ok_or("request needs a \"job\" id")?, "job")
}

fn ranges_to_json(ranges: &[(usize, usize)]) -> JsonValue {
    JsonValue::Arr(
        ranges
            .iter()
            .map(|&(lo, hi)| {
                JsonValue::Arr(vec![JsonValue::Num(lo as f64), JsonValue::Num(hi as f64)])
            })
            .collect(),
    )
}

fn ranges_from_json(v: &JsonValue) -> Result<Vec<(usize, usize)>, String> {
    let arr = v.as_arr().ok_or("\"ranges\" must be an array")?;
    arr.iter()
        .map(|r| {
            let pair = r.as_arr().ok_or("each range must be a [lo, hi] pair")?;
            if pair.len() != 2 {
                return Err("each range must be a [lo, hi] pair".to_string());
            }
            Ok((
                field_u64(&pair[0], "range lo")? as usize,
                field_u64(&pair[1], "range hi")? as usize,
            ))
        })
        .collect()
}

fn outcome_to_json(o: &TileOutcome) -> JsonValue {
    let retries = JsonValue::Arr(
        o.retries
            .iter()
            .map(|r| {
                JsonValue::obj([
                    ("attempt", JsonValue::Num(r.attempt as f64)),
                    ("backoff_vms", JsonValue::Num(r.backoff_vms as f64)),
                    ("reason", JsonValue::str(&r.reason)),
                ])
            })
            .collect(),
    );
    let mut fields = vec![
        ("tile".to_string(), JsonValue::Num(o.tile as f64)),
        ("retries".to_string(), retries),
    ];
    match &o.kind {
        TileOutcomeKind::Done { data, ckpt_degraded, cache } => fields.push((
            "done".to_string(),
            JsonValue::obj([
                ("data", JsonValue::str(to_hex(data))),
                ("ckpt_degraded", JsonValue::Bool(*ckpt_degraded)),
                (
                    "cache",
                    JsonValue::str(match cache {
                        TileCacheMark::Hit => "hit",
                        TileCacheMark::Stored => "store",
                        TileCacheMark::None => "none",
                    }),
                ),
            ]),
        )),
        TileOutcomeKind::Quarantined { attempts, reason } => fields.push((
            "quarantined".to_string(),
            JsonValue::obj([
                ("attempts", JsonValue::Num(*attempts as f64)),
                ("reason", JsonValue::str(reason)),
            ]),
        )),
    }
    JsonValue::Obj(fields)
}

fn outcome_from_json(v: &JsonValue) -> Result<TileOutcome, String> {
    let tile = field_u64(v.get("tile").ok_or("outcome needs a \"tile\"")?, "tile")? as usize;
    let retries = match v.get("retries") {
        None => Vec::new(),
        Some(r) => r
            .as_arr()
            .ok_or("outcome \"retries\" must be an array")?
            .iter()
            .map(|r| {
                Ok(TileRetry {
                    attempt: field_u64(
                        r.get("attempt").ok_or("retry needs an \"attempt\"")?,
                        "attempt",
                    )?,
                    backoff_vms: field_u64(
                        r.get("backoff_vms").ok_or("retry needs \"backoff_vms\"")?,
                        "backoff_vms",
                    )?,
                    reason: r
                        .get("reason")
                        .and_then(JsonValue::as_str)
                        .ok_or("retry needs a \"reason\" string")?
                        .to_string(),
                })
            })
            .collect::<Result<_, String>>()?,
    };
    let kind = if let Some(done) = v.get("done") {
        let hex = done
            .get("data")
            .and_then(JsonValue::as_str)
            .ok_or("done outcome needs a \"data\" hex string")?;
        TileOutcomeKind::Done {
            data: from_hex(hex)?,
            ckpt_degraded: done
                .get("ckpt_degraded")
                .and_then(JsonValue::as_bool)
                .ok_or("done outcome needs a boolean \"ckpt_degraded\"")?,
            cache: match done
                .get("cache")
                .and_then(JsonValue::as_str)
                .ok_or("done outcome needs a \"cache\" mark")?
            {
                "hit" => TileCacheMark::Hit,
                "store" => TileCacheMark::Stored,
                "none" => TileCacheMark::None,
                other => return Err(format!("unknown cache mark '{other}'")),
            },
        }
    } else if let Some(q) = v.get("quarantined") {
        TileOutcomeKind::Quarantined {
            attempts: field_u64(
                q.get("attempts").ok_or("quarantined outcome needs \"attempts\"")?,
                "attempts",
            )?,
            reason: q
                .get("reason")
                .and_then(JsonValue::as_str)
                .ok_or("quarantined outcome needs a \"reason\" string")?
                .to_string(),
        }
    } else {
        return Err("outcome needs a \"done\" or \"quarantined\" verdict".to_string());
    };
    Ok(TileOutcome { tile, retries, kind })
}

fn field_u64(v: &JsonValue, what: &str) -> Result<u64, String> {
    let n = json_i64(v, what)?;
    u64::try_from(n).map_err(|_| format!("{what} must be non-negative"))
}

fn status_to_json(s: &JobStatus) -> JsonValue {
    JsonValue::obj([
        ("id", JsonValue::Num(s.id as f64)),
        ("name", JsonValue::str(&s.name)),
        // Always present on the wire (v1 parsers ignore unknown keys;
        // ours defaults them when absent, so old servers still parse).
        ("tenant", JsonValue::str(&s.tenant)),
        ("priority", JsonValue::Num(s.priority as f64)),
        ("state", JsonValue::str(s.state.name())),
        ("tiles_total", JsonValue::Num(s.tiles_total as f64)),
        ("tiles_done", JsonValue::Num(s.tiles_done as f64)),
        ("tiles_quarantined", JsonValue::Num(s.tiles_quarantined as f64)),
        ("tiles_cached", JsonValue::Num(s.tiles_cached as f64)),
        ("next_seq", JsonValue::Num(s.next_seq as f64)),
        (
            // The score travels as its IEEE-754 bit pattern in a
            // string: a JSON Num would round-trip through f64 text
            // formatting, and byte-exactness is the whole point.
            "score_bits",
            match s.score_bits {
                Some(bits) => JsonValue::u64_str(bits),
                None => JsonValue::Null,
            },
        ),
        (
            "score_pass",
            match s.score_pass {
                Some(p) => JsonValue::Bool(p),
                None => JsonValue::Null,
            },
        ),
        (
            "error",
            match &s.error {
                Some(e) => JsonValue::str(e),
                None => JsonValue::Null,
            },
        ),
    ])
}

fn status_from_json(v: &JsonValue) -> Result<JobStatus, String> {
    let state_name = v
        .get("state")
        .and_then(JsonValue::as_str)
        .ok_or("status needs a \"state\" string")?;
    let state =
        JobState::from_name(state_name).ok_or_else(|| format!("unknown state '{state_name}'"))?;
    let error = match v.get("error") {
        None | Some(JsonValue::Null) => None,
        Some(e) => Some(e.as_str().ok_or("status \"error\" must be a string")?.to_string()),
    };
    Ok(JobStatus {
        id: field_u64(v.get("id").ok_or("status needs an \"id\"")?, "id")?,
        name: v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("status needs a \"name\" string")?
            .to_string(),
        tenant: match v.get("tenant") {
            None => crate::spec::DEFAULT_TENANT.to_string(),
            Some(t) => t.as_str().ok_or("status \"tenant\" must be a string")?.to_string(),
        },
        priority: match v.get("priority") {
            None => 0,
            Some(p) => u8::try_from(field_u64(p, "priority")?)
                .map_err(|_| "status \"priority\" out of range".to_string())?,
        },
        state,
        tiles_total: field_u64(v.get("tiles_total").ok_or("status needs \"tiles_total\"")?, "tiles_total")?
            as usize,
        tiles_done: field_u64(v.get("tiles_done").ok_or("status needs \"tiles_done\"")?, "tiles_done")?
            as usize,
        tiles_quarantined: v
            .get("tiles_quarantined")
            .map_or(Ok(0), |s| field_u64(s, "tiles_quarantined"))? as usize,
        tiles_cached: v
            .get("tiles_cached")
            .map_or(Ok(0), |s| field_u64(s, "tiles_cached"))? as usize,
        next_seq: v.get("next_seq").map_or(Ok(0), |s| field_u64(s, "next_seq"))?,
        score_bits: match v.get("score_bits") {
            None | Some(JsonValue::Null) => None,
            Some(b) => Some(u64_from_str(b, "score_bits")?),
        },
        score_pass: match v.get("score_pass") {
            None | Some(JsonValue::Null) => None,
            Some(p) => Some(p.as_bool().ok_or("status \"score_pass\" must be a boolean")?),
        },
        error,
    })
}

/// Parses an exact u64 shipped as a decimal string
/// ([`JsonValue::u64_str`] — score bits exceed f64's exact-integer
/// range).
fn u64_from_str(v: &JsonValue, what: &str) -> Result<u64, String> {
    v.as_str()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| format!("{what} must be a u64 decimal string"))
}

fn event_to_json(e: &JobEvent) -> JsonValue {
    match &e.kind {
        JobEventKind::State(state) => JsonValue::obj([
            ("seq", JsonValue::Num(e.seq as f64)),
            ("kind", JsonValue::str("state")),
            ("state", JsonValue::str(state.name())),
        ]),
        JobEventKind::TileDone { tile, completed, total } => JsonValue::obj([
            ("seq", JsonValue::Num(e.seq as f64)),
            ("kind", JsonValue::str("tile")),
            ("tile", JsonValue::Num(*tile as f64)),
            ("completed", JsonValue::Num(*completed as f64)),
            ("total", JsonValue::Num(*total as f64)),
        ]),
        JobEventKind::TileRetry { tile, attempt, backoff_vms, reason } => JsonValue::obj([
            ("seq", JsonValue::Num(e.seq as f64)),
            ("kind", JsonValue::str("retry")),
            ("tile", JsonValue::Num(*tile as f64)),
            ("attempt", JsonValue::Num(*attempt as f64)),
            ("backoff_vms", JsonValue::Num(*backoff_vms as f64)),
            ("reason", JsonValue::str(reason)),
        ]),
        JobEventKind::TileQuarantined { tile, attempts, reason } => JsonValue::obj([
            ("seq", JsonValue::Num(e.seq as f64)),
            ("kind", JsonValue::str("quarantine")),
            ("tile", JsonValue::Num(*tile as f64)),
            ("attempts", JsonValue::Num(*attempts as f64)),
            ("reason", JsonValue::str(reason)),
        ]),
        JobEventKind::CkptDegraded { tile } => JsonValue::obj([
            ("seq", JsonValue::Num(e.seq as f64)),
            ("kind", JsonValue::str("ckpt")),
            ("tile", JsonValue::Num(*tile as f64)),
        ]),
        JobEventKind::TileCacheHit { tile } => JsonValue::obj([
            ("seq", JsonValue::Num(e.seq as f64)),
            ("kind", JsonValue::str("cache_hit")),
            ("tile", JsonValue::Num(*tile as f64)),
        ]),
        JobEventKind::TileCacheStore { tile } => JsonValue::obj([
            ("seq", JsonValue::Num(e.seq as f64)),
            ("kind", JsonValue::str("cache_store")),
            ("tile", JsonValue::Num(*tile as f64)),
        ]),
        JobEventKind::Score { bits, pass } => JsonValue::obj([
            ("seq", JsonValue::Num(e.seq as f64)),
            ("kind", JsonValue::str("score")),
            ("bits", JsonValue::u64_str(*bits)),
            ("pass", JsonValue::Bool(*pass)),
        ]),
    }
}

fn event_from_json(v: &JsonValue) -> Result<JobEvent, String> {
    let seq = field_u64(v.get("seq").ok_or("event needs a \"seq\"")?, "seq")?;
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("event needs a \"kind\" string")?;
    let kind = match kind {
        "state" => {
            let name = v
                .get("state")
                .and_then(JsonValue::as_str)
                .ok_or("state event needs a \"state\"")?;
            JobEventKind::State(
                JobState::from_name(name).ok_or_else(|| format!("unknown state '{name}'"))?,
            )
        }
        "tile" => JobEventKind::TileDone {
            tile: field_u64(v.get("tile").ok_or("tile event needs \"tile\"")?, "tile")? as usize,
            completed: field_u64(
                v.get("completed").ok_or("tile event needs \"completed\"")?,
                "completed",
            )? as usize,
            total: field_u64(v.get("total").ok_or("tile event needs \"total\"")?, "total")?
                as usize,
        },
        "retry" => JobEventKind::TileRetry {
            tile: field_u64(v.get("tile").ok_or("retry event needs \"tile\"")?, "tile")? as usize,
            attempt: field_u64(v.get("attempt").ok_or("retry event needs \"attempt\"")?, "attempt")?,
            backoff_vms: field_u64(
                v.get("backoff_vms").ok_or("retry event needs \"backoff_vms\"")?,
                "backoff_vms",
            )?,
            reason: v
                .get("reason")
                .and_then(JsonValue::as_str)
                .ok_or("retry event needs a \"reason\" string")?
                .to_string(),
        },
        "quarantine" => JobEventKind::TileQuarantined {
            tile: field_u64(v.get("tile").ok_or("quarantine event needs \"tile\"")?, "tile")?
                as usize,
            attempts: field_u64(
                v.get("attempts").ok_or("quarantine event needs \"attempts\"")?,
                "attempts",
            )?,
            reason: v
                .get("reason")
                .and_then(JsonValue::as_str)
                .ok_or("quarantine event needs a \"reason\" string")?
                .to_string(),
        },
        "ckpt" => JobEventKind::CkptDegraded {
            tile: field_u64(v.get("tile").ok_or("ckpt event needs \"tile\"")?, "tile")? as usize,
        },
        "cache_hit" => JobEventKind::TileCacheHit {
            tile: field_u64(v.get("tile").ok_or("cache_hit event needs \"tile\"")?, "tile")?
                as usize,
        },
        "cache_store" => JobEventKind::TileCacheStore {
            tile: field_u64(v.get("tile").ok_or("cache_store event needs \"tile\"")?, "tile")?
                as usize,
        },
        "score" => JobEventKind::Score {
            bits: u64_from_str(v.get("bits").ok_or("score event needs \"bits\"")?, "bits")?,
            pass: v
                .get("pass")
                .and_then(JsonValue::as_bool)
                .ok_or("score event needs a boolean \"pass\"")?,
        },
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok(JobEvent { seq, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_status() -> JobStatus {
        JobStatus {
            id: 7,
            name: "block-a".to_string(),
            tenant: "acme".to_string(),
            priority: 3,
            state: JobState::Running,
            tiles_total: 9,
            tiles_done: 4,
            tiles_quarantined: 0,
            tiles_cached: 2,
            next_seq: 6,
            score_bits: None,
            score_pass: None,
            error: None,
        }
    }

    #[test]
    fn every_request_round_trips() {
        let requests = vec![
            Request::Ping,
            Request::Submit { spec: JobSpec::default(), gds: vec![0, 1, 254, 255], idem: None },
            Request::Submit {
                spec: JobSpec::default(),
                gds: vec![0, 1],
                idem: Some("retry-42".to_string()),
            },
            Request::Status { job: 3 },
            Request::Events { job: 3, since: 17 },
            Request::Results { job: 3, partial: true },
            Request::Score { job: 3 },
            Request::Cancel { job: 3 },
            Request::Resume { job: 3 },
            Request::List,
            Request::Shutdown { drain: false },
            Request::Shutdown { drain: true },
            Request::ShardDispatch {
                coord: 17,
                origin: 5,
                gen: 1,
                spec: JobSpec::default(),
                gds: vec![7, 8, 9],
                ranges: Some(vec![(0, 3), (5, 9)]),
            },
            Request::ShardDispatch {
                coord: 17,
                origin: 5,
                gen: 0,
                spec: JobSpec::default(),
                gds: vec![],
                ranges: None,
            },
            Request::ShardAttach { coord: 17, origin: 5, gen: 2 },
            Request::ShardPull { job: 11, since: 4 },
            Request::ShardHeartbeat { job: 11 },
        ];
        for req in requests {
            let line = req.to_json().render();
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            let back = Request::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, req, "{line}");
        }
    }

    #[test]
    fn every_response_round_trips() {
        let responses = vec![
            Response::Pong,
            Response::Submitted { job: 12 },
            Response::Status(sample_status()),
            Response::Status(JobStatus {
                state: JobState::Failed,
                error: Some("tile 3 panicked".to_string()),
                ..sample_status()
            }),
            Response::Events {
                events: vec![
                    JobEvent { seq: 0, kind: JobEventKind::State(JobState::Queued) },
                    JobEvent {
                        seq: 1,
                        kind: JobEventKind::TileDone { tile: 0, completed: 1, total: 9 },
                    },
                    JobEvent {
                        seq: 2,
                        kind: JobEventKind::TileRetry {
                            tile: 3,
                            attempt: 0,
                            backoff_vms: 8,
                            reason: "tile 3 panicked: injected".to_string(),
                        },
                    },
                    JobEvent {
                        seq: 3,
                        kind: JobEventKind::TileQuarantined {
                            tile: 3,
                            attempts: 3,
                            reason: "tile 3 panicked: injected".to_string(),
                        },
                    },
                    JobEvent { seq: 4, kind: JobEventKind::CkptDegraded { tile: 5 } },
                    JobEvent { seq: 5, kind: JobEventKind::TileCacheHit { tile: 6 } },
                    JobEvent { seq: 6, kind: JobEventKind::TileCacheStore { tile: 7 } },
                    JobEvent {
                        seq: 7,
                        kind: JobEventKind::Score { bits: 0.85f64.to_bits(), pass: true },
                    },
                ],
                next_seq: 8,
            },
            Response::Results {
                status: sample_status(),
                report_text: "signoff report\nline \"two\"\n".to_string(),
            },
            Response::Score {
                status: JobStatus {
                    state: JobState::Done,
                    score_bits: Some(0.75f64.to_bits()),
                    score_pass: Some(true),
                    ..sample_status()
                },
                score_json: r#"{"score":0.75,"pass":true}"#.to_string(),
            },
            Response::List { jobs: vec![sample_status()] },
            Response::ShuttingDown,
            Response::ShardDispatched {
                grant: ShardGrant {
                    job: 3,
                    total: 9,
                    ranges: vec![(0, 4), (6, 9)],
                    attached: true,
                },
            },
            Response::ShardOutcomes {
                outcomes: vec![
                    TileOutcome {
                        tile: 0,
                        retries: vec![TileRetry {
                            attempt: 0,
                            backoff_vms: 8,
                            reason: "tile 0 panicked: injected".to_string(),
                        }],
                        kind: TileOutcomeKind::Done {
                            data: vec![0xDF, 0x4D, 0x53, 0x00],
                            ckpt_degraded: true,
                            cache: TileCacheMark::Stored,
                        },
                    },
                    TileOutcome {
                        tile: 1,
                        retries: vec![],
                        kind: TileOutcomeKind::Done {
                            data: vec![],
                            ckpt_degraded: false,
                            cache: TileCacheMark::Hit,
                        },
                    },
                    TileOutcome {
                        tile: 2,
                        retries: vec![],
                        kind: TileOutcomeKind::Quarantined {
                            attempts: 3,
                            reason: "tile 2 panicked: injected".to_string(),
                        },
                    },
                ],
                next: 3,
                settled: false,
                draining: false,
            },
            Response::ShardOutcomes {
                outcomes: vec![],
                next: 9,
                settled: true,
                draining: true,
            },
            Response::ShardAlive { settled: false, draining: false },
            Response::ShardAlive { settled: true, draining: true },
            Response::Error { error: ErrorObj::msg("no such job: 4") },
            Response::Error {
                error: ErrorObj {
                    code: "quota_exceeded".to_string(),
                    message: "tenant 'acme' is at max_jobs=2".to_string(),
                    retry_after_vms: Some(96),
                },
            },
        ];
        for resp in responses {
            let line = resp.to_json().render();
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert!(line.contains("\"v\":2"), "v2 frames carry the version: {line}");
            let back = Response::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, resp, "{line}");
        }
    }

    #[test]
    fn v1_frames_still_parse_and_are_answered_in_kind() {
        // An unversioned (v1) request line parses as version 1.
        let (req, version) =
            Request::parse_versioned(r#"{"cmd":"status","job":3}"#).expect("v1 request");
        assert_eq!((req, version), (Request::Status { job: 3 }, 1));
        // A v2 line reports version 2; future versions are refused.
        let (_, version) =
            Request::parse_versioned(&Request::Ping.to_json().render()).expect("v2 request");
        assert_eq!(version, 2);
        assert!(Request::parse_versioned(r#"{"v":99,"cmd":"ping"}"#).is_err());
        // body_json is the exact v1 shape: no "v" field.
        let v1_line = Request::Status { job: 3 }.body_json().render();
        assert!(!v1_line.contains("\"v\""), "{v1_line}");
        // Responses rendered for a v1 peer: no "v", error as a string.
        let err = Response::Error {
            error: ErrorObj {
                code: "busy".to_string(),
                message: "global queue full".to_string(),
                retry_after_vms: Some(8),
            },
        };
        let v1 = err.to_json_for(1).render();
        assert_eq!(v1, r#"{"ok":false,"error":"global queue full"}"#);
        // ...and that v1 error parses back as the catch-all shape.
        assert_eq!(
            Response::parse(&v1),
            Ok(Response::Error { error: ErrorObj::msg("global queue full") })
        );
        // A v1 status (no tenant/priority keys) defaults them.
        let v1_status = r#"{"ok":true,"status":{"id":1,"name":"x","state":"done","tiles_total":1,"tiles_done":1}}"#;
        match Response::parse(v1_status).expect("v1 status") {
            Response::Status(s) => {
                assert_eq!(s.tenant, crate::spec::DEFAULT_TENANT);
                assert_eq!(s.priority, 0);
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }

    #[test]
    fn error_objects_round_trip_and_render_hints() {
        let e = ErrorObj {
            code: "quota_exceeded".to_string(),
            message: "tenant 'acme' is at max_tiles=64".to_string(),
            retry_after_vms: Some(512),
        };
        assert_eq!(ErrorObj::from_json(&e.to_json()), Ok(e.clone()));
        assert_eq!(
            e.to_string(),
            "quota_exceeded: tenant 'acme' is at max_tiles=64 (retry after 512 vms)"
        );
        let plain = ErrorObj::msg("boom");
        assert_eq!(ErrorObj::from_json(&plain.to_json()), Ok(plain.clone()));
        assert_eq!(plain.to_string(), "error: boom");
        // Mistyped objects are diagnostics, not panics.
        assert!(ErrorObj::from_json(&parse_json(r#"{"code":7}"#).unwrap()).is_err());
        assert!(ErrorObj::from_json(&parse_json(r#"{"code":"x"}"#).unwrap()).is_err());
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        for line in [
            "",
            "{",
            "null",
            "42",
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"status"}"#,
            r#"{"cmd":"status","job":-1}"#,
            r#"{"cmd":"status","job":1.5}"#,
            r#"{"cmd":"submit","spec":{},"gds_hex":"zz"}"#,
            r#"{"ok":"yes"}"#,
            r#"{"ok":true}"#,
            r#"{"ok":true,"status":{"id":1}}"#,
            r#"{"ok":true,"events":[{"seq":0,"kind":"meteor"}],"next_seq":1}"#,
            r#"{"ok":true,"events":[{"seq":0,"kind":"retry","tile":1}],"next_seq":1}"#,
            r#"{"ok":true,"events":[{"seq":0,"kind":"quarantine","tile":1,"attempts":3}],"next_seq":1}"#,
            r#"{"ok":true,"events":[{"seq":0,"kind":"cache_hit"}],"next_seq":1}"#,
            r#"{"ok":true,"events":[{"seq":0,"kind":"cache_store"}],"next_seq":1}"#,
            r#"{"ok":true,"events":[{"seq":0,"kind":"score","pass":true}],"next_seq":1}"#,
            r#"{"ok":true,"events":[{"seq":0,"kind":"score","bits":7,"pass":true}],"next_seq":1}"#,
            r#"{"ok":true,"status":{"id":1,"name":"x","state":"done","tiles_total":1,"tiles_done":1,"score_bits":3.5}}"#,
            // Hostile ErrorObj payloads: every mistyped field is a
            // diagnostic, never a panic or a silent default.
            r#"{"ok":false}"#,
            r#"{"ok":false,"error":{}}"#,
            r#"{"ok":false,"error":{"code":"x"}}"#,
            r#"{"ok":false,"error":{"message":"y"}}"#,
            r#"{"ok":false,"error":{"code":7,"message":"y"}}"#,
            r#"{"ok":false,"error":{"code":"x","message":7}}"#,
            r#"{"ok":false,"error":{"code":"x","message":"y","retry_after_vms":-3}}"#,
            r#"{"ok":false,"error":{"code":"x","message":"y","retry_after_vms":1.5}}"#,
            r#"{"ok":false,"error":{"code":"x","message":"y","retry_after_vms":"soon"}}"#,
            r#"{"ok":false,"error":[1,2]}"#,
            r#"{"ok":false,"error":42}"#,
            // Hostile shard frames.
            r#"{"v":2,"cmd":"shard.dispatch"}"#,
            r#"{"v":2,"cmd":"shard.dispatch","coord":9,"origin":1,"gen":0}"#,
            r#"{"v":2,"cmd":"shard.dispatch","origin":1,"gen":0,"spec":{},"gds_hex":""}"#,
            r#"{"v":2,"cmd":"shard.dispatch","coord":9,"origin":-1,"gen":0,"spec":{},"gds_hex":""}"#,
            r#"{"v":2,"cmd":"shard.dispatch","coord":9,"origin":1,"gen":0,"spec":{},"gds_hex":"","ranges":[[1]]}"#,
            r#"{"v":2,"cmd":"shard.dispatch","coord":9,"origin":1,"gen":0,"spec":{},"gds_hex":"","ranges":[[1,2,3]]}"#,
            r#"{"v":2,"cmd":"shard.dispatch","coord":9,"origin":1,"gen":0,"spec":{},"gds_hex":"","ranges":[["a","b"]]}"#,
            r#"{"v":2,"cmd":"shard.dispatch","coord":9,"origin":1,"gen":0,"spec":{},"gds_hex":"","ranges":7}"#,
            r#"{"v":2,"cmd":"shard.attach","origin":1,"gen":0}"#,
            r#"{"v":2,"cmd":"shard.attach","coord":9,"origin":1}"#,
            r#"{"v":2,"cmd":"shard.attach","coord":9,"gen":0}"#,
            r#"{"v":2,"cmd":"shard.pull"}"#,
            r#"{"v":2,"cmd":"shard.pull","job":1,"since":-4}"#,
            // Hostile shard responses.
            r#"{"v":2,"ok":true,"attached":"yes","job":1,"total":2,"ranges":[]}"#,
            r#"{"v":2,"ok":true,"attached":true,"job":1,"total":2}"#,
            r#"{"v":2,"ok":true,"attached":true,"job":1,"ranges":[],"total":-2}"#,
            r#"{"v":2,"ok":true,"outcomes":7,"next":0,"settled":false}"#,
            r#"{"v":2,"ok":true,"outcomes":[{"tile":0}],"next":1,"settled":false}"#,
            r#"{"v":2,"ok":true,"outcomes":[{"tile":0,"done":{}}],"next":1,"settled":false}"#,
            r#"{"v":2,"ok":true,"outcomes":[{"tile":0,"done":{"data":"zz","ckpt_degraded":false,"cache":"none"}}],"next":1,"settled":false}"#,
            r#"{"v":2,"ok":true,"outcomes":[{"tile":0,"done":{"data":"","ckpt_degraded":false,"cache":"warm"}}],"next":1,"settled":false}"#,
            r#"{"v":2,"ok":true,"outcomes":[{"tile":0,"retries":[{"attempt":0}],"quarantined":{"attempts":1,"reason":"r"}}],"next":1,"settled":false}"#,
            r#"{"v":2,"ok":true,"outcomes":[{"tile":0,"quarantined":{"attempts":1}}],"next":1,"settled":false}"#,
            r#"{"v":2,"ok":true,"outcomes":[],"next":0}"#,
            // Malformed resume cursors (`from_seq`).
            r#"{"cmd":"events","job":1,"since":-2}"#,
            r#"{"cmd":"events","job":1,"since":1.5}"#,
            r#"{"v":2,"cmd":"events","job":1,"since":"last"}"#,
            r#"{"v":2,"cmd":"shard.pull","job":1,"since":[0]}"#,
            // Malformed idempotency keys.
            r#"{"v":2,"cmd":"submit","spec":{},"gds_hex":"","idem":7}"#,
            r#"{"v":2,"cmd":"submit","spec":{},"gds_hex":"","idem":["k"]}"#,
            // Truncated / mistyped drain frames.
            r#"{"v":2,"cmd":"shutdown","drain":"yes"}"#,
            r#"{"v":2,"cmd":"shutdown","drain":1}"#,
            r#"{"v":2,"ok":true,"outcomes":[],"next":0,"settled":false,"draining":"no"}"#,
            // Truncated heartbeat frames, both directions.
            r#"{"v":2,"cmd":"shard.heartbeat"}"#,
            r#"{"v":2,"cmd":"shard.heartbeat","job":-1}"#,
            r#"{"v":2,"ok":true,"alive":true}"#,
            r#"{"v":2,"ok":true,"alive":true,"settled":true}"#,
            r#"{"v":2,"ok":true,"alive":true,"settled":true,"draining":"soon"}"#,
        ] {
            assert!(Request::parse(line).is_err() || Response::parse(line).is_err(), "{line}");
        }
    }

    #[test]
    fn v2_extensions_are_refused_in_v1_dialect() {
        // A v1 client has no words for drain, idempotency keys, or
        // heartbeats: smuggling them in an unversioned frame is an
        // error, never a silent downgrade.
        let drain = Request::Shutdown { drain: true };
        let err = Request::parse_versioned(&drain.body_json().render())
            .expect_err("v1 drain frame");
        assert!(err.contains("protocol v2"), "{err}");
        // A plain v1 shutdown still parses (dialect unchanged).
        assert_eq!(
            Request::parse_versioned(r#"{"cmd":"shutdown"}"#),
            Ok((Request::Shutdown { drain: false }, 1))
        );
        let idem = Request::Submit {
            spec: JobSpec::default(),
            gds: vec![],
            idem: Some("k".to_string()),
        };
        let err = Request::parse_versioned(&idem.body_json().render())
            .expect_err("v1 idem frame");
        assert!(err.contains("protocol v2"), "{err}");
        let hb = Request::ShardHeartbeat { job: 1 };
        let err =
            Request::parse_versioned(&hb.body_json().render()).expect_err("v1 heartbeat");
        assert!(err.contains("protocol v2"), "{err}");
        // Duplicate idempotency keys are a service-level dedupe, but a
        // duplicate key in one frame is just JSON: last value wins in
        // the parser, and an unknown key shape is an error above.
        let dup = r#"{"v":2,"cmd":"submit","spec":{},"gds_hex":"","idem":"a","idem":"b"}"#;
        match Request::parse(dup) {
            Ok(Request::Submit { idem, .. }) => {
                assert!(idem.is_some(), "a duplicated key still yields a key")
            }
            Ok(other) => panic!("unexpected frame: {other:?}"),
            Err(_) => {} // a parser that refuses duplicates is also fine
        }
    }

    #[test]
    fn absent_draining_defaults_false_for_pre_drain_servers() {
        let line = r#"{"v":2,"ok":true,"outcomes":[],"next":4,"settled":true}"#;
        assert_eq!(
            Response::parse(line),
            Ok(Response::ShardOutcomes {
                outcomes: vec![],
                next: 4,
                settled: true,
                draining: false
            })
        );
    }

    #[test]
    fn shard_frames_are_v2_only() {
        // The same shard frame: accepted with "v":2, refused bare (v1).
        let v2 = Request::ShardAttach { coord: 9, origin: 1, gen: 0 };
        let line = v2.to_json().render();
        assert_eq!(Request::parse_versioned(&line), Ok((v2.clone(), 2)));
        let v1_line = v2.body_json().render();
        let err = Request::parse_versioned(&v1_line).expect_err("v1 shard frame");
        assert!(err.contains("protocol v2"), "{err}");
        for cmd in ["shard.dispatch", "shard.pull"] {
            let line = format!(
                r#"{{"cmd":"{cmd}","coord":9,"origin":1,"gen":0,"job":1,"spec":{{}},"gds_hex":""}}"#
            );
            assert!(Request::parse_versioned(&line).is_err(), "{line}");
        }
    }

    #[test]
    fn all_job_states_survive_the_wire() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Partial,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::from_name(state.name()), Some(state));
            let resp = Response::Status(JobStatus { state, ..sample_status() });
            assert_eq!(Response::parse(&resp.to_json().render()), Ok(resp));
        }
    }
}
