//! Score-guided auto-fix: a greedy search over the workspace's DFM
//! techniques that keeps an edit only when it strictly improves the
//! manufacturability score.
//!
//! The loop is deliberately simple — candidates are tried in a fixed
//! order (redundant-via insertion, wire spreading on M1 and M2, wire
//! widening), each applied to the best layout so far, and a candidate
//! survives only if the re-scored flat layout beats the incumbent.
//! Determinism falls out of the techniques themselves (all pure) and
//! the fixed order: the same input bytes always yield the same output
//! bytes.
//!
//! The cache-friendliness contract: when **no** candidate improves the
//! score, [`auto_fix`] returns the *original GDS bytes verbatim*, not
//! a re-serialisation. Resubmitting the outcome through a cache-armed
//! [`crate::SignoffService`] then hits the content-addressed tile
//! cache on every tile — a no-op fix recomputes nothing. When fixes
//! do land, only the tiles whose content digests actually changed go
//! back to the pool.

use crate::scoring::score_flat_layout;
use crate::spec::JobSpec;
use dfm_core::{
    DfmTechnique, EvaluationContext, RedundantViaInsertion, WireSpreading, WireWidening,
};
use dfm_layout::{gds, layers};
use dfm_score::ScoreReport;

/// The result of an auto-fix pass: the (possibly unchanged) layout
/// plus the score evidence for what happened.
#[derive(Clone, Debug)]
pub struct FixOutcome {
    /// Output layout, GDS-serialised. Byte-identical to the input when
    /// [`FixOutcome::changed`] is false.
    pub gds: Vec<u8>,
    /// Names of the techniques that survived the score gate, in
    /// application order.
    pub applied: Vec<String>,
    /// Per-technique notes from the kept applications.
    pub notes: Vec<String>,
    /// Total edits made by the kept applications.
    pub edits: usize,
    /// Whether any technique was kept (and hence the bytes differ).
    pub changed: bool,
    /// Score of the input layout.
    pub score_before: ScoreReport,
    /// Score of the output layout. Equal to `score_before` when
    /// nothing was kept; strictly greater otherwise.
    pub score_after: ScoreReport,
}

impl FixOutcome {
    /// Aggregate score improvement (`after - before`); 0.0 for a no-op.
    pub fn delta(&self) -> f64 {
        self.score_after.score - self.score_before.score
    }
}

/// Runs the greedy fix search on a GDS payload under a job spec.
///
/// Candidates (fixed order):
///
/// 1. [`RedundantViaInsertion::for_technology`] — doubles single-cut
///    vias where a partner fits,
/// 2. [`WireSpreading`] on METAL1, then METAL2 — nudges via-free wire
///    components apart where clearance strictly improves,
/// 3. [`WireWidening`] — grows minimum-width wires where no spacing
///    rule is violated by the growth.
///
/// Each candidate is applied to the best layout found so far and kept
/// only when the re-scored layout is **strictly** better, so the
/// resulting score is monotonically non-decreasing and the loop cannot
/// oscillate.
///
/// # Errors
///
/// GDS parse/serialise failures and spec validation.
pub fn auto_fix(spec: &JobSpec, gds_bytes: &[u8]) -> Result<FixOutcome, String> {
    let lib = gds::from_bytes(gds_bytes).map_err(|e| format!("gds parse: {e}"))?;
    let tech = spec.technology()?;
    let mut flat = lib.flatten_top().map_err(|e| format!("flatten: {e}"))?;
    let report = crate::report::flat_layout_report(spec, &flat)?;
    let score_before = score_flat_layout(spec, &flat, &report)?;
    let mut best = score_before.clone();

    let ctx = EvaluationContext::for_technology(tech.clone());
    let m2_spread = WireSpreading {
        layer: layers::METAL2,
        ..WireSpreading::from_context(&ctx)
    };
    let candidates: Vec<Box<dyn DfmTechnique>> = vec![
        Box::new(RedundantViaInsertion::for_technology(&tech)),
        Box::new(WireSpreading::from_context(&ctx)),
        Box::new(m2_spread),
        Box::new(WireWidening::from_context(&ctx)),
    ];

    let mut applied = Vec::new();
    let mut notes = Vec::new();
    let mut edits = 0;
    for technique in &candidates {
        let result = technique.apply(&flat, &tech);
        if result.edits == 0 {
            continue;
        }
        let cand_report = crate::report::flat_layout_report(spec, &result.layout)?;
        let cand_score = score_flat_layout(spec, &result.layout, &cand_report)?;
        if cand_score.score > best.score {
            flat = result.layout;
            best = cand_score;
            applied.push(technique.name().to_string());
            notes.extend(result.notes);
            edits += result.edits;
        }
    }

    let changed = !applied.is_empty();
    let out = if changed {
        let fixed = flat.to_library("fixed", "TOP");
        gds::to_bytes(&fixed).map_err(|e| format!("gds serialise: {e}"))?
    } else {
        // Verbatim input bytes: a no-op fix must resubmit with every
        // tile content digest unchanged, i.e. a fully warm cache.
        gds_bytes.to_vec()
    };
    Ok(FixOutcome {
        gds: out,
        applied,
        notes,
        edits,
        changed,
        score_before,
        score_after: best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_layout::{generate, Technology};

    fn scoring_spec() -> JobSpec {
        JobSpec {
            tile: 1700,
            halo: 64,
            litho_layer: Some(layers::METAL1),
            score: Some("default".to_string()),
            ..JobSpec::default()
        }
    }

    fn routed_gds(seed: u64) -> Vec<u8> {
        let tech = Technology::n65();
        let params = generate::RoutedBlockParams {
            width: 6_000,
            height: 6_000,
            ..Default::default()
        };
        let lib = generate::routed_block(&tech, params, seed);
        gds::to_bytes(&lib).expect("serialise")
    }

    #[test]
    fn fix_improves_score_on_seeded_layout() {
        let bytes = routed_gds(11);
        let spec = scoring_spec();
        let outcome = auto_fix(&spec, &bytes).expect("fix");
        assert!(outcome.changed, "expected at least one kept technique");
        assert!(!outcome.applied.is_empty());
        assert!(outcome.edits > 0);
        assert!(
            outcome.score_after.score > outcome.score_before.score,
            "after {} !> before {}",
            outcome.score_after.score,
            outcome.score_before.score
        );
        assert!(outcome.delta() > 0.0);
        assert_ne!(outcome.gds, bytes);
    }

    #[test]
    fn fix_is_deterministic() {
        let bytes = routed_gds(12);
        let spec = scoring_spec();
        let a = auto_fix(&spec, &bytes).expect("a");
        let b = auto_fix(&spec, &bytes).expect("b");
        assert_eq!(a.gds, b.gds);
        assert_eq!(a.applied, b.applied);
        assert_eq!(a.score_after.render(), b.score_after.render());
    }

    #[test]
    fn no_op_fix_returns_input_bytes_verbatim() {
        // A score spec that is already saturated at 1.0 (zero-weight
        // everything except an identity floor that is already met)
        // leaves no room for strict improvement, so nothing is kept
        // and the input bytes come back untouched.
        let bytes = routed_gds(13);
        let spec = JobSpec {
            score: Some("pass 0.0\nmetric litho.area_ratio weight 0 scorer identity".to_string()),
            ..scoring_spec()
        };
        let outcome = auto_fix(&spec, &bytes).expect("fix");
        assert!(!outcome.changed);
        assert!(outcome.applied.is_empty());
        assert_eq!(outcome.edits, 0);
        assert_eq!(outcome.gds, bytes, "no-op must preserve exact bytes");
        assert_eq!(outcome.delta(), 0.0);
    }
}
