//! Wire plumbing: a JSON parser over [`dfm_bench::json::JsonValue`],
//! bounded line framing, hex payload transport, and the FNV-1a digest
//! the checkpoint files and report digests share.
//!
//! The parser is the read half of the workspace's hand-rolled JSON
//! story (the write half lives in [`dfm_bench::json`]). It is total:
//! any byte soup returns `Err`, never a panic — fuzzed in the wire
//! protocol tests.

use dfm_bench::json::JsonValue;
use std::io::BufRead;

/// Maximum accepted request/response line, bytes. Big enough for a
/// multi-megabyte hex GDS upload, small enough to bound a hostile
/// connection's memory.
pub const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// Maximum JSON nesting depth the parser follows.
const MAX_DEPTH: usize = 64;

/// Parses one JSON document (object/array/scalar) from `s`.
///
/// # Errors
///
/// A human-readable message with a byte offset; never panics, at any
/// input.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at offset {}", self.pos));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected byte 0x{c:02x} at offset {}", self.pos)),
            None => Err(format!("unexpected end of input at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("non-utf8 number at offset {start}"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at offset {start}"))?;
        if n.is_finite() {
            Ok(JsonValue::Num(n))
        } else {
            Err(format!("non-finite number at offset {start}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar (input is &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("non-utf8 string at offset {}", self.pos))?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at offset {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        // self.pos is at the 'u'.
        let hex_at = |p: &Parser<'a>, at: usize| -> Result<u32, String> {
            let h = p
                .bytes
                .get(at..at + 4)
                .and_then(|b| std::str::from_utf8(b).ok())
                .ok_or_else(|| format!("truncated \\u escape at offset {}", at))?;
            u32::from_str_radix(h, 16).map_err(|_| format!("bad \\u escape at offset {at}"))
        };
        let u1 = hex_at(self, self.pos + 1)?;
        self.pos += 5;
        if (0xd800..0xdc00).contains(&u1) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.bytes.get(self.pos) == Some(&b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                let u2 = hex_at(self, self.pos + 2)?;
                if (0xdc00..0xe000).contains(&u2) {
                    self.pos += 6;
                    let cp = 0x10000 + ((u1 - 0xd800) << 10) + (u2 - 0xdc00);
                    return char::from_u32(cp).ok_or_else(|| "bad surrogate pair".to_string());
                }
            }
            return Err("lone high surrogate".to_string());
        }
        char::from_u32(u1).ok_or_else(|| "bad \\u codepoint".to_string())
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value(depth + 1)?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            let v = self.value(depth + 1)?;
            items.push(v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }
}

/// Reads one `\n`-terminated frame, rejecting lines longer than
/// `max_bytes`. Returns `Ok(None)` on a clean EOF before any byte.
/// Handles partial reads by construction ([`BufRead::fill_buf`] loops
/// until the delimiter arrives).
///
/// # Errors
///
/// `Err` on I/O failure, an over-long line, or EOF mid-line.
pub fn read_frame(reader: &mut impl BufRead, max_bytes: usize) -> Result<Option<String>, String> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf().map_err(|e| format!("read: {e}"))?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err("eof inside frame".to_string())
            };
        }
        let take = buf.iter().position(|&b| b == b'\n');
        match take {
            Some(i) => {
                if line.len() + i > max_bytes {
                    return Err(format!("frame longer than {max_bytes} bytes"));
                }
                line.extend_from_slice(&buf[..i]);
                reader.consume(i + 1);
                let s = String::from_utf8(line).map_err(|_| "frame is not utf-8".to_string())?;
                return Ok(Some(s));
            }
            None => {
                let n = buf.len();
                if line.len() + n > max_bytes {
                    // Drain what we can see, then refuse: the caller
                    // closes the connection, bounding memory.
                    return Err(format!("frame longer than {max_bytes} bytes"));
                }
                line.extend_from_slice(buf);
                reader.consume(n);
            }
        }
    }
}

/// Hex-encodes binary payloads (GDS uploads) for the JSON transport.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    s
}

/// Decodes [`to_hex`] output.
///
/// # Errors
///
/// On odd length or a non-hex digit.
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err("hex payload has odd length".to_string());
    }
    let nib = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("bad hex digit 0x{c:02x}")),
        }
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nib(pair[0])? << 4) | nib(pair[1])?);
    }
    Ok(out)
}

/// FNV-1a 64-bit digest — checkpoint checksums and report digests.
/// (Same algorithm as the test harness's golden digests, restated here
/// so the runtime crate has no dev-only dependency.)
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_what_the_writer_renders() {
        let doc = JsonValue::obj([
            ("cmd", JsonValue::str("submit")),
            ("n", JsonValue::Num(42.0)),
            ("frac", JsonValue::Num(-0.125)),
            ("flag", JsonValue::Bool(false)),
            ("null", JsonValue::Null),
            (
                "arr",
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::str("x\"y\n")]),
            ),
        ]);
        let parsed = parse_json(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn rejects_garbage_with_errors_not_panics() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\"", "{\"a\":}", "tru", "nul", "1e999", "\"\\q\"",
            "\"unterminated", "{\"a\":1}x", "\"\\ud800\"", "01e", "--3",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_is_an_error() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&deep).is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            parse_json("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            JsonValue::str("Aé😀")
        );
    }

    #[test]
    fn frames_split_on_newlines() {
        let mut r = BufReader::new(&b"one\ntwo\n"[..]);
        assert_eq!(read_frame(&mut r, 100).unwrap(), Some("one".to_string()));
        assert_eq!(read_frame(&mut r, 100).unwrap(), Some("two".to_string()));
        assert_eq!(read_frame(&mut r, 100).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut r = BufReader::new(&b"aaaaaaaaaaaaaaaaaaaa\n"[..]);
        assert!(read_frame(&mut r, 8).is_err());
    }

    #[test]
    fn one_byte_at_a_time_reader_still_frames() {
        struct OneByte<'a>(&'a [u8]);
        impl std::io::Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut r = BufReader::with_capacity(1, OneByte(b"hello world\n"));
        assert_eq!(
            read_frame(&mut r, 100).unwrap(),
            Some("hello world".to_string())
        );
    }

    #[test]
    fn hex_round_trips() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a 64 of empty input is the offset basis.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a_64(b"a"), fnv1a_64(b"b"));
    }
}
