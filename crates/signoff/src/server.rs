//! The TCP front-end: one [`Server`] wraps a [`SignoffService`] and
//! speaks the line-delimited JSON protocol of [`crate::proto`] on a
//! loopback listener (`std::net` only — no async runtime, one thread
//! per connection, which is plenty for a signoff queue's fan-in).

use crate::codec::{read_frame, MAX_LINE_BYTES};
use crate::proto::{ErrorObj, Request, Response, PROTO_VERSION};
use crate::service::{SignoffService, SubmitError};
use dfm_fault::FaultPlane;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Fault site: a server response write. Keyed by connection id (accept
/// order); `attempt` is the frame index on that connection. A firing
/// `Drop` rule tears the frame mid-line and slams the socket shut —
/// the client sees a torn frame, the server keeps serving everyone
/// else.
pub const SITE_SERVER_WRITE: &str = "server.write";

/// A listening signoff server. Bind, then [`Server::serve`] until a
/// client sends `shutdown`.
pub struct Server {
    listener: TcpListener,
    service: Arc<SignoffService>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds to `127.0.0.1:port` (`port = 0` picks an ephemeral port;
    /// read it back with [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Socket diagnostics.
    pub fn bind(service: Arc<SignoffService>, port: u16) -> Result<Server, String> {
        let listener = TcpListener::bind(("127.0.0.1", port))
            .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
        Ok(Server { listener, service, shutdown: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (cannot happen after
    /// a successful bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Accepts and serves connections until a `shutdown` frame
    /// arrives. Each connection gets its own thread; requests on one
    /// connection are handled in order.
    ///
    /// # Errors
    ///
    /// Accept-loop diagnostics.
    pub fn serve(&self) -> Result<(), String> {
        let addr = self.local_addr();
        for (conn_id, conn) in (0_u64..).zip(self.listener.incoming()) {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn.map_err(|e| format!("accept: {e}"))?;
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&self.shutdown);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &service, &shutdown, addr, conn_id);
            });
        }
        Ok(())
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &SignoffService,
    shutdown: &AtomicBool,
    addr: SocketAddr,
    conn_id: u64,
) -> std::io::Result<()> {
    let plane = service.fault_plane().cloned();
    let mut writer = stream.try_clone()?;
    let mut frame: u64 = 0;
    let mut write = |writer: &mut TcpStream, response: &Response, version: u64| {
        let this_frame = frame;
        frame += 1;
        write_response(writer, plane.as_ref(), conn_id, this_frame, response, version)
    };
    let mut reader = BufReader::new(stream);
    // Each response is framed in the dialect of the request it answers
    // (v1 peers hear v1 shapes). Until a request parses, fall back to
    // the last version spoken on this connection -- v1 at first, since
    // its error shape is the one both generations can read.
    let mut version = 1;
    loop {
        let line = match read_frame(&mut reader, MAX_LINE_BYTES) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()), // clean disconnect
            Err(e) => {
                // Framing violation (oversized line, torn frame,
                // bad UTF-8): answer once, then drop the connection.
                let error = ErrorObj { code: "bad_request".to_string(), message: e, retry_after_vms: None };
                write(&mut writer, &Response::Error { error }, version)?;
                return Ok(());
            }
        };
        let request = match Request::parse_versioned(&line) {
            Ok((r, v)) => {
                version = v;
                r
            }
            Err(e) => {
                let error = ErrorObj { code: "bad_request".to_string(), message: e, retry_after_vms: None };
                write(&mut writer, &Response::Error { error }, version)?;
                continue;
            }
        };
        let stop = matches!(request, Request::Shutdown { .. });
        let response = handle_request(service, request);
        if stop {
            // Latch shutdown before answering, so a dropped (injected
            // or real) response write cannot strand a stopping server.
            // For a drain, handle_request already parked every job and
            // waited the pool idle before we get here.
            shutdown.store(true, Ordering::SeqCst);
        }
        let wrote = write(&mut writer, &response, version);
        if stop {
            // Unblock the accept loop so serve() can return.
            let _ = TcpStream::connect(addr);
            return Ok(());
        }
        wrote?;
    }
}

fn handle_request(service: &SignoffService, request: Request) -> Response {
    let result = match request {
        Request::Ping => Ok(Response::Pong),
        Request::Submit { spec, gds, idem } => service
            .submit_job_idem(spec, gds, idem.as_deref())
            .map(|job| Response::Submitted { job })
            .map_err(|e| match e {
                // A spec/GDS diagnostic is the client's fault; an
                // admission refusal carries its typed code and, for
                // backpressure, the deterministic retry hint.
                SubmitError::Invalid(message) => ErrorObj {
                    code: "bad_request".to_string(),
                    message,
                    retry_after_vms: None,
                },
                SubmitError::Rejected(r) => ErrorObj::from(r),
            }),
        Request::Status { job } => service.status(job).map(Response::Status).map_err(classify),
        Request::Events { job, since } => service
            .events(job, since)
            .map(|events| {
                let next_seq = events.last().map_or(since, |e| e.seq + 1);
                Response::Events { events, next_seq }
            })
            .map_err(classify),
        Request::Results { job, partial } => service
            .report_text(job, partial)
            .map(|(status, report_text)| Response::Results { status, report_text })
            .map_err(classify),
        Request::Score { job } => service
            .score_json(job)
            .map(|(status, score_json)| Response::Score { status, score_json })
            .map_err(classify),
        Request::Cancel { job } => service.cancel(job).map(Response::Status).map_err(classify),
        Request::Resume { job } => service.resume(job).map(Response::Status).map_err(classify),
        Request::List => Ok(Response::List { jobs: service.list() }),
        Request::Shutdown { drain } => {
            if drain {
                // Stop admitting, finish/checkpoint in-flight tiles,
                // run the pool idle — only then acknowledge, so the
                // client's ack means the durable state is complete.
                service.begin_drain();
            }
            Ok(Response::ShuttingDown)
        }
        Request::ShardDispatch { coord, origin, gen, spec, gds, ranges } => service
            .shard_dispatch(coord, origin, gen, spec, gds, ranges)
            .map(|grant| Response::ShardDispatched { grant })
            .map_err(classify),
        Request::ShardAttach { coord, origin, gen } => service
            .shard_attach(coord, origin, gen)
            .map(|grant| Response::ShardDispatched { grant })
            .map_err(classify),
        Request::ShardPull { job, since } => service
            .shard_outcomes(job, since)
            .map(|(outcomes, next, settled, draining)| Response::ShardOutcomes {
                outcomes,
                next,
                settled,
                draining,
            })
            .map_err(classify),
        Request::ShardHeartbeat { job } => service
            .shard_heartbeat(job)
            .map(|(settled, draining)| Response::ShardAlive { settled, draining })
            .map_err(classify),
    };
    result.unwrap_or_else(|error| Response::Error { error })
}

/// Wraps a service diagnostic in the error code it implies. The only
/// string shape the service guarantees is the unknown-id prefix; all
/// other diagnostics keep the catch-all code.
fn classify(message: String) -> ErrorObj {
    let code = if message.starts_with("no such job") { "not_found" } else { "error" };
    ErrorObj { code: code.to_string(), message, retry_after_vms: None }
}

fn write_response(
    writer: &mut TcpStream,
    plane: Option<&Arc<FaultPlane>>,
    conn: u64,
    frame: u64,
    response: &Response,
    version: u64,
) -> std::io::Result<()> {
    debug_assert!((1..=PROTO_VERSION).contains(&version));
    let mut line = response.to_json_for(version).render();
    line.push('\n');
    if let Some(plane) = plane {
        if plane.should_drop(SITE_SERVER_WRITE, conn, frame) {
            // Tear the frame mid-line: ship half the bytes, then slam
            // the socket shut in both directions. The client observes
            // an interrupted frame; this connection is done.
            let half = &line.as_bytes()[..line.len() / 2];
            let _ = writer.write_all(half);
            let _ = writer.flush();
            let _ = writer.shutdown(std::net::Shutdown::Both);
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "injected socket drop",
            ));
        }
    }
    writer.write_all(line.as_bytes())?;
    writer.flush()
}
