//! The job store and scheduler: states, per-tile progress, monotonic
//! event sequences, incremental results, checkpoint/resume, and
//! supervised retry/quarantine.
//!
//! One [`SignoffService`] owns one persistent [`WorkerPool`]. A
//! submitted job decomposes into `tile_count` independent attempts;
//! each attempt computes its [`TilePartial`] (pure), checkpoints it
//! (when a checkpoint root is configured), and hands the outcome to
//! the supervisor. A failed attempt (panic, injected fault, virtual
//! watchdog timeout) is retried up to [`SupervisionPolicy::max_attempts`]
//! times with deterministic virtual-clock backoff; a tile that
//! exhausts its budget is **quarantined** and the job still settles —
//! as [`JobState::Partial`] with an explicit quarantined-tile manifest
//! in the report, never a bare `Failed`.
//!
//! ## Determinism under faults
//!
//! Fault decisions are pure functions of `(plan seed, site, tile,
//! attempt)` (see `dfm-fault`), so *which* attempts fail never depends
//! on scheduling. Event emission is **committed in tile order**: each
//! tile's outcome (its retries, then its `TileDone` or
//! `TileQuarantined`) is buffered until every lower-indexed dispatched
//! tile has resolved, so the full event stream — not just the report
//! bytes — is identical at any worker count. Backoff is virtual
//! milliseconds (bookkeeping the events record), not wall time, so
//! retries cost nothing and reproduce exactly.
//!
//! ## Result cache
//!
//! When [`ServiceConfig::cache`] holds a [`TileCache`], dispatch
//! consults it **before** submitting anything to the pool: a tile whose
//! content-addressed key (see [`JobContext::cache_key`]) already maps
//! to a stored partial is committed straight from the cache — emitting
//! [`JobEventKind::TileCacheHit`] ahead of its `TileDone` — and never
//! reaches a worker. Misses compute as usual and, on a clean first
//! attempt, store their encoded partial back
//! ([`JobEventKind::TileCacheStore`]). Retried or quarantined tiles are
//! never cached, and cache reads/writes are fault-injectable
//! ([`SITE_CACHE_READ`]/[`SITE_CACHE_WRITE`]); every cache failure mode
//! degrades to a recompute, never to wrong bytes.

use crate::checkpoint::{decode_tile_partial, encode_tile_partial, list_job_dirs, JobDir};
use crate::job::{JobContext, TilePartial};
use crate::report::{QuarantinedTile, SignoffReport};
use crate::sched::{Grant, GrantOut, RejectCode, Rejection, SchedConfig, Scheduler};
use crate::shard::{
    self, ShardGrant, ShardSet, ShardStats, TileCacheMark, TileOutcome, TileOutcomeKind,
};
use crate::spec::JobSpec;
use dfm_cache::{StoreStage, TileCache};
use dfm_fault::FaultPlane;
use dfm_par::{CancelToken, PoolStats, TaskOutcome, WorkerPool};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

/// Environment variable (milliseconds) that slows every tile task
/// down. A test/CI hook: it widens the window in which a kill or
/// cancel lands mid-job, without touching any result bytes.
pub const TILE_DELAY_ENV: &str = "DFM_SIGNOFF_TILE_DELAY_MS";

/// Fault site: panic inside a tile attempt's containment boundary.
/// Keyed by tile index; `attempt` is the attempt number.
pub const SITE_TILE_COMPUTE: &str = "signoff.tile.compute";

/// Fault site: virtual delay of a tile attempt. Keyed by tile index.
/// A delay at or past [`SupervisionPolicy::watchdog_vms`] fails the
/// attempt as a watchdog timeout (cancel + requeue).
pub const SITE_TILE_DELAY: &str = "signoff.tile.delay";

/// Fault site: checkpoint tile write, keyed by tile index; `attempt`
/// is the write-retry number.
pub const SITE_CKPT_WRITE: &str = "signoff.ckpt.write";

/// Fault site: checkpoint tile read at load time, keyed by tile index.
/// An injected error skips the tile, which is then recomputed.
pub const SITE_CKPT_READ: &str = "signoff.ckpt.read";

/// Fault site: result-cache lookup at dispatch, keyed by tile index.
/// An injected error turns the probe into a miss — the tile is
/// recomputed, bytes unchanged.
pub const SITE_CACHE_READ: &str = "signoff.cache.read";

/// Fault site: result-cache store after a clean first attempt, keyed
/// by tile index. An injected error skips the store silently (the next
/// identical submission recomputes the tile). An `err_nospace` rule
/// here models a full disk: the store is refused without retry and the
/// job continues unharmed.
pub const SITE_CACHE_WRITE: &str = "signoff.cache.write";

/// Crash site: cache-store tmp file durable, rename not yet done.
/// Keyed by tile index.
pub const SITE_CACHE_STORE_TMP: &str = "signoff.cache.store.tmp";

/// Crash site: cache entry renamed into place, store never
/// acknowledged. Keyed by tile index.
pub const SITE_CACHE_STORE_RENAME: &str = "signoff.cache.store.rename";

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, tasks not yet dispatched.
    Queued,
    /// Tile tasks are dispatched to the pool.
    Running,
    /// Holds a subset of tiles and is not running: loaded from a
    /// checkpoint after a restart (awaiting `resume`), or **settled**
    /// with quarantined tiles excluded — in the settled case the
    /// report (with its quarantine manifest) is available, and the job
    /// can still be resumed to retry the quarantined tiles.
    Partial,
    /// All tiles merged; final report available.
    Done,
    /// The merge itself failed; diagnostic recorded. Tile failures
    /// never produce this state — they retry and then quarantine.
    Failed,
    /// Cancelled by request; completed tiles are kept for `resume`.
    Cancelled,
}

impl JobState {
    /// True for states no event can follow (except via `resume`).
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }

    /// True once the job has stopped making progress on its own —
    /// every state except `Queued`/`Running`. This is what `wait`
    /// blocks on: a `Partial`-settled job (quarantined tiles) is a
    /// finished job with a report, not one worth waiting longer for.
    pub fn is_settled(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }

    /// Stable lower-case name used on the wire.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Partial => "partial",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses [`JobState::name`] back.
    pub fn from_name(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "partial" => JobState::Partial,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What an event records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobEventKind {
    /// The job entered a new state.
    State(JobState),
    /// A tile completed.
    TileDone {
        /// The completed tile's index.
        tile: usize,
        /// Tiles completed so far (including this one).
        completed: usize,
        /// Total tiles in the job.
        total: usize,
    },
    /// A tile attempt failed and will be retried.
    TileRetry {
        /// The tile being retried.
        tile: usize,
        /// The failed attempt (0-based).
        attempt: u64,
        /// Deterministic virtual-clock backoff before the next
        /// attempt, virtual milliseconds.
        backoff_vms: u64,
        /// The failure's diagnostic.
        reason: String,
    },
    /// A tile exhausted its attempt budget and was quarantined; its
    /// results are excluded from the job's report.
    TileQuarantined {
        /// The quarantined tile.
        tile: usize,
        /// Failed attempts consumed.
        attempts: u64,
        /// The last failure's diagnostic.
        reason: String,
    },
    /// Every checkpoint-write attempt for this tile failed; the result
    /// is kept in memory (the job continues degraded — a restart would
    /// recompute this tile).
    CkptDegraded {
        /// The tile whose checkpoint write failed.
        tile: usize,
    },
    /// The tile's result was served from the content-addressed cache —
    /// it was never submitted to the pool. Always immediately followed
    /// by the tile's `TileDone`.
    TileCacheHit {
        /// The tile served from cache.
        tile: usize,
    },
    /// The tile's freshly computed result was stored into the cache
    /// (clean first attempt only). Always immediately followed by the
    /// tile's `TileDone`.
    TileCacheStore {
        /// The tile whose result was stored.
        tile: usize,
    },
    /// The job's manufacturability score was computed (emitted between
    /// the last tile commit and the final state event, only for jobs
    /// whose spec enables scoring).
    Score {
        /// IEEE-754 bit pattern of the aggregate score (bits, so the
        /// event stream stays `Eq`-comparable and byte-exact).
        bits: u64,
        /// The pass verdict (threshold and floors).
        pass: bool,
    },
}

/// One entry in a job's event log. Sequence numbers are per-job,
/// start at 0, and increase by exactly 1 per event, so a client
/// polling `events(since)` can prove it has seen everything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobEvent {
    /// Monotonic per-job sequence number.
    pub seq: u64,
    /// What happened.
    pub kind: JobEventKind,
}

/// A point-in-time summary of a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobStatus {
    /// Job id (service-wide, monotonically assigned).
    pub id: u64,
    /// The spec's client-chosen name.
    pub name: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Total tiles (0 until the layout is parsed).
    pub tiles_total: usize,
    /// Completed tiles.
    pub tiles_done: usize,
    /// Quarantined tiles (excluded from the report).
    pub tiles_quarantined: usize,
    /// Tiles served from the result cache (subset of `tiles_done`).
    pub tiles_cached: usize,
    /// Next event sequence number (== number of events so far).
    pub next_seq: u64,
    /// Tenant the job is billed to (from the spec; `"default"` when
    /// the client named none).
    pub tenant: String,
    /// Scheduling priority (0 = lowest).
    pub priority: u8,
    /// IEEE-754 bits of the manufacturability score, once computed
    /// (`None` until the job settles, or when scoring is off).
    pub score_bits: Option<u64>,
    /// The score's pass verdict, with the same lifetime as
    /// `score_bits`.
    pub score_pass: Option<bool>,
    /// Failure diagnostic, when `state == Failed`.
    pub error: Option<String>,
}

impl JobStatus {
    /// The manufacturability score as an `f64`, when computed.
    pub fn score(&self) -> Option<f64> {
        self.score_bits.map(f64::from_bits)
    }
}

/// Retry/quarantine/watchdog knobs of the supervisor.
#[derive(Clone, Copy, Debug)]
pub struct SupervisionPolicy {
    /// Per-tile attempt budget; a tile failing this many times is
    /// quarantined (clamped to at least 1).
    pub max_attempts: u64,
    /// Backoff before retrying attempt `k` is `backoff_base_vms << k`
    /// virtual milliseconds (bookkeeping recorded in the retry event,
    /// not wall time — see `real_ms_per_vms`).
    pub backoff_base_vms: u64,
    /// Write attempts per tile checkpoint before degrading to
    /// in-memory-only (clamped to at least 1).
    pub ckpt_write_attempts: u64,
    /// Virtual watchdog budget: an injected tile delay of at least
    /// this many virtual milliseconds fails the attempt as a timeout
    /// (the stuck attempt is abandoned and the tile requeued). `None`
    /// disables the watchdog.
    pub watchdog_vms: Option<u64>,
    /// Real milliseconds actually slept per virtual millisecond of
    /// backoff/delay (capped at 1 s per sleep). 0 — the default —
    /// keeps the virtual clock purely bookkeeping, so fault runs are
    /// fast and exactly reproducible.
    pub real_ms_per_vms: u64,
}

impl Default for SupervisionPolicy {
    fn default() -> SupervisionPolicy {
        SupervisionPolicy {
            max_attempts: 3,
            backoff_base_vms: 8,
            ckpt_write_attempts: 3,
            watchdog_vms: Some(10_000),
            real_ms_per_vms: 0,
        }
    }
}

impl SupervisionPolicy {
    /// Sleeps the real-time equivalent of `vms` virtual milliseconds
    /// (no-op at the default scale of 0).
    fn real_sleep(&self, vms: u64) {
        if self.real_ms_per_vms > 0 {
            let ms = vms.saturating_mul(self.real_ms_per_vms).min(1000);
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// Full construction-time configuration of a [`SignoffService`].
pub struct ServiceConfig {
    /// Worker-pool threads.
    pub threads: usize,
    /// Checkpoint root (None disables persistence).
    pub ckpt_root: Option<PathBuf>,
    /// Artificial per-tile delay (test/CI hook).
    pub tile_delay: Duration,
    /// Fault-injection plane; `None` (the default) makes every fault
    /// probe a no-op.
    pub fault_plane: Option<Arc<FaultPlane>>,
    /// Retry/quarantine/watchdog policy.
    pub policy: SupervisionPolicy,
    /// Content-addressed per-tile result cache; `None` (the default)
    /// disables caching entirely.
    pub cache: Option<Arc<TileCache>>,
    /// Multi-tenant scheduler + admission config. `None` (the
    /// default) is [`SchedConfig::open`]: every tenant admitted at
    /// weight 1, no quotas, unbounded grant window — exactly the
    /// pre-scheduler dispatch behaviour.
    pub sched: Option<SchedConfig>,
    /// Shard role: `Some((k, n))` makes this service shard `k` of `n` —
    /// a `shard.dispatch` frame without explicit ranges runs only the
    /// deterministic partition [`crate::shard::partition_range`]`(t, n,
    /// k)` of the job. `None` (the default) still accepts shard frames
    /// but requires the coordinator to name the ranges.
    pub shard_of: Option<(u64, u64)>,
    /// Coordinator role: shard addresses (`host:port`) to fan every
    /// submitted job out to. Empty (the default) runs jobs locally.
    pub shards: Vec<String>,
}

impl ServiceConfig {
    /// A default config with `threads` workers: no checkpointing, no
    /// delay, no faults, default policy, open scheduler.
    pub fn new(threads: usize) -> ServiceConfig {
        ServiceConfig {
            threads,
            ckpt_root: None,
            tile_delay: Duration::ZERO,
            fault_plane: None,
            policy: SupervisionPolicy::default(),
            cache: None,
            sched: None,
            shard_of: None,
            shards: Vec::new(),
        }
    }

    /// Fluent construction — the front door for anything beyond
    /// `ServiceConfig::new(threads)` field updates.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder { cfg: ServiceConfig::new(1) }
    }
}

/// Builder for [`ServiceConfig`] (see [`ServiceConfig::builder`]).
///
/// Replaces positional/struct-literal construction at call sites that
/// set more than a field or two; every knob defaults to
/// `ServiceConfig::new(1)`.
pub struct ServiceConfigBuilder {
    cfg: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Worker-pool threads.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Checkpoint root directory (enables persistence).
    #[must_use]
    pub fn ckpt_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.cfg.ckpt_root = Some(root.into());
        self
    }

    /// Artificial per-tile delay (test/CI hook).
    #[must_use]
    pub fn tile_delay(mut self, delay: Duration) -> Self {
        self.cfg.tile_delay = delay;
        self
    }

    /// Arm a fault-injection plane.
    #[must_use]
    pub fn fault_plane(mut self, plane: Arc<FaultPlane>) -> Self {
        self.cfg.fault_plane = Some(plane);
        self
    }

    /// Retry/quarantine/watchdog policy.
    #[must_use]
    pub fn policy(mut self, policy: SupervisionPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Arm a content-addressed tile-result cache.
    #[must_use]
    pub fn cache(mut self, cache: Arc<TileCache>) -> Self {
        self.cfg.cache = Some(cache);
        self
    }

    /// Tenant plan: fair-share weights, quotas, grant window.
    #[must_use]
    pub fn sched(mut self, sched: SchedConfig) -> Self {
        self.cfg.sched = Some(sched);
        self
    }

    /// Shard role: own partition `k` of `n` for dispatched jobs.
    #[must_use]
    pub fn shard_of(mut self, k: u64, n: u64) -> Self {
        self.cfg.shard_of = Some((k, n));
        self
    }

    /// Coordinator role: fan submitted jobs out to these shards.
    #[must_use]
    pub fn shards(mut self, addrs: Vec<String>) -> Self {
        self.cfg.shards = addrs;
        self
    }

    /// Finish the configuration.
    #[must_use]
    pub fn build(self) -> ServiceConfig {
        self.cfg
    }
}

/// One recorded (not yet committed) retry of a tile.
#[derive(Clone, Debug)]
struct RetryRecord {
    attempt: u64,
    backoff_vms: u64,
    reason: String,
}

/// How a tile's result interacted with the cache (recorded so the
/// commit path can emit the matching event in order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CacheOutcome {
    /// Served from the cache, never computed.
    Hit,
    /// Computed and stored back into the cache.
    Stored,
    /// Computed; not cached (cache off, store faulted, or retried).
    None,
}

/// A tile's final outcome, buffered until its commit-order turn.
enum TileResolution {
    Done { partial: TilePartial, ckpt_degraded: bool, cache: CacheOutcome },
    Quarantined { attempts: u64, reason: String },
}

struct JobMut {
    spec: JobSpec,
    gds: Vec<u8>,
    ctx: Option<Arc<JobContext>>,
    state: JobState,
    cancel: CancelToken,
    partials: BTreeMap<usize, TilePartial>,
    events: Vec<JobEvent>,
    error: Option<String>,
    report: Option<SignoffReport>,
    score: Option<dfm_score::ScoreReport>,
    /// Attempt currently in flight per dispatched tile.
    attempts: BTreeMap<usize, u64>,
    /// Failed attempts awaiting commit, per tile, in attempt order.
    retry_log: BTreeMap<usize, Vec<RetryRecord>>,
    /// Resolved tiles whose events have not been committed yet.
    pending_commit: BTreeMap<usize, TileResolution>,
    /// Dispatched tiles in commit (ascending index) order; the head
    /// commits as soon as it resolves.
    commit_queue: VecDeque<usize>,
    /// Quarantined tiles: tile → (attempts, last reason).
    quarantined: BTreeMap<usize, (u64, String)>,
    /// Tiles whose committed result came from the cache.
    cached: BTreeSet<usize>,
    /// Monotonic per-tile outcome log, recorded only for
    /// shard-dispatched jobs (`Some` from `shard_dispatch` on): the
    /// stream a coordinator pulls to replay this job's commits.
    outcomes: Option<Vec<TileOutcome>>,
    /// The current shard-dispatch epoch on a coordinating service;
    /// replaced wholesale by each dispatch, so stale pullers detect
    /// supersession by pointer identity.
    shard_run: Option<Arc<crate::shard::ShardRun>>,
}

impl JobMut {
    fn fresh(spec: JobSpec, gds: Vec<u8>, ctx: Option<Arc<JobContext>>, state: JobState) -> JobMut {
        JobMut {
            spec,
            gds,
            ctx,
            state,
            cancel: CancelToken::new(),
            partials: BTreeMap::new(),
            events: Vec::new(),
            error: None,
            report: None,
            score: None,
            attempts: BTreeMap::new(),
            retry_log: BTreeMap::new(),
            pending_commit: BTreeMap::new(),
            commit_queue: VecDeque::new(),
            quarantined: BTreeMap::new(),
            cached: BTreeSet::new(),
            outcomes: None,
            shard_run: None,
        }
    }

    fn emit(&mut self, kind: JobEventKind) {
        let seq = self.events.len() as u64;
        self.events.push(JobEvent { seq, kind });
    }

    fn set_state(&mut self, state: JobState) {
        self.state = state;
        self.emit(JobEventKind::State(state));
    }

    fn tiles_total(&self) -> usize {
        self.ctx.as_ref().map_or(0, |c| c.tile_count())
    }
}

/// Commits resolved tiles strictly along the commit queue: the head
/// tile's buffered retries, then its terminal event. Every event a
/// fixed fault plan produces is therefore emitted in tile order — the
/// same order at any worker count.
fn advance_commits(m: &mut JobMut, total: usize) {
    while let Some(&tile) = m.commit_queue.front() {
        let Some(res) = m.pending_commit.remove(&tile) else { break };
        m.commit_queue.pop_front();
        let retries = m.retry_log.remove(&tile).unwrap_or_default();
        for r in &retries {
            m.emit(JobEventKind::TileRetry {
                tile,
                attempt: r.attempt,
                backoff_vms: r.backoff_vms,
                reason: r.reason.clone(),
            });
        }
        // Shard-dispatched jobs append every commit — retries and all —
        // to the outcome log a coordinator replays byte-identically.
        let outcome_retries: Vec<crate::shard::TileRetry> = retries
            .into_iter()
            .map(|r| crate::shard::TileRetry {
                attempt: r.attempt,
                backoff_vms: r.backoff_vms,
                reason: r.reason,
            })
            .collect();
        match res {
            TileResolution::Done { partial, ckpt_degraded, cache } => {
                if ckpt_degraded {
                    m.emit(JobEventKind::CkptDegraded { tile });
                }
                match cache {
                    CacheOutcome::Hit => {
                        m.cached.insert(tile);
                        m.emit(JobEventKind::TileCacheHit { tile });
                    }
                    CacheOutcome::Stored => m.emit(JobEventKind::TileCacheStore { tile }),
                    CacheOutcome::None => {}
                }
                if let Some(outcomes) = &mut m.outcomes {
                    outcomes.push(TileOutcome {
                        tile,
                        retries: outcome_retries,
                        kind: TileOutcomeKind::Done {
                            data: encode_tile_partial(&partial),
                            ckpt_degraded,
                            cache: match cache {
                                CacheOutcome::Hit => TileCacheMark::Hit,
                                CacheOutcome::Stored => TileCacheMark::Stored,
                                CacheOutcome::None => TileCacheMark::None,
                            },
                        },
                    });
                }
                m.partials.insert(tile, partial);
                let completed = m.partials.len();
                m.emit(JobEventKind::TileDone { tile, completed, total });
            }
            TileResolution::Quarantined { attempts, reason } => {
                if let Some(outcomes) = &mut m.outcomes {
                    outcomes.push(TileOutcome {
                        tile,
                        retries: outcome_retries,
                        kind: TileOutcomeKind::Quarantined { attempts, reason: reason.clone() },
                    });
                }
                m.quarantined.insert(tile, (attempts, reason.clone()));
                m.emit(JobEventKind::TileQuarantined { tile, attempts, reason });
            }
        }
    }
}

pub(crate) struct Job {
    pub(crate) id: u64,
    dir: Option<JobDir>,
    m: Mutex<JobMut>,
    cv: Condvar,
}

impl Job {
    fn status(&self) -> JobStatus {
        let m = self.m.lock().expect("job lock");
        status_of(self, &m)
    }
}

/// Everything a grant needs to become a pool task: cloned into the
/// scheduler per job at enqueue time.
#[derive(Clone)]
struct TileHandle {
    job: Arc<Job>,
    ctx: Arc<JobContext>,
    token: CancelToken,
}

/// The state tile tasks share: a weak pool handle for resubmission
/// (weak, so queued retry closures never keep the pool — and thus
/// themselves — alive), the fault plane, the policy, and the
/// fair-share scheduler (its lock is always taken *after* any job
/// lock is released, never while one is held).
pub(crate) struct RunShared {
    pool: Weak<WorkerPool>,
    pub(crate) plane: Option<Arc<FaultPlane>>,
    pub(crate) policy: SupervisionPolicy,
    tile_delay: Duration,
    cache: Option<Arc<TileCache>>,
    sched: Mutex<Scheduler<TileHandle>>,
}

/// Why [`SignoffService::submit_job`] refused a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The spec or GDS bytes failed validation.
    Invalid(String),
    /// Admission control refused the job (quota, backpressure, or
    /// unknown tenant); nothing was enqueued. Retry after the hint.
    Rejected(Rejection),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Invalid(msg) => write!(f, "{msg}"),
            SubmitError::Rejected(r) => write!(f, "{r}"),
        }
    }
}

/// The signoff job service. See the module docs.
pub struct SignoffService {
    pool: Arc<WorkerPool>,
    shared: Arc<RunShared>,
    jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    ckpt_root: Option<PathBuf>,
    /// Next job id — atomic so two racing submissions can never mint
    /// the same id.
    next_id: AtomicU64,
    /// Shard role: this service's `(k, n)` partition assignment.
    shard_of: Option<(u64, u64)>,
    /// Coordinator role: the shard roster jobs fan out to (`None`
    /// runs jobs locally, the single-process behaviour).
    shards: Option<Arc<ShardSet>>,
    /// Shard-side idempotency map: `(coord, origin, gen)` → the grant
    /// already minted for that dispatch, so a reconnecting or restarted
    /// coordinator re-attaches instead of recomputing. The coordinator
    /// identity in the key keeps two coordinator instances that mint
    /// the same job id from ever colliding on this shard.
    origin_map: Mutex<BTreeMap<(u64, u64, u64), ShardGrant>>,
    /// Set by [`SignoffService::begin_drain`]: the service stops
    /// admitting new submissions and dispatches, parks in-flight jobs,
    /// and advertises the flag on shard pulls so coordinators hand off
    /// instead of adjudicating a loss.
    draining: AtomicBool,
    /// Client idempotency keys (`submit --idem KEY`) → the job id the
    /// key first minted. A resubmission after an ambiguous connection
    /// drop answers with the existing id instead of double-running.
    idem_map: Mutex<BTreeMap<String, u64>>,
}

impl SignoffService {
    /// Creates a service with `threads` pool workers and an optional
    /// checkpoint root. When the root already holds job directories
    /// from an earlier process, they are loaded back in state
    /// [`JobState::Partial`] with their surviving tile set, ready for
    /// [`SignoffService::resume`].
    pub fn new(threads: usize, ckpt_root: Option<PathBuf>) -> SignoffService {
        let tile_delay = std::env::var(TILE_DELAY_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map_or(Duration::ZERO, Duration::from_millis);
        SignoffService::with_config(ServiceConfig { ckpt_root, tile_delay, ..ServiceConfig::new(threads) })
    }

    /// Creates a service from a full [`ServiceConfig`] — the only
    /// constructor that can arm a fault plane, a tenant plan, or a
    /// non-default policy. Build one with [`ServiceConfig::builder`].
    pub fn with_config(cfg: ServiceConfig) -> SignoffService {
        let pool = Arc::new(WorkerPool::with_fault_plane(cfg.threads, cfg.fault_plane.clone()));
        let sched_cfg = cfg.sched.unwrap_or_else(SchedConfig::open);
        // The coordinator identity on shard frames. A checkpointed
        // coordinator derives it from the checkpoint root, so a restart
        // over the same root re-attaches to its shard jobs; an
        // in-memory coordinator (which cannot restart) gets a
        // per-instance id, so its jobs can never collide with another
        // coordinator's on a shared shard.
        // Masked to 53 bits: coordinator ids ride JSON numbers, which
        // are f64 on the wire and must round-trip exactly.
        let coord_id = match &cfg.ckpt_root {
            Some(root) => crate::codec::fnv1a_64(root.to_string_lossy().as_bytes()),
            None => {
                let nanos = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| d.as_nanos() as u64);
                let mut seed = Vec::with_capacity(16);
                seed.extend_from_slice(&u64::from(std::process::id()).to_le_bytes());
                seed.extend_from_slice(&nanos.to_le_bytes());
                crate::codec::fnv1a_64(&seed)
            }
        } & ((1u64 << 53) - 1);
        let shared = Arc::new(RunShared {
            pool: Arc::downgrade(&pool),
            plane: cfg.fault_plane,
            policy: cfg.policy,
            tile_delay: cfg.tile_delay,
            cache: cfg.cache,
            sched: Mutex::new(Scheduler::new(sched_cfg)),
        });
        let service = SignoffService {
            pool,
            shared,
            jobs: Mutex::new(BTreeMap::new()),
            ckpt_root: cfg.ckpt_root,
            next_id: AtomicU64::new(1),
            shard_of: cfg.shard_of,
            shards: if cfg.shards.is_empty() {
                None
            } else {
                Some(Arc::new(ShardSet::new(cfg.shards, coord_id)))
            },
            origin_map: Mutex::new(BTreeMap::new()),
            draining: AtomicBool::new(false),
            idem_map: Mutex::new(BTreeMap::new()),
        };
        service.load_persisted_jobs();
        let last = service.jobs.lock().expect("jobs lock").keys().next_back().copied();
        service.next_id.store(last.map_or(1, |id| id + 1), Ordering::SeqCst);
        service
    }

    /// The fault plane this service consults, if any.
    pub fn fault_plane(&self) -> Option<&Arc<FaultPlane>> {
        self.shared.plane.as_ref()
    }

    /// The result cache this service consults, if any.
    pub fn cache(&self) -> Option<&Arc<TileCache>> {
        self.shared.cache.as_ref()
    }

    fn load_persisted_jobs(&self) {
        let Some(root) = &self.ckpt_root else { return };
        let mut jobs = self.jobs.lock().expect("jobs lock");
        for id in list_job_dirs(root) {
            let dir = JobDir::new(root, id);
            let Ok((spec_json, gds)) = dir.load_submission() else { continue };
            let Ok(spec) = JobSpec::from_json_text(&spec_json) else { continue };
            // The tile set is loaded lazily at resume/results time
            // (it needs the context for the tile count); record the
            // job as Partial so it is visible and resumable.
            let mut m = JobMut::fresh(spec, gds, None, JobState::Partial);
            m.emit(JobEventKind::State(JobState::Partial));
            jobs.insert(id, Arc::new(Job { id, dir: Some(dir), m: Mutex::new(m), cv: Condvar::new() }));
        }
    }

    /// Worker-pool load counters (queue depth, in-flight, peaks).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Submits a job: validates the spec, parses the GDS (malformed
    /// bytes are rejected here with a diagnostic), persists the
    /// submission when checkpointing is on, and dispatches every tile.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] rendered to its message — use
    /// [`SignoffService::submit_job`] when the structured rejection
    /// (code + retry-after hint) matters. Nothing is enqueued on error.
    pub fn submit(&self, spec: JobSpec, gds: Vec<u8>) -> Result<u64, String> {
        self.submit_job(spec, gds).map_err(|e| e.to_string())
    }

    /// Like [`SignoffService::submit`], but admission-control refusals
    /// come back as a structured [`Rejection`] instead of a string.
    ///
    /// The job is admitted against the tenant plan **before** anything
    /// is persisted or enqueued: the tenant must be known (or covered
    /// by a wildcard policy), its `max_jobs`/`max_tiles` quotas must
    /// have room for this job's tile count, and the global
    /// `max_pending_tiles` ceiling must hold. Admitted cache-miss
    /// tiles then flow through the fair-share grant loop rather than
    /// straight into the pool.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for spec/GDS diagnostics,
    /// [`SubmitError::Rejected`] from admission control. Nothing is
    /// enqueued on error.
    pub fn submit_job(&self, spec: JobSpec, gds: Vec<u8>) -> Result<u64, SubmitError> {
        if self.draining() {
            return Err(SubmitError::Rejected(drain_rejection()));
        }
        let ctx =
            Arc::new(JobContext::build(&spec, &gds).map_err(SubmitError::Invalid)?);
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.shared
            .sched
            .lock()
            .expect("sched lock")
            .admit(id, &spec.tenant, spec.priority, ctx.tile_count() as u64)
            .map_err(SubmitError::Rejected)?;
        let dir = match &self.ckpt_root {
            None => None,
            Some(root) => {
                let dir = JobDir::new(root, id);
                if let Err(e) = dir.persist_submission_probed(
                    &spec.to_json().render(),
                    &gds,
                    self.shared.plane.as_deref(),
                    id,
                ) {
                    // Release the admission reservation: the job never
                    // existed as far as quotas are concerned.
                    let grants =
                        self.shared.sched.lock().expect("sched lock").remove_job(id);
                    dispatch_grants(&self.shared, grants);
                    return Err(SubmitError::Invalid(e));
                }
                Some(dir)
            }
        };
        let mut m = JobMut::fresh(spec, gds, Some(Arc::clone(&ctx)), JobState::Queued);
        m.emit(JobEventKind::State(JobState::Queued));
        let job = Arc::new(Job { id, dir, m: Mutex::new(m), cv: Condvar::new() });
        self.jobs.lock().expect("jobs lock").insert(id, Arc::clone(&job));
        self.dispatch(&job, &ctx, (0..ctx.tile_count()).collect());
        Ok(id)
    }

    /// Like [`SignoffService::submit_job`], with an optional client
    /// idempotency key. The first submission under a key mints a job
    /// and records the mapping; every later submission under the same
    /// key answers with the recorded id without touching admission
    /// control — the dedupe a client needs after an ambiguous
    /// connection drop ("did my submit land?"). The map is held locked
    /// across the underlying submit so two racing resubmissions of the
    /// same key mint exactly one job. A submission that fails is not
    /// recorded; the key stays free for the retry.
    ///
    /// # Errors
    ///
    /// As [`SignoffService::submit_job`].
    pub fn submit_job_idem(
        &self,
        spec: JobSpec,
        gds: Vec<u8>,
        idem: Option<&str>,
    ) -> Result<u64, SubmitError> {
        let Some(key) = idem else { return self.submit_job(spec, gds) };
        let mut map = self.idem_map.lock().expect("idem lock");
        if let Some(&id) = map.get(key) {
            return Ok(id);
        }
        let id = self.submit_job(spec, gds)?;
        map.insert(key.to_string(), id);
        Ok(id)
    }

    /// Whether [`SignoffService::begin_drain`] has run.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Graceful drain (`shutdown --drain`): stop admitting new work,
    /// then park every unsettled job — in-flight tiles finish and
    /// checkpoint (the cancel token skips only tiles still queued),
    /// the job settles `Cancelled`, and the pool runs idle. Every
    /// computed tile is durable, so a restart over the same checkpoint
    /// root resumes to a byte-identical report. Shard pulls observe
    /// the flag ([`SignoffService::shard_outcomes`]) so a coordinator
    /// treats this shard as a planned handoff rather than a loss.
    /// Returns the number of jobs parked.
    pub fn begin_drain(&self) -> usize {
        self.draining.store(true, Ordering::SeqCst);
        let jobs: Vec<Arc<Job>> =
            self.jobs.lock().expect("jobs lock").values().cloned().collect();
        let mut parked = 0;
        for job in jobs {
            {
                let mut m = job.m.lock().expect("job lock");
                if m.state.is_settled() {
                    continue;
                }
                m.cancel.cancel();
                m.set_state(JobState::Cancelled);
            }
            sched_remove_job(&self.shared, job.id);
            job.cv.notify_all();
            parked += 1;
        }
        // Wait for in-flight tiles to finish computing and checkpoint;
        // after this the durable state is complete and the process can
        // exit.
        self.pool.wait_idle();
        parked
    }

    /// Dispatches the given tiles, moving the job to Running (or
    /// straight to the merge when nothing is missing). Dispatched
    /// tiles get a fresh attempt budget; any quarantine verdict on
    /// them is cleared.
    fn dispatch(&self, job: &Arc<Job>, ctx: &Arc<JobContext>, mut tiles: Vec<usize>) {
        tiles.sort_unstable();
        let token = {
            let mut m = job.m.lock().expect("job lock");
            m.report = None;
            m.score = None;
            m.error = None;
            m.attempts.clear();
            m.retry_log.clear();
            m.pending_commit.clear();
            for &t in &tiles {
                m.attempts.insert(t, 0);
            }
            m.quarantined.retain(|t, _| tiles.binary_search(t).is_err());
            m.cached.retain(|t| tiles.binary_search(t).is_err());
            m.commit_queue = tiles.iter().copied().collect();
            m.set_state(JobState::Running);
            job.cv.notify_all();
            m.cancel.clone()
        };
        // A coordinating service never computes locally: the tiles fan
        // out across the shard roster, and puller threads feed the same
        // commit machinery shard outcomes instead of pool results. The
        // coordinator's own cache is bypassed — cache events replay
        // from the shards' outcome marks, so cold/warm event streams
        // match a single process at the shards' cache temperature.
        if let Some(set) = &self.shards {
            if tiles.is_empty() {
                try_finalize(&self.shared, job, ctx);
                return;
            }
            shard::dispatch_to_shards(&self.shared, set, job, ctx, &tiles);
            return;
        }
        // Consult the result cache before the pool sees anything: a hit
        // commits straight from the store (in ascending order, so the
        // commit queue drains as we go) and only the misses reach the
        // scheduler. A fully warm job computes zero tiles and leaves no
        // trace in the grant log.
        let misses: Vec<usize> = tiles
            .iter()
            .copied()
            .filter(|&tile| !cache_serve(&self.shared, job, ctx, tile))
            .collect();
        if misses.is_empty() {
            // Nothing dispatched (all hits already finalized via their
            // commits, or `tiles` was empty) — run the merge directly;
            // try_finalize is a no-op when a hit already settled it.
            try_finalize(&self.shared, job, ctx);
            return;
        }
        // Queue the misses under the job's fair-share lanes. Whatever
        // fits the in-flight window is granted now; the rest is granted
        // as earlier tiles resolve. The job lock is NOT held here.
        let handle = TileHandle {
            job: Arc::clone(job),
            ctx: Arc::clone(ctx),
            token,
        };
        let grants = self
            .shared
            .sched
            .lock()
            .expect("sched lock")
            .enqueue(job.id, handle, misses);
        dispatch_grants(&self.shared, grants);
    }

    fn job(&self, id: u64) -> Result<Arc<Job>, String> {
        self.jobs
            .lock()
            .expect("jobs lock")
            .get(&id)
            .cloned()
            .ok_or_else(|| format!("no such job: {id}"))
    }

    /// A job's current status.
    ///
    /// # Errors
    ///
    /// Unknown job id.
    pub fn status(&self, id: u64) -> Result<JobStatus, String> {
        Ok(self.job(id)?.status())
    }

    /// The scheduler's grant log so far: one entry per tile granted to
    /// the pool, in issue order. With a fixed submission order the log
    /// is byte-identical (via [`crate::sched::render_grant_log`])
    /// across worker counts — the observable artifact of the
    /// determinism guarantee. Cache hits never appear here.
    pub fn grant_log(&self) -> Vec<Grant> {
        self.shared.sched.lock().expect("sched lock").grant_log().to_vec()
    }

    /// Statuses of every job, by id.
    pub fn list(&self) -> Vec<JobStatus> {
        let jobs: Vec<Arc<Job>> =
            self.jobs.lock().expect("jobs lock").values().cloned().collect();
        jobs.iter().map(|j| j.status()).collect()
    }

    /// The job's events with `seq >= since` — the incremental
    /// delta-stream a client polls.
    ///
    /// # Errors
    ///
    /// Unknown job id.
    pub fn events(&self, id: u64, since: u64) -> Result<Vec<JobEvent>, String> {
        let job = self.job(id)?;
        let m = job.m.lock().expect("job lock");
        let start = (since as usize).min(m.events.len());
        Ok(m.events[start..].to_vec())
    }

    /// The job's merged report.
    ///
    /// For a Done job this is the cached final report; for a settled
    /// Partial job it is the merge of the surviving tiles plus the
    /// quarantine manifest. With `partial = true` a non-settled job
    /// answers with the ordered merge of its **contiguous completed
    /// prefix** `[0..k)` — an exact signoff of the region covered so
    /// far.
    ///
    /// # Errors
    ///
    /// Unknown id, failed job, or (without `partial`) a job that has
    /// not finished.
    pub fn results(&self, id: u64, partial: bool) -> Result<(JobStatus, SignoffReport), String> {
        let job = self.job(id)?;
        self.ensure_loaded(&job)?;
        let m = job.m.lock().expect("job lock");
        if let Some(report) = &m.report {
            let status = status_of(&job, &m);
            return Ok((status, report.clone()));
        }
        if let Some(err) = &m.error {
            return Err(format!("job {id} failed: {err}"));
        }
        if !partial {
            return Err(format!("job {id} is {}; pass partial=true for a prefix merge", m.state));
        }
        let ctx = m.ctx.clone().ok_or("job context missing")?;
        let prefix: Vec<TilePartial> = m
            .partials
            .values()
            .enumerate()
            .take_while(|(i, p)| p.tile == *i)
            .map(|(_, p)| p.clone())
            .collect();
        let report = ctx.merge(&prefix)?;
        let status = status_of(&job, &m);
        drop(m);
        Ok((status, report))
    }

    /// Like [`SignoffService::results`], but rendered to the canonical
    /// report text with the job's own spec — the form that travels
    /// over the wire and is byte-compared in tests.
    ///
    /// # Errors
    ///
    /// Same as [`SignoffService::results`].
    pub fn report_text(&self, id: u64, partial: bool) -> Result<(JobStatus, String), String> {
        let (status, report) = self.results(id, partial)?;
        let job = self.job(id)?;
        let spec = job.m.lock().expect("job lock").spec.clone();
        Ok((status, report.render_text(&spec)))
    }

    /// The job's manufacturability score as its deterministic JSON
    /// line, with the status alongside (for tile/cache counters and
    /// the partial verdict).
    ///
    /// # Errors
    ///
    /// Unknown id, a job that has not settled with a report yet, or a
    /// job whose spec does not enable scoring.
    pub fn score_json(&self, id: u64) -> Result<(JobStatus, String), String> {
        let job = self.job(id)?;
        let m = job.m.lock().expect("job lock");
        if let Some(score) = &m.score {
            return Ok((status_of(&job, &m), score.render()));
        }
        if let Some(err) = &m.error {
            return Err(format!("job {id} failed: {err}"));
        }
        if m.report.is_some() || m.state.is_terminal() {
            return Err(format!("job {id} was submitted without scoring (no `score` in spec)"));
        }
        Err(format!("job {id} is {}; the score is computed when the job settles", m.state))
    }

    /// Cancels a running/queued job. Completed tiles are kept (and
    /// remain checkpointed) so the job can be resumed.
    ///
    /// # Errors
    ///
    /// Unknown id or a Done/Failed job.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, String> {
        let job = self.job(id)?;
        {
            let mut m = job.m.lock().expect("job lock");
            match m.state {
                JobState::Done | JobState::Failed => {
                    return Err(format!("job {id} is already {}", m.state))
                }
                JobState::Cancelled => {}
                _ => {
                    m.cancel.cancel();
                    m.set_state(JobState::Cancelled);
                }
            }
        }
        // Release every scheduler reservation the job still held —
        // queued tiles, in-flight slots, and its active-job count —
        // after the job lock is dropped (lock order: job before sched),
        // and only then wake waiters, so an observed Cancelled state
        // implies the quota is already free.
        sched_remove_job(&self.shared, id);
        job.cv.notify_all();
        Ok(job.status())
    }

    /// Resumes a Partial or Cancelled job: re-reads any checkpointed
    /// tiles, mints a fresh cancel token, and dispatches exactly the
    /// missing tiles — including quarantined ones, which get a fresh
    /// attempt budget. The eventual report is bit-identical to an
    /// uninterrupted run (given the tiles now succeed).
    ///
    /// # Errors
    ///
    /// Unknown id, a job in a non-resumable state, or context-rebuild
    /// diagnostics.
    pub fn resume(&self, id: u64) -> Result<JobStatus, String> {
        if self.draining() {
            return Err(drain_rejection().to_string());
        }
        let job = self.job(id)?;
        self.ensure_loaded(&job)?;
        let (ctx, missing, tenant, priority) = {
            let mut m = job.m.lock().expect("job lock");
            match m.state {
                JobState::Partial | JobState::Cancelled => {}
                s => return Err(format!("job {id} is {s}; only partial/cancelled jobs resume")),
            }
            m.cancel = CancelToken::new();
            let ctx = m.ctx.clone().ok_or("job context missing")?;
            let missing: Vec<usize> =
                (0..ctx.tile_count()).filter(|t| !m.partials.contains_key(t)).collect();
            (ctx, missing, m.spec.tenant.clone(), m.spec.priority)
        };
        // A resumed job re-enters admission control: the settle (or
        // cancel) released its reservations, so it competes for quota
        // again — with only the missing tiles counted against it.
        self.shared
            .sched
            .lock()
            .expect("sched lock")
            .admit(id, &tenant, priority, missing.len() as u64)
            .map_err(|e| e.to_string())?;
        self.dispatch(&job, &ctx, missing);
        Ok(job.status())
    }

    /// Blocks until the job settles (Done, Partial-settled, Failed, or
    /// Cancelled), then returns its status.
    ///
    /// # Errors
    ///
    /// Unknown job id.
    pub fn wait(&self, id: u64) -> Result<JobStatus, String> {
        let job = self.job(id)?;
        let mut m = job.m.lock().expect("job lock");
        while !m.state.is_settled() {
            m = job.cv.wait(m).expect("job wait");
        }
        Ok(status_of(&job, &m))
    }

    /// Rebuilds the job context and reloads checkpointed tiles for a
    /// job that was constructed from disk (ctx == None). A tile whose
    /// checkpoint read faults (injected) is skipped — it is simply
    /// recomputed on resume.
    fn ensure_loaded(&self, job: &Arc<Job>) -> Result<(), String> {
        let mut m = job.m.lock().expect("job lock");
        if m.ctx.is_some() {
            return Ok(());
        }
        let ctx = Arc::new(JobContext::build(&m.spec, &m.gds)?);
        if let Some(dir) = &job.dir {
            // A crash between tmp-write and rename leaves orphaned
            // `*.tmp` files; sweep them before reading so a
            // crash-littered directory resumes identically to a clean
            // one.
            dir.sweep_tmp();
            for p in dir.load_tiles(ctx.tile_count()) {
                if let Some(plane) = &self.shared.plane {
                    if plane.maybe_error(SITE_CKPT_READ, p.tile as u64, 0).is_err() {
                        continue;
                    }
                }
                m.partials.insert(p.tile, p);
            }
        }
        m.ctx = Some(ctx);
        Ok(())
    }

    /// Shard-side entry point for a coordinator's `shard.dispatch`
    /// frame: runs tile range(s) of the job as a local shard job whose
    /// per-tile outcomes are recorded for [`SignoffService::shard_outcomes`]
    /// to stream back.
    ///
    /// `(coord, origin, gen)` — the coordinator's identity, its job
    /// id, and the dispatch generation — is the idempotency key: a
    /// re-dispatch of a known key (coordinator restart, reconnect)
    /// answers with the existing grant (`attached = true`) instead of
    /// recomputing. With `ranges = None` the service must have been
    /// configured as shard `k` of `n` ([`ServiceConfig::shard_of`])
    /// and runs its deterministic partition; a coordinator always
    /// names ranges explicitly.
    ///
    /// Admission runs against this service's scheduler with the
    /// *dispatched* tile count. Shards are expected to run the open
    /// scheduler and trust the coordinator's grants — admission control
    /// for the whole job already happened at the coordinator.
    ///
    /// # Errors
    ///
    /// Spec/GDS diagnostics, malformed ranges, a missing `shard_of`
    /// assignment when `ranges` is `None`, or local admission refusal.
    pub fn shard_dispatch(
        &self,
        coord: u64,
        origin: u64,
        gen: u64,
        spec: JobSpec,
        gds: Vec<u8>,
        ranges: Option<Vec<(usize, usize)>>,
    ) -> Result<ShardGrant, String> {
        if self.draining() {
            return Err(drain_rejection().to_string());
        }
        let ctx = Arc::new(JobContext::build(&spec, &gds)?);
        let total = ctx.tile_count();
        let ranges = match ranges {
            Some(r) => r,
            None => {
                let (k, n) = self.shard_of.ok_or(
                    "shard.dispatch without ranges requires a server started with --shard-of K/N",
                )?;
                vec![shard::partition_range(total, n, k)]
            }
        };
        let tiles = shard::expand_ranges(&ranges, total)?;
        // The idempotency map stays locked across job creation so two
        // racing dispatches of the same (coord, origin, gen) mint one
        // job.
        let mut map = self.origin_map.lock().expect("origin map lock");
        if let Some(grant) = map.get(&(coord, origin, gen)) {
            let mut g = grant.clone();
            g.attached = true;
            return Ok(g);
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.shared
            .sched
            .lock()
            .expect("sched lock")
            .admit(id, &spec.tenant, spec.priority, tiles.len() as u64)
            .map_err(|e| e.to_string())?;
        let dir = match &self.ckpt_root {
            None => None,
            Some(root) => {
                let dir = JobDir::new(root, id);
                if let Err(e) = dir.persist_submission_probed(
                    &spec.to_json().render(),
                    &gds,
                    self.shared.plane.as_deref(),
                    id,
                ) {
                    let grants =
                        self.shared.sched.lock().expect("sched lock").remove_job(id);
                    dispatch_grants(&self.shared, grants);
                    return Err(e);
                }
                Some(dir)
            }
        };
        let mut m = JobMut::fresh(spec, gds, Some(Arc::clone(&ctx)), JobState::Queued);
        m.outcomes = Some(Vec::new());
        m.emit(JobEventKind::State(JobState::Queued));
        let job = Arc::new(Job { id, dir, m: Mutex::new(m), cv: Condvar::new() });
        self.jobs.lock().expect("jobs lock").insert(id, Arc::clone(&job));
        let grant = ShardGrant { job: id, total, ranges, attached: false };
        map.insert((coord, origin, gen), grant.clone());
        drop(map);
        self.dispatch(&job, &ctx, tiles);
        Ok(grant)
    }

    /// Shard-side entry point for `shard.attach`: answers the grant a
    /// prior [`SignoffService::shard_dispatch`] minted for `(coord,
    /// origin, gen)` — how a restarted (or reconnecting) coordinator
    /// finds its shard jobs and replays their outcome logs without
    /// recomputing.
    ///
    /// # Errors
    ///
    /// An unknown `(coord, origin, gen)` (mapped to `not_found` on the
    /// wire).
    pub fn shard_attach(&self, coord: u64, origin: u64, gen: u64) -> Result<ShardGrant, String> {
        let map = self.origin_map.lock().expect("origin map lock");
        match map.get(&(coord, origin, gen)) {
            Some(grant) => {
                let mut g = grant.clone();
                g.attached = true;
                Ok(g)
            }
            None => Err(format!(
                "no such job: coordinator {coord:#x} origin {origin} gen {gen} is not dispatched here"
            )),
        }
    }

    /// The monotonic outcome log of a shard job from entry `since` on,
    /// with the next cursor, whether the job has settled, and whether
    /// this service is draining — the stream a coordinator polls
    /// (`shard.pull`). A settled shard job with no further outcomes is
    /// the puller's signal that nothing more will ever arrive; a raised
    /// drain flag tells the coordinator the settle was a planned
    /// handoff, not a failure.
    ///
    /// # Errors
    ///
    /// Unknown id, or a job that was not dispatched via
    /// [`SignoffService::shard_dispatch`].
    pub fn shard_outcomes(
        &self,
        id: u64,
        since: u64,
    ) -> Result<(Vec<TileOutcome>, u64, bool, bool), String> {
        let job = self.job(id)?;
        let m = job.m.lock().expect("job lock");
        let Some(outcomes) = &m.outcomes else {
            return Err(format!("job {id} is not a shard-dispatched job"));
        };
        let start = (since as usize).min(outcomes.len());
        Ok((
            outcomes[start..].to_vec(),
            outcomes.len() as u64,
            m.state.is_settled(),
            self.draining(),
        ))
    }

    /// Shard-side entry point for `shard.heartbeat`: a cheap liveness
    /// probe the coordinator sends on idle polls. Answers whether the
    /// shard job has settled and whether this service is draining —
    /// and, by answering at all, renews the coordinator's lease on
    /// this shard (a heartbeat ack resets the idle clock that would
    /// otherwise expire the shard).
    ///
    /// # Errors
    ///
    /// Unknown id, or a job that was not dispatched via
    /// [`SignoffService::shard_dispatch`].
    pub fn shard_heartbeat(&self, id: u64) -> Result<(bool, bool), String> {
        let job = self.job(id)?;
        let m = job.m.lock().expect("job lock");
        if m.outcomes.is_none() {
            return Err(format!("job {id} is not a shard-dispatched job"));
        }
        Ok((m.state.is_settled(), self.draining()))
    }

    /// Coordinator counters (`None` on a non-coordinating service):
    /// shard-roster size, tiles re-dispatched after shard losses, and
    /// tiles handed off from draining shards.
    pub fn shard_stats(&self) -> Option<ShardStats> {
        self.shards.as_ref().map(|s| ShardStats {
            shards: s.addrs.len(),
            tiles_redispatched: s.redispatched.load(Ordering::SeqCst),
            tiles_drained: s.drained.load(Ordering::SeqCst),
        })
    }
}

impl Drop for SignoffService {
    fn drop(&mut self) {
        // Cancel every job so queued tasks are skipped at dequeue, then
        // wait the pool idle: no worker may still hold an upgraded Arc
        // to the pool (for a retry resubmission) when we drop ours —
        // the pool must be torn down from this thread, never from one
        // of its own workers.
        let jobs: Vec<Arc<Job>> =
            self.jobs.lock().expect("jobs lock").values().cloned().collect();
        for job in jobs {
            let m = job.m.lock().expect("job lock");
            m.cancel.cancel();
        }
        self.pool.wait_idle();
    }
}

/// The structured refusal a draining service answers submissions with.
fn drain_rejection() -> Rejection {
    Rejection {
        code: RejectCode::Draining,
        message: "service is draining; no new work is admitted".to_string(),
        retry_after_vms: None,
    }
}

fn status_of(job: &Job, m: &JobMut) -> JobStatus {
    JobStatus {
        id: job.id,
        name: m.spec.name.clone(),
        tenant: m.spec.tenant.clone(),
        priority: m.spec.priority,
        state: m.state,
        tiles_total: m.tiles_total(),
        tiles_done: m.partials.len(),
        tiles_quarantined: m.quarantined.len(),
        tiles_cached: m.cached.len(),
        next_seq: m.events.len() as u64,
        score_bits: m.score.as_ref().map(|s| s.score.to_bits()),
        score_pass: m.score.as_ref().map(|s| s.pass),
        error: m.error.clone(),
    }
}

/// Hands a batch of scheduler grants to the pool, in grant order.
///
/// Each grant carries a sequence number; `submit_sequenced` uses it to
/// reorder racing callers so tasks enter the pool queue in exactly the
/// order the grant log records — the property the cross-thread-count
/// determinism guarantee rests on.
fn dispatch_grants(shared: &Arc<RunShared>, grants: Vec<GrantOut<TileHandle>>) {
    for g in grants {
        let h = g.handle;
        submit_tile(shared, &h.job, &h.ctx, &h.token, g.tile, 0, Some(g.seq));
    }
}

/// Reports one tile as resolved to the scheduler (releasing its
/// in-flight slot or queued reservation) and dispatches whatever the
/// freed window now grants. Must be called with no job lock held.
fn sched_resolved(shared: &Arc<RunShared>, job_id: u64, tile: usize) {
    let grants = shared.sched.lock().expect("sched lock").resolved(job_id, tile);
    dispatch_grants(shared, grants);
}

/// Drops every scheduler reservation a job still holds (on settle,
/// cancel, or failed persist) and dispatches the grants the freed
/// capacity allows. Must be called with no job lock held.
fn sched_remove_job(shared: &Arc<RunShared>, job_id: u64) {
    let grants = shared.sched.lock().expect("sched lock").remove_job(job_id);
    dispatch_grants(shared, grants);
}

/// Enqueues one attempt of one tile. The pool-level supervision hook
/// is the safety net: a panic that escapes the attempt body's own
/// containment (e.g. injected at the pool site) still reaches
/// [`attempt_failed`].
///
/// `seq` is `Some` for the first attempt of a scheduler-granted tile —
/// the grant sequence number, which pins the pool-queue entry order.
/// Retries pass `None`: their slot is already held, and they must not
/// wait behind grants that have not been issued yet.
fn submit_tile(
    shared: &Arc<RunShared>,
    job: &Arc<Job>,
    ctx: &Arc<JobContext>,
    token: &CancelToken,
    tile: usize,
    attempt: u64,
    seq: Option<u64>,
) {
    let Some(pool) = shared.pool.upgrade() else { return };
    let task = {
        let (shared, job, ctx) = (Arc::clone(shared), Arc::clone(job), Arc::clone(ctx));
        move || run_tile_attempt(&shared, &job, &ctx, tile, attempt)
    };
    let hook = {
        let (shared, job, ctx) = (Arc::clone(shared), Arc::clone(job), Arc::clone(ctx));
        move |outcome: TaskOutcome| {
            if let TaskOutcome::Panicked(msg) = outcome {
                attempt_failed(&shared, &job, &ctx, tile, attempt, format!("tile {tile} task panicked: {msg}"));
            }
        }
    };
    match seq {
        Some(seq) => pool.submit_sequenced(seq, token, task, hook),
        None => pool.submit_supervised(token, task, hook),
    }
}

/// The body of one tile attempt: guard, (virtual) delay/watchdog,
/// compute inside containment, checkpoint with retry, hand the outcome
/// to the supervisor.
fn run_tile_attempt(
    shared: &Arc<RunShared>,
    job: &Arc<Job>,
    ctx: &Arc<JobContext>,
    tile: usize,
    attempt: u64,
) {
    {
        let m = job.m.lock().expect("job lock");
        if m.cancel.is_cancelled() || m.state != JobState::Running {
            return;
        }
        if m.partials.contains_key(&tile) || m.pending_commit.contains_key(&tile) {
            return; // already resolved (e.g. overlapping resume)
        }
        if m.attempts.get(&tile).copied() != Some(attempt) {
            return; // stale attempt; a newer one owns this tile
        }
    }
    if !shared.tile_delay.is_zero() {
        std::thread::sleep(shared.tile_delay);
    }
    if let Some(plane) = &shared.plane {
        if let Some(vms) = plane.delay_vms(SITE_TILE_DELAY, tile as u64, attempt) {
            shared.policy.real_sleep(vms);
            if let Some(budget) = shared.policy.watchdog_vms {
                if vms >= budget {
                    let reason =
                        format!("watchdog: tile {tile} stuck {vms} vms (budget {budget} vms)");
                    attempt_failed(shared, job, ctx, tile, attempt, reason);
                    return;
                }
            }
        }
    }
    let plane = shared.plane.clone();
    let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(plane) = &plane {
            plane.maybe_panic(SITE_TILE_COMPUTE, tile as u64, attempt);
        }
        ctx.compute_tile(tile)
    }));
    let partial = match computed {
        Ok(p) => p,
        Err(panic) => {
            let msg = panic_message(panic.as_ref());
            attempt_failed(shared, job, ctx, tile, attempt, format!("tile {tile} panicked: {msg}"));
            return;
        }
    };
    // Checkpoint BEFORE recording completion: a crash after the write
    // re-loads the tile; a crash before it recomputes it. Either way
    // the partial's value is identical (purity), so resume converges.
    // A write that fails every retry degrades to in-memory-only — the
    // computed result is NEVER discarded over a checkpoint error.
    let ckpt_degraded = match &job.dir {
        None => false,
        Some(dir) => !write_checkpoint_with_retry(shared, dir, &partial, tile),
    };
    let cache = cache_store(shared, ctx, tile, attempt, &partial);
    attempt_succeeded(shared, job, ctx, tile, partial, ckpt_degraded, cache);
}

/// Probes the result cache for one freshly dispatched tile. On a valid
/// hit the partial is checkpointed (when persistence is on) and
/// committed exactly like a computed result; returns `true` and the
/// tile never reaches the pool. Anything else — cache off, injected
/// read fault, missing entry, or an entry that fails to decode — is a
/// miss: returns `false` and the caller submits the tile normally.
fn cache_serve(
    shared: &Arc<RunShared>,
    job: &Arc<Job>,
    ctx: &Arc<JobContext>,
    tile: usize,
) -> bool {
    let Some(cache) = &shared.cache else { return false };
    if let Some(plane) = &shared.plane {
        if plane.maybe_error(SITE_CACHE_READ, tile as u64, 0).is_err() {
            return false;
        }
    }
    let Some(bytes) = cache.lookup(ctx.cache_key(tile)) else { return false };
    let Some(partial) = decode_tile_partial(&bytes, tile) else { return false };
    let ckpt_degraded = match &job.dir {
        None => false,
        Some(dir) => !write_checkpoint_with_retry(shared, dir, &partial, tile),
    };
    attempt_succeeded(shared, job, ctx, tile, partial, ckpt_degraded, CacheOutcome::Hit);
    true
}

/// Stores a freshly computed partial into the result cache. Only a
/// clean **first** attempt qualifies — a result that needed retries is
/// never cached, so a faulting or quarantine-bound plan can never
/// poison the store. A store that fails (injected fault or I/O) is
/// silently skipped: the next identical submission just recomputes.
fn cache_store(
    shared: &Arc<RunShared>,
    ctx: &Arc<JobContext>,
    tile: usize,
    attempt: u64,
    partial: &TilePartial,
) -> CacheOutcome {
    let Some(cache) = &shared.cache else { return CacheOutcome::None };
    if attempt != 0 {
        return CacheOutcome::None;
    }
    if let Some(plane) = &shared.plane {
        if plane.maybe_error(SITE_CACHE_WRITE, tile as u64, 0).is_err() {
            return CacheOutcome::None;
        }
        // ENOSPC degradation: a full disk refuses the store outright —
        // no retries, no partial entry, job unharmed.
        if plane.maybe_nospace(SITE_CACHE_WRITE, tile as u64, 0) {
            return CacheOutcome::None;
        }
    }
    let crash = shared.plane.as_ref().map(|plane| {
        let plane = Arc::clone(plane);
        move |stage: StoreStage| match stage {
            StoreStage::Tmp => plane.crash_point(SITE_CACHE_STORE_TMP, tile as u64, 0),
            StoreStage::Rename => {
                plane.crash_point(SITE_CACHE_STORE_RENAME, tile as u64, 0)
            }
        }
    });
    let stored = cache.store_staged(
        ctx.cache_key(tile),
        &encode_tile_partial(partial),
        crash.as_ref().map(|c| c as &dyn Fn(StoreStage) -> bool),
    );
    if stored {
        CacheOutcome::Stored
    } else {
        CacheOutcome::None
    }
}

/// Writes one tile checkpoint with bounded retries (each attempt is
/// already atomic: tmp + rename). Returns false when every attempt
/// failed.
fn write_checkpoint_with_retry(
    shared: &RunShared,
    dir: &JobDir,
    partial: &TilePartial,
    tile: usize,
) -> bool {
    if let Some(plane) = &shared.plane {
        // ENOSPC degradation: a full disk fails every retry the same
        // way, so degrade immediately (`CkptDegraded`) instead of
        // burning the write budget.
        if plane.maybe_nospace(SITE_CKPT_WRITE, tile as u64, 0) {
            return false;
        }
    }
    for write_attempt in 0..shared.policy.ckpt_write_attempts.max(1) {
        let injected = match &shared.plane {
            Some(plane) => plane.maybe_error(SITE_CKPT_WRITE, tile as u64, write_attempt),
            None => Ok(()),
        };
        if injected.is_ok()
            && dir
                .write_tile_probed(partial, shared.plane.as_deref(), write_attempt)
                .is_ok()
        {
            return true;
        }
    }
    false
}

/// Supervisor path for a failed attempt: retry with deterministic
/// virtual-clock backoff while budget remains, else quarantine the
/// tile and let the job settle without it.
fn attempt_failed(
    shared: &Arc<RunShared>,
    job: &Arc<Job>,
    ctx: &Arc<JobContext>,
    tile: usize,
    attempt: u64,
    reason: String,
) {
    let retry = {
        let mut m = job.m.lock().expect("job lock");
        if m.cancel.is_cancelled() || m.state != JobState::Running {
            return;
        }
        if m.partials.contains_key(&tile) || m.pending_commit.contains_key(&tile) {
            return;
        }
        if m.attempts.get(&tile).copied() != Some(attempt) {
            return; // stale: this attempt was already adjudicated
        }
        let failed = attempt + 1;
        m.attempts.insert(tile, failed);
        if failed >= shared.policy.max_attempts.max(1) {
            m.pending_commit.insert(tile, TileResolution::Quarantined { attempts: failed, reason });
            advance_commits(&mut m, ctx.tile_count());
            job.cv.notify_all();
            None
        } else {
            let backoff_vms = shared.policy.backoff_base_vms << attempt;
            m.retry_log
                .entry(tile)
                .or_default()
                .push(RetryRecord { attempt, backoff_vms, reason });
            Some((m.cancel.clone(), backoff_vms))
        }
    };
    match retry {
        Some((token, backoff_vms)) => {
            // The scheduler slot stays held across retries: the tile is
            // still occupying real capacity, and a retry must never
            // queue behind grants that were issued after it.
            shared.policy.real_sleep(backoff_vms);
            submit_tile(shared, job, ctx, &token, tile, attempt + 1, None);
        }
        None => {
            sched_resolved(shared, job.id, tile);
            try_finalize(shared, job, ctx);
        }
    }
}

/// Supervisor path for a successful attempt: buffer the result for
/// commit-ordered emission, release the tile's scheduler capacity,
/// then finalize if it was the last one.
fn attempt_succeeded(
    shared: &Arc<RunShared>,
    job: &Arc<Job>,
    ctx: &Arc<JobContext>,
    tile: usize,
    partial: TilePartial,
    ckpt_degraded: bool,
    cache: CacheOutcome,
) {
    {
        let mut m = job.m.lock().expect("job lock");
        if m.state != JobState::Running {
            // Cancelled (or failed) while we computed: keep the
            // checkpoint on disk but do not mutate a settled job. The
            // scheduler reservation was (or will be) torn down by the
            // remove_job on that settle path, not here.
            return;
        }
        if m.partials.contains_key(&tile) || m.pending_commit.contains_key(&tile) {
            return;
        }
        m.pending_commit.insert(tile, TileResolution::Done { partial, ckpt_degraded, cache });
        advance_commits(&mut m, ctx.tile_count());
        job.cv.notify_all();
    }
    // The guards above make this the tile's single resolution, so the
    // scheduler release runs exactly once per tile. For a cache hit the
    // tile never entered a lane; `resolved` then credits the job's
    // unassigned admission budget instead of an in-flight slot.
    sched_resolved(shared, job.id, tile);
    try_finalize(shared, job, ctx);
}

/// Runs the ordered merge once every dispatched tile has committed.
/// Clean run → Done; quarantined tiles → settled Partial with the
/// manifest in the report; only a merge error produces Failed. On any
/// settle the job's scheduler reservations are released.
fn try_finalize(shared: &Arc<RunShared>, job: &Arc<Job>, ctx: &Arc<JobContext>) {
    let surviving: Vec<TilePartial> = {
        let m = job.m.lock().expect("job lock");
        if m.state != JobState::Running || !m.commit_queue.is_empty() {
            return;
        }
        m.partials.values().cloned().collect()
    };
    let merged = ctx.merge(&surviving);
    let mut m = job.m.lock().expect("job lock");
    if m.state != JobState::Running || !m.commit_queue.is_empty() {
        return;
    }
    match merged {
        Ok(mut report) => {
            report.quarantined = m
                .quarantined
                .iter()
                .map(|(&tile, (attempts, reason))| QuarantinedTile {
                    tile,
                    attempts: *attempts,
                    reason: reason.clone(),
                })
                .collect();
            let clean = report.quarantined.is_empty();
            // Score before the final state event: a client that saw
            // `State(Done)` can rely on the score being present.
            if let Some(score) = ctx.score(&report) {
                m.emit(JobEventKind::Score {
                    bits: score.score.to_bits(),
                    pass: score.pass,
                });
                m.score = Some(score);
            }
            m.report = Some(report);
            m.set_state(if clean { JobState::Done } else { JobState::Partial });
        }
        Err(e) => {
            m.error = Some(format!("merge failed: {e}"));
            m.set_state(JobState::Failed);
        }
    }
    drop(m);
    // The job settled on this call (the re-check above means exactly
    // one caller gets here): stop counting it against its tenant's
    // max_jobs and release any stragglers (lock order: job then sched).
    // Waiters are woken only AFTER the release, so a `wait()` that
    // observes the settled state can immediately resubmit against the
    // freed quota. (Late checkers see the state under the lock anyway,
    // so notifying outside it cannot lose a wakeup.)
    sched_remove_job(shared, job.id);
    job.cv.notify_all();
}

/// The spec + GDS bytes a puller re-dispatches to a shard.
pub(crate) fn shard_payload(job: &Arc<Job>) -> (JobSpec, Vec<u8>) {
    let m = job.m.lock().expect("job lock");
    (m.spec.clone(), m.gds.clone())
}

/// Installs the current shard-dispatch epoch on a coordinated job.
pub(crate) fn set_shard_run(job: &Arc<Job>, run: Arc<shard::ShardRun>) {
    job.m.lock().expect("job lock").shard_run = Some(run);
}

/// True while `run` is still the job's current epoch and the job is
/// still running — the staleness guard puller threads re-check every
/// cycle, so a cancel or resume retires them within one poll.
pub(crate) fn shard_run_live(job: &Arc<Job>, run: &Arc<shard::ShardRun>) -> bool {
    let m = job.m.lock().expect("job lock");
    m.state == JobState::Running && m.shard_run.as_ref().is_some_and(|r| Arc::ptr_eq(r, run))
}

/// Feeds one shard-reported tile outcome into the coordinator job's
/// commit machinery — the exact path local attempts use, so event
/// order, report bytes, and digests cannot tell the difference.
pub(crate) fn ingest_shard_outcome(
    shared: &Arc<RunShared>,
    job: &Arc<Job>,
    ctx: &Arc<JobContext>,
    outcome: &TileOutcome,
) {
    let tile = outcome.tile;
    // Decode and (best-effort) persist outside the job lock. The
    // `signoff.ckpt.write` error site does NOT fire here: the shard
    // already ran the tile's checkpoint faults (replayed via
    // `ckpt_degraded`), and a shared plan probed again at the
    // coordinator would fire twice and skew the bytes. The staged
    // crash sites inside `write_tile_probed` are coordinator-side
    // durable transitions, though — a crash there loses only this
    // best-effort persist, which resume recomputes.
    let resolution = match &outcome.kind {
        TileOutcomeKind::Done { data, ckpt_degraded, cache } => {
            match decode_tile_partial(data, tile) {
                Some(partial) => {
                    if let Some(dir) = &job.dir {
                        let _ = dir.write_tile_probed(&partial, shared.plane.as_deref(), 0);
                    }
                    TileResolution::Done {
                        partial,
                        ckpt_degraded: *ckpt_degraded,
                        cache: match cache {
                            TileCacheMark::Hit => CacheOutcome::Hit,
                            TileCacheMark::Stored => CacheOutcome::Stored,
                            TileCacheMark::None => CacheOutcome::None,
                        },
                    }
                }
                None => TileResolution::Quarantined {
                    attempts: 0,
                    reason: format!("tile {tile}: undecodable shard result"),
                },
            }
        }
        TileOutcomeKind::Quarantined { attempts, reason } => {
            TileResolution::Quarantined { attempts: *attempts, reason: reason.clone() }
        }
    };
    {
        let mut m = job.m.lock().expect("job lock");
        if m.state != JobState::Running {
            return;
        }
        if m.partials.contains_key(&tile)
            || m.pending_commit.contains_key(&tile)
            || m.quarantined.contains_key(&tile)
        {
            return; // already adjudicated (duplicate pull or overlap)
        }
        if !outcome.retries.is_empty() {
            m.retry_log.insert(
                tile,
                outcome
                    .retries
                    .iter()
                    .map(|r| RetryRecord {
                        attempt: r.attempt,
                        backoff_vms: r.backoff_vms,
                        reason: r.reason.clone(),
                    })
                    .collect(),
            );
        }
        m.pending_commit.insert(tile, resolution);
        advance_commits(&mut m, ctx.tile_count());
        job.cv.notify_all();
    }
    // A shard tile never entered a local lane; `resolved` credits the
    // job's unassigned admission budget, like the cache-hit path.
    sched_resolved(shared, job.id, tile);
    try_finalize(shared, job, ctx);
}

/// Quarantines a lost shard's unrecoverable tiles (`shard {k} lost:
/// …`) so the coordinated job settles as a deterministic `Partial`
/// with a per-shard manifest instead of hanging.
pub(crate) fn quarantine_lost_tiles(
    shared: &Arc<RunShared>,
    job: &Arc<Job>,
    ctx: &Arc<JobContext>,
    shard_idx: usize,
    err: &str,
    lost: &BTreeSet<usize>,
) {
    {
        let mut m = job.m.lock().expect("job lock");
        if m.state != JobState::Running {
            return;
        }
        for &tile in lost {
            if m.partials.contains_key(&tile)
                || m.pending_commit.contains_key(&tile)
                || m.quarantined.contains_key(&tile)
            {
                continue;
            }
            m.pending_commit.insert(
                tile,
                TileResolution::Quarantined {
                    attempts: 0,
                    reason: format!("shard {shard_idx} lost: {err}"),
                },
            );
        }
        advance_commits(&mut m, ctx.tile_count());
        job.cv.notify_all();
    }
    for &tile in lost {
        sched_resolved(shared, job.id, tile);
    }
    try_finalize(shared, job, ctx);
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::flat_report;
    use dfm_fault::{FaultAction, FaultPlan, FaultPlane, FaultRule};
    use dfm_layout::{gds, generate, layers, Technology};

    fn small_gds(seed: u64) -> Vec<u8> {
        let tech = Technology::n65();
        let params = generate::RoutedBlockParams {
            width: 6_000,
            height: 6_000,
            ..Default::default()
        };
        gds::to_bytes(&generate::routed_block(&tech, params, seed)).expect("gds")
    }

    fn spec() -> JobSpec {
        JobSpec {
            tile: 1700,
            halo: 64,
            litho_layer: Some(layers::METAL1),
            ..JobSpec::default()
        }
    }

    fn faulty_service(threads: usize, plan: FaultPlan) -> SignoffService {
        SignoffService::with_config(ServiceConfig {
            fault_plane: Some(Arc::new(FaultPlane::new(plan))),
            ..ServiceConfig::new(threads)
        })
    }

    #[test]
    fn submitted_job_finishes_with_flat_bytes_at_several_worker_counts() {
        let gds = small_gds(31);
        let spec = spec();
        let flat =
            flat_report(&spec, &gds::from_bytes(&gds).expect("lib")).expect("flat").render_text(&spec);
        for threads in [1usize, 2, 8] {
            let service = SignoffService::new(threads, None);
            let id = service.submit(spec.clone(), gds.clone()).expect("submit");
            let status = service.wait(id).expect("wait");
            assert_eq!(status.state, JobState::Done, "threads={threads}: {:?}", status.error);
            assert_eq!(status.tiles_done, status.tiles_total);
            let (_, report) = service.results(id, false).expect("results");
            assert_eq!(report.render_text(&spec), flat, "threads={threads}");
        }
    }

    #[test]
    fn events_are_gapless_and_monotonic() {
        let service = SignoffService::new(4, None);
        let id = service.submit(spec(), small_gds(32)).expect("submit");
        service.wait(id).expect("wait");
        let events = service.events(id, 0).expect("events");
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "gapless sequence");
        }
        assert!(matches!(events.first().map(|e| &e.kind), Some(JobEventKind::State(JobState::Queued))));
        assert!(matches!(events.last().map(|e| &e.kind), Some(JobEventKind::State(JobState::Done))));
        // Delta poll: everything from the midpoint on, nothing more.
        let mid = events.len() as u64 / 2;
        let tail = service.events(id, mid).expect("tail");
        assert_eq!(tail, events[mid as usize..]);
    }

    #[test]
    fn bad_submissions_are_rejected_with_diagnostics() {
        let service = SignoffService::new(1, None);
        let err = service.submit(spec(), b"garbage".to_vec()).expect_err("bad gds");
        assert!(err.contains("layout rejected"), "{err}");
        let err = service
            .submit(JobSpec { tech: "n3".into(), ..spec() }, small_gds(33))
            .expect_err("bad tech");
        assert!(err.contains("unknown technology"), "{err}");
        assert!(service.status(99).is_err());
    }

    #[test]
    fn cancel_keeps_partials_and_resume_completes_identically() {
        let gds = small_gds(34);
        let spec = spec();
        let flat =
            flat_report(&spec, &gds::from_bytes(&gds).expect("lib")).expect("flat").render_text(&spec);
        let service = SignoffService::with_config(
            ServiceConfig::builder().threads(2).tile_delay(Duration::from_millis(30)).build(),
        );
        let id = service.submit(spec.clone(), gds).expect("submit");
        let status = service.cancel(id).expect("cancel");
        assert_eq!(status.state, JobState::Cancelled);
        assert!(status.tiles_done < status.tiles_total, "cancel landed mid-run");
        assert!(service.results(id, false).is_err(), "no final results while cancelled");
        let status = service.resume(id).expect("resume");
        assert_eq!(status.state, JobState::Running);
        let status = service.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        let (_, report) = service.results(id, false).expect("results");
        assert_eq!(report.render_text(&spec), flat);
    }

    #[test]
    fn partial_results_cover_the_completed_prefix() {
        let service = SignoffService::new(2, None);
        let id = service.submit(spec(), small_gds(35)).expect("submit");
        service.wait(id).expect("wait");
        // Done job: partial=true must agree with the final report.
        let (_, full) = service.results(id, false).expect("full");
        let (_, partial) = service.results(id, true).expect("partial");
        assert_eq!(full, partial);
    }

    #[test]
    fn retries_below_threshold_finish_done_with_clean_bytes() {
        let gds = small_gds(36);
        let spec = spec();
        let flat =
            flat_report(&spec, &gds::from_bytes(&gds).expect("lib")).expect("flat").render_text(&spec);
        // Tile 1 panics on its first two attempts; budget is 3, so the
        // third succeeds and the job must be byte-identical to clean.
        let plan = FaultPlan::seeded(5).with_rule(
            FaultRule::new(SITE_TILE_COMPUTE, FaultAction::Panic).key(1).first_attempts(2),
        );
        let service = faulty_service(4, plan);
        let id = service.submit(spec.clone(), gds).expect("submit");
        let status = service.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        assert_eq!(status.tiles_quarantined, 0);
        let (_, report) = service.results(id, false).expect("results");
        assert_eq!(report.render_text(&spec), flat);
        let events = service.events(id, 0).expect("events");
        let retries: Vec<u64> = events
            .iter()
            .filter_map(|e| match &e.kind {
                JobEventKind::TileRetry { tile: 1, attempt, .. } => Some(*attempt),
                _ => None,
            })
            .collect();
        assert_eq!(retries, vec![0, 1], "both failed attempts recorded in order");
        assert!(
            events.iter().all(|e| !matches!(e.kind, JobEventKind::TileQuarantined { .. })),
            "nothing quarantined below threshold"
        );
    }

    #[test]
    fn quarantine_above_threshold_settles_partial_with_manifest() {
        let gds = small_gds(37);
        let spec = spec();
        // Tile 0 panics on every attempt: quarantined after the full
        // budget; job settles Partial, never Failed.
        let plan = FaultPlan::seeded(9)
            .with_rule(FaultRule::new(SITE_TILE_COMPUTE, FaultAction::Panic).key(0));
        let service = faulty_service(2, plan);
        let id = service.submit(spec.clone(), gds.clone()).expect("submit");
        let status = service.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Partial, "{:?}", status.error);
        assert_eq!(status.tiles_quarantined, 1);
        assert!(status.error.is_none(), "quarantine is not a failure");
        let (_, report) = service.results(id, false).expect("settled partial has results");
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].tile, 0);
        assert_eq!(report.quarantined[0].attempts, SupervisionPolicy::default().max_attempts);
        // The report equals the offline merge of the surviving tiles.
        let ctx = JobContext::build(&spec, &gds).expect("ctx");
        let surviving: Vec<TilePartial> =
            (1..ctx.tile_count()).map(|t| ctx.compute_tile(t)).collect();
        let mut expect = ctx.merge(&surviving).expect("merge");
        expect.quarantined = report.quarantined.clone();
        assert_eq!(report, expect);
        let text = report.render_text(&spec);
        assert!(text.contains("quarantine: 1 tiles excluded"), "{text}");
        // Resume retries the quarantined tile; faults still fire, so it
        // settles Partial again with the same manifest.
        service.resume(id).expect("resume");
        let status = service.wait(id).expect("wait again");
        assert_eq!(status.state, JobState::Partial);
        assert_eq!(status.tiles_quarantined, 1);
    }

    #[test]
    fn ckpt_write_faults_degrade_without_discarding_results() {
        let gds = small_gds(38);
        let spec = spec();
        let flat =
            flat_report(&spec, &gds::from_bytes(&gds).expect("lib")).expect("flat").render_text(&spec);
        let root = std::env::temp_dir().join(format!("dfm-signoff-ckpt-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        // Every checkpoint write for tile 2 fails on every retry — the
        // tile must still complete from memory and the job finish Done.
        let plan = FaultPlan::seeded(3)
            .with_rule(FaultRule::new(SITE_CKPT_WRITE, FaultAction::Error).key(2));
        let service = SignoffService::with_config(ServiceConfig {
            ckpt_root: Some(root.clone()),
            fault_plane: Some(Arc::new(FaultPlane::new(plan))),
            ..ServiceConfig::new(2)
        });
        let id = service.submit(spec.clone(), gds).expect("submit");
        let status = service.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        let (_, report) = service.results(id, false).expect("results");
        assert_eq!(report.render_text(&spec), flat);
        let degraded: Vec<usize> = service
            .events(id, 0)
            .expect("events")
            .iter()
            .filter_map(|e| match e.kind {
                JobEventKind::CkptDegraded { tile } => Some(tile),
                _ => None,
            })
            .collect();
        assert_eq!(degraded, vec![2]);
        drop(service);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn warm_cache_serves_every_tile_without_computing() {
        let gds = small_gds(40);
        let spec = spec();
        let flat =
            flat_report(&spec, &gds::from_bytes(&gds).expect("lib")).expect("flat").render_text(&spec);
        let root = std::env::temp_dir().join(format!("dfm-signoff-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = Arc::new(TileCache::open(&root, None).expect("cache"));
        let with_cache = |threads| {
            SignoffService::with_config(ServiceConfig {
                cache: Some(Arc::clone(&cache)),
                ..ServiceConfig::new(threads)
            })
        };
        // Cold: every tile computes and stores; nothing hits.
        let cold = with_cache(2);
        let id = cold.submit(spec.clone(), gds.clone()).expect("submit");
        let status = cold.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        assert_eq!(status.tiles_cached, 0, "cold run hits nothing");
        let stores = cold
            .events(id, 0)
            .expect("events")
            .iter()
            .filter(|e| matches!(e.kind, JobEventKind::TileCacheStore { .. }))
            .count();
        assert_eq!(stores, status.tiles_total, "every clean tile stored");
        assert_eq!(cache.len(), status.tiles_total);
        drop(cold);
        // Warm: every tile hits; the pool never runs a task; the report
        // is byte-identical to the flat run.
        let warm = with_cache(2);
        let id = warm.submit(spec.clone(), gds).expect("submit");
        let status = warm.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        assert_eq!(status.tiles_cached, status.tiles_total, "fully warm");
        assert_eq!(warm.pool_stats().completed, 0, "no tile ever reached the pool");
        let events = warm.events(id, 0).expect("events");
        let hits = events
            .iter()
            .filter(|e| matches!(e.kind, JobEventKind::TileCacheHit { .. }))
            .count();
        assert_eq!(hits, status.tiles_total);
        assert!(
            events.iter().all(|e| !matches!(e.kind, JobEventKind::TileCacheStore { .. })),
            "a hit is never re-stored"
        );
        let (_, report) = warm.results(id, false).expect("results");
        assert_eq!(report.render_text(&spec), flat);
        drop(warm);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cache_read_faults_degrade_to_recompute_with_identical_bytes() {
        let gds = small_gds(41);
        let spec = spec();
        let flat =
            flat_report(&spec, &gds::from_bytes(&gds).expect("lib")).expect("flat").render_text(&spec);
        let root = std::env::temp_dir()
            .join(format!("dfm-signoff-cache-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = Arc::new(TileCache::open(&root, None).expect("cache"));
        // Prime the cache cleanly.
        let cold = SignoffService::with_config(ServiceConfig {
            cache: Some(Arc::clone(&cache)),
            ..ServiceConfig::new(2)
        });
        let id = cold.submit(spec.clone(), gds.clone()).expect("submit");
        cold.wait(id).expect("wait");
        drop(cold);
        // Warm, but tile 1's cache read faults: it recomputes (and
        // re-stores), everything else hits, bytes unchanged.
        let plan = FaultPlan::seeded(6)
            .with_rule(FaultRule::new(SITE_CACHE_READ, FaultAction::Error).key(1));
        let warm = SignoffService::with_config(ServiceConfig {
            cache: Some(Arc::clone(&cache)),
            fault_plane: Some(Arc::new(FaultPlane::new(plan))),
            ..ServiceConfig::new(2)
        });
        let id = warm.submit(spec.clone(), gds).expect("submit");
        let status = warm.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        assert_eq!(status.tiles_cached, status.tiles_total - 1);
        let events = warm.events(id, 0).expect("events");
        let stored: Vec<usize> = events
            .iter()
            .filter_map(|e| match e.kind {
                JobEventKind::TileCacheStore { tile } => Some(tile),
                _ => None,
            })
            .collect();
        assert_eq!(stored, vec![1], "only the faulted read recomputes and re-stores");
        let (_, report) = warm.results(id, false).expect("results");
        assert_eq!(report.render_text(&spec), flat);
        drop(warm);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn retried_tiles_are_never_cached() {
        let gds = small_gds(42);
        let spec = spec();
        let root = std::env::temp_dir()
            .join(format!("dfm-signoff-cache-retry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = Arc::new(TileCache::open(&root, None).expect("cache"));
        // Tile 2 panics once, then succeeds on attempt 1 — which must
        // NOT be stored; every other tile stores normally.
        let plan = FaultPlan::seeded(7).with_rule(
            FaultRule::new(SITE_TILE_COMPUTE, FaultAction::Panic).key(2).first_attempts(1),
        );
        let service = SignoffService::with_config(ServiceConfig {
            cache: Some(Arc::clone(&cache)),
            fault_plane: Some(Arc::new(FaultPlane::new(plan))),
            ..ServiceConfig::new(2)
        });
        let id = service.submit(spec.clone(), gds).expect("submit");
        let status = service.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        assert_eq!(cache.len(), status.tiles_total - 1, "the retried tile is absent");
        let ctx = {
            let m = JobContext::build(&spec, &service.job(id).expect("job").m.lock().expect("lock").gds)
                .expect("ctx");
            m
        };
        assert!(!cache.contains(ctx.cache_key(2)), "retried tile never cached");
        drop(service);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn scored_job_reports_the_flat_score_with_event_before_done() {
        let gds = small_gds(43);
        let spec = JobSpec { score: Some("default".to_string()), ..spec() };
        let (_, flat) =
            crate::scoring::flat_score(&spec, &gds::from_bytes(&gds).expect("lib")).expect("flat");
        let service = SignoffService::new(2, None);
        let id = service.submit(spec.clone(), gds).expect("submit");
        let status = service.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        assert_eq!(status.score(), Some(flat.score));
        assert_eq!(status.score_pass, Some(flat.pass));
        let (_, json) = service.score_json(id).expect("score json");
        assert_eq!(json, flat.render(), "service score == flat score, byte for byte");
        // The score event lands between the last commit and Done.
        let events = service.events(id, 0).expect("events");
        let score_pos = events
            .iter()
            .position(|e| matches!(e.kind, JobEventKind::Score { .. }))
            .expect("score event");
        assert!(matches!(
            events.last().map(|e| &e.kind),
            Some(JobEventKind::State(JobState::Done))
        ));
        assert_eq!(score_pos, events.len() - 2, "score immediately precedes Done");
        match events[score_pos].kind {
            JobEventKind::Score { bits, pass } => {
                assert_eq!(f64::from_bits(bits), flat.score);
                assert_eq!(pass, flat.pass);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn unscored_job_has_no_score() {
        let service = SignoffService::new(2, None);
        let id = service.submit(spec(), small_gds(35)).expect("submit");
        let status = service.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        assert_eq!(status.score_bits, None);
        let err = service.score_json(id).expect_err("no score");
        assert!(err.contains("without scoring"), "{err}");
        let events = service.events(id, 0).expect("events");
        assert!(
            events.iter().all(|e| !matches!(e.kind, JobEventKind::Score { .. })),
            "no score event without a score spec"
        );
    }

    #[test]
    fn watchdog_timeout_retries_and_completes() {
        let gds = small_gds(39);
        let spec = spec();
        let flat =
            flat_report(&spec, &gds::from_bytes(&gds).expect("lib")).expect("flat").render_text(&spec);
        // Tile 1's first attempt is stuck past the watchdog budget; the
        // retry is clean (attempt filter) and the job finishes Done.
        let plan = FaultPlan::seeded(4).with_rule(
            FaultRule::new(SITE_TILE_DELAY, FaultAction::Delay { vms: 60_000 })
                .key(1)
                .first_attempts(1),
        );
        let service = faulty_service(2, plan);
        let id = service.submit(spec.clone(), gds).expect("submit");
        let status = service.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        let events = service.events(id, 0).expect("events");
        let retried = events.iter().any(|e| {
            matches!(&e.kind, JobEventKind::TileRetry { tile: 1, reason, .. }
                if reason.contains("watchdog"))
        });
        assert!(retried, "expected a watchdog retry event: {events:?}");
        let (_, report) = service.results(id, false).expect("results");
        assert_eq!(report.render_text(&spec), flat);
    }
}
