//! The job store and scheduler: states, per-tile progress, monotonic
//! event sequences, incremental results, checkpoint/resume.
//!
//! One [`SignoffService`] owns one persistent [`WorkerPool`]. A
//! submitted job decomposes into `tile_count` independent tasks; each
//! task computes its [`TilePartial`] (pure), checkpoints it (when a
//! checkpoint root is configured), records it in the job, and emits a
//! `TileDone` event with the next sequence number. The last tile in
//! triggers the ordered merge. Because partials are pure and the merge
//! is ordered, *nothing* the scheduler does — worker count, dispatch
//! order, cancellation, process death — can change the final bytes.

use crate::checkpoint::{list_job_dirs, JobDir};
use crate::job::{JobContext, TilePartial};
use crate::report::SignoffReport;
use crate::spec::JobSpec;
use dfm_par::{CancelToken, PoolStats, WorkerPool};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Environment variable (milliseconds) that slows every tile task
/// down. A test/CI hook: it widens the window in which a kill or
/// cancel lands mid-job, without touching any result bytes.
pub const TILE_DELAY_ENV: &str = "DFM_SIGNOFF_TILE_DELAY_MS";

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, tasks not yet dispatched.
    Queued,
    /// Tile tasks are dispatched to the pool.
    Running,
    /// Holds a subset of tiles and is not running (checkpoint loaded
    /// after a restart, waiting for `resume`).
    Partial,
    /// All tiles merged; final report available.
    Done,
    /// A tile task or the merge failed; diagnostic recorded.
    Failed,
    /// Cancelled by request; completed tiles are kept for `resume`.
    Cancelled,
}

impl JobState {
    /// True for states no event can follow (except via `resume`).
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }

    /// Stable lower-case name used on the wire.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Partial => "partial",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses [`JobState::name`] back.
    pub fn from_name(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "partial" => JobState::Partial,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What an event records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobEventKind {
    /// The job entered a new state.
    State(JobState),
    /// A tile completed.
    TileDone {
        /// The completed tile's index.
        tile: usize,
        /// Tiles completed so far (including this one).
        completed: usize,
        /// Total tiles in the job.
        total: usize,
    },
}

/// One entry in a job's event log. Sequence numbers are per-job,
/// start at 0, and increase by exactly 1 per event, so a client
/// polling `events(since)` can prove it has seen everything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobEvent {
    /// Monotonic per-job sequence number.
    pub seq: u64,
    /// What happened.
    pub kind: JobEventKind,
}

/// A point-in-time summary of a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobStatus {
    /// Job id (service-wide, monotonically assigned).
    pub id: u64,
    /// The spec's client-chosen name.
    pub name: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Total tiles (0 until the layout is parsed).
    pub tiles_total: usize,
    /// Completed tiles.
    pub tiles_done: usize,
    /// Next event sequence number (== number of events so far).
    pub next_seq: u64,
    /// Failure diagnostic, when `state == Failed`.
    pub error: Option<String>,
}

struct JobMut {
    spec: JobSpec,
    gds: Vec<u8>,
    ctx: Option<Arc<JobContext>>,
    state: JobState,
    cancel: CancelToken,
    partials: BTreeMap<usize, TilePartial>,
    events: Vec<JobEvent>,
    error: Option<String>,
    report: Option<SignoffReport>,
}

impl JobMut {
    fn emit(&mut self, kind: JobEventKind) {
        let seq = self.events.len() as u64;
        self.events.push(JobEvent { seq, kind });
    }

    fn set_state(&mut self, state: JobState) {
        self.state = state;
        self.emit(JobEventKind::State(state));
    }

    fn tiles_total(&self) -> usize {
        self.ctx.as_ref().map_or(0, |c| c.tile_count())
    }
}

struct Job {
    id: u64,
    dir: Option<JobDir>,
    m: Mutex<JobMut>,
    cv: Condvar,
}

impl Job {
    fn status(&self) -> JobStatus {
        let m = self.m.lock().expect("job lock");
        JobStatus {
            id: self.id,
            name: m.spec.name.clone(),
            state: m.state,
            tiles_total: m.tiles_total(),
            tiles_done: m.partials.len(),
            next_seq: m.events.len() as u64,
            error: m.error.clone(),
        }
    }
}

/// The signoff job service. See the module docs.
pub struct SignoffService {
    pool: WorkerPool,
    jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    ckpt_root: Option<PathBuf>,
    tile_delay: Duration,
}

impl SignoffService {
    /// Creates a service with `threads` pool workers and an optional
    /// checkpoint root. When the root already holds job directories
    /// from an earlier process, they are loaded back in state
    /// [`JobState::Partial`] with their surviving tile set, ready for
    /// [`SignoffService::resume`].
    pub fn new(threads: usize, ckpt_root: Option<PathBuf>) -> SignoffService {
        let tile_delay = std::env::var(TILE_DELAY_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map_or(Duration::ZERO, Duration::from_millis);
        SignoffService::with_tile_delay(threads, ckpt_root, tile_delay)
    }

    /// Like [`SignoffService::new`] with an explicit per-tile delay
    /// (tests use this instead of the environment hook).
    pub fn with_tile_delay(
        threads: usize,
        ckpt_root: Option<PathBuf>,
        tile_delay: Duration,
    ) -> SignoffService {
        let service = SignoffService {
            pool: WorkerPool::new(threads),
            jobs: Mutex::new(BTreeMap::new()),
            ckpt_root,
            tile_delay,
        };
        service.load_persisted_jobs();
        service
    }

    fn load_persisted_jobs(&self) {
        let Some(root) = &self.ckpt_root else { return };
        let mut jobs = self.jobs.lock().expect("jobs lock");
        for id in list_job_dirs(root) {
            let dir = JobDir::new(root, id);
            let Ok((spec_json, gds)) = dir.load_submission() else { continue };
            let Ok(spec) = JobSpec::from_json_text(&spec_json) else { continue };
            // The tile set is loaded lazily at resume/results time
            // (it needs the context for the tile count); record the
            // job as Partial so it is visible and resumable.
            let mut m = JobMut {
                spec,
                gds,
                ctx: None,
                state: JobState::Partial,
                cancel: CancelToken::new(),
                partials: BTreeMap::new(),
                events: Vec::new(),
                error: None,
                report: None,
            };
            m.emit(JobEventKind::State(JobState::Partial));
            jobs.insert(id, Arc::new(Job { id, dir: Some(dir), m: Mutex::new(m), cv: Condvar::new() }));
        }
    }

    /// Worker-pool load counters (queue depth, in-flight, peaks).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Submits a job: validates the spec, parses the GDS (malformed
    /// bytes are rejected here with a diagnostic), persists the
    /// submission when checkpointing is on, and dispatches every tile.
    ///
    /// # Errors
    ///
    /// Spec/GDS diagnostics; nothing is enqueued on error.
    pub fn submit(&self, spec: JobSpec, gds: Vec<u8>) -> Result<u64, String> {
        let ctx = Arc::new(JobContext::build(&spec, &gds)?);
        let id = {
            let jobs = self.jobs.lock().expect("jobs lock");
            jobs.keys().next_back().map_or(1, |last| last + 1)
        };
        let dir = match &self.ckpt_root {
            None => None,
            Some(root) => {
                let dir = JobDir::new(root, id);
                dir.persist_submission(&spec.to_json().render(), &gds)?;
                Some(dir)
            }
        };
        let mut m = JobMut {
            spec,
            gds,
            ctx: Some(Arc::clone(&ctx)),
            state: JobState::Queued,
            cancel: CancelToken::new(),
            partials: BTreeMap::new(),
            events: Vec::new(),
            error: None,
            report: None,
        };
        m.emit(JobEventKind::State(JobState::Queued));
        let job = Arc::new(Job { id, dir, m: Mutex::new(m), cv: Condvar::new() });
        self.jobs.lock().expect("jobs lock").insert(id, Arc::clone(&job));
        self.dispatch(&job, &ctx, (0..ctx.tile_count()).collect());
        Ok(id)
    }

    /// Dispatches the given tiles, moving the job to Running (or
    /// straight to the merge when nothing is missing).
    fn dispatch(&self, job: &Arc<Job>, ctx: &Arc<JobContext>, tiles: Vec<usize>) {
        let token = {
            let mut m = job.m.lock().expect("job lock");
            m.set_state(JobState::Running);
            job.cv.notify_all();
            m.cancel.clone()
        };
        if tiles.is_empty() {
            finalize_if_complete(job, ctx);
            return;
        }
        for tile in tiles {
            let job = Arc::clone(job);
            let ctx = Arc::clone(ctx);
            let delay = self.tile_delay;
            self.pool.submit_cancellable(&token, move || {
                run_tile(&job, &ctx, tile, delay);
            });
        }
    }

    fn job(&self, id: u64) -> Result<Arc<Job>, String> {
        self.jobs
            .lock()
            .expect("jobs lock")
            .get(&id)
            .cloned()
            .ok_or_else(|| format!("no such job: {id}"))
    }

    /// A job's current status.
    ///
    /// # Errors
    ///
    /// Unknown job id.
    pub fn status(&self, id: u64) -> Result<JobStatus, String> {
        Ok(self.job(id)?.status())
    }

    /// Statuses of every job, by id.
    pub fn list(&self) -> Vec<JobStatus> {
        let jobs: Vec<Arc<Job>> =
            self.jobs.lock().expect("jobs lock").values().cloned().collect();
        jobs.iter().map(|j| j.status()).collect()
    }

    /// The job's events with `seq >= since` — the incremental
    /// delta-stream a client polls.
    ///
    /// # Errors
    ///
    /// Unknown job id.
    pub fn events(&self, id: u64, since: u64) -> Result<Vec<JobEvent>, String> {
        let job = self.job(id)?;
        let m = job.m.lock().expect("job lock");
        let start = (since as usize).min(m.events.len());
        Ok(m.events[start..].to_vec())
    }

    /// The job's merged report.
    ///
    /// For a Done job this is the cached final report. With
    /// `partial = true` a non-terminal job answers with the ordered
    /// merge of its **contiguous completed prefix** `[0..k)` — an
    /// exact signoff of the region covered so far.
    ///
    /// # Errors
    ///
    /// Unknown id, failed job, or (without `partial`) a job that has
    /// not finished.
    pub fn results(&self, id: u64, partial: bool) -> Result<(JobStatus, SignoffReport), String> {
        let job = self.job(id)?;
        self.ensure_loaded(&job)?;
        let m = job.m.lock().expect("job lock");
        if let Some(report) = &m.report {
            let status = status_of(&job, &m);
            return Ok((status, report.clone()));
        }
        if let Some(err) = &m.error {
            return Err(format!("job {id} failed: {err}"));
        }
        if !partial {
            return Err(format!("job {id} is {}; pass partial=true for a prefix merge", m.state));
        }
        let ctx = m.ctx.clone().ok_or("job context missing")?;
        let prefix: Vec<TilePartial> = m
            .partials
            .values()
            .enumerate()
            .take_while(|(i, p)| p.tile == *i)
            .map(|(_, p)| p.clone())
            .collect();
        let report = ctx.merge(&prefix)?;
        let status = status_of(&job, &m);
        drop(m);
        Ok((status, report))
    }

    /// Like [`SignoffService::results`], but rendered to the canonical
    /// report text with the job's own spec — the form that travels
    /// over the wire and is byte-compared in tests.
    ///
    /// # Errors
    ///
    /// Same as [`SignoffService::results`].
    pub fn report_text(&self, id: u64, partial: bool) -> Result<(JobStatus, String), String> {
        let (status, report) = self.results(id, partial)?;
        let job = self.job(id)?;
        let spec = job.m.lock().expect("job lock").spec.clone();
        Ok((status, report.render_text(&spec)))
    }

    /// Cancels a running/queued job. Completed tiles are kept (and
    /// remain checkpointed) so the job can be resumed.
    ///
    /// # Errors
    ///
    /// Unknown id or a Done/Failed job.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, String> {
        let job = self.job(id)?;
        let mut m = job.m.lock().expect("job lock");
        match m.state {
            JobState::Done | JobState::Failed => {
                return Err(format!("job {id} is already {}", m.state))
            }
            JobState::Cancelled => {}
            _ => {
                m.cancel.cancel();
                m.set_state(JobState::Cancelled);
                job.cv.notify_all();
            }
        }
        Ok(status_of(&job, &m))
    }

    /// Resumes a Partial or Cancelled job: re-reads any checkpointed
    /// tiles, mints a fresh cancel token, and dispatches exactly the
    /// missing tiles. The eventual report is bit-identical to an
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Unknown id, a job in a non-resumable state, or context-rebuild
    /// diagnostics.
    pub fn resume(&self, id: u64) -> Result<JobStatus, String> {
        let job = self.job(id)?;
        self.ensure_loaded(&job)?;
        let (ctx, missing) = {
            let mut m = job.m.lock().expect("job lock");
            match m.state {
                JobState::Partial | JobState::Cancelled => {}
                s => return Err(format!("job {id} is {s}; only partial/cancelled jobs resume")),
            }
            m.cancel = CancelToken::new();
            let ctx = m.ctx.clone().ok_or("job context missing")?;
            let missing: Vec<usize> =
                (0..ctx.tile_count()).filter(|t| !m.partials.contains_key(t)).collect();
            (ctx, missing)
        };
        self.dispatch(&job, &ctx, missing);
        Ok(job.status())
    }

    /// Blocks until the job reaches a terminal state, then returns its
    /// status.
    ///
    /// # Errors
    ///
    /// Unknown job id.
    pub fn wait(&self, id: u64) -> Result<JobStatus, String> {
        let job = self.job(id)?;
        let mut m = job.m.lock().expect("job lock");
        while !m.state.is_terminal() {
            m = job.cv.wait(m).expect("job wait");
        }
        Ok(status_of(&job, &m))
    }

    /// Rebuilds the job context and reloads checkpointed tiles for a
    /// job that was constructed from disk (ctx == None).
    fn ensure_loaded(&self, job: &Arc<Job>) -> Result<(), String> {
        let mut m = job.m.lock().expect("job lock");
        if m.ctx.is_some() {
            return Ok(());
        }
        let ctx = Arc::new(JobContext::build(&m.spec, &m.gds)?);
        if let Some(dir) = &job.dir {
            for p in dir.load_tiles(ctx.tile_count()) {
                m.partials.insert(p.tile, p);
            }
        }
        m.ctx = Some(ctx);
        Ok(())
    }
}

impl Drop for SignoffService {
    fn drop(&mut self) {
        // The pool's Drop drains the queue; cancel every job so queued
        // tasks are skipped at dequeue instead of executed.
        let jobs: Vec<Arc<Job>> =
            self.jobs.lock().expect("jobs lock").values().cloned().collect();
        for job in jobs {
            let m = job.m.lock().expect("job lock");
            m.cancel.cancel();
        }
    }
}

fn status_of(job: &Job, m: &JobMut) -> JobStatus {
    JobStatus {
        id: job.id,
        name: m.spec.name.clone(),
        state: m.state,
        tiles_total: m.tiles_total(),
        tiles_done: m.partials.len(),
        next_seq: m.events.len() as u64,
        error: m.error.clone(),
    }
}

/// The body of one pool task: compute the tile, checkpoint it, record
/// it, emit the event, and finalize when it was the last one.
fn run_tile(job: &Arc<Job>, ctx: &Arc<JobContext>, tile: usize, delay: Duration) {
    {
        let m = job.m.lock().expect("job lock");
        if m.cancel.is_cancelled() || m.state != JobState::Running {
            return;
        }
        if m.partials.contains_key(&tile) {
            return; // duplicate dispatch (e.g. overlapping resume)
        }
    }
    if !delay.is_zero() {
        std::thread::sleep(delay);
    }
    let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.compute_tile(tile)));
    let partial = match computed {
        Ok(p) => p,
        Err(panic) => {
            let msg = panic_message(&panic);
            let mut m = job.m.lock().expect("job lock");
            if !m.state.is_terminal() {
                m.error = Some(format!("tile {tile} panicked: {msg}"));
                m.set_state(JobState::Failed);
                m.cancel.cancel();
                job.cv.notify_all();
            }
            return;
        }
    };
    // Checkpoint BEFORE recording completion: a crash after the write
    // re-loads the tile; a crash before it recomputes it. Either way
    // the partial's value is identical (purity), so resume converges.
    if let Some(dir) = &job.dir {
        if let Err(e) = dir.write_tile(&partial) {
            let mut m = job.m.lock().expect("job lock");
            if !m.state.is_terminal() {
                m.error = Some(format!("checkpoint write failed: {e}"));
                m.set_state(JobState::Failed);
                m.cancel.cancel();
                job.cv.notify_all();
            }
            return;
        }
    }
    {
        let mut m = job.m.lock().expect("job lock");
        if m.state != JobState::Running {
            // Cancelled (or failed) while we computed: keep the
            // checkpoint on disk but do not mutate a terminal job.
            return;
        }
        m.partials.insert(tile, partial);
        let completed = m.partials.len();
        let total = ctx.tile_count();
        m.emit(JobEventKind::TileDone { tile, completed, total });
        job.cv.notify_all();
    }
    finalize_if_complete(job, ctx);
}

/// Runs the ordered merge once every tile is in.
fn finalize_if_complete(job: &Arc<Job>, ctx: &Arc<JobContext>) {
    let partials: Vec<TilePartial> = {
        let m = job.m.lock().expect("job lock");
        if m.state != JobState::Running || m.partials.len() != ctx.tile_count() {
            return;
        }
        m.partials.values().cloned().collect()
    };
    let merged = ctx.merge(&partials);
    let mut m = job.m.lock().expect("job lock");
    if m.state != JobState::Running {
        return;
    }
    match merged {
        Ok(report) => {
            m.report = Some(report);
            m.set_state(JobState::Done);
        }
        Err(e) => {
            m.error = Some(format!("merge failed: {e}"));
            m.set_state(JobState::Failed);
        }
    }
    job.cv.notify_all();
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::flat_report;
    use dfm_layout::{gds, generate, layers, Technology};

    fn small_gds(seed: u64) -> Vec<u8> {
        let tech = Technology::n65();
        let params = generate::RoutedBlockParams {
            width: 6_000,
            height: 6_000,
            ..Default::default()
        };
        gds::to_bytes(&generate::routed_block(&tech, params, seed)).expect("gds")
    }

    fn spec() -> JobSpec {
        JobSpec {
            tile: 1700,
            halo: 64,
            litho_layer: Some(layers::METAL1),
            ..JobSpec::default()
        }
    }

    #[test]
    fn submitted_job_finishes_with_flat_bytes_at_several_worker_counts() {
        let gds = small_gds(31);
        let spec = spec();
        let flat =
            flat_report(&spec, &gds::from_bytes(&gds).expect("lib")).expect("flat").render_text(&spec);
        for threads in [1usize, 2, 8] {
            let service = SignoffService::new(threads, None);
            let id = service.submit(spec.clone(), gds.clone()).expect("submit");
            let status = service.wait(id).expect("wait");
            assert_eq!(status.state, JobState::Done, "threads={threads}: {:?}", status.error);
            assert_eq!(status.tiles_done, status.tiles_total);
            let (_, report) = service.results(id, false).expect("results");
            assert_eq!(report.render_text(&spec), flat, "threads={threads}");
        }
    }

    #[test]
    fn events_are_gapless_and_monotonic() {
        let service = SignoffService::new(4, None);
        let id = service.submit(spec(), small_gds(32)).expect("submit");
        service.wait(id).expect("wait");
        let events = service.events(id, 0).expect("events");
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "gapless sequence");
        }
        assert!(matches!(events.first().map(|e| &e.kind), Some(JobEventKind::State(JobState::Queued))));
        assert!(matches!(events.last().map(|e| &e.kind), Some(JobEventKind::State(JobState::Done))));
        // Delta poll: everything from the midpoint on, nothing more.
        let mid = events.len() as u64 / 2;
        let tail = service.events(id, mid).expect("tail");
        assert_eq!(tail, events[mid as usize..]);
    }

    #[test]
    fn bad_submissions_are_rejected_with_diagnostics() {
        let service = SignoffService::new(1, None);
        let err = service.submit(spec(), b"garbage".to_vec()).expect_err("bad gds");
        assert!(err.contains("layout rejected"), "{err}");
        let err = service
            .submit(JobSpec { tech: "n3".into(), ..spec() }, small_gds(33))
            .expect_err("bad tech");
        assert!(err.contains("unknown technology"), "{err}");
        assert!(service.status(99).is_err());
    }

    #[test]
    fn cancel_keeps_partials_and_resume_completes_identically() {
        let gds = small_gds(34);
        let spec = spec();
        let flat =
            flat_report(&spec, &gds::from_bytes(&gds).expect("lib")).expect("flat").render_text(&spec);
        let service = SignoffService::with_tile_delay(2, None, Duration::from_millis(30));
        let id = service.submit(spec.clone(), gds).expect("submit");
        let status = service.cancel(id).expect("cancel");
        assert_eq!(status.state, JobState::Cancelled);
        assert!(status.tiles_done < status.tiles_total, "cancel landed mid-run");
        assert!(service.results(id, false).is_err(), "no final results while cancelled");
        let status = service.resume(id).expect("resume");
        assert_eq!(status.state, JobState::Running);
        let status = service.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        let (_, report) = service.results(id, false).expect("results");
        assert_eq!(report.render_text(&spec), flat);
    }

    #[test]
    fn partial_results_cover_the_completed_prefix() {
        let service = SignoffService::new(2, None);
        let id = service.submit(spec(), small_gds(35)).expect("submit");
        service.wait(id).expect("wait");
        // Done job: partial=true must agree with the final report.
        let (_, full) = service.results(id, false).expect("full");
        let (_, partial) = service.results(id, true).expect("partial");
        assert_eq!(full, partial);
    }
}
