//! Horizontal tile-range sharding: a coordinator fans one job out to
//! N shard servers over the v2 wire protocol and merges their ordered
//! outcome streams back through the exact commit machinery a single
//! process uses — so the coordinator's event stream, report, and
//! digests are byte-identical to a single-process run at any shard
//! count, worker count, and cache temperature.
//!
//! # Partition function
//!
//! Shard `k` of `n` owns the contiguous half-open tile range
//! `[k*t/n, (k+1)*t/n)` of a `t`-tile job ([`partition_range`]) — the
//! same balanced integer split at every participant, so the owner of a
//! tile ([`owner_of`]) is a pure function of `(t, n, k)` and never a
//! negotiation.
//!
//! # Merge invariant
//!
//! A shard runs its range as an ordinary local job and records, per
//! committed tile, a [`TileOutcome`]: the retries that preceded the
//! commit, then either the encoded partial (with its checkpoint/cache
//! marks) or the quarantine verdict. The coordinator ingests outcomes
//! into the same `pending_commit`/`commit_queue` structures local
//! attempts feed, so events still commit in ascending tile order and
//! the report merge folds the identical partial set — which tiles ran
//! where is unobservable in the bytes.
//!
//! # Failure matrix
//!
//! Coordinator↔shard sockets are first-class fault sites
//! ([`SITE_SHARD_DISPATCH`], [`SITE_SHARD_PULL`],
//! [`SITE_SHARD_HEARTBEAT`], [`SITE_COORD_INGEST`]). Any puller
//! failure (injected or real — connect refusal, torn frame, settled
//! shard with unreported tiles, or lease expiry) declares that shard
//! dead: its outstanding tiles re-dispatch to the lowest-indexed
//! surviving shard under a bumped generation (recovering through the
//! tile cache where warm), and when no shard survives the lost tiles
//! quarantine with a per-shard `shard {k} lost: …` manifest and the
//! job settles `Partial`. A killed coordinator resumes from its
//! checkpoint root: pullers re-attach to the shards' retained
//! `(origin, gen)` jobs and replay outcome logs from the last merged
//! prefix.
//!
//! # Lease liveness
//!
//! Each empty pull is followed by a `shard.heartbeat` probe. An
//! on-time ack renews the shard's lease (resets the idle clock), so an
//! idle-but-alive shard can never be expired by pull timeouts alone; a
//! dropped heartbeat (injected at [`SITE_SHARD_HEARTBEAT`]) leaves the
//! idle clock accruing [`PULL_POLL_VMS`] per poll toward the
//! virtual-clock watchdog budget, a late heartbeat (delay rule)
//! additionally charges its delay, and a heartbeat transport failure
//! is an immediate loss.
//!
//! # Planned drain handoff
//!
//! A shard whose service is draining (`shutdown --drain`) settles its
//! shard jobs and raises the `draining` flag on pulls. The puller
//! drains every flushed outcome first, then hands the remainder to a
//! survivor as a *planned handoff*: counted in
//! [`ShardStats::tiles_drained`] (never `tiles_redispatched`), no loss
//! manifest, no loss adjudication. The generation still bumps — the
//! survivor needs a fresh `(coord, origin, gen)` idempotency key — but
//! the churn a real loss causes (watchdog expiry, quarantine
//! adjudication) is skipped entirely.

use crate::client::Client;
use crate::job::JobContext;
use crate::service::{
    ingest_shard_outcome, quarantine_lost_tiles, set_shard_run, shard_payload, shard_run_live,
    Job, RunShared,
};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Fault site: a coordinator's dispatch/attach exchange with one
/// shard. Keyed by shard index; `attempt` is the dispatch generation.
pub const SITE_SHARD_DISPATCH: &str = "coord.dispatch";

/// Fault site: one coordinator pull from one shard's outcome stream.
/// Keyed by shard index; `attempt` is the pull counter on that
/// `(shard, generation)` — a firing `Drop` rule fails the puller, so
/// the shard is declared dead and its outstanding range re-dispatched.
pub const SITE_SHARD_PULL: &str = "coord.pull";

/// Fault site: one coordinator⇄shard heartbeat. Keyed by shard index;
/// `attempt` is the heartbeat counter on that `(shard, generation)`.
/// A `Drop` rule loses the heartbeat (no lease renewal), a `Delay`
/// rule makes the ack late (its virtual delay charges the idle clock),
/// and a transport error is an immediate shard loss.
pub const SITE_SHARD_HEARTBEAT: &str = "shard.heartbeat";

/// Crash site: the coordinator dies after pulling a shard outcome but
/// before ingesting it into the merge prefix. Keyed by shard index;
/// `attempt` is the per-puller ingest counter. Recovery replays the
/// shard's retained outcome log from the last merged prefix, so the
/// un-ingested outcome is never lost.
pub const SITE_COORD_INGEST: &str = "coord.ingest";

/// Virtual milliseconds charged against
/// [`crate::SupervisionPolicy::watchdog_vms`] per pull that returns no
/// new outcome; a shard that stays silent past the budget is declared
/// dead by the virtual-clock watchdog.
pub const PULL_POLL_VMS: u64 = 8;

/// Real milliseconds between outcome pulls.
const PULL_SLEEP_MS: u64 = 5;

/// The half-open tile range `[k*total/n, (k+1)*total/n)` shard `k` of
/// `n` owns — contiguous, disjoint, covering `[0, total)`, and with
/// per-shard sizes differing by at most one tile.
pub fn partition_range(total: usize, n: u64, k: u64) -> (usize, usize) {
    let (total, n, k) = (total as u64, n.max(1), k);
    let lo = (k * total) / n;
    let hi = ((k + 1) * total) / n;
    (lo as usize, hi as usize)
}

/// The shard index (`0..n`) that owns `tile` under
/// [`partition_range`].
pub fn owner_of(total: usize, n: u64, tile: usize) -> u64 {
    let n = n.max(1);
    (0..n)
        .find(|&k| tile < partition_range(total, n, k).1)
        .unwrap_or(n - 1)
}

/// Compresses an ascending tile set into minimal half-open
/// `(lo, hi)` ranges — the wire shape of a dispatched tile set.
pub fn compress_ranges(tiles: impl IntoIterator<Item = usize>) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    for t in tiles {
        match out.last_mut() {
            Some((_, hi)) if *hi == t => *hi = t + 1,
            _ => out.push((t, t + 1)),
        }
    }
    out
}

/// Expands half-open ranges back into the ascending tile list,
/// validating shape and bounds.
///
/// # Errors
///
/// Empty or inverted ranges, out-of-order ranges, and ranges past
/// `total`.
pub fn expand_ranges(ranges: &[(usize, usize)], total: usize) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    let mut floor = 0;
    for &(lo, hi) in ranges {
        if lo >= hi {
            return Err(format!("empty tile range [{lo}, {hi})"));
        }
        if lo < floor {
            return Err(format!("tile range [{lo}, {hi}) overlaps or is out of order"));
        }
        if hi > total {
            return Err(format!("tile range [{lo}, {hi}) exceeds {total} tiles"));
        }
        out.extend(lo..hi);
        floor = hi;
    }
    Ok(out)
}

/// One retry a shard recorded ahead of a tile's commit — replayed by
/// the coordinator as the identical `TileRetry` event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TileRetry {
    /// The failed attempt (0-based).
    pub attempt: u64,
    /// Virtual-clock backoff recorded for the retry.
    pub backoff_vms: u64,
    /// The failure's diagnostic.
    pub reason: String,
}

/// How a shard-side tile result interacted with the shard's cache —
/// replayed so cold/warm coordinator event streams stay byte-identical
/// to single-process runs at the same cache temperature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TileCacheMark {
    /// Served from the shard's cache.
    Hit,
    /// Computed and stored into the shard's cache.
    Stored,
    /// Computed; not cached.
    None,
}

/// A committed tile's terminal verdict on the shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TileOutcomeKind {
    /// The tile completed; `data` is the framed partial
    /// ([`crate::checkpoint::encode_tile_partial`]).
    Done {
        /// Encoded [`crate::TilePartial`] bytes.
        data: Vec<u8>,
        /// Every checkpoint-write attempt failed on the shard.
        ckpt_degraded: bool,
        /// The shard-side cache interaction.
        cache: TileCacheMark,
    },
    /// The tile exhausted its attempt budget on the shard.
    Quarantined {
        /// Failed attempts consumed.
        attempts: u64,
        /// The last failure's diagnostic.
        reason: String,
    },
}

/// One entry of a shard job's monotonic outcome log: everything the
/// coordinator needs to replay the tile's commit byte-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TileOutcome {
    /// The committed tile's index.
    pub tile: usize,
    /// Retries that preceded the commit, in attempt order.
    pub retries: Vec<TileRetry>,
    /// The terminal verdict.
    pub kind: TileOutcomeKind,
}

/// What a shard answered a dispatch or attach with: the shard-local
/// job id to pull outcomes from, plus the range it acknowledges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardGrant {
    /// The shard-local job id ([`crate::SignoffService::shard_outcomes`]).
    pub job: u64,
    /// Total tiles of the full job, as the shard computed it — a
    /// partition sanity check for the coordinator.
    pub total: usize,
    /// The half-open tile ranges the shard owns for this job.
    pub ranges: Vec<(usize, usize)>,
    /// True when the dispatch keyed an already-known `(origin, gen)` —
    /// the idempotent re-attach a restarted coordinator relies on.
    pub attached: bool,
}

/// Coordinator-side counters, published as bench gauges and by the
/// `coordinate` CLI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// Shards this coordinator fans out to.
    pub shards: usize,
    /// Tiles re-dispatched to a surviving shard after a shard loss.
    pub tiles_redispatched: u64,
    /// Tiles handed off to a surviving shard after a planned drain.
    pub tiles_drained: u64,
}

/// The fixed shard roster of a coordinating service.
pub(crate) struct ShardSet {
    pub(crate) addrs: Vec<String>,
    /// This coordinator's identity, part of every shard frame's
    /// idempotency key — two coordinator instances that happen to mint
    /// the same job id can never collide on a shared shard. Stable
    /// across restarts of a checkpointed coordinator (derived from its
    /// checkpoint root), unique per instance otherwise.
    pub(crate) coord: u64,
    pub(crate) redispatched: AtomicU64,
    pub(crate) drained: AtomicU64,
}

impl ShardSet {
    pub(crate) fn new(addrs: Vec<String>, coord: u64) -> ShardSet {
        ShardSet {
            addrs,
            coord,
            redispatched: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }
}

/// One dispatch epoch of one coordinated job: which shards are still
/// believed alive and which tiles each one still owes. A cancel or
/// resume replaces the job's run, and stale pullers notice via
/// pointer identity ([`shard_run_live`]).
pub(crate) struct ShardRun {
    state: Mutex<RunState>,
}

struct RunState {
    /// Bumped on every takeover, so re-dispatches key fresh
    /// `(origin, gen)` jobs on the target shard.
    gen: u64,
    alive: Vec<bool>,
    /// Tiles not yet ingested, per shard.
    outstanding: Vec<BTreeSet<usize>>,
}

impl ShardRun {
    fn finish_tile(&self, shard: usize, tile: usize) {
        let mut st = self.state.lock().expect("shard run lock");
        st.outstanding[shard].remove(&tile);
    }
}

/// Fans the dispatched tiles out across the shard roster by
/// [`owner_of`] and starts one puller thread per non-empty shard.
/// Called from `SignoffService::dispatch` with no job lock held.
pub(crate) fn dispatch_to_shards(
    shared: &Arc<RunShared>,
    set: &Arc<ShardSet>,
    job: &Arc<Job>,
    ctx: &Arc<JobContext>,
    tiles: &[usize],
) {
    let n = set.addrs.len();
    let total = ctx.tile_count();
    let mut owned: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for &t in tiles {
        owned[owner_of(total, n as u64, t) as usize].insert(t);
    }
    let run = Arc::new(ShardRun {
        state: Mutex::new(RunState { gen: 0, alive: vec![true; n], outstanding: owned.clone() }),
    });
    set_shard_run(job, Arc::clone(&run));
    for (k, mine) in owned.into_iter().enumerate() {
        if !mine.is_empty() {
            spawn_puller(shared, set, &run, job, ctx, k, 0, mine);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_puller(
    shared: &Arc<RunShared>,
    set: &Arc<ShardSet>,
    run: &Arc<ShardRun>,
    job: &Arc<Job>,
    ctx: &Arc<JobContext>,
    shard: usize,
    gen: u64,
    mine: BTreeSet<usize>,
) {
    let (shared, set, run, job, ctx) = (
        Arc::clone(shared),
        Arc::clone(set),
        Arc::clone(run),
        Arc::clone(job),
        Arc::clone(ctx),
    );
    std::thread::spawn(move || {
        match puller_loop(
            &shared,
            &run,
            &job,
            &ctx,
            &set.addrs[shard],
            set.coord,
            shard,
            gen,
            mine.clone(),
        ) {
            Ok(()) => {}
            Err(end) => handle_shard_end(&shared, &set, &run, &job, &ctx, shard, end),
        }
    });
}

/// Why a puller gave up on its shard.
enum PullerEnd {
    /// The shard is dead (transport failure, injected fault, settled
    /// with unreported tiles, or lease expiry) — adjudicate a loss.
    Loss(String),
    /// The shard's service is draining — a planned handoff, not a
    /// failure.
    Drained,
}

/// Streams one shard's outcome log into the coordinator job until the
/// shard has delivered every tile this puller owns. `Ok(())` means
/// either full delivery or a benign exit (the run was superseded by a
/// cancel/resume); `Err` is either a shard death or a planned drain
/// handoff ([`PullerEnd`]).
///
/// Loss diagnostics name shards by roster index, never by socket
/// address: the quarantine manifest of a degraded job must not vary
/// with ephemeral ports. The address only reaches stderr.
#[allow(clippy::too_many_arguments)]
fn puller_loop(
    shared: &Arc<RunShared>,
    run: &Arc<ShardRun>,
    job: &Arc<Job>,
    ctx: &Arc<JobContext>,
    addr: &str,
    coord: u64,
    shard: usize,
    gen: u64,
    mut mine: BTreeSet<usize>,
) -> Result<(), PullerEnd> {
    if let Some(plane) = &shared.plane {
        plane
            .maybe_error(SITE_SHARD_DISPATCH, shard as u64, gen)
            .map_err(|e| PullerEnd::Loss(format!("dispatch to shard {shard}: {e}")))?;
    }
    let mut client = Client::builder()
        .timeout(Duration::from_secs(10))
        .connect(addr)
        .map_err(|e| {
            eprintln!("coordinator: shard {shard} ({addr}) unreachable: {e}");
            PullerEnd::Loss(format!("shard {shard}: connect failed"))
        })?;
    let origin = job.id;
    // Re-attach first: a restarted coordinator (or a reconnecting
    // puller) finds the shard's retained (coord, origin, gen) job and
    // replays its outcome log instead of recomputing. A miss falls back
    // to the full dispatch carrying exactly this puller's tile ranges.
    let grant = match client.shard_attach(coord, origin, gen) {
        Ok(grant) => grant,
        Err(_) => {
            let (spec, gds) = shard_payload(job);
            let ranges = compress_ranges(mine.iter().copied());
            client
                .shard_dispatch(coord, origin, gen, spec, gds, Some(ranges))
                .map_err(|e| {
                    if e.contains("draining") {
                        PullerEnd::Drained
                    } else {
                        PullerEnd::Loss(format!("dispatch to shard {shard}: {e}"))
                    }
                })?
        }
    };
    if grant.total != ctx.tile_count() {
        return Err(PullerEnd::Loss(format!(
            "shard {shard} computed {} tiles, coordinator expects {}",
            grant.total,
            ctx.tile_count()
        )));
    }
    let mut since = 0;
    let mut pulls = 0;
    let mut heartbeats = 0;
    let mut ingested = 0;
    let mut idle_vms = 0;
    loop {
        if !shard_run_live(job, run) {
            return Ok(()); // superseded by cancel/resume/takeover
        }
        if let Some(plane) = &shared.plane {
            if plane.should_drop(SITE_SHARD_PULL, shard as u64, pulls) {
                return Err(PullerEnd::Loss(format!(
                    "pull from shard {shard}: injected socket drop"
                )));
            }
        }
        pulls += 1;
        let (outcomes, next, settled, draining) = client
            .shard_pull(grant.job, since)
            .map_err(|e| PullerEnd::Loss(format!("pull from shard {shard}: {e}")))?;
        since = next;
        let mut progressed = false;
        for outcome in &outcomes {
            if !mine.remove(&outcome.tile) {
                continue; // another generation's tile, or a duplicate
            }
            if let Some(plane) = &shared.plane {
                // Coordinator death between pull and merge: the
                // outcome stays in the shard's retained log, so the
                // restarted coordinator replays it on re-attach.
                if plane.crash_point(SITE_COORD_INGEST, shard as u64, ingested) {
                    return Err(PullerEnd::Loss(format!(
                        "injected crash at {SITE_COORD_INGEST} before merging tile {} from shard {shard}",
                        outcome.tile
                    )));
                }
            }
            ingested += 1;
            ingest_shard_outcome(shared, job, ctx, outcome);
            run.finish_tile(shard, outcome.tile);
            progressed = true;
        }
        if mine.is_empty() {
            return Ok(());
        }
        if settled {
            // A draining shard settles its jobs on purpose; every
            // flushed outcome was just drained above, so the remainder
            // is a planned handoff, not a loss.
            if draining {
                return Err(PullerEnd::Drained);
            }
            return Err(PullerEnd::Loss(format!(
                "shard {shard} settled with {} tiles unreported",
                mine.len()
            )));
        }
        if progressed {
            idle_vms = 0;
        } else {
            // Idle poll: probe liveness with a heartbeat. An on-time
            // ack renews the lease (idle clock resets); a dropped
            // heartbeat leaves the clock accruing toward the watchdog
            // budget; a late one additionally charges its delay; a
            // transport failure is an immediate loss.
            let hb = heartbeats;
            heartbeats += 1;
            let dropped = shared
                .plane
                .as_ref()
                .is_some_and(|p| p.should_drop(SITE_SHARD_HEARTBEAT, shard as u64, hb));
            let mut late_vms = 0;
            let mut renewed = false;
            if !dropped {
                if let Some(plane) = &shared.plane {
                    if let Some(vms) = plane.delay_vms(SITE_SHARD_HEARTBEAT, shard as u64, hb)
                    {
                        late_vms = vms;
                    }
                }
                client.shard_heartbeat(grant.job).map_err(|e| {
                    PullerEnd::Loss(format!("heartbeat to shard {shard}: {e}"))
                })?;
                renewed = true;
            }
            if renewed && late_vms == 0 {
                idle_vms = 0;
            } else {
                idle_vms += PULL_POLL_VMS + late_vms;
            }
            if let Some(budget) = shared.policy.watchdog_vms {
                if idle_vms >= budget {
                    return Err(PullerEnd::Loss(format!(
                        "lease expired: shard {shard} unrenewed for {idle_vms} vms (budget {budget} vms)"
                    )));
                }
            }
        }
        std::thread::sleep(Duration::from_millis(PULL_SLEEP_MS));
    }
}

/// Adjudicates a shard that stopped serving its range: exactly one
/// caller (the shard's failed puller) takes its outstanding tiles — to
/// the lowest-indexed surviving shard under a bumped generation, or
/// into per-tile quarantine (`shard {k} lost: …`) when no shard
/// survives. A planned drain ([`PullerEnd::Drained`]) rides the same
/// takeover but is accounted separately (`tiles_drained`) and never
/// logged as a loss.
fn handle_shard_end(
    shared: &Arc<RunShared>,
    set: &Arc<ShardSet>,
    run: &Arc<ShardRun>,
    job: &Arc<Job>,
    ctx: &Arc<JobContext>,
    shard: usize,
    end: PullerEnd,
) {
    let (err, planned) = match &end {
        PullerEnd::Loss(e) => (e.clone(), false),
        PullerEnd::Drained => (format!("shard {shard} draining"), true),
    };
    let err = err.as_str();
    // Exactly one caller wins the dead shard's tiles: mem::take under
    // the lock empties the set, so a racing second puller failure on
    // the same shard finds nothing and returns.
    enum Takeover {
        Redispatch { target: usize, gen: u64, lost: BTreeSet<usize> },
        Quarantine { lost: BTreeSet<usize> },
    }
    let takeover = {
        let mut st = run.state.lock().expect("shard run lock");
        st.alive[shard] = false;
        let lost = std::mem::take(&mut st.outstanding[shard]);
        if lost.is_empty() {
            return;
        }
        match st.alive.iter().position(|&a| a) {
            Some(target) => {
                st.gen += 1;
                st.outstanding[target].extend(lost.iter().copied());
                Takeover::Redispatch { target, gen: st.gen, lost }
            }
            None => Takeover::Quarantine { lost },
        }
    };
    if !shard_run_live(job, run) {
        return; // a cancel/resume superseded this epoch; nothing to save
    }
    match takeover {
        Takeover::Redispatch { target, gen, lost } => {
            if planned {
                set.drained.fetch_add(lost.len() as u64, Ordering::SeqCst);
                eprintln!(
                    "coordinator: shard {shard} draining; handing {} tiles to shard {target} (gen {gen})",
                    lost.len()
                );
            } else {
                set.redispatched.fetch_add(lost.len() as u64, Ordering::SeqCst);
                eprintln!(
                    "coordinator: shard {shard} lost ({err}); re-dispatching {} tiles to shard {target} (gen {gen})",
                    lost.len()
                );
            }
            spawn_puller(shared, set, run, job, ctx, target, gen, lost);
        }
        Takeover::Quarantine { lost } => {
            quarantine_lost_tiles(shared, job, ctx, shard, err, &lost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_disjointly_and_balances() {
        for total in [0usize, 1, 5, 16, 17, 97] {
            for n in [1u64, 2, 3, 5, 8, 16] {
                let mut seen = Vec::new();
                let mut sizes = Vec::new();
                for k in 0..n {
                    let (lo, hi) = partition_range(total, n, k);
                    assert!(lo <= hi && hi <= total, "t={total} n={n} k={k}");
                    seen.extend(lo..hi);
                    sizes.push(hi - lo);
                }
                assert_eq!(seen, (0..total).collect::<Vec<_>>(), "t={total} n={n}");
                let (min, max) =
                    (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced split: t={total} n={n} sizes {sizes:?}");
            }
        }
    }

    #[test]
    fn owner_agrees_with_partition() {
        for total in [1usize, 7, 24, 97] {
            for n in [1u64, 2, 3, 7] {
                for tile in 0..total {
                    let k = owner_of(total, n, tile);
                    let (lo, hi) = partition_range(total, n, k);
                    assert!((lo..hi).contains(&tile), "t={total} n={n} tile={tile} -> {k}");
                }
            }
        }
    }

    #[test]
    fn ranges_compress_and_expand_round_trip() {
        let tiles = vec![0usize, 1, 2, 5, 6, 9];
        let ranges = compress_ranges(tiles.iter().copied());
        assert_eq!(ranges, vec![(0, 3), (5, 7), (9, 10)]);
        assert_eq!(expand_ranges(&ranges, 10), Ok(tiles));
        assert_eq!(compress_ranges(std::iter::empty()), Vec::new());
        assert!(expand_ranges(&[(3, 3)], 10).is_err(), "empty range");
        assert!(expand_ranges(&[(4, 3)], 10).is_err(), "inverted range");
        assert!(expand_ranges(&[(0, 2), (1, 4)], 10).is_err(), "overlap");
        assert!(expand_ranges(&[(8, 11)], 10).is_err(), "out of bounds");
    }
}
