//! A blocking client for the signoff protocol — used by the
//! `dfm-signoff` CLI and the end-to-end tests.

use crate::codec::{read_frame, MAX_LINE_BYTES};
use crate::proto::{Request, Response};
use crate::service::{JobEvent, JobStatus};
use crate::spec::JobSpec;
use std::io::{BufReader, Write};
use std::net::TcpStream;

/// One connection to a signoff server.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:4517`).
    ///
    /// # Errors
    ///
    /// Socket diagnostics.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let writer = stream.try_clone().map_err(|e| format!("clone socket: {e}"))?;
        Ok(Client { writer, reader: BufReader::new(stream) })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Socket, framing, and protocol diagnostics; a server-side
    /// [`Response::Error`] is surfaced as `Err` too.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        let mut line = request.to_json().render();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))?;
        let reply = read_frame(&mut self.reader, MAX_LINE_BYTES)?
            .ok_or("server closed the connection")?;
        match Response::parse(&reply)? {
            Response::Error { error } => Err(error),
            response => Ok(response),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(format!("unexpected reply to ping: {other:?}")),
        }
    }

    /// Submits a job, returning its id.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and submission rejections.
    pub fn submit(&mut self, spec: JobSpec, gds: Vec<u8>) -> Result<u64, String> {
        match self.request(&Request::Submit { spec, gds })? {
            Response::Submitted { job } => Ok(job),
            other => Err(format!("unexpected reply to submit: {other:?}")),
        }
    }

    /// Fetches a job's status.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and unknown ids.
    pub fn status(&mut self, job: u64) -> Result<JobStatus, String> {
        match self.request(&Request::Status { job })? {
            Response::Status(status) => Ok(status),
            other => Err(format!("unexpected reply to status: {other:?}")),
        }
    }

    /// Fetches the event delta from `since` on, plus the next poll
    /// cursor.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and unknown ids.
    pub fn events(&mut self, job: u64, since: u64) -> Result<(Vec<JobEvent>, u64), String> {
        match self.request(&Request::Events { job, since })? {
            Response::Events { events, next_seq } => Ok((events, next_seq)),
            other => Err(format!("unexpected reply to events: {other:?}")),
        }
    }

    /// Fetches the merged report text (final, or the completed-prefix
    /// view with `partial`).
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics; without `partial`, also jobs
    /// that have not finished.
    pub fn results(&mut self, job: u64, partial: bool) -> Result<(JobStatus, String), String> {
        match self.request(&Request::Results { job, partial })? {
            Response::Results { status, report_text } => Ok((status, report_text)),
            other => Err(format!("unexpected reply to results: {other:?}")),
        }
    }

    /// Fetches a job's manufacturability score: the status plus the
    /// score report's deterministic JSON line, byte-identical to the
    /// server-side rendering.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics, unknown ids, unsettled jobs,
    /// and jobs submitted without scoring.
    pub fn score(&mut self, job: u64) -> Result<(JobStatus, String), String> {
        match self.request(&Request::Score { job })? {
            Response::Score { status, score_json } => Ok((status, score_json)),
            other => Err(format!("unexpected reply to score: {other:?}")),
        }
    }

    /// Cancels a job.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and invalid transitions.
    pub fn cancel(&mut self, job: u64) -> Result<JobStatus, String> {
        match self.request(&Request::Cancel { job })? {
            Response::Status(status) => Ok(status),
            other => Err(format!("unexpected reply to cancel: {other:?}")),
        }
    }

    /// Resumes a partial/cancelled job.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and invalid transitions.
    pub fn resume(&mut self, job: u64) -> Result<JobStatus, String> {
        match self.request(&Request::Resume { job })? {
            Response::Status(status) => Ok(status),
            other => Err(format!("unexpected reply to resume: {other:?}")),
        }
    }

    /// Lists every job on the server.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics.
    pub fn list(&mut self) -> Result<Vec<JobStatus>, String> {
        match self.request(&Request::List)? {
            Response::List { jobs } => Ok(jobs),
            other => Err(format!("unexpected reply to list: {other:?}")),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(format!("unexpected reply to shutdown: {other:?}")),
        }
    }

    /// Polls `status` until the job settles (Done, Partial-settled,
    /// Failed, or Cancelled).
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and unknown ids.
    pub fn wait(&mut self, job: u64) -> Result<JobStatus, String> {
        loop {
            let status = self.status(job)?;
            if status.state.is_settled() {
                return Ok(status);
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
}
