//! A blocking client for the signoff protocol — used by the
//! `dfm-signoff` CLI and the end-to-end tests.
//!
//! # Reconnect / resume
//!
//! The client remembers its address and configuration, so a dropped
//! connection is not fatal: any **retryable** request transparently
//! reconnects with deterministic backoff and is resent. Retryable
//! means the request is safe to repeat — reads (`status`, `events`,
//! `list`, …), the idempotency-keyed shard frames, and a `submit`
//! that carries an `--idem` key. A bare `submit`, `cancel`, `resume`,
//! and `shutdown` are **not** resent: repeating them after an
//! ambiguous drop could double their effect, so the caller decides.
//!
//! Event polling composes with this into gapless resume: the caller's
//! `since` cursor only advances when a frame parses, so a reconnect
//! resends the same cursor and the stream has no gaps and no
//! duplicates.

use crate::codec::{read_frame, MAX_LINE_BYTES};
use crate::proto::{ErrorObj, Request, Response};
use crate::service::{JobEvent, JobStatus};
use crate::shard::{ShardGrant, TileOutcome};
use crate::spec::{JobSpec, DEFAULT_TENANT};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Reconnect attempts a retryable request makes after a transport
/// failure before giving up.
const RECONNECT_ATTEMPTS: u64 = 3;

/// Deterministic virtual-clock backoff base before reconnect `n`:
/// `RECONNECT_BACKOFF_VMS << n` virtual milliseconds.
const RECONNECT_BACKOFF_VMS: u64 = 8;

/// Fixed wait-poll cadence in virtual milliseconds, used when the
/// server gave no `retry_after_vms` hint.
const WAIT_POLL_VMS: u64 = 20;

/// Sleeps the real-time equivalent of `vms` virtual milliseconds
/// (1 ms per vms, capped so injected hints cannot stall a test).
fn real_sleep(vms: u64) {
    std::thread::sleep(Duration::from_millis(vms.min(100)));
}

/// Configures and connects a [`Client`]: socket timeouts plus the
/// default tenant/priority stamped onto submitted specs that did not
/// set their own.
///
/// ```no_run
/// # use dfm_signoff::Client;
/// # use std::time::Duration;
/// let client = Client::builder()
///     .timeout(Duration::from_secs(30))
///     .tenant("acme")
///     .priority(2)
///     .connect("127.0.0.1:4517");
/// ```
#[derive(Clone, Debug, Default)]
pub struct ClientBuilder {
    timeout: Option<Duration>,
    tenant: Option<String>,
    priority: Option<u8>,
}

impl ClientBuilder {
    /// Read **and** write timeout for the socket. Default: none
    /// (blocking forever), the pre-builder behaviour.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> ClientBuilder {
        self.timeout = Some(timeout);
        self
    }

    /// Default tenant for submissions whose spec left `tenant` at
    /// [`DEFAULT_TENANT`]. A spec that names its own tenant wins.
    #[must_use]
    pub fn tenant(mut self, tenant: impl Into<String>) -> ClientBuilder {
        self.tenant = Some(tenant.into());
        self
    }

    /// Default priority for submissions whose spec left `priority`
    /// at 0. A spec with its own non-zero priority wins.
    #[must_use]
    pub fn priority(mut self, priority: u8) -> ClientBuilder {
        self.priority = Some(priority);
        self
    }

    /// Connects to `addr` (e.g. `127.0.0.1:4517`).
    ///
    /// # Errors
    ///
    /// Socket diagnostics.
    pub fn connect(self, addr: &str) -> Result<Client, String> {
        let conn = Conn::open(addr, self.timeout)?;
        Ok(Client {
            addr: addr.to_string(),
            timeout: self.timeout,
            conn: Some(conn),
            tenant: self.tenant,
            priority: self.priority,
            reconnects: 0,
        })
    }
}

/// Why a request failed: the transport broke, or the server answered
/// with a structured error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// Socket, framing, or protocol-shape diagnostics — the request
    /// may or may not have reached the server.
    Transport(String),
    /// The server processed the request and refused it.
    Server(ErrorObj),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Transport(msg) => write!(f, "{msg}"),
            RequestError::Server(err) => write!(f, "{err}"),
        }
    }
}

/// One live socket to the server.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str, timeout: Option<Duration>) -> Result<Conn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        if let Some(timeout) = timeout {
            stream
                .set_read_timeout(Some(timeout))
                .and_then(|()| stream.set_write_timeout(Some(timeout)))
                .map_err(|e| format!("set timeout: {e}"))?;
        }
        let writer = stream.try_clone().map_err(|e| format!("clone socket: {e}"))?;
        Ok(Conn { writer, reader: BufReader::new(stream) })
    }

    /// One request/response exchange on this socket.
    fn exchange(&mut self, request: &Request) -> Result<Response, RequestError> {
        let mut line = request.to_json().render();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| RequestError::Transport(format!("send: {e}")))?;
        self.writer.flush().map_err(|e| RequestError::Transport(format!("flush: {e}")))?;
        let reply = read_frame(&mut self.reader, MAX_LINE_BYTES)
            .map_err(RequestError::Transport)?
            .ok_or_else(|| RequestError::Transport("server closed the connection".to_string()))?;
        match Response::parse(&reply).map_err(RequestError::Transport)? {
            Response::Error { error } => Err(RequestError::Server(error)),
            response => Ok(response),
        }
    }
}

/// A connection to a signoff server that survives drops (see the
/// module docs on reconnect/resume).
pub struct Client {
    addr: String,
    timeout: Option<Duration>,
    conn: Option<Conn>,
    tenant: Option<String>,
    priority: Option<u8>,
    reconnects: u64,
}

/// Whether repeating this request after an ambiguous drop is safe:
/// reads always, shard frames via their `(coord, origin, gen)` /
/// cursor idempotency, `submit` only under an idempotency key.
fn retryable(request: &Request) -> bool {
    match request {
        Request::Ping
        | Request::Status { .. }
        | Request::Events { .. }
        | Request::Results { .. }
        | Request::Score { .. }
        | Request::List
        | Request::ShardDispatch { .. }
        | Request::ShardAttach { .. }
        | Request::ShardPull { .. }
        | Request::ShardHeartbeat { .. } => true,
        Request::Submit { idem, .. } => idem.is_some(),
        Request::Cancel { .. } | Request::Resume { .. } | Request::Shutdown { .. } => false,
    }
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:4517`) with no timeout and
    /// no submission defaults — shorthand for
    /// `Client::builder().connect(addr)`.
    ///
    /// # Errors
    ///
    /// Socket diagnostics.
    pub fn connect(addr: &str) -> Result<Client, String> {
        Client::builder().connect(addr)
    }

    /// Starts configuring a connection.
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// How many times this client reconnected after a dropped
    /// connection (published as a bench gauge).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Socket, framing, and protocol diagnostics; a server-side
    /// [`Response::Error`] is surfaced as its message. Use
    /// [`Client::request_typed`] to keep the structured error.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        self.request_typed(request).map_err(|e| match e {
            RequestError::Transport(msg) => msg,
            RequestError::Server(err) => err.message,
        })
    }

    /// Sends one request and reads its response, keeping server-side
    /// failures machine-readable. Retryable requests (see the module
    /// docs) transparently reconnect and resend on transport failure,
    /// with deterministic backoff (`8 << n` virtual ms before attempt
    /// `n`, [`RECONNECT_ATTEMPTS`] attempts).
    ///
    /// # Errors
    ///
    /// [`RequestError::Transport`] for socket/framing/protocol
    /// diagnostics (after the reconnect budget, for retryable
    /// requests), [`RequestError::Server`] for a [`Response::Error`]
    /// answer — server refusals are never retried here.
    pub fn request_typed(&mut self, request: &Request) -> Result<Response, RequestError> {
        let budget = if retryable(request) { RECONNECT_ATTEMPTS } else { 0 };
        let mut attempt = 0;
        loop {
            let result = match &mut self.conn {
                Some(conn) => conn.exchange(request),
                None => Err(RequestError::Transport(format!(
                    "not connected to {}",
                    self.addr
                ))),
            };
            match result {
                Err(RequestError::Transport(msg)) => {
                    // The socket is suspect: tear it down so the next
                    // attempt (or request) starts from a fresh connect.
                    self.conn = None;
                    if attempt >= budget {
                        return Err(RequestError::Transport(msg));
                    }
                    real_sleep(RECONNECT_BACKOFF_VMS << attempt);
                    attempt += 1;
                    // A failed connect is left for the next loop
                    // iteration to retry.
                    if let Ok(conn) = Conn::open(&self.addr, self.timeout) {
                        self.conn = Some(conn);
                        self.reconnects += 1;
                    }
                }
                other => return other,
            }
        }
    }

    /// Stamps the builder's default tenant/priority onto a spec that
    /// left them at their defaults.
    fn apply_defaults(&self, mut spec: JobSpec) -> JobSpec {
        if spec.tenant == DEFAULT_TENANT {
            if let Some(tenant) = &self.tenant {
                spec.tenant.clone_from(tenant);
            }
        }
        if spec.priority == 0 {
            if let Some(priority) = self.priority {
                spec.priority = priority;
            }
        }
        spec
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(format!("unexpected reply to ping: {other:?}")),
        }
    }

    /// Submits a job, returning its id.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and submission rejections,
    /// flattened to their message. Use [`Client::try_submit`] when the
    /// rejection code / retry hint matters (e.g. to back off).
    pub fn submit(&mut self, spec: JobSpec, gds: Vec<u8>) -> Result<u64, String> {
        self.try_submit(spec, gds).map_err(|e| match e {
            RequestError::Transport(msg) => msg,
            RequestError::Server(err) => err.message,
        })
    }

    /// Submits a job under a client idempotency key: a resubmission of
    /// the same key (e.g. after an ambiguous connection drop) answers
    /// with the job id the key first minted instead of double-running.
    /// With a key the request is also transport-retryable, so the
    /// client resends it through reconnects on its own.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn submit_idem(
        &mut self,
        spec: JobSpec,
        gds: Vec<u8>,
        idem: Option<&str>,
    ) -> Result<u64, String> {
        self.try_submit_idem(spec, gds, idem).map_err(|e| match e {
            RequestError::Transport(msg) => msg,
            RequestError::Server(err) => err.message,
        })
    }

    /// Submits a job, returning its id — admission refusals keep their
    /// structured [`ErrorObj`] (code + optional `retry_after_vms`).
    ///
    /// # Errors
    ///
    /// As [`Client::request_typed`].
    pub fn try_submit(&mut self, spec: JobSpec, gds: Vec<u8>) -> Result<u64, RequestError> {
        self.try_submit_idem(spec, gds, None)
    }

    /// [`Client::try_submit`] with an optional idempotency key.
    ///
    /// # Errors
    ///
    /// As [`Client::request_typed`].
    pub fn try_submit_idem(
        &mut self,
        spec: JobSpec,
        gds: Vec<u8>,
        idem: Option<&str>,
    ) -> Result<u64, RequestError> {
        let spec = self.apply_defaults(spec);
        let idem = idem.map(str::to_string);
        match self.request_typed(&Request::Submit { spec, gds, idem })? {
            Response::Submitted { job } => Ok(job),
            other => Err(RequestError::Transport(format!("unexpected reply to submit: {other:?}"))),
        }
    }

    /// Submits with bounded re-tries through admission backpressure,
    /// honouring the server's deterministic `retry_after_vms` hints: a
    /// rejection that carries a hint sleeps exactly that long before
    /// the resubmit; one without a hint (unknown tenant, draining) is
    /// final. At most `tries` submissions are made.
    ///
    /// # Errors
    ///
    /// The final structured rejection after `tries` attempts,
    /// hint-less rejections immediately, and transport diagnostics.
    pub fn submit_until_admitted(
        &mut self,
        spec: JobSpec,
        gds: Vec<u8>,
        idem: Option<&str>,
        tries: u64,
    ) -> Result<u64, RequestError> {
        let mut attempt = 0;
        loop {
            match self.try_submit_idem(spec.clone(), gds.clone(), idem) {
                Ok(job) => return Ok(job),
                Err(e @ RequestError::Transport(_)) => return Err(e),
                Err(RequestError::Server(err)) => {
                    attempt += 1;
                    match err.retry_after_vms {
                        Some(vms) if attempt < tries.max(1) => real_sleep(vms),
                        _ => return Err(RequestError::Server(err)),
                    }
                }
            }
        }
    }

    /// Fetches a job's status.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and unknown ids.
    pub fn status(&mut self, job: u64) -> Result<JobStatus, String> {
        match self.request(&Request::Status { job })? {
            Response::Status(status) => Ok(status),
            other => Err(format!("unexpected reply to status: {other:?}")),
        }
    }

    /// Fetches the event delta from `since` on, plus the next poll
    /// cursor. The cursor only advances on a successfully parsed
    /// response, so polling through reconnects yields a gapless,
    /// duplicate-free stream.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and unknown ids.
    pub fn events(&mut self, job: u64, since: u64) -> Result<(Vec<JobEvent>, u64), String> {
        match self.request(&Request::Events { job, since })? {
            Response::Events { events, next_seq } => Ok((events, next_seq)),
            other => Err(format!("unexpected reply to events: {other:?}")),
        }
    }

    /// Fetches the merged report text (final, or the completed-prefix
    /// view with `partial`).
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics; without `partial`, also jobs
    /// that have not finished.
    pub fn results(&mut self, job: u64, partial: bool) -> Result<(JobStatus, String), String> {
        match self.request(&Request::Results { job, partial })? {
            Response::Results { status, report_text } => Ok((status, report_text)),
            other => Err(format!("unexpected reply to results: {other:?}")),
        }
    }

    /// Fetches a job's manufacturability score: the status plus the
    /// score report's deterministic JSON line, byte-identical to the
    /// server-side rendering.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics, unknown ids, unsettled jobs,
    /// and jobs submitted without scoring.
    pub fn score(&mut self, job: u64) -> Result<(JobStatus, String), String> {
        match self.request(&Request::Score { job })? {
            Response::Score { status, score_json } => Ok((status, score_json)),
            other => Err(format!("unexpected reply to score: {other:?}")),
        }
    }

    /// Cancels a job.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and invalid transitions.
    pub fn cancel(&mut self, job: u64) -> Result<JobStatus, String> {
        match self.request(&Request::Cancel { job })? {
            Response::Status(status) => Ok(status),
            other => Err(format!("unexpected reply to cancel: {other:?}")),
        }
    }

    /// Resumes a partial/cancelled job.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and invalid transitions.
    pub fn resume(&mut self, job: u64) -> Result<JobStatus, String> {
        match self.request(&Request::Resume { job })? {
            Response::Status(status) => Ok(status),
            other => Err(format!("unexpected reply to resume: {other:?}")),
        }
    }

    /// Lists every job on the server.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics.
    pub fn list(&mut self) -> Result<Vec<JobStatus>, String> {
        match self.request(&Request::List)? {
            Response::List { jobs } => Ok(jobs),
            other => Err(format!("unexpected reply to list: {other:?}")),
        }
    }

    /// Asks the server to shut down. With `drain`, the server first
    /// stops admitting and finishes or checkpoints in-flight tiles, so
    /// the acknowledgement implies the durable state is complete.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics.
    pub fn shutdown_mode(&mut self, drain: bool) -> Result<(), String> {
        match self.request(&Request::Shutdown { drain })? {
            Response::ShuttingDown => Ok(()),
            other => Err(format!("unexpected reply to shutdown: {other:?}")),
        }
    }

    /// Asks the server to shut down immediately
    /// (`shutdown_mode(false)`).
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.shutdown_mode(false)
    }

    /// Dispatches tile range(s) of a job to a shard server under the
    /// coordinator's `(coord, origin, gen)` idempotency key, returning
    /// the shard's grant. `ranges = None` asks the shard to run its own
    /// `--shard-of` partition.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and shard-side refusals,
    /// flattened to their message.
    pub fn shard_dispatch(
        &mut self,
        coord: u64,
        origin: u64,
        gen: u64,
        spec: JobSpec,
        gds: Vec<u8>,
        ranges: Option<Vec<(usize, usize)>>,
    ) -> Result<ShardGrant, String> {
        match self.request(&Request::ShardDispatch { coord, origin, gen, spec, gds, ranges })? {
            Response::ShardDispatched { grant } => Ok(grant),
            other => Err(format!("unexpected reply to shard.dispatch: {other:?}")),
        }
    }

    /// Looks up the grant a prior dispatch of `(coord, origin, gen)`
    /// minted on this shard. Typed errors so a caller can distinguish
    /// `not_found` (fall back to a full dispatch) from transport
    /// trouble.
    ///
    /// # Errors
    ///
    /// As [`Client::request_typed`].
    pub fn shard_attach(
        &mut self,
        coord: u64,
        origin: u64,
        gen: u64,
    ) -> Result<ShardGrant, RequestError> {
        match self.request_typed(&Request::ShardAttach { coord, origin, gen })? {
            Response::ShardDispatched { grant } => Ok(grant),
            other => Err(RequestError::Transport(format!(
                "unexpected reply to shard.attach: {other:?}"
            ))),
        }
    }

    /// Polls a shard job's outcome log from `since` on: the entries,
    /// the next cursor, whether the shard job has settled, and whether
    /// the shard's service is draining.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and unknown ids.
    pub fn shard_pull(
        &mut self,
        job: u64,
        since: u64,
    ) -> Result<(Vec<TileOutcome>, u64, bool, bool), String> {
        match self.request(&Request::ShardPull { job, since })? {
            Response::ShardOutcomes { outcomes, next, settled, draining } => {
                Ok((outcomes, next, settled, draining))
            }
            other => Err(format!("unexpected reply to shard.pull: {other:?}")),
        }
    }

    /// Sends one lease-renewing heartbeat for a shard job: whether it
    /// has settled and whether the shard's service is draining.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and unknown ids.
    pub fn shard_heartbeat(&mut self, job: u64) -> Result<(bool, bool), String> {
        match self.request(&Request::ShardHeartbeat { job })? {
            Response::ShardAlive { settled, draining } => Ok((settled, draining)),
            other => Err(format!("unexpected reply to shard.heartbeat: {other:?}")),
        }
    }

    /// Polls `status` until the job settles (Done, Partial-settled,
    /// Failed, or Cancelled). A server refusal that carries a
    /// deterministic `retry_after_vms` hint is honoured — the poll
    /// sleeps exactly the hinted backoff instead of the fixed cadence;
    /// a hint-less refusal is final.
    ///
    /// # Errors
    ///
    /// Transport/protocol diagnostics and unknown ids.
    pub fn wait(&mut self, job: u64) -> Result<JobStatus, String> {
        loop {
            match self.request_typed(&Request::Status { job }) {
                Ok(Response::Status(status)) => {
                    if status.state.is_settled() {
                        return Ok(status);
                    }
                    real_sleep(WAIT_POLL_VMS);
                }
                Ok(other) => return Err(format!("unexpected reply to status: {other:?}")),
                Err(RequestError::Server(err)) => match err.retry_after_vms {
                    Some(vms) => real_sleep(vms),
                    None => return Err(err.message),
                },
                Err(RequestError::Transport(msg)) => return Err(msg),
            }
        }
    }
}
