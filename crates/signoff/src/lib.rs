//! # dfm-signoff — an async signoff job service
//!
//! The "always-on" delivery vehicle for the workspace's signoff
//! engines: a long-running service that accepts GDS jobs, decomposes
//! each into per-tile tasks (DRC via [`dfm_drc::rule_tile_partial`],
//! litho print via [`dfm_litho::LithoSimulator::printed_tile_piece`],
//! critical area via [`dfm_yield::critical_area::ca_tile_partial`]),
//! schedules them across a persistent [`dfm_par::WorkerPool`], and
//! merges the per-tile partials **in tile order** so the final report
//! is bit-identical to a flat single-shot run — at any worker count,
//! and after any number of cancel/kill/resume cycles.
//!
//! The pieces:
//!
//! * [`JobSpec`] — what to analyse (tech, tiling, which engines),
//! * [`JobContext`] / [`TilePartial`] — the pure per-tile task and its
//!   mergeable result,
//! * [`SignoffReport`] — the merged report with a canonical text
//!   rendering ([`SignoffReport::render_text`]) that is byte-compared
//!   against [`flat_report`] in tests and CI,
//! * [`SignoffService`] — the job store: states, per-tile progress,
//!   monotonic event sequence numbers, incremental (prefix-merged)
//!   results, checkpoint/resume, and supervised retry/quarantine
//!   (bounded per-tile retries with deterministic virtual-clock
//!   backoff; tiles that exhaust their budget are quarantined and the
//!   job settles `Partial` with an explicit manifest — testable
//!   end-to-end through the `dfm_fault` injection plane),
//! * a **content-addressed result cache** (arm via
//!   [`ServiceConfig::cache`] with a [`dfm_cache::TileCache`]): tiles
//!   whose `(spec, rule deck, tile content + halo)` digests
//!   ([`JobContext::cache_key`]) match a stored result are served from
//!   disk and never reach the pool, so resubmitting an edited layout
//!   recomputes only the tiles whose geometry actually changed,
//! * [`proto`] / [`server`] / [`client`] — a line-delimited-JSON
//!   protocol over `std::net` TCP, rendered through the hand-rolled
//!   [`dfm_bench::json`] writer,
//! * [`shard`] — horizontal scale-out: a coordinator fans each job
//!   out across N shard servers by deterministic tile-range partition
//!   ([`shard::partition_range`]), streams their outcome logs back,
//!   and merges through the same tile-ordered commit machinery — so
//!   the coordinated event stream and report are byte-identical to a
//!   single process, with dead shards re-dispatched to survivors or
//!   degraded to a deterministic `Partial` manifest.
//!
//! # Determinism argument
//!
//! Every tile task is a pure function of `(spec, tile index)`; the
//! scheduler's only job is to get each partial computed *once* and
//! into the store. The merge folds partials in tile index order, so
//! the report depends on the set of partials — never on when, where,
//! or how often they were computed. A resumed job recomputes exactly
//! the missing tiles and merges the same set, hence the same bytes.
//! The same purity makes caching safe: a stored partial is
//! indistinguishable from a recomputed one, so cache hits can never
//! change a report — only skip work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autofix;
pub mod checkpoint;
pub mod client;
pub mod codec;
pub mod job;
pub mod proto;
pub mod report;
pub mod sched;
pub mod scoring;
pub mod server;
pub mod service;
pub mod shard;
pub mod spec;

pub use autofix::{auto_fix, FixOutcome};
pub use checkpoint::{decode_tile_partial, encode_tile_partial};
pub use client::{Client, ClientBuilder, RequestError};
pub use scoring::flat_score;
pub use job::{JobContext, TilePartial, CACHE_KEY_VERSION};
pub use report::{flat_report, CaSummary, LithoSummary, QuarantinedTile, SignoffReport};
pub use sched::{Grant, RejectCode, Rejection, SchedConfig, TenantPolicy};
pub use proto::{ErrorObj, PROTO_VERSION};
pub use server::Server;
pub use service::{
    JobEvent, JobEventKind, JobState, JobStatus, ServiceConfig, ServiceConfigBuilder,
    SignoffService, SubmitError, SupervisionPolicy,
};
pub use shard::{
    ShardGrant, ShardStats, TileCacheMark, TileOutcome, TileOutcomeKind, TileRetry,
    SITE_SHARD_DISPATCH, SITE_SHARD_PULL,
};
pub use spec::JobSpec;
