//! The per-tile task a scheduler runs and the ordered merge that turns
//! a set of per-tile results back into the flat report.
//!
//! [`JobContext::compute_tile`] is a **pure** function of the context
//! (spec + layout) and the tile index: no clocks, no RNG, no shared
//! mutable state. That purity is what lets the service compute tiles
//! in any order, on any number of workers, kill the process between
//! any two tiles, and still merge to the exact flat bytes.

use crate::report::{CaSummary, LithoSummary, SignoffReport, CA_D0_PER_CM2};
use crate::spec::JobSpec;
use dfm_drc::{merge_rule_partials, rule_tile_partial, DrcReport, RuleDeck, RulePartial};
use dfm_geom::{Rect, Region};
use dfm_layout::{Technology, TiledLayout, TilingConfig};
use dfm_litho::{merge_printed_pieces, Condition, LithoSimulator};
use dfm_yield::critical_area::{ca_tile_partial, merge_ca_partials, CaTilePartial};
use dfm_yield::DefectModel;

/// Everything one tile contributes to the job: one mergeable partial
/// per enabled engine. Stored (and checkpointed) per tile index.
#[derive(Clone, Debug, PartialEq)]
pub struct TilePartial {
    /// Tile index this partial was computed for.
    pub tile: usize,
    /// One [`RulePartial`] per deck rule, in deck order (empty when
    /// DRC is disabled).
    pub drc: Vec<RulePartial>,
    /// Critical-area fragments (when a CA layer is configured).
    pub ca: Option<CaTilePartial>,
    /// Printed rects of the tile core (when a litho layer is
    /// configured).
    pub litho: Option<Vec<Rect>>,
    /// Largest materialised tile-view rect count across the engines —
    /// the job-level memory gauge.
    pub rects_peak: usize,
}

/// The immutable, shareable half of a job: spec, resolved technology,
/// rule deck, and the tile-sharded layout. Built once per job (and
/// once more on resume), then shared read-only by every tile task.
pub struct JobContext {
    /// The spec the job was submitted with.
    pub spec: JobSpec,
    /// Resolved technology preset.
    pub tech: Technology,
    /// DRC deck (empty when the spec disables DRC).
    pub deck: RuleDeck,
    /// Tile-sharded layout; hierarchy is kept, tiles materialise on
    /// demand.
    pub layout: TiledLayout,
    defects: DefectModel,
    sim: LithoSimulator,
    cond: Condition,
}

impl JobContext {
    /// Builds a context from a spec and raw GDS bytes.
    ///
    /// # Errors
    ///
    /// Spec validation failures and GDS parse diagnostics (malformed
    /// records are reported with their byte offset, not defaulted).
    pub fn build(spec: &JobSpec, gds: &[u8]) -> Result<JobContext, String> {
        spec.validate()?;
        let tech = spec.technology()?;
        let config = TilingConfig::builder()
            .tile(spec.tile)
            .halo(spec.halo)
            .build()
            .map_err(|e| format!("bad tiling config: {e}"))?;
        let layout = TiledLayout::from_gds_bytes(gds, config)
            .map_err(|e| format!("layout rejected: {e}"))?;
        let deck = if spec.drc {
            RuleDeck::for_technology(&tech)
        } else {
            RuleDeck::new()
        };
        Ok(JobContext {
            defects: DefectModel::new(spec.ca_x0.max(1), CA_D0_PER_CM2),
            sim: LithoSimulator::for_feature_size(spec.litho_feature),
            cond: Condition::nominal(),
            spec: spec.clone(),
            tech,
            deck,
            layout,
        })
    }

    /// Number of tiles the job decomposes into.
    pub fn tile_count(&self) -> usize {
        self.layout.tile_count()
    }

    /// Computes one tile's partial. Pure: equal `(context, tile)` in,
    /// equal partial out, regardless of thread, order, or retry count.
    pub fn compute_tile(&self, tile: usize) -> TilePartial {
        let drc: Vec<RulePartial> = self
            .deck
            .rules()
            .iter()
            .map(|rule| rule_tile_partial(rule, &self.layout, tile))
            .collect();
        let ca = self
            .spec
            .ca_layer
            .map(|layer| ca_tile_partial(&self.layout, layer, self.spec.ca_range(), tile));
        let litho = self
            .spec
            .litho_layer
            .map(|layer| self.sim.printed_tile_piece(&self.layout, layer, self.cond, tile));
        let mut rects_peak = drc.iter().map(RulePartial::rect_count).max().unwrap_or(0);
        if let Some(ca) = &ca {
            rects_peak = rects_peak.max(ca.rects);
        }
        TilePartial { tile, drc, ca, litho, rects_peak }
    }

    /// Merges tile partials — **which must be sorted by tile index** —
    /// into a report. Passing all `tile_count()` partials yields the
    /// final report, bit-identical to [`crate::flat_report`]; passing a
    /// prefix yields the incremental view of the completed region.
    ///
    /// # Errors
    ///
    /// Tiled-DRC certification refusals and partial/rule mismatches.
    pub fn merge(&self, partials: &[TilePartial]) -> Result<SignoffReport, String> {
        debug_assert!(partials.windows(2).all(|w| w[0].tile < w[1].tile));
        let mut report = SignoffReport::default();
        if self.spec.drc {
            let mut drc = DrcReport::new();
            for (r, rule) in self.deck.rules().iter().enumerate() {
                let per_rule: Vec<RulePartial> = partials
                    .iter()
                    .map(|p| {
                        p.drc.get(r).cloned().ok_or_else(|| {
                            format!("tile {} partial is missing rule #{r}", p.tile)
                        })
                    })
                    .collect::<Result<_, String>>()?;
                let (violations, _) = merge_rule_partials(rule, &self.layout, per_rule)
                    .map_err(|e| e.to_string())?;
                drc.extend(violations);
            }
            report.drc = Some(drc);
        }
        if self.spec.ca_layer.is_some() {
            let ca_parts: Vec<CaTilePartial> = partials
                .iter()
                .map(|p| {
                    p.ca.clone()
                        .ok_or_else(|| format!("tile {} partial is missing CA data", p.tile))
                })
                .collect::<Result<_, String>>()?;
            let result = merge_ca_partials(ca_parts, &self.defects);
            report.ca = Some(CaSummary::from_result(&result));
        }
        if self.spec.litho_layer.is_some() {
            let pieces: Vec<Vec<Rect>> = partials
                .iter()
                .map(|p| {
                    p.litho
                        .clone()
                        .ok_or_else(|| format!("tile {} partial is missing litho data", p.tile))
                })
                .collect::<Result<_, String>>()?;
            let printed: Region = merge_printed_pieces(pieces);
            report.litho = Some(LithoSummary::from_region(&printed));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::flat_report;
    use dfm_layout::{gds, generate};

    fn small_gds() -> Vec<u8> {
        let tech = Technology::n65();
        let params = generate::RoutedBlockParams {
            width: 6_000,
            height: 6_000,
            ..Default::default()
        };
        gds::to_bytes(&generate::routed_block(&tech, params, 11)).expect("serialise")
    }

    fn spec() -> JobSpec {
        JobSpec {
            tile: 1700,
            halo: 64,
            litho_layer: Some(dfm_layout::layers::METAL1),
            ..JobSpec::default()
        }
    }

    #[test]
    fn all_tiles_merge_to_the_flat_report_bytes() {
        let gds = small_gds();
        let spec = spec();
        let ctx = JobContext::build(&spec, &gds).expect("context");
        assert!(ctx.tile_count() > 1, "want a multi-tile job");
        // Compute in reverse order to prove order independence.
        let mut partials: Vec<TilePartial> =
            (0..ctx.tile_count()).rev().map(|i| ctx.compute_tile(i)).collect();
        partials.sort_by_key(|p| p.tile);
        let merged = ctx.merge(&partials).expect("merge");
        let flat = flat_report(&spec, &gds::from_bytes(&gds).expect("parse")).expect("flat");
        assert_eq!(
            merged.render_text(&spec),
            flat.render_text(&spec),
            "tiled merge must be bit-identical to the flat run"
        );
    }

    #[test]
    fn prefix_merge_gives_an_incremental_view() {
        let gds = small_gds();
        let spec = spec();
        let ctx = JobContext::build(&spec, &gds).expect("context");
        let partials: Vec<TilePartial> =
            (0..2.min(ctx.tile_count())).map(|i| ctx.compute_tile(i)).collect();
        let partial_report = ctx.merge(&partials).expect("merge prefix");
        assert!(partial_report.ca.is_some());
    }

    #[test]
    fn corrupt_gds_is_a_diagnostic_not_a_panic() {
        let err = match JobContext::build(&spec(), b"not gds at all") {
            Ok(_) => panic!("corrupt GDS must not build a context"),
            Err(e) => e,
        };
        assert!(err.contains("layout rejected"), "{err}");
    }
}
