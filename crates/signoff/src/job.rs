//! The per-tile task a scheduler runs and the ordered merge that turns
//! a set of per-tile results back into the flat report.
//!
//! [`JobContext::compute_tile`] is a **pure** function of the context
//! (spec + layout) and the tile index: no clocks, no RNG, no shared
//! mutable state. That purity is what lets the service compute tiles
//! in any order, on any number of workers, kill the process between
//! any two tiles, and still merge to the exact flat bytes.

use crate::report::{CaSummary, LithoSummary, SignoffReport, CA_D0_PER_CM2};
use crate::spec::JobSpec;
use dfm_drc::{merge_rule_partials, rule_tile_partial, DrcReport, RuleDeck, RulePartial};
use dfm_geom::{Rect, Region};
use dfm_layout::{Technology, TiledLayout, TilingConfig};
use dfm_litho::{merge_printed_pieces, Condition, LithoSimulator};
use dfm_yield::critical_area::{ca_tile_partial, merge_ca_partials, CaTilePartial};
use dfm_yield::DefectModel;

/// Version salt folded into every cache key. Bump on any change to the
/// digest inputs, the tile-partial codec, or engine semantics that is
/// not already visible in the digested bytes.
pub const CACHE_KEY_VERSION: u64 = 1;

/// Everything one tile contributes to the job: one mergeable partial
/// per enabled engine. Stored (and checkpointed) per tile index.
#[derive(Clone, Debug, PartialEq)]
pub struct TilePartial {
    /// Tile index this partial was computed for.
    pub tile: usize,
    /// One [`RulePartial`] per deck rule, in deck order (empty when
    /// DRC is disabled).
    pub drc: Vec<RulePartial>,
    /// Critical-area fragments (when a CA layer is configured).
    pub ca: Option<CaTilePartial>,
    /// Printed rects of the tile core (when a litho layer is
    /// configured).
    pub litho: Option<Vec<Rect>>,
    /// Largest materialised tile-view rect count across the engines —
    /// the job-level memory gauge.
    pub rects_peak: usize,
}

/// The immutable, shareable half of a job: spec, resolved technology,
/// rule deck, and the tile-sharded layout. Built once per job (and
/// once more on resume), then shared read-only by every tile task.
pub struct JobContext {
    /// The spec the job was submitted with.
    pub spec: JobSpec,
    /// Resolved technology preset.
    pub tech: Technology,
    /// DRC deck (empty when the spec disables DRC).
    pub deck: RuleDeck,
    /// Tile-sharded layout; hierarchy is kept, tiles materialise on
    /// demand.
    pub layout: TiledLayout,
    /// Parsed score spec (when the job requests scoring).
    pub score_spec: Option<dfm_score::ScoreSpec>,
    /// Flat-layout score metrics (via redundancy, pattern statistics,
    /// drawn area), computed once at submit time. Empty when scoring
    /// is off. These feed [`crate::scoring::job_metrics`] at
    /// finalisation; they never influence tile computation, so the
    /// cache key ignores the score field entirely.
    pub layout_metrics: Vec<(String, f64)>,
    defects: DefectModel,
    sim: LithoSimulator,
    cond: Condition,
}

impl JobContext {
    /// Builds a context from a spec and raw GDS bytes.
    ///
    /// # Errors
    ///
    /// Spec validation failures and GDS parse diagnostics (malformed
    /// records are reported with their byte offset, not defaulted).
    pub fn build(spec: &JobSpec, gds: &[u8]) -> Result<JobContext, String> {
        spec.validate()?;
        let tech = spec.technology()?;
        let config = TilingConfig::builder()
            .tile(spec.tile)
            .halo(spec.halo)
            .build()
            .map_err(|e| format!("bad tiling config: {e}"))?;
        let score_spec = spec.score_spec()?;
        // Scoring needs flat-layout statistics (via census, pattern
        // catalog, drawn area). Parse the GDS once and take both the
        // flat view (scoring only) and the tiled layout from it.
        let lib = dfm_layout::gds::from_bytes(gds)
            .map_err(|e| format!("layout rejected: {e}"))?;
        let layout_metrics = if score_spec.is_some() {
            let flat = lib.flatten_top().map_err(|e| format!("layout rejected: {e}"))?;
            crate::scoring::layout_metrics(&flat, &tech, spec)
        } else {
            Vec::new()
        };
        let layout = TiledLayout::from_library(lib, config)
            .map_err(|e| format!("layout rejected: {e}"))?;
        let deck = if spec.drc {
            RuleDeck::for_technology(&tech)
        } else {
            RuleDeck::new()
        };
        Ok(JobContext {
            defects: DefectModel::new(spec.ca_x0.max(1), CA_D0_PER_CM2),
            sim: LithoSimulator::for_feature_size(spec.litho_feature),
            cond: Condition::nominal(),
            spec: spec.clone(),
            tech,
            deck,
            layout,
            score_spec,
            layout_metrics,
        })
    }

    /// Scores a merged report against the job's score spec, folding in
    /// the submit-time layout metrics. `None` when scoring is off.
    pub fn score(&self, report: &SignoffReport) -> Option<dfm_score::ScoreReport> {
        let spec = self.score_spec.as_ref()?;
        let metrics = crate::scoring::job_metrics(report, &self.layout_metrics);
        Some(dfm_score::score(&metrics, spec))
    }

    /// Number of tiles the job decomposes into.
    pub fn tile_count(&self) -> usize {
        self.layout.tile_count()
    }

    /// Digest of the spec's **analysis** fields — everything that can
    /// change a tile's result, nothing that can't. The client label
    /// `name` is deliberately excluded (it only appears in the report
    /// header, never in tile computation), so renaming a job still
    /// hits. Salted with [`CACHE_KEY_VERSION`] so a codec or keying
    /// change turns old stores into misses instead of misdecodes.
    pub fn cache_spec_digest(&self) -> u64 {
        use std::fmt::Write as _;
        let s = &self.spec;
        let layer = |l: &Option<dfm_layout::Layer>| match l {
            Some(l) => format!("{}/{}", l.layer, l.datatype),
            None => "none".to_string(),
        };
        let mut text = format!("cache-key-v{CACHE_KEY_VERSION};");
        let _ = write!(
            text,
            "tech={};tile={};halo={};drc={};ca_layer={};ca_x0={};litho_layer={};litho_feature={}",
            s.tech,
            s.tile,
            s.halo,
            s.drc,
            layer(&s.ca_layer),
            s.ca_x0,
            layer(&s.litho_layer),
            s.litho_feature,
        );
        crate::codec::fnv1a_64(text.as_bytes())
    }

    /// Digest of the rule deck, over the canonical text rendering of
    /// every rule in deck order (the same rendering the deck DSL
    /// round-trips through, so every parameter participates). An empty
    /// deck digests the empty string.
    pub fn cache_deck_digest(&self) -> u64 {
        let mut text = String::new();
        for rule in self.deck.rules() {
            text.push_str(&rule.to_string());
            text.push('\n');
        }
        crate::codec::fnv1a_64(text.as_bytes())
    }

    /// The conservative tile halo the cache key must cover: the
    /// maximum window any enabled engine reads for any tile. A tile
    /// whose content digest at this halo is unchanged is **provably**
    /// unchanged as an input to [`JobContext::compute_tile`] —
    /// overestimating the halo only costs spurious misses, never wrong
    /// hits, so every per-engine bound here errs wide.
    pub fn content_halo(&self) -> i64 {
        let mut halo = self.spec.halo;
        for rule in self.deck.rules() {
            halo = halo.max(dfm_drc::rule_tile_halo(rule));
        }
        if self.spec.ca_layer.is_some() {
            // CA extracts facing pairs at ca_range; the pair sweep
            // views tiles at range + 2 like MinWidth/MinSpace.
            halo = halo.max(self.spec.ca_range() + 2);
        }
        if self.spec.litho_layer.is_some() {
            halo = halo.max(self.sim.halo_nm(self.cond));
        }
        halo
    }

    /// Canonical content digest of one tile at [`content_halo`] — the
    /// third component of the tile's cache key.
    ///
    /// [`content_halo`]: JobContext::content_halo
    pub fn tile_content_digest(&self, tile: usize) -> u64 {
        self.layout.tile_content_digest(tile, self.content_halo())
    }

    /// The full content address of one tile's result.
    pub fn cache_key(&self, tile: usize) -> dfm_cache::CacheKey {
        dfm_cache::CacheKey {
            spec: self.cache_spec_digest(),
            deck: self.cache_deck_digest(),
            tile: self.tile_content_digest(tile),
        }
    }

    /// Computes one tile's partial. Pure: equal `(context, tile)` in,
    /// equal partial out, regardless of thread, order, or retry count.
    pub fn compute_tile(&self, tile: usize) -> TilePartial {
        let drc: Vec<RulePartial> = self
            .deck
            .rules()
            .iter()
            .map(|rule| rule_tile_partial(rule, &self.layout, tile))
            .collect();
        let ca = self
            .spec
            .ca_layer
            .map(|layer| ca_tile_partial(&self.layout, layer, self.spec.ca_range(), tile));
        let litho = self
            .spec
            .litho_layer
            .map(|layer| self.sim.printed_tile_piece(&self.layout, layer, self.cond, tile));
        let mut rects_peak = drc.iter().map(RulePartial::rect_count).max().unwrap_or(0);
        if let Some(ca) = &ca {
            rects_peak = rects_peak.max(ca.rects);
        }
        TilePartial { tile, drc, ca, litho, rects_peak }
    }

    /// Merges tile partials — **which must be sorted by tile index** —
    /// into a report. Passing all `tile_count()` partials yields the
    /// final report, bit-identical to [`crate::flat_report`]; passing a
    /// prefix yields the incremental view of the completed region.
    ///
    /// # Errors
    ///
    /// Tiled-DRC certification refusals and partial/rule mismatches.
    pub fn merge(&self, partials: &[TilePartial]) -> Result<SignoffReport, String> {
        debug_assert!(partials.windows(2).all(|w| w[0].tile < w[1].tile));
        let mut report = SignoffReport::default();
        if self.spec.drc {
            let mut drc = DrcReport::new();
            for (r, rule) in self.deck.rules().iter().enumerate() {
                let per_rule: Vec<RulePartial> = partials
                    .iter()
                    .map(|p| {
                        p.drc.get(r).cloned().ok_or_else(|| {
                            format!("tile {} partial is missing rule #{r}", p.tile)
                        })
                    })
                    .collect::<Result<_, String>>()?;
                let (violations, _) = merge_rule_partials(rule, &self.layout, per_rule)
                    .map_err(|e| e.to_string())?;
                drc.extend(violations);
            }
            report.drc = Some(drc);
        }
        if self.spec.ca_layer.is_some() {
            let ca_parts: Vec<CaTilePartial> = partials
                .iter()
                .map(|p| {
                    p.ca.clone()
                        .ok_or_else(|| format!("tile {} partial is missing CA data", p.tile))
                })
                .collect::<Result<_, String>>()?;
            let result = merge_ca_partials(ca_parts, &self.defects);
            report.ca = Some(CaSummary::from_result(&result));
        }
        if self.spec.litho_layer.is_some() {
            let pieces: Vec<Vec<Rect>> = partials
                .iter()
                .map(|p| {
                    p.litho
                        .clone()
                        .ok_or_else(|| format!("tile {} partial is missing litho data", p.tile))
                })
                .collect::<Result<_, String>>()?;
            let printed: Region = merge_printed_pieces(pieces);
            report.litho = Some(LithoSummary::from_region(&printed));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::flat_report;
    use dfm_layout::{gds, generate};

    fn small_gds() -> Vec<u8> {
        let tech = Technology::n65();
        let params = generate::RoutedBlockParams {
            width: 6_000,
            height: 6_000,
            ..Default::default()
        };
        gds::to_bytes(&generate::routed_block(&tech, params, 11)).expect("serialise")
    }

    fn spec() -> JobSpec {
        JobSpec {
            tile: 1700,
            halo: 64,
            litho_layer: Some(dfm_layout::layers::METAL1),
            ..JobSpec::default()
        }
    }

    #[test]
    fn all_tiles_merge_to_the_flat_report_bytes() {
        let gds = small_gds();
        let spec = spec();
        let ctx = JobContext::build(&spec, &gds).expect("context");
        assert!(ctx.tile_count() > 1, "want a multi-tile job");
        // Compute in reverse order to prove order independence.
        let mut partials: Vec<TilePartial> =
            (0..ctx.tile_count()).rev().map(|i| ctx.compute_tile(i)).collect();
        partials.sort_by_key(|p| p.tile);
        let merged = ctx.merge(&partials).expect("merge");
        let flat = flat_report(&spec, &gds::from_bytes(&gds).expect("parse")).expect("flat");
        assert_eq!(
            merged.render_text(&spec),
            flat.render_text(&spec),
            "tiled merge must be bit-identical to the flat run"
        );
    }

    #[test]
    fn prefix_merge_gives_an_incremental_view() {
        let gds = small_gds();
        let spec = spec();
        let ctx = JobContext::build(&spec, &gds).expect("context");
        let partials: Vec<TilePartial> =
            (0..2.min(ctx.tile_count())).map(|i| ctx.compute_tile(i)).collect();
        let partial_report = ctx.merge(&partials).expect("merge prefix");
        assert!(partial_report.ca.is_some());
    }

    #[test]
    fn cache_keys_ignore_the_label_and_track_analysis_inputs() {
        let gds = small_gds();
        let spec = spec();
        let ctx = JobContext::build(&spec, &gds).expect("context");
        let renamed = JobContext::build(
            &JobSpec { name: "renamed".to_string(), ..spec.clone() },
            &gds,
        )
        .expect("context");
        assert_eq!(
            ctx.cache_key(0),
            renamed.cache_key(0),
            "the client label must not poison the cache key"
        );
        let retiled =
            JobContext::build(&JobSpec { tile: 2000, ..spec.clone() }, &gds).expect("context");
        assert_ne!(ctx.cache_spec_digest(), retiled.cache_spec_digest());
        let no_drc =
            JobContext::build(&JobSpec { drc: false, ..spec.clone() }, &gds).expect("context");
        assert_ne!(ctx.cache_deck_digest(), no_drc.cache_deck_digest());
        // The content halo must cover every engine's read range; for
        // this spec the CA extraction range dominates.
        assert!(ctx.content_halo() >= ctx.spec.ca_range() + 2);
        assert!(ctx.content_halo() >= ctx.spec.halo);
    }

    #[test]
    fn score_spec_never_dirties_the_cache_key() {
        // Scoring is a report post-process: toggling or editing the
        // score spec must hit every cached tile, or the fix loop's
        // "recompute only dirty tiles" promise breaks.
        let gds = small_gds();
        let spec = spec();
        let ctx = JobContext::build(&spec, &gds).expect("context");
        let scored = JobContext::build(
            &JobSpec { score: Some("default".to_string()), ..spec.clone() },
            &gds,
        )
        .expect("context");
        let rescored = JobContext::build(
            &JobSpec {
                score: Some("pass 0.9\nmetric drc.violations weight 1 scorer step 0\n".into()),
                ..spec.clone()
            },
            &gds,
        )
        .expect("context");
        for tile in 0..ctx.tile_count() {
            assert_eq!(ctx.cache_key(tile), scored.cache_key(tile));
            assert_eq!(ctx.cache_key(tile), rescored.cache_key(tile));
        }
        // And the scored context actually carries layout metrics.
        assert!(ctx.layout_metrics.is_empty());
        assert!(!scored.layout_metrics.is_empty());
        assert!(scored.score_spec.is_some());
    }

    #[test]
    fn corrupt_gds_is_a_diagnostic_not_a_panic() {
        let err = match JobContext::build(&spec(), b"not gds at all") {
            Ok(_) => panic!("corrupt GDS must not build a context"),
            Err(e) => e,
        };
        assert!(err.contains("layout rejected"), "{err}");
    }
}
