//! On-disk checkpointing: one directory per job, one file per
//! completed tile.
//!
//! Layout under the checkpoint root:
//!
//! ```text
//! job-<id>/
//!   spec.json     — the JobSpec, JSON
//!   layout.gds    — the submitted GDS bytes, verbatim
//!   tile-<i>.bin  — one TilePartial (see below)
//! ```
//!
//! Tile files are fixed-width little-endian: a `DFMS` magic + format
//! version header, the tile index, the encoded partial, and a trailing
//! FNV-1a 64 checksum over everything before it. Writes go through a
//! temp file + rename so a crash mid-write leaves either the old state
//! or nothing; readers treat any malformed or checksum-failing file as
//! absent (the tile is simply recomputed). That makes kill -9 at any
//! instant safe: the resumed job loads the surviving tile set and
//! recomputes exactly the rest.

use crate::codec::fnv1a_64;
use crate::job::TilePartial;
use dfm_drc::{AreaPiece, PairFragment, RulePartial, Violation};
use dfm_fault::FaultPlane;
use dfm_geom::Rect;
use dfm_yield::critical_area::CaTilePartial;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"DFMS";
const VERSION: u32 = 1;

/// Crash site: spec.json durable, layout.gds not yet written.
pub const SITE_SUBMIT_SPEC: &str = "signoff.ckpt.submit.spec";
/// Crash site: full submission durable, success never reported.
pub const SITE_SUBMIT_GDS: &str = "signoff.ckpt.submit.gds";
/// Crash site: tile tmp file written, rename not yet done.
pub const SITE_TILE_TMP: &str = "signoff.ckpt.tile.tmp";
/// Crash site: tile file renamed into place, success never reported.
pub const SITE_TILE_RENAME: &str = "signoff.ckpt.tile.rename";

/// Paths of one job's checkpoint directory.
#[derive(Clone, Debug)]
pub struct JobDir {
    root: PathBuf,
}

impl JobDir {
    /// The directory for job `id` under `root` (not created yet).
    pub fn new(root: &Path, id: u64) -> JobDir {
        JobDir { root: root.join(format!("job-{id}")) }
    }

    /// The job directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Creates the directory and persists the submission (spec +
    /// GDS), so a restarted service can rebuild the job from disk.
    ///
    /// # Errors
    ///
    /// Filesystem diagnostics.
    pub fn persist_submission(&self, spec_json: &str, gds: &[u8]) -> Result<(), String> {
        self.persist_submission_probed(spec_json, gds, None, 0)
    }

    /// [`JobDir::persist_submission`] with crash probes between the
    /// durable steps: `plane` may kill the operation after spec.json
    /// is durable ([`SITE_SUBMIT_SPEC`]) or after the whole submission
    /// is durable but before success is reported
    /// ([`SITE_SUBMIT_GDS`]). `key` scopes the probes (the job id).
    ///
    /// # Errors
    ///
    /// Filesystem diagnostics, or the injected crash.
    pub fn persist_submission_probed(
        &self,
        spec_json: &str,
        gds: &[u8],
        plane: Option<&FaultPlane>,
        key: u64,
    ) -> Result<(), String> {
        fs::create_dir_all(&self.root).map_err(|e| format!("create {:?}: {e}", self.root))?;
        write_atomic(&self.root.join("spec.json"), spec_json.as_bytes())?;
        if plane.is_some_and(|p| p.crash_point(SITE_SUBMIT_SPEC, key, 0)) {
            return Err(format!("injected crash at {SITE_SUBMIT_SPEC} (job {key})"));
        }
        write_atomic(&self.root.join("layout.gds"), gds)?;
        if plane.is_some_and(|p| p.crash_point(SITE_SUBMIT_GDS, key, 0)) {
            return Err(format!("injected crash at {SITE_SUBMIT_GDS} (job {key})"));
        }
        Ok(())
    }

    /// Loads the persisted submission, if this directory holds one.
    ///
    /// # Errors
    ///
    /// Filesystem diagnostics (a missing directory is an error; a
    /// missing tile file is not).
    pub fn load_submission(&self) -> Result<(String, Vec<u8>), String> {
        let spec = fs::read_to_string(self.root.join("spec.json"))
            .map_err(|e| format!("read spec.json: {e}"))?;
        let gds = fs::read(self.root.join("layout.gds"))
            .map_err(|e| format!("read layout.gds: {e}"))?;
        Ok((spec, gds))
    }

    /// Atomically writes one completed tile partial.
    ///
    /// # Errors
    ///
    /// Filesystem diagnostics.
    pub fn write_tile(&self, partial: &TilePartial) -> Result<(), String> {
        self.write_tile_probed(partial, None, 0)
    }

    /// [`JobDir::write_tile`] with crash probes at the two staged
    /// transitions of the atomic write: after the tmp file is durable
    /// but before the rename ([`SITE_TILE_TMP`], leaving an orphan
    /// tmp) and after the rename but before success is reported
    /// ([`SITE_TILE_RENAME`], leaving a durable-but-unacknowledged
    /// tile). `attempt` is the caller's write-retry counter.
    ///
    /// # Errors
    ///
    /// Filesystem diagnostics, or the injected crash.
    pub fn write_tile_probed(
        &self,
        partial: &TilePartial,
        plane: Option<&FaultPlane>,
        attempt: u64,
    ) -> Result<(), String> {
        let path = self.root.join(format!("tile-{}.bin", partial.tile));
        let bytes = encode_tile_partial(partial);
        let tile = partial.tile as u64;
        let tmp = path.with_extension("tmp");
        let mut f = fs::File::create(&tmp).map_err(|e| format!("create {tmp:?}: {e}"))?;
        f.write_all(&bytes).map_err(|e| format!("write {tmp:?}: {e}"))?;
        f.sync_all().map_err(|e| format!("sync {tmp:?}: {e}"))?;
        drop(f);
        if plane.is_some_and(|p| p.crash_point(SITE_TILE_TMP, tile, attempt)) {
            return Err(format!("injected crash at {SITE_TILE_TMP} (tile {tile})"));
        }
        fs::rename(&tmp, &path).map_err(|e| format!("rename {tmp:?}: {e}"))?;
        if plane.is_some_and(|p| p.crash_point(SITE_TILE_RENAME, tile, attempt)) {
            return Err(format!("injected crash at {SITE_TILE_RENAME} (tile {tile})"));
        }
        Ok(())
    }

    /// Removes orphaned `*.tmp` files a crash between tmp-write and
    /// rename may have left behind. Returns how many were swept. Call
    /// on open/resume, never while tile writers are active.
    pub fn sweep_tmp(&self) -> usize {
        sweep_tmp_files(&self.root)
    }

    /// Loads every tile partial that survives validation, sorted by
    /// tile index. Corrupt, truncated, or wrong-version files are
    /// skipped — their tiles get recomputed.
    pub fn load_tiles(&self, tile_count: usize) -> Vec<TilePartial> {
        let mut out = Vec::new();
        for tile in 0..tile_count {
            let path = self.root.join(format!("tile-{tile}.bin"));
            let Ok(bytes) = fs::read(&path) else { continue };
            if let Some(p) = decode_tile_file(&bytes, tile) {
                out.push(p);
            }
        }
        out
    }

    /// Removes the whole job directory (cancel-and-forget).
    pub fn remove(&self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// Serialises a [`TilePartial`] to the same framed bytes a checkpoint
/// tile file holds (magic, version, tile index, body, trailing
/// checksum) — the payload the tile-result cache stores. Decode with
/// [`decode_tile_partial`].
pub fn encode_tile_partial(partial: &TilePartial) -> Vec<u8> {
    let mut enc = Enc::default();
    enc.bytes_raw(MAGIC);
    enc.u32(VERSION);
    enc.u64(partial.tile as u64);
    encode_partial(&mut enc, partial);
    let checksum = fnv1a_64(&enc.buf);
    enc.u64(checksum);
    enc.buf
}

/// Validates and decodes bytes produced by [`encode_tile_partial`].
/// `None` on any defect — truncation, bad checksum, version or tile
/// mismatch, trailing garbage — never an error or a panic: the caller
/// treats it as a cache miss and recomputes.
pub fn decode_tile_partial(bytes: &[u8], expect_tile: usize) -> Option<TilePartial> {
    decode_tile_file(bytes, expect_tile)
}

/// Lists job ids that have a checkpoint directory under `root`.
pub fn list_job_dirs(root: &Path) -> Vec<u64> {
    let mut ids = Vec::new();
    let Ok(entries) = fs::read_dir(root) else { return ids };
    for entry in entries.flatten() {
        let name = entry.file_name();
        if let Some(id) = name.to_str().and_then(|n| n.strip_prefix("job-")) {
            if let Ok(id) = id.parse::<u64>() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    ids
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    let mut f = fs::File::create(&tmp).map_err(|e| format!("create {tmp:?}: {e}"))?;
    f.write_all(bytes).map_err(|e| format!("write {tmp:?}: {e}"))?;
    f.sync_all().map_err(|e| format!("sync {tmp:?}: {e}"))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| format!("rename {tmp:?}: {e}"))
}

/// Removes every `*.tmp` file directly under `dir`; returns the count.
pub(crate) fn sweep_tmp_files(dir: &Path) -> usize {
    let Ok(entries) = fs::read_dir(dir) else { return 0 };
    let mut swept = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") && fs::remove_file(&path).is_ok() {
            swept += 1;
        }
    }
    swept
}

fn decode_tile_file(bytes: &[u8], expect_tile: usize) -> Option<TilePartial> {
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv1a_64(body) != stored {
        return None;
    }
    let mut dec = Dec { buf: body, pos: 0 };
    if dec.bytes_raw(4)? != MAGIC {
        return None;
    }
    if dec.u32()? != VERSION {
        return None;
    }
    let tile = dec.u64()? as usize;
    if tile != expect_tile {
        return None;
    }
    let partial = decode_partial(&mut dec, tile)?;
    if dec.pos != body.len() {
        return None; // trailing garbage
    }
    Some(partial)
}

// ---------------------------------------------------------------------------
// TilePartial wire format (fixed-width LE throughout; f64 via to_bits).
// ---------------------------------------------------------------------------

fn encode_partial(enc: &mut Enc, p: &TilePartial) {
    enc.u64(p.rects_peak as u64);
    enc.u64(p.drc.len() as u64);
    for rp in &p.drc {
        encode_rule_partial(enc, rp);
    }
    match &p.ca {
        None => enc.u8(0),
        Some(ca) => {
            enc.u8(1);
            encode_frags(enc, &ca.short);
            encode_frags(enc, &ca.open);
            enc.u64(ca.rects as u64);
        }
    }
    match &p.litho {
        None => enc.u8(0),
        Some(rects) => {
            enc.u8(1);
            enc.u64(rects.len() as u64);
            for r in rects {
                enc.rect(r);
            }
        }
    }
}

fn decode_partial(dec: &mut Dec<'_>, tile: usize) -> Option<TilePartial> {
    let rects_peak = dec.u64()? as usize;
    let rule_count = dec.len()?;
    let mut drc = Vec::with_capacity(rule_count);
    for _ in 0..rule_count {
        drc.push(decode_rule_partial(dec)?);
    }
    let ca = match dec.u8()? {
        0 => None,
        1 => {
            let short = decode_frags(dec)?;
            let open = decode_frags(dec)?;
            let rects = dec.u64()? as usize;
            Some(CaTilePartial { short, open, rects })
        }
        _ => return None,
    };
    let litho = match dec.u8()? {
        0 => None,
        1 => {
            let n = dec.len()?;
            let mut rects = Vec::with_capacity(n);
            for _ in 0..n {
                rects.push(dec.rect()?);
            }
            Some(rects)
        }
        _ => return None,
    };
    Some(TilePartial { tile, drc, ca, litho, rects_peak })
}

fn encode_rule_partial(enc: &mut Enc, rp: &RulePartial) {
    match rp {
        RulePartial::Fragments { frags, rects } => {
            enc.u8(0);
            encode_frags(enc, frags);
            enc.u64(*rects as u64);
        }
        RulePartial::Spacing { frags, corners, rects } => {
            enc.u8(1);
            encode_frags(enc, frags);
            enc.u64(corners.len() as u64);
            for (r, d) in corners {
                enc.rect(r);
                enc.i64(*d);
            }
            enc.u64(*rects as u64);
        }
        RulePartial::Area { complete, pieces, rects } => {
            enc.u8(2);
            enc.u64(complete.len() as u64);
            for (bbox, area) in complete {
                enc.rect(bbox);
                enc.i128(*area);
            }
            enc.u64(pieces.len() as u64);
            for piece in pieces {
                enc.i128(piece.area);
                enc.rect(&piece.bbox);
                enc.u64(piece.seam_rects.len() as u64);
                for r in &piece.seam_rects {
                    enc.rect(r);
                }
            }
            enc.u64(*rects as u64);
        }
        RulePartial::Density { partials, rects } => {
            enc.u8(3);
            enc.u64(partials.len() as u64);
            for (window, area) in partials {
                enc.u64(*window as u64);
                enc.i128(*area);
            }
            enc.u64(*rects as u64);
        }
        RulePartial::Certified { violations, rects, refused } => {
            enc.u8(4);
            enc.u64(violations.len() as u64);
            for v in violations {
                enc.str(&v.rule);
                enc.rect(&v.location);
                enc.i64(v.actual);
                enc.i64(v.limit);
            }
            enc.u64(*rects as u64);
            match refused {
                None => enc.u8(0),
                Some(t) => {
                    enc.u8(1);
                    enc.u64(*t as u64);
                }
            }
        }
    }
}

fn decode_rule_partial(dec: &mut Dec<'_>) -> Option<RulePartial> {
    match dec.u8()? {
        0 => {
            let frags = decode_frags(dec)?;
            let rects = dec.u64()? as usize;
            Some(RulePartial::Fragments { frags, rects })
        }
        1 => {
            let frags = decode_frags(dec)?;
            let n = dec.len()?;
            let mut corners = Vec::with_capacity(n);
            for _ in 0..n {
                let r = dec.rect()?;
                let d = dec.i64()?;
                corners.push((r, d));
            }
            let rects = dec.u64()? as usize;
            Some(RulePartial::Spacing { frags, corners, rects })
        }
        2 => {
            let n = dec.len()?;
            let mut complete = Vec::with_capacity(n);
            for _ in 0..n {
                let bbox = dec.rect()?;
                let area = dec.i128()?;
                complete.push((bbox, area));
            }
            let n = dec.len()?;
            let mut pieces = Vec::with_capacity(n);
            for _ in 0..n {
                let area = dec.i128()?;
                let bbox = dec.rect()?;
                let m = dec.len()?;
                let mut seam_rects = Vec::with_capacity(m);
                for _ in 0..m {
                    seam_rects.push(dec.rect()?);
                }
                pieces.push(AreaPiece { area, bbox, seam_rects });
            }
            let rects = dec.u64()? as usize;
            Some(RulePartial::Area { complete, pieces, rects })
        }
        3 => {
            let n = dec.len()?;
            let mut partials = Vec::with_capacity(n);
            for _ in 0..n {
                let window = dec.u64()? as usize;
                let area = dec.i128()?;
                partials.push((window, area));
            }
            let rects = dec.u64()? as usize;
            Some(RulePartial::Density { partials, rects })
        }
        4 => {
            let n = dec.len()?;
            let mut violations = Vec::with_capacity(n);
            for _ in 0..n {
                let rule = dec.str()?;
                let location = dec.rect()?;
                let actual = dec.i64()?;
                let limit = dec.i64()?;
                violations.push(Violation { rule, location, actual, limit });
            }
            let rects = dec.u64()? as usize;
            let refused = match dec.u8()? {
                0 => None,
                1 => Some(dec.u64()? as usize),
                _ => return None,
            };
            Some(RulePartial::Certified { violations, rects, refused })
        }
        _ => None,
    }
}

fn encode_frags(enc: &mut Enc, frags: &[PairFragment]) {
    enc.u64(frags.len() as u64);
    for f in frags {
        enc.u8(f.vertical as u8);
        enc.i64(f.gap_lo);
        enc.i64(f.gap_hi);
        enc.i64(f.span_lo);
        enc.i64(f.span_hi);
    }
}

fn decode_frags(dec: &mut Dec<'_>) -> Option<Vec<PairFragment>> {
    let n = dec.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let vertical = match dec.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let gap_lo = dec.i64()?;
        let gap_hi = dec.i64()?;
        let span_lo = dec.i64()?;
        let span_hi = dec.i64()?;
        out.push(PairFragment { vertical, gap_lo, gap_hi, span_lo, span_hi });
    }
    Some(out)
}

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn bytes_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn rect(&mut self, r: &Rect) {
        for c in [r.x0, r.y0, r.x1, r.y1] {
            self.i64(c);
        }
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes_raw(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn bytes_raw(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let out = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(out)
    }
    fn u8(&mut self) -> Option<u8> {
        let b = self.bytes_raw(1)?;
        Some(b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes_raw(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes_raw(8)?.try_into().ok()?))
    }
    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.bytes_raw(8)?.try_into().ok()?))
    }
    fn i128(&mut self) -> Option<i128> {
        Some(i128::from_le_bytes(self.bytes_raw(16)?.try_into().ok()?))
    }
    /// A u64 length, bounded by the remaining bytes so corrupt lengths
    /// can never trigger huge allocations.
    fn len(&mut self) -> Option<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return None;
        }
        Some(n as usize)
    }
    fn rect(&mut self) -> Option<Rect> {
        let x0 = self.i64()?;
        let y0 = self.i64()?;
        let x1 = self.i64()?;
        let y1 = self.i64()?;
        Some(Rect { x0, y0, x1, y1 })
    }
    fn str(&mut self) -> Option<String> {
        let n = self.len()?;
        let bytes = self.bytes_raw(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobContext;
    use crate::spec::JobSpec;
    use dfm_layout::{gds, generate, layers, Technology};

    fn sample_partials() -> (JobContext, Vec<TilePartial>) {
        let tech = Technology::n65();
        let params = generate::RoutedBlockParams {
            width: 5_000,
            height: 5_000,
            ..Default::default()
        };
        let bytes = gds::to_bytes(&generate::routed_block(&tech, params, 23)).expect("gds");
        let spec = JobSpec {
            tile: 1600,
            halo: 64,
            litho_layer: Some(layers::METAL1),
            ..JobSpec::default()
        };
        let ctx = JobContext::build(&spec, &bytes).expect("context");
        let partials = (0..ctx.tile_count()).map(|i| ctx.compute_tile(i)).collect();
        (ctx, partials)
    }

    #[test]
    fn tile_files_round_trip_exactly() {
        let dir = std::env::temp_dir().join(format!("dfms-ckpt-rt-{}", std::process::id()));
        let (ctx, partials) = sample_partials();
        let job = JobDir::new(&dir, 1);
        job.persist_submission("{}", b"gds").expect("submission");
        for p in &partials {
            job.write_tile(p).expect("write tile");
        }
        let loaded = job.load_tiles(ctx.tile_count());
        assert_eq!(loaded, partials);
        job.remove();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tile_files_are_skipped_not_trusted() {
        let dir = std::env::temp_dir().join(format!("dfms-ckpt-corrupt-{}", std::process::id()));
        let (ctx, partials) = sample_partials();
        let job = JobDir::new(&dir, 2);
        job.persist_submission("{}", b"gds").expect("submission");
        for p in &partials {
            job.write_tile(p).expect("write tile");
        }
        // Flip one byte in the middle of tile 0's file: checksum must
        // reject it and the loader must simply drop that tile.
        let path = job.path().join("tile-0.bin");
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");
        // And truncate tile 1's file (simulated torn write without the
        // atomic rename).
        if partials.len() > 1 {
            let path = job.path().join("tile-1.bin");
            let bytes = std::fs::read(&path).expect("read");
            std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate");
        }
        let loaded = job.load_tiles(ctx.tile_count());
        let expect: Vec<TilePartial> = partials
            .iter()
            .filter(|p| p.tile != 0 && (partials.len() == 1 || p.tile != 1))
            .cloned()
            .collect();
        assert_eq!(loaded, expect);
        job.remove();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn staged_crash_probes_leave_the_documented_durable_state() {
        use dfm_fault::{FaultAction, FaultPlan, FaultPlane, FaultRule};
        let dir = std::env::temp_dir().join(format!("dfms-ckpt-crash-{}", std::process::id()));
        let (ctx, partials) = sample_partials();
        let job = JobDir::new(&dir, 9);
        job.persist_submission("{}", b"gds").expect("submission");

        // Crash after the tmp write: no tile file, an orphan tmp.
        let plane = FaultPlane::new(
            FaultPlan::seeded(1).with_rule(FaultRule::new(SITE_TILE_TMP, FaultAction::Crash)),
        );
        let err = job.write_tile_probed(&partials[0], Some(&plane), 0).expect_err("crash");
        assert!(err.contains(SITE_TILE_TMP), "{err}");
        assert!(!job.path().join("tile-0.bin").exists());
        assert!(job.path().join("tile-0.tmp").exists());

        // Sweep removes the orphan; the tile is simply absent.
        assert_eq!(job.sweep_tmp(), 1);
        assert!(!job.path().join("tile-0.tmp").exists());
        assert!(job.load_tiles(ctx.tile_count()).is_empty());

        // Crash after the rename: the write reports failure but the
        // tile is durable — the idempotent-replay case.
        let plane = FaultPlane::new(
            FaultPlan::seeded(1).with_rule(FaultRule::new(SITE_TILE_RENAME, FaultAction::Crash)),
        );
        let err = job.write_tile_probed(&partials[0], Some(&plane), 0).expect_err("crash");
        assert!(err.contains(SITE_TILE_RENAME), "{err}");
        let loaded = job.load_tiles(ctx.tile_count());
        assert_eq!(loaded, vec![partials[0].clone()]);

        job.remove();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submission_crash_probes_split_the_two_durable_steps() {
        use dfm_fault::{FaultAction, FaultPlan, FaultPlane, FaultRule};
        let dir = std::env::temp_dir().join(format!("dfms-ckpt-subcrash-{}", std::process::id()));

        let job = JobDir::new(&dir, 4);
        let plane = FaultPlane::new(
            FaultPlan::seeded(1).with_rule(FaultRule::new(SITE_SUBMIT_SPEC, FaultAction::Crash)),
        );
        job.persist_submission_probed("{}", b"gds", Some(&plane), 4).expect_err("crash");
        assert!(job.path().join("spec.json").exists());
        assert!(!job.path().join("layout.gds").exists());
        assert!(job.load_submission().is_err(), "half a submission must not load");

        // Resubmission over the crashed dir succeeds and loads.
        job.persist_submission("{}", b"gds").expect("resubmit");
        assert!(job.load_submission().is_ok());

        let job = JobDir::new(&dir, 5);
        let plane = FaultPlane::new(
            FaultPlan::seeded(1).with_rule(FaultRule::new(SITE_SUBMIT_GDS, FaultAction::Crash)),
        );
        job.persist_submission_probed("{}", b"gds", Some(&plane), 5).expect_err("crash");
        // Everything durable; only the ack was lost.
        assert_eq!(job.load_submission().expect("loads"), ("{}".to_string(), b"gds".to_vec()));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_dir_listing_finds_persisted_jobs() {
        let dir = std::env::temp_dir().join(format!("dfms-ckpt-list-{}", std::process::id()));
        for id in [3u64, 7, 5] {
            JobDir::new(&dir, id).persist_submission("{}", b"g").expect("persist");
        }
        std::fs::create_dir_all(dir.join("not-a-job")).expect("noise dir");
        assert_eq!(list_job_dirs(&dir), vec![3, 5, 7]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
