//! Multi-tenant fair-share tile scheduler with admission control.
//!
//! Tile tasks no longer flow straight from `submit()` into the worker
//! pool. Each admitted job's cache-miss tiles enter a per-tenant,
//! per-priority lane; a grant loop drains the lanes in weighted-fair
//! order and feeds the pool through a bounded in-flight window. The
//! scheduler is a pure state machine — no clocks, no threads — so the
//! grant sequence is a function of the submission order alone, which is
//! what keeps it byte-identical across `DFM_THREADS` counts.
//!
//! ## Ordering
//!
//! Every tile admitted to lane `(tenant, priority)` takes the next
//! virtual number `vnum` from that lane's counter; its virtual time is
//! the rational `vnum / weight`. Grants are issued in ascending
//! `GrantKey` order: priority first (higher wins), then virtual time
//! (compared by u128 cross-multiplication, no floats), then tenant
//! name, job id, and tile index as total-order tie-breaks. A tenant
//! with weight 2 therefore receives two grants for every one a
//! weight-1 tenant receives — the deficit a light tenant accumulates
//! per round is exactly the classic weighted-deficit round-robin
//! schedule, computed eagerly at admission instead of per round.
//!
//! An idle lane must not bank credit while others work, so the
//! scheduler tracks a per-priority virtual floor — the largest virtual
//! time ever granted in that class — and a lane (re)filling from empty
//! starts at `max(counter + 1, ceil(floor * weight))`. Lanes with
//! backlog are unaffected (their counters already sit at or above the
//! floor); a newly arriving tenant simply joins the present instead of
//! replaying the past.
//!
//! ## Admission
//!
//! [`SchedConfig`] is parsed from the same line-oriented text format as
//! fault plans and score specs:
//!
//! ```text
//! tenant acme weight 2 max_jobs 4 max_tiles 2000
//! tenant free weight 1
//! tenant * weight 1                # policy for unlisted tenants
//! global max_inflight 8 max_pending_tiles 10000
//! ```
//!
//! A submission is rejected with a structured [`Rejection`] — code,
//! message, deterministic retry-after hint in virtual milliseconds —
//! when the tenant is unknown (no wildcard policy), a per-tenant
//! `max_jobs`/`max_tiles` quota would be exceeded, or the global
//! pending-tile ceiling is hit (`busy`). Nothing about an admitted job
//! is recorded on the rejection path.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Deterministic retry-after hint: virtual milliseconds charged per
/// tile still queued ahead of the rejected submission.
pub const RETRY_HINT_VMS_PER_TILE: u64 = 8;

/// Per-tenant scheduling policy from a `tenant` config line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Tenant name, or `*` for the wildcard policy.
    pub name: String,
    /// Fair-share weight (grants per round relative to weight-1).
    pub weight: u64,
    /// Cap on concurrently active (unsettled) jobs.
    pub max_jobs: Option<u64>,
    /// Cap on admitted-but-ungranted tiles across the tenant's jobs.
    pub max_tiles: Option<u64>,
}

impl TenantPolicy {
    fn unit(name: &str) -> Self {
        TenantPolicy { name: name.to_string(), weight: 1, max_jobs: None, max_tiles: None }
    }
}

/// Scheduler + admission configuration.
///
/// The parsed form of a tenant plan file. `Default` is the closed
/// config (no tenants, no wildcard: every submission is rejected);
/// [`SchedConfig::open`] is the permissive config used when a server
/// runs without a tenant plan — any tenant name is admitted at weight
/// 1 with no quotas and an unbounded grant window, which reproduces
/// the pre-scheduler dispatch order exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchedConfig {
    /// Explicitly configured tenants, in plan-file order.
    pub tenants: Vec<TenantPolicy>,
    /// Policy applied to tenant names without an explicit line
    /// (`tenant * ...`). `None` rejects unlisted tenants.
    pub wildcard: Option<TenantPolicy>,
    /// Global grant window: granted-but-unresolved tile ceiling.
    /// `None` is unbounded (grants issue immediately on admission).
    pub max_inflight: Option<u64>,
    /// Global ceiling on admitted-but-ungranted tiles; beyond it
    /// submissions are rejected `busy`. `None` is unbounded.
    pub max_pending_tiles: Option<u64>,
}

impl SchedConfig {
    /// Permissive config: every tenant admitted, weight 1, no quotas.
    pub fn open() -> Self {
        SchedConfig {
            tenants: Vec::new(),
            wildcard: Some(TenantPolicy::unit("*")),
            max_inflight: None,
            max_pending_tiles: None,
        }
    }

    /// Parse the line-oriented tenant plan format. Blank lines and
    /// `#` comments are skipped; errors carry the 1-based line number
    /// and the offending text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = SchedConfig::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let line = line.split('#').next().unwrap().trim();
            let mut words = line.split_whitespace();
            let err = |what: &str| format!("line {}: {}: '{}'", idx + 1, what, raw.trim());
            match words.next() {
                Some("tenant") => {
                    let name = words.next().ok_or_else(|| err("missing tenant name"))?;
                    if name.is_empty() || (name != "*" && !name.chars().all(is_tenant_char)) {
                        return Err(err("tenant name must be [A-Za-z0-9_.-]+ or '*'"));
                    }
                    let mut policy = TenantPolicy::unit(name);
                    let mut saw_weight = false;
                    while let Some(key) = words.next() {
                        let value = words.next().ok_or_else(|| err("missing value"))?;
                        let n: u64 = value.parse().map_err(|_| err("value must be a non-negative integer"))?;
                        match key {
                            "weight" => {
                                if n == 0 {
                                    return Err(err("weight must be >= 1"));
                                }
                                policy.weight = n;
                                saw_weight = true;
                            }
                            "max_jobs" => policy.max_jobs = Some(n),
                            "max_tiles" => policy.max_tiles = Some(n),
                            _ => return Err(err("unknown tenant key")),
                        }
                    }
                    if !saw_weight {
                        return Err(err("tenant line requires 'weight N'"));
                    }
                    if name == "*" {
                        if cfg.wildcard.is_some() {
                            return Err(err("duplicate wildcard tenant"));
                        }
                        cfg.wildcard = Some(policy);
                    } else {
                        if cfg.tenants.iter().any(|t| t.name == name) {
                            return Err(err("duplicate tenant"));
                        }
                        cfg.tenants.push(policy);
                    }
                }
                Some("global") => {
                    while let Some(key) = words.next() {
                        let value = words.next().ok_or_else(|| err("missing value"))?;
                        let n: u64 = value.parse().map_err(|_| err("value must be a non-negative integer"))?;
                        match key {
                            "max_inflight" => {
                                if n == 0 {
                                    return Err(err("max_inflight must be >= 1"));
                                }
                                cfg.max_inflight = Some(n);
                            }
                            "max_pending_tiles" => cfg.max_pending_tiles = Some(n),
                            _ => return Err(err("unknown global key")),
                        }
                    }
                }
                _ => return Err(err("expected 'tenant' or 'global'")),
            }
        }
        Ok(cfg)
    }

    /// Render back to the text format (`parse(render(c)) == c`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut tenant_line = |p: &TenantPolicy| {
            out.push_str(&format!("tenant {} weight {}", p.name, p.weight));
            if let Some(n) = p.max_jobs {
                out.push_str(&format!(" max_jobs {n}"));
            }
            if let Some(n) = p.max_tiles {
                out.push_str(&format!(" max_tiles {n}"));
            }
            out.push('\n');
        };
        for p in &self.tenants {
            tenant_line(p);
        }
        if let Some(p) = &self.wildcard {
            tenant_line(p);
        }
        if self.max_inflight.is_some() || self.max_pending_tiles.is_some() {
            out.push_str("global");
            if let Some(n) = self.max_inflight {
                out.push_str(&format!(" max_inflight {n}"));
            }
            if let Some(n) = self.max_pending_tiles {
                out.push_str(&format!(" max_pending_tiles {n}"));
            }
            out.push('\n');
        }
        out
    }

    fn policy_for(&self, name: &str) -> Option<TenantPolicy> {
        if let Some(p) = self.tenants.iter().find(|t| t.name == name) {
            return Some(p.clone());
        }
        self.wildcard.as_ref().map(|w| TenantPolicy { name: name.to_string(), ..w.clone() })
    }
}

/// A tenant name usable in plan files and wire frames.
pub fn is_tenant_name(name: &str) -> bool {
    !name.is_empty() && name.len() <= 64 && name.chars().all(is_tenant_char)
}

fn is_tenant_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Why admission refused a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// Tenant has no policy line and the plan has no wildcard.
    UnknownTenant,
    /// A per-tenant `max_jobs` / `max_tiles` quota would be exceeded.
    QuotaExceeded,
    /// The global `max_pending_tiles` ceiling would be exceeded.
    Busy,
    /// The service is draining (`shutdown --drain`) and admits no new
    /// work; retry against a fresh instance.
    Draining,
}

impl RejectCode {
    /// Stable wire name (`unknown_tenant` / `quota_exceeded` / `busy` /
    /// `draining`).
    pub fn name(self) -> &'static str {
        match self {
            RejectCode::UnknownTenant => "unknown_tenant",
            RejectCode::QuotaExceeded => "quota_exceeded",
            RejectCode::Busy => "busy",
            RejectCode::Draining => "draining",
        }
    }
}

/// Structured admission refusal: machine-readable code, human text,
/// and a deterministic retry-after hint in virtual milliseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Machine-readable reason.
    pub code: RejectCode,
    /// Human-readable detail.
    pub message: String,
    /// Deterministic backoff hint in virtual milliseconds.
    pub retry_after_vms: Option<u64>,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

/// One entry of the grant log: the `seq`-th pool grant overall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    /// Global grant sequence number, dense from 0.
    pub seq: u64,
    /// Tenant the grant was charged to.
    pub tenant: String,
    /// Job id.
    pub job: u64,
    /// Tile index within the job.
    pub tile: usize,
    /// Job priority at admission.
    pub priority: u8,
}

/// Render a grant log as one line per grant — the byte format the
/// determinism suites diff across thread counts.
pub fn render_grant_log(log: &[Grant]) -> String {
    let mut out = String::new();
    for g in log {
        out.push_str(&format!(
            "grant {} tenant {} job {} tile {} prio {}\n",
            g.seq, g.tenant, g.job, g.tile, g.priority
        ));
    }
    out
}

/// A grant handed back to the caller for pool submission, carrying the
/// caller's per-job dispatch payload.
#[derive(Debug)]
pub struct GrantOut<H> {
    /// Grant sequence number (matches the grant-log entry).
    pub seq: u64,
    /// Job id.
    pub job: u64,
    /// Tile index within the job.
    pub tile: usize,
    /// The job's dispatch payload, cloned per grant.
    pub handle: H,
}

/// Grant-order key. Total order: priority (desc), virtual time
/// `vnum/weight` (asc, cross-multiplied), tenant name, job, tile.
#[derive(Debug, Clone)]
struct GrantKey {
    priority: u8,
    vnum: u64,
    weight: u64,
    tenant: String,
    job: u64,
    tile: usize,
}

impl Ord for GrantKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .priority
            .cmp(&self.priority)
            .then_with(|| {
                let a = self.vnum as u128 * other.weight as u128;
                let b = other.vnum as u128 * self.weight as u128;
                a.cmp(&b)
            })
            .then_with(|| self.tenant.cmp(&other.tenant))
            .then_with(|| self.job.cmp(&other.job))
            .then_with(|| self.tile.cmp(&other.tile))
    }
}

impl PartialOrd for GrantKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for GrantKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for GrantKey {}

struct TenantState {
    policy: TenantPolicy,
    /// Per-priority lane counters: last virtual number handed out.
    lanes: BTreeMap<u8, u64>,
    active_jobs: u64,
    /// Admitted, not yet granted (queued + not-yet-enqueued budget).
    queued_tiles: u64,
}

struct JobSched<H> {
    tenant: String,
    priority: u8,
    handle: Option<H>,
    /// Admitted tiles not yet enqueued or credited (cache hits resolve
    /// out of this budget without ever entering a lane).
    unassigned: u64,
    /// Enqueued, awaiting grant: tile -> its lane key.
    pending: BTreeMap<usize, GrantKey>,
    /// Granted, awaiting resolution (done or quarantined).
    granted: BTreeSet<usize>,
}

/// The fair-share grant state machine. Generic over the per-job
/// dispatch payload `H` so it unit-tests without a live service.
pub struct Scheduler<H> {
    cfg: SchedConfig,
    tenants: BTreeMap<String, TenantState>,
    jobs: BTreeMap<u64, JobSched<H>>,
    /// Grant order: key -> job id (tile lives in the key).
    ready: BTreeMap<GrantKey, u64>,
    /// Per-priority virtual floor as a rational (vnum, weight) of the
    /// largest virtual time ever granted in that class.
    floor: BTreeMap<u8, (u64, u64)>,
    inflight: u64,
    pending_total: u64,
    next_seq: u64,
    log: Vec<Grant>,
}

impl<H: Clone> Scheduler<H> {
    /// Fresh scheduler with empty lanes and an empty grant log.
    pub fn new(cfg: SchedConfig) -> Self {
        Scheduler {
            cfg,
            tenants: BTreeMap::new(),
            jobs: BTreeMap::new(),
            ready: BTreeMap::new(),
            floor: BTreeMap::new(),
            inflight: 0,
            pending_total: 0,
            next_seq: 0,
            log: Vec::new(),
        }
    }

    /// The configuration the scheduler was built with.
    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// Admission control. Reserves quota for `tiles` tile tasks under
    /// `(tenant, priority)` or rejects with a structured reason; on
    /// success the job must later [`Scheduler::enqueue`] its cache-miss
    /// tiles and resolve the rest, or be dropped via
    /// [`Scheduler::remove_job`].
    pub fn admit(
        &mut self,
        job: u64,
        tenant: &str,
        priority: u8,
        tiles: u64,
    ) -> Result<(), Rejection> {
        if self.jobs.contains_key(&job) {
            return Err(Rejection {
                code: RejectCode::Busy,
                message: format!("job {job} is already scheduled"),
                retry_after_vms: Some(RETRY_HINT_VMS_PER_TILE),
            });
        }
        let policy = match self.tenants.get(tenant) {
            Some(state) => state.policy.clone(),
            None => self.cfg.policy_for(tenant).ok_or_else(|| Rejection {
                code: RejectCode::UnknownTenant,
                message: format!("tenant '{tenant}' is not in the tenant plan"),
                retry_after_vms: None,
            })?,
        };
        let (active_jobs, queued) = self
            .tenants
            .get(tenant)
            .map(|t| (t.active_jobs, t.queued_tiles))
            .unwrap_or((0, 0));
        if let Some(cap) = policy.max_jobs {
            if active_jobs >= cap {
                return Err(Rejection {
                    code: RejectCode::QuotaExceeded,
                    message: format!("tenant '{tenant}' has {active_jobs} active jobs (max_jobs {cap})"),
                    retry_after_vms: Some(retry_hint(queued + self.inflight)),
                });
            }
        }
        if let Some(cap) = policy.max_tiles {
            if queued + tiles > cap {
                return Err(Rejection {
                    code: RejectCode::QuotaExceeded,
                    message: format!(
                        "tenant '{tenant}' has {queued} queued tiles; {tiles} more would exceed max_tiles {cap}"
                    ),
                    retry_after_vms: Some(retry_hint(queued)),
                });
            }
        }
        if let Some(cap) = self.cfg.max_pending_tiles {
            if self.pending_total + tiles > cap {
                return Err(Rejection {
                    code: RejectCode::Busy,
                    message: format!(
                        "{} tiles already pending; {tiles} more would exceed max_pending_tiles {cap}",
                        self.pending_total
                    ),
                    retry_after_vms: Some(retry_hint(self.pending_total)),
                });
            }
        }
        let state = self.tenants.entry(tenant.to_string()).or_insert_with(|| TenantState {
            policy,
            lanes: BTreeMap::new(),
            active_jobs: 0,
            queued_tiles: 0,
        });
        state.active_jobs += 1;
        state.queued_tiles += tiles;
        self.pending_total += tiles;
        self.jobs.insert(
            job,
            JobSched {
                tenant: tenant.to_string(),
                priority,
                handle: None,
                unassigned: tiles,
                pending: BTreeMap::new(),
                granted: BTreeSet::new(),
            },
        );
        Ok(())
    }

    /// Enqueue an admitted job's cache-miss tiles into its lane and
    /// pump the grant window. Returns the grants to submit, in grant
    /// order.
    pub fn enqueue(
        &mut self,
        job: u64,
        handle: H,
        tiles: impl IntoIterator<Item = usize>,
    ) -> Vec<GrantOut<H>> {
        let Some(js) = self.jobs.get_mut(&job) else {
            return Vec::new();
        };
        js.handle = Some(handle);
        let (tenant, priority) = (js.tenant.clone(), js.priority);
        let weight = self.tenants[&tenant].policy.weight;
        let floor = self.floor.get(&priority).copied();
        for tile in tiles {
            let js = self.jobs.get_mut(&job).unwrap();
            if js.unassigned == 0 || js.pending.contains_key(&tile) || js.granted.contains(&tile) {
                continue;
            }
            js.unassigned -= 1;
            let counter = self
                .tenants
                .get_mut(&tenant)
                .unwrap()
                .lanes
                .entry(priority)
                .or_insert(0);
            let mut vnum = *counter + 1;
            if let Some((fnum, fden)) = floor {
                // A lane (re)filling behind the class floor joins the
                // present: vnum/weight >= floor.
                let catch_up = (fnum as u128 * weight as u128).div_ceil(fden as u128);
                vnum = vnum.max(catch_up.min(u64::MAX as u128) as u64);
            }
            *counter = vnum;
            let key = GrantKey {
                priority,
                vnum,
                weight,
                tenant: tenant.clone(),
                job,
                tile,
            };
            js.pending.insert(tile, key.clone());
            self.ready.insert(key, job);
        }
        self.pump()
    }

    /// A tile of `job` reached a terminal state (committed done,
    /// quarantined, or served from cache). Releases its grant slot or
    /// quota budget and pumps the window.
    pub fn resolved(&mut self, job: u64, tile: usize) -> Vec<GrantOut<H>> {
        if let Some(js) = self.jobs.get_mut(&job) {
            if js.granted.remove(&tile) {
                self.inflight -= 1;
            } else if let Some(key) = js.pending.remove(&tile) {
                let tenant = js.tenant.clone();
                self.ready.remove(&key);
                self.release_queued(&tenant, 1);
            } else if js.unassigned > 0 {
                // Cache hit: resolved straight out of the admission
                // budget without ever entering a lane.
                js.unassigned -= 1;
                let tenant = js.tenant.clone();
                self.release_queued(&tenant, 1);
            }
        }
        self.pump()
    }

    /// Drop a job entirely (settled, cancelled, or aborted submit):
    /// ungranted tiles leave their lanes, open grant slots are
    /// released, the tenant's active-job count drops. Pumps.
    pub fn remove_job(&mut self, job: u64) -> Vec<GrantOut<H>> {
        if let Some(js) = self.jobs.remove(&job) {
            for key in js.pending.values() {
                self.ready.remove(key);
            }
            let released = js.pending.len() as u64 + js.unassigned;
            self.release_queued(&js.tenant, released);
            self.inflight -= js.granted.len() as u64;
            if let Some(t) = self.tenants.get_mut(&js.tenant) {
                t.active_jobs = t.active_jobs.saturating_sub(1);
            }
        }
        self.pump()
    }

    fn release_queued(&mut self, tenant: &str, n: u64) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.queued_tiles = t.queued_tiles.saturating_sub(n);
        }
        self.pending_total = self.pending_total.saturating_sub(n);
    }

    fn window_open(&self) -> bool {
        self.cfg.max_inflight.is_none_or(|w| self.inflight < w)
    }

    fn pump(&mut self) -> Vec<GrantOut<H>> {
        let mut out = Vec::new();
        while self.window_open() {
            let Some((key, job)) = self.ready.pop_first() else {
                break;
            };
            let js = self.jobs.get_mut(&job).unwrap();
            js.pending.remove(&key.tile);
            js.granted.insert(key.tile);
            let handle = js.handle.clone().expect("enqueued job has a handle");
            let tenant = key.tenant.clone();
            self.release_queued(&tenant, 1);
            self.inflight += 1;
            let entry = self.floor.entry(key.priority).or_insert((0, 1));
            if key.vnum as u128 * entry.1 as u128 > entry.0 as u128 * key.weight as u128 {
                *entry = (key.vnum, key.weight);
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.log.push(Grant {
                seq,
                tenant,
                job,
                tile: key.tile,
                priority: key.priority,
            });
            out.push(GrantOut { seq, job, tile: key.tile, handle });
        }
        out
    }

    /// Full grant log since construction, in grant order.
    pub fn grant_log(&self) -> &[Grant] {
        &self.log
    }

    /// Granted-but-unresolved tile count (the open window).
    pub fn inflight(&self) -> u64 {
        self.inflight
    }

    /// Admitted-but-ungranted tile count across all tenants.
    pub fn pending_tiles(&self) -> u64 {
        self.pending_total
    }

    /// Active job count for a tenant (0 if never seen).
    pub fn active_jobs(&self, tenant: &str) -> u64 {
        self.tenants.get(tenant).map_or(0, |t| t.active_jobs)
    }
}

fn retry_hint(tiles_ahead: u64) -> u64 {
    RETRY_HINT_VMS_PER_TILE * tiles_ahead.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(text: &str) -> Scheduler<&'static str> {
        Scheduler::new(SchedConfig::parse(text).unwrap())
    }

    fn grant_tenants(grants: &[GrantOut<&'static str>], s: &Scheduler<&'static str>) -> Vec<String> {
        let log = s.grant_log();
        grants
            .iter()
            .map(|g| log[g.seq as usize].tenant.clone())
            .collect()
    }

    #[test]
    fn config_parse_render_round_trip() {
        let text = "tenant acme weight 2 max_jobs 4 max_tiles 2000\n\
                    tenant free weight 1\n\
                    tenant * weight 1 max_jobs 1\n\
                    global max_inflight 8 max_pending_tiles 10000\n";
        let cfg = SchedConfig::parse(text).unwrap();
        assert_eq!(cfg.tenants.len(), 2);
        assert_eq!(cfg.tenants[0].weight, 2);
        assert_eq!(cfg.tenants[0].max_jobs, Some(4));
        assert_eq!(cfg.wildcard.as_ref().unwrap().max_jobs, Some(1));
        assert_eq!(cfg.max_inflight, Some(8));
        assert_eq!(cfg.render(), text);
        assert_eq!(SchedConfig::parse(&cfg.render()).unwrap(), cfg);
    }

    #[test]
    fn config_parse_comments_and_errors() {
        let cfg = SchedConfig::parse("# plan\n\n tenant a weight 3 # heavy\n").unwrap();
        assert_eq!(cfg.tenants[0].weight, 3);
        for (bad, what) in [
            ("tenant a weight 0", "weight must be >= 1"),
            ("tenant a", "requires 'weight N'"),
            ("tenant a weight x", "non-negative integer"),
            ("tenant a weight 1\ntenant a weight 2", "duplicate tenant"),
            ("tenant b@d weight 1", "tenant name"),
            ("tenant a weight 1 max_cows 4", "unknown tenant key"),
            ("global max_inflight 0", "max_inflight must be >= 1"),
            ("widget a weight 1", "expected 'tenant' or 'global'"),
        ] {
            let err = SchedConfig::parse(bad).unwrap_err();
            assert!(err.contains(what), "{bad:?} -> {err}");
            assert!(err.starts_with("line "), "{err}");
        }
    }

    #[test]
    fn unknown_tenant_rejected_without_wildcard() {
        let mut s = sched("tenant a weight 1\n");
        let r = s.admit(1, "ghost", 0, 4).unwrap_err();
        assert_eq!(r.code, RejectCode::UnknownTenant);
        assert_eq!(r.retry_after_vms, None);
        s.admit(2, "a", 0, 4).unwrap();
        let mut open = sched("tenant a weight 1\ntenant * weight 1\n");
        open.admit(1, "ghost", 0, 4).unwrap();
    }

    #[test]
    fn job_and_tile_quotas() {
        let mut s = sched("tenant a weight 1 max_jobs 1 max_tiles 10\n");
        s.admit(1, "a", 0, 6).unwrap();
        let r = s.admit(2, "a", 0, 1).unwrap_err();
        assert_eq!(r.code, RejectCode::QuotaExceeded);
        assert!(r.retry_after_vms.unwrap() >= RETRY_HINT_VMS_PER_TILE);
        s.remove_job(1);
        s.admit(2, "a", 0, 6).unwrap();
        // max_tiles counts queued tiles across the tenant's jobs.
        let mut s = sched("tenant a weight 1 max_tiles 10\n");
        s.admit(1, "a", 0, 6).unwrap();
        let r = s.admit(2, "a", 0, 6).unwrap_err();
        assert_eq!(r.code, RejectCode::QuotaExceeded);
        s.admit(2, "a", 0, 4).unwrap();
    }

    #[test]
    fn global_ceiling_rejects_busy() {
        let mut s = sched("tenant * weight 1\nglobal max_pending_tiles 8\n");
        s.admit(1, "a", 0, 5).unwrap();
        let r = s.admit(2, "b", 0, 5).unwrap_err();
        assert_eq!(r.code, RejectCode::Busy);
        assert_eq!(r.retry_after_vms, Some(5 * RETRY_HINT_VMS_PER_TILE));
        // Granting tiles frees pending budget (they move to inflight).
        let g = s.enqueue(1, "h1", 0..5);
        assert_eq!(g.len(), 5);
        s.admit(2, "b", 0, 5).unwrap();
    }

    #[test]
    fn weighted_interleave_two_to_one() {
        let mut s = sched("tenant a weight 2\ntenant b weight 1\nglobal max_inflight 1\n");
        s.admit(1, "a", 0, 6).unwrap();
        s.admit(2, "b", 0, 3).unwrap();
        let mut grants = s.enqueue(1, "ja", 0..6);
        grants.extend(s.enqueue(2, "jb", 0..3));
        // Drain: resolve each grant in issue order, collecting the rest.
        let mut i = 0;
        while i < grants.len() {
            let (job, tile) = (grants[i].job, grants[i].tile);
            grants.extend(s.resolved(job, tile));
            i += 1;
        }
        let order = grant_tenants(&grants, &s);
        assert_eq!(order, ["a", "a", "b", "a", "a", "b", "a", "a", "b"]);
        assert_eq!(s.inflight(), 0);
        assert_eq!(s.pending_tiles(), 0);
    }

    #[test]
    fn higher_priority_preempts_queue_order() {
        let mut s = sched("tenant * weight 1\nglobal max_inflight 1\n");
        s.admit(1, "low", 0, 2).unwrap();
        s.admit(2, "high", 3, 2).unwrap();
        let mut grants = s.enqueue(1, "jl", 0..2);
        grants.extend(s.enqueue(2, "jh", 0..2));
        let mut i = 0;
        while i < grants.len() {
            let (job, tile) = (grants[i].job, grants[i].tile);
            grants.extend(s.resolved(job, tile));
            i += 1;
        }
        // First grant went to `low` before `high` arrived; after that
        // the priority-3 lane drains completely first.
        let jobs: Vec<u64> = grants.iter().map(|g| g.job).collect();
        assert_eq!(jobs, [1, 2, 2, 1]);
    }

    #[test]
    fn idle_lane_does_not_bank_credit() {
        let mut s = sched("tenant a weight 1\ntenant b weight 1\n");
        // Tenant a alone processes 10 tiles.
        s.admit(1, "a", 0, 10).unwrap();
        let grants = s.enqueue(1, "ja", 0..10);
        for g in &grants {
            s.resolved(g.job, g.tile);
        }
        s.remove_job(1);
        // Now b arrives with a backlog and a submits more: without the
        // virtual floor b would own the next 10 grants outright.
        let mut s2_window = s; // continue with same scheduler, bounded drain below
        s2_window.cfg.max_inflight = Some(1);
        s2_window.admit(2, "b", 0, 4).unwrap();
        s2_window.admit(3, "a", 0, 4).unwrap();
        let mut grants = s2_window.enqueue(2, "jb", 0..4);
        grants.extend(s2_window.enqueue(3, "ja2", 0..4));
        let mut i = 0;
        while i < grants.len() {
            let (job, tile) = (grants[i].job, grants[i].tile);
            grants.extend(s2_window.resolved(job, tile));
            i += 1;
        }
        let order = grant_tenants(&grants, &s2_window);
        // b's first tile is granted while it is the only ready lane;
        // after a re-enqueues, fair alternation from the join point —
        // not b-monopoly replaying a's solo history.
        assert_eq!(order, ["b", "a", "b", "a", "b", "a", "b", "a"]);
    }

    #[test]
    fn cache_hits_release_quota_without_grants() {
        let mut s = sched("tenant a weight 1 max_tiles 4\n");
        s.admit(1, "a", 0, 4).unwrap();
        // All four tiles were cache hits: resolve out of the budget.
        for tile in 0..4 {
            assert!(s.resolved(1, tile).is_empty());
        }
        assert_eq!(s.pending_tiles(), 0);
        assert!(s.grant_log().is_empty());
        // Quota is free again even though the job is still active.
        let r = s.admit(2, "a", 0, 5).unwrap_err();
        assert_eq!(r.code, RejectCode::QuotaExceeded);
        s.admit(2, "a", 0, 4).unwrap();
    }

    #[test]
    fn remove_job_releases_window_and_lanes() {
        let mut s = sched("tenant * weight 1\nglobal max_inflight 2\n");
        s.admit(1, "a", 0, 4).unwrap();
        s.admit(2, "b", 0, 1).unwrap();
        let grants = s.enqueue(1, "ja", 0..4);
        assert_eq!(grants.len(), 2);
        assert!(s.enqueue(2, "jb", 0..1).is_empty()); // window full
        // Cancelling job 1 frees both slots and its queued tiles;
        // job 2's tile is granted by the same call.
        let freed = s.remove_job(1);
        assert_eq!(freed.len(), 1);
        assert_eq!(freed[0].job, 2);
        assert_eq!(freed[0].handle, "jb");
        assert_eq!(s.active_jobs("a"), 0);
        assert_eq!(s.pending_tiles(), 0);
    }

    #[test]
    fn grant_log_renders_deterministically() {
        let mut s = sched("tenant a weight 1\n");
        s.admit(7, "a", 2, 2).unwrap();
        let grants = s.enqueue(7, "h", [3, 9]);
        assert_eq!(grants.len(), 2);
        assert_eq!(
            render_grant_log(s.grant_log()),
            "grant 0 tenant a job 7 tile 3 prio 2\n\
             grant 1 tenant a job 7 tile 9 prio 2\n"
        );
    }

    #[test]
    fn tenant_name_validation() {
        assert!(is_tenant_name("acme-01.eu"));
        assert!(!is_tenant_name(""));
        assert!(!is_tenant_name("has space"));
        assert!(!is_tenant_name(&"x".repeat(65)));
    }
}
