//! The merged signoff report and its canonical text rendering.
//!
//! [`SignoffReport::render_text`] is the byte-comparison surface for
//! every determinism property in the crate: tiled-vs-flat, worker
//! counts, and kill/resume all assert on these exact bytes. The
//! rendering therefore contains results only — no job ids, durations,
//! or timestamps — and prints every `f64` both in shortest-round-trip
//! decimal *and* as its IEEE-754 bit pattern so "close" can never pass
//! for "equal".

use crate::codec::fnv1a_64;
use crate::spec::JobSpec;
use dfm_drc::{DrcEngine, DrcReport, RuleDeck};
use dfm_geom::{Rect, Region};
use dfm_layout::Library;
use dfm_litho::{Condition, LithoSimulator};
use dfm_yield::critical_area::{analyze_with_range, CaResult};
use dfm_yield::DefectModel;
use std::fmt::Write as _;

/// Defect density used for the CA model. The average critical area
/// reported here is independent of density (it only scales the yield
/// integral, not the area), so any fixed value keeps reports
/// comparable; this one matches the workspace experiments.
pub const CA_D0_PER_CM2: f64 = 1000.0;

/// Critical-area figures for one layer.
#[derive(Clone, Debug, PartialEq)]
pub struct CaSummary {
    /// Average short (bridging) critical area, nm².
    pub short_ca_nm2: f64,
    /// Average open (severing) critical area, nm².
    pub open_ca_nm2: f64,
    /// Number of contributing spacing pairs.
    pub short_pairs: usize,
    /// Number of contributing width pairs.
    pub open_pairs: usize,
}

impl CaSummary {
    /// Collapses a full [`CaResult`] to the reported figures.
    pub fn from_result(r: &CaResult) -> CaSummary {
        CaSummary {
            short_ca_nm2: r.short_ca_nm2,
            open_ca_nm2: r.open_ca_nm2,
            short_pairs: r.short_pairs.len(),
            open_pairs: r.open_pairs.len(),
        }
    }
}

/// Printed-image figures for one layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LithoSummary {
    /// Total printed area, nm².
    pub printed_area: i128,
    /// Canonical rect count of the printed region.
    pub rect_count: usize,
    /// FNV-1a 64 digest over the canonical rect list.
    pub digest: u64,
}

impl LithoSummary {
    /// Summarises a printed region (area, rect count, geometry digest).
    pub fn from_region(printed: &Region) -> LithoSummary {
        LithoSummary {
            printed_area: printed.area(),
            rect_count: printed.rect_count(),
            digest: digest_rects(printed.rects()),
        }
    }
}

/// One quarantined tile in a `Partial`-complete job's report: the tile
/// exhausted its retry budget and its results are **excluded** from
/// every figure above the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedTile {
    /// Tile index.
    pub tile: usize,
    /// Failed attempts consumed before quarantine.
    pub attempts: u64,
    /// The last failure's diagnostic.
    pub reason: String,
}

/// The merged result of a signoff job: one section per enabled engine.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SignoffReport {
    /// Full DRC report (present when the spec enables DRC).
    pub drc: Option<DrcReport>,
    /// Critical-area figures (present when the spec names a CA layer).
    pub ca: Option<CaSummary>,
    /// Litho print figures (present when the spec names a litho layer).
    pub litho: Option<LithoSummary>,
    /// Quarantined-tile manifest, sorted by tile. Empty on a clean run
    /// — and rendered only when non-empty, so fault-free reports are
    /// byte-identical to reports from before quarantine existed.
    pub quarantined: Vec<QuarantinedTile>,
}

impl SignoffReport {
    /// Renders the canonical report text. Equal reports render to
    /// equal bytes and vice versa (f64s are printed with their bit
    /// patterns; DRC violations are digested geometry-exactly).
    pub fn render_text(&self, spec: &JobSpec) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "signoff report");
        let _ = writeln!(out, "spec: {}", spec.to_json().render());
        match &self.drc {
            None => {
                let _ = writeln!(out, "drc: skipped");
            }
            Some(report) => {
                let _ = writeln!(
                    out,
                    "drc: {} violations, digest {:#018x}",
                    report.violation_count(),
                    digest_violations(report)
                );
                for (rule, count) in report.counts() {
                    let _ = writeln!(out, "drc.rule {rule}: {count}");
                }
            }
        }
        match &self.ca {
            None => {
                let _ = writeln!(out, "ca: skipped");
            }
            Some(ca) => {
                let _ = writeln!(
                    out,
                    "ca.short: {} nm2 [{:#018x}] over {} pairs",
                    ca.short_ca_nm2,
                    ca.short_ca_nm2.to_bits(),
                    ca.short_pairs
                );
                let _ = writeln!(
                    out,
                    "ca.open: {} nm2 [{:#018x}] over {} pairs",
                    ca.open_ca_nm2,
                    ca.open_ca_nm2.to_bits(),
                    ca.open_pairs
                );
            }
        }
        match &self.litho {
            None => {
                let _ = writeln!(out, "litho: skipped");
            }
            Some(l) => {
                let _ = writeln!(
                    out,
                    "litho.printed: {} nm2 in {} rects, digest {:#018x}",
                    l.printed_area, l.rect_count, l.digest
                );
            }
        }
        if !self.quarantined.is_empty() {
            let _ = writeln!(out, "quarantine: {} tiles excluded", self.quarantined.len());
            for q in &self.quarantined {
                let _ = writeln!(
                    out,
                    "quarantine.tile {}: {} attempts, {}",
                    q.tile, q.attempts, q.reason
                );
            }
        }
        out
    }
}

/// FNV-1a 64 over a rect list's coordinates, in order.
pub fn digest_rects(rects: &[Rect]) -> u64 {
    let mut bytes = Vec::with_capacity(rects.len() * 32);
    for r in rects {
        for c in [r.x0, r.y0, r.x1, r.y1] {
            bytes.extend_from_slice(&c.to_le_bytes());
        }
    }
    fnv1a_64(&bytes)
}

/// FNV-1a 64 over a DRC report's violations (rule name, location,
/// actual, limit), in report order.
pub fn digest_violations(report: &DrcReport) -> u64 {
    let mut bytes = Vec::new();
    for v in report.violations() {
        bytes.extend_from_slice(v.rule.as_bytes());
        bytes.push(0);
        for c in [v.location.x0, v.location.y0, v.location.x1, v.location.y1, v.actual, v.limit] {
            bytes.extend_from_slice(&c.to_le_bytes());
        }
    }
    fnv1a_64(&bytes)
}

/// Runs the whole job single-shot on the flattened layout — no tiling,
/// no scheduler, no service. This is the reference every scheduled run
/// must match byte-for-byte.
///
/// # Errors
///
/// Spec validation failures and layout flattening failures.
pub fn flat_report(spec: &JobSpec, lib: &Library) -> Result<SignoffReport, String> {
    let top = lib.top().ok_or("library has no top cell")?;
    let flat = lib.flatten(top).map_err(|e| format!("flatten failed: {e}"))?;
    flat_layout_report(spec, &flat)
}

/// [`flat_report`] for an already-flattened layout — the entry point
/// the auto-fix search uses to score candidate edits without a round
/// trip through a library.
///
/// # Errors
///
/// Spec validation and engine diagnostics.
pub fn flat_layout_report(
    spec: &JobSpec,
    flat: &dfm_layout::FlatLayout,
) -> Result<SignoffReport, String> {
    spec.validate()?;
    let tech = spec.technology()?;
    let mut report = SignoffReport::default();
    if spec.drc {
        let deck = RuleDeck::for_technology(&tech);
        report.drc = Some(DrcEngine::new(&deck).run(flat));
    }
    if let Some(layer) = spec.ca_layer {
        let defects = DefectModel::new(spec.ca_x0, CA_D0_PER_CM2);
        let result = analyze_with_range(&flat.region(layer), &defects, spec.ca_range());
        report.ca = Some(CaSummary::from_result(&result));
    }
    if let Some(layer) = spec.litho_layer {
        let sim = LithoSimulator::for_feature_size(spec.litho_feature);
        let printed = sim.printed(&flat.region(layer), Condition::nominal());
        report.litho = Some(LithoSummary::from_region(&printed));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_layout::{generate, Technology};

    fn small_lib() -> Library {
        let tech = Technology::n65();
        let params = generate::RoutedBlockParams {
            width: 6_000,
            height: 6_000,
            ..Default::default()
        };
        generate::routed_block(&tech, params, 11)
    }

    #[test]
    fn flat_report_renders_every_enabled_section() {
        let lib = small_lib();
        let spec = JobSpec {
            litho_layer: Some(dfm_layout::layers::METAL1),
            ..JobSpec::default()
        };
        let report = flat_report(&spec, &lib).expect("flat report");
        let text = report.render_text(&spec);
        assert!(text.contains("drc:"), "{text}");
        assert!(text.contains("ca.short:"), "{text}");
        assert!(text.contains("litho.printed:"), "{text}");
        assert!(!text.contains("skipped"), "{text}");
    }

    #[test]
    fn rendering_is_reproducible() {
        let lib = small_lib();
        let spec = JobSpec::default();
        let a = flat_report(&spec, &lib).expect("a").render_text(&spec);
        let b = flat_report(&spec, &lib).expect("b").render_text(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn digest_distinguishes_rect_lists() {
        let a = [Rect::new(0, 0, 10, 10)];
        let b = [Rect::new(0, 0, 10, 11)];
        assert_ne!(digest_rects(&a), digest_rects(&b));
        assert_ne!(digest_rects(&a), digest_rects(&[]));
    }
}
