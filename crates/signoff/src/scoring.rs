//! Metric extraction for the manufacturability score: the bridge from
//! a merged [`SignoffReport`] (plus submit-time layout statistics) to
//! the flat `(key, value)` list `dfm_score` consumes.
//!
//! Two metric families exist because they have different natural homes:
//!
//! * **report metrics** ([`report_metrics`]) come straight out of the
//!   merged per-tile report — DRC counts, critical area, printed area.
//!   They are available wherever the report is, in particular at job
//!   finalisation inside the service.
//! * **layout metrics** ([`layout_metrics`]) need the flat layout —
//!   via-redundancy census, pattern-catalog statistics, drawn area for
//!   the print-fidelity ratio. The service computes them once at submit
//!   time (`JobContext::build` already parses the GDS) and carries them
//!   on the context; they never touch per-tile work, which is why the
//!   spec's `score` field stays out of the tile cache key.
//!
//! Both paths — service-side scoring of a merged report and the flat
//! one-shot [`flat_score`] — feed the **same** metric set into the
//! **same** spec, so a score computed locally during a fix search is
//! byte-identical to the one the service reports for the same layout.

use crate::report::{flat_layout_report, SignoffReport};
use crate::spec::JobSpec;
use dfm_layout::{layers, FlatLayout, Library, Technology};
use dfm_pattern::catalog::anchors;
use dfm_pattern::Catalog;
use dfm_score::{ScoreReport, ScoreSpec};

/// Pattern-catalog window quantisation, nm. Fixed (not tech-derived)
/// so catalogs are comparable across technology presets.
const PATTERN_SNAP: i64 = 5;

/// Metrics extracted from the merged report: one entry per enabled
/// engine family, keys stable and documented in DESIGN.md.
pub fn report_metrics(report: &SignoffReport) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(drc) = &report.drc {
        out.extend(drc.score_metrics());
    }
    if let Some(ca) = &report.ca {
        out.push(("ca.short_nm2".to_string(), ca.short_ca_nm2));
        out.push(("ca.open_nm2".to_string(), ca.open_ca_nm2));
    }
    if let Some(litho) = &report.litho {
        out.push(("litho.printed_nm2".to_string(), litho.printed_area as f64));
    }
    out
}

/// Metrics that need the flat layout: via redundancy, pattern-catalog
/// statistics, and the drawn area of the litho layer (the denominator
/// of the print-fidelity ratio). Pure and deterministic — anchors are
/// sorted, the catalog is order-independent.
pub fn layout_metrics(flat: &FlatLayout, tech: &Technology, spec: &JobSpec) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let vias = flat.region(layers::VIA1);
    let stats = dfm_yield::via_model::classify(&vias, tech.via_space * 2);
    // A via-free layout reads 0.0 here, not NaN — the via_model
    // zero-connections guard is what keeps this aggregate finite.
    out.push(("via.redundancy".to_string(), stats.redundancy_rate()));
    let m1 = flat.region(layers::METAL1);
    let catalog = Catalog::build(&[&m1], &anchors::corners(&m1), tech.m1_pitch, PATTERN_SNAP);
    out.extend(catalog.score_metrics());
    if let Some(layer) = spec.litho_layer {
        out.push(("litho.drawn_nm2".to_string(), flat.region(layer).area() as f64));
    }
    out
}

/// The full metric set for a job: report metrics, layout metrics, and
/// the derived print-fidelity ratio where both sides are present.
pub fn job_metrics(
    report: &SignoffReport,
    layout_metrics: &[(String, f64)],
) -> Vec<(String, f64)> {
    let mut out = report_metrics(report);
    out.extend_from_slice(layout_metrics);
    if let Some(litho) = &report.litho {
        if let Some((_, drawn)) = layout_metrics.iter().find(|(k, _)| k == "litho.drawn_nm2") {
            out.push((
                "litho.area_ratio".to_string(),
                dfm_litho::metrics::print_area_ratio(litho.printed_area as f64, *drawn),
            ));
        }
    }
    out
}

/// One-shot flat scoring: run the flat engines
/// ([`flat_layout_report`]) and score the result — the local
/// counterpart of a scored service job, producing the same bytes for
/// the same layout and spec (the tiled report is bit-identical to the
/// flat one, and the metric extraction is shared).
///
/// The spec's `score` field selects the score spec; an unset field
/// falls back to the built-in default.
///
/// # Errors
///
/// Spec validation, flattening, and engine diagnostics.
pub fn flat_score(
    spec: &JobSpec,
    lib: &Library,
) -> Result<(SignoffReport, ScoreReport), String> {
    let flat = lib.flatten_top().map_err(|e| format!("flatten: {e}"))?;
    let report = flat_layout_report(spec, &flat)?;
    let score = score_flat_layout(spec, &flat, &report)?;
    Ok((report, score))
}

/// Scores an already-flattened layout against an already-computed
/// report — the inner loop of the auto-fix search, which evaluates
/// each candidate edit without serialising back to a library.
///
/// # Errors
///
/// Spec validation (score-spec text, technology).
pub fn score_flat_layout(
    spec: &JobSpec,
    flat: &FlatLayout,
    report: &SignoffReport,
) -> Result<ScoreReport, String> {
    let score_spec = spec.score_spec()?.unwrap_or_else(ScoreSpec::default_spec);
    let tech = spec.technology()?;
    let lm = layout_metrics(flat, &tech, spec);
    let metrics = job_metrics(report, &lm);
    Ok(dfm_score::score(&metrics, &score_spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfm_layout::{gds, generate};

    fn routed_lib(seed: u64) -> Library {
        let tech = Technology::n65();
        let params = generate::RoutedBlockParams {
            width: 6_000,
            height: 6_000,
            ..Default::default()
        };
        generate::routed_block(&tech, params, seed)
    }

    fn scoring_spec() -> JobSpec {
        JobSpec {
            tile: 1700,
            halo: 64,
            litho_layer: Some(layers::METAL1),
            score: Some("default".to_string()),
            ..JobSpec::default()
        }
    }

    #[test]
    fn flat_score_is_in_unit_interval_with_breakdown() {
        let lib = routed_lib(11);
        let (report, score) = flat_score(&scoring_spec(), &lib).expect("score");
        assert!((0.0..=1.0).contains(&score.score), "score {}", score.score);
        assert!(score.score.is_finite());
        // Every enabled family shows up in the breakdown.
        for key in [
            "drc.violations",
            "ca.short_nm2",
            "ca.open_nm2",
            "litho.printed_nm2",
            "litho.area_ratio",
            "via.redundancy",
            "pattern.top8_coverage",
        ] {
            assert!(score.metric(key).is_some(), "missing metric {key}");
        }
        assert!(report.ca.is_some());
        // Per-metric scores are all in [0, 1].
        for m in &score.metrics {
            assert!((0.0..=1.0).contains(&m.score), "{}: {}", m.key, m.score);
        }
    }

    #[test]
    fn flat_score_is_deterministic() {
        let lib = routed_lib(12);
        let spec = scoring_spec();
        let (_, a) = flat_score(&spec, &lib).expect("a");
        let (_, b) = flat_score(&spec, &lib).expect("b");
        assert_eq!(a.render(), b.render());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn via_free_layout_scores_finite() {
        // The zero-connections redundancy guard must keep the score
        // aggregate finite on a layout with no vias at all.
        let tech = Technology::n65();
        let mut lib = Library::new("t");
        let mut c = dfm_layout::Cell::new("TOP");
        c.add_rect(layers::METAL1, dfm_geom::Rect::new(0, 0, 4000, 90));
        c.add_rect(layers::METAL1, dfm_geom::Rect::new(0, 300, 4000, 390));
        let _ = tech;
        lib.add_cell(c).expect("add");
        let spec = JobSpec { score: Some("default".to_string()), ..JobSpec::default() };
        let (_, score) = flat_score(&spec, &lib).expect("score");
        assert!(score.score.is_finite(), "score {}", score.score);
        assert_eq!(score.metric("via.redundancy").expect("metric").value, 0.0);
    }

    #[test]
    fn layout_metrics_round_trip_through_gds() {
        // Metrics computed from a flattened parse of serialised bytes
        // equal metrics from the original library — the submit path.
        let lib = routed_lib(13);
        let spec = scoring_spec();
        let tech = spec.technology().expect("tech");
        let flat_a = lib.flatten_top().expect("flatten");
        let bytes = gds::to_bytes(&lib).expect("serialise");
        let lib_b = gds::from_bytes(&bytes).expect("parse");
        let flat_b = lib_b.flatten_top().expect("flatten");
        assert_eq!(
            layout_metrics(&flat_a, &tech, &spec),
            layout_metrics(&flat_b, &tech, &spec)
        );
    }
}
