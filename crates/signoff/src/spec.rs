//! Job specifications: what a signoff job analyses and how it is
//! sharded. A spec plus the GDS bytes fully determines the report.

use crate::codec::parse_json;
use dfm_bench::json::JsonValue;
use dfm_layout::{layers, Layer, Technology};

/// Everything a signoff job needs besides the layout itself.
///
/// The spec round-trips through JSON ([`JobSpec::to_json`] /
/// [`JobSpec::from_json`]) for the wire protocol and the on-disk
/// checkpoint, and every field participates in the analysis — there
/// are no timestamps or ids in here, so two jobs with equal specs and
/// equal GDS bytes produce byte-identical reports.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Client-chosen label (reported back, not analysed).
    pub name: String,
    /// Technology preset: `"n65"`, `"n45"`, or `"n28"`.
    pub tech: String,
    /// Tile side, nm (square tiles).
    pub tile: i64,
    /// Baseline tile halo, nm (rules still widen it per their own
    /// interaction range).
    pub halo: i64,
    /// Run the full DRC deck of the technology.
    pub drc: bool,
    /// Critical-area layer, if critical area is wanted.
    pub ca_layer: Option<Layer>,
    /// Characteristic defect size x₀ for the CA closed form, nm.
    pub ca_x0: i64,
    /// Litho print-simulation layer, if litho is wanted.
    pub litho_layer: Option<Layer>,
    /// Minimum feature size the litho simulator is tuned for, nm.
    pub litho_feature: i64,
    /// Manufacturability-score spec text (`dfm_score::ScoreSpec`
    /// format; `"default"` selects the built-in spec). `None` disables
    /// scoring. Scoring is a pure function of the merged report plus
    /// submit-time layout statistics, so this field is deliberately
    /// **excluded** from the tile cache key
    /// ([`crate::JobContext::cache_key`]) — toggling it never dirties
    /// a tile.
    pub score: Option<String>,
    /// Tenant the job is billed to for fair-share scheduling and
    /// admission quotas (`crate::sched`). Purely operational: like
    /// `name` it never participates in the analysis or the tile cache
    /// key. `"default"` when the client does not say.
    pub tenant: String,
    /// Scheduling priority, 0 (lowest, the default) to
    /// [`JobSpec::MAX_PRIORITY`]. Higher-priority lanes drain first;
    /// the field is operational only, like [`JobSpec::tenant`].
    pub priority: u8,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: "job".to_string(),
            tech: "n65".to_string(),
            tile: 8192,
            halo: 512,
            drc: true,
            ca_layer: Some(layers::METAL1),
            ca_x0: 40,
            litho_layer: None,
            litho_feature: 90,
            score: None,
            tenant: DEFAULT_TENANT.to_string(),
            priority: 0,
        }
    }
}

/// Tenant a spec is billed to when the client names none.
pub const DEFAULT_TENANT: &str = "default";

impl JobSpec {
    /// Largest accepted [`JobSpec::priority`].
    pub const MAX_PRIORITY: u8 = 9;

    /// The CA extraction range (`10·x₀`, matching
    /// [`dfm_yield::critical_area::analyze`]).
    pub fn ca_range(&self) -> i64 {
        10 * self.ca_x0
    }

    /// Resolves the technology preset.
    ///
    /// # Errors
    ///
    /// On an unknown preset name.
    pub fn technology(&self) -> Result<Technology, String> {
        match self.tech.as_str() {
            "n65" => Ok(Technology::n65()),
            "n45" => Ok(Technology::n45()),
            "n28" => Ok(Technology::n28()),
            other => Err(format!("unknown technology '{other}' (want n65|n45|n28)")),
        }
    }

    /// Basic sanity checks a service applies before accepting a job.
    ///
    /// # Errors
    ///
    /// A diagnostic when a field is out of range or nothing is enabled.
    pub fn validate(&self) -> Result<(), String> {
        self.technology()?;
        if self.tile <= 0 {
            return Err(format!("tile must be positive, got {}", self.tile));
        }
        if self.halo < 0 {
            return Err(format!("halo must be non-negative, got {}", self.halo));
        }
        if self.ca_layer.is_some() && self.ca_x0 <= 0 {
            return Err(format!("ca_x0 must be positive, got {}", self.ca_x0));
        }
        if self.litho_layer.is_some() && self.litho_feature <= 0 {
            return Err(format!("litho_feature must be positive, got {}", self.litho_feature));
        }
        if !self.drc && self.ca_layer.is_none() && self.litho_layer.is_none() {
            return Err("spec enables no analysis (drc, ca, litho all off)".to_string());
        }
        if let Some(text) = &self.score {
            dfm_score::ScoreSpec::resolve(Some(text))
                .map_err(|e| format!("spec.score: {e}"))?;
        }
        if !crate::sched::is_tenant_name(&self.tenant) {
            return Err(format!(
                "tenant must be 1-64 chars of [A-Za-z0-9_.-], got '{}'",
                self.tenant
            ));
        }
        if self.priority > JobSpec::MAX_PRIORITY {
            return Err(format!(
                "priority must be 0..={}, got {}",
                JobSpec::MAX_PRIORITY,
                self.priority
            ));
        }
        Ok(())
    }

    /// The parsed score spec, if scoring is enabled.
    ///
    /// # Errors
    ///
    /// Score-spec parse diagnostics.
    pub fn score_spec(&self) -> Result<Option<dfm_score::ScoreSpec>, String> {
        match &self.score {
            None => Ok(None),
            Some(text) => dfm_score::ScoreSpec::resolve(Some(text))
                .map(Some)
                .map_err(|e| format!("spec.score: {e}")),
        }
    }

    /// Renders the spec as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let layer_json = |l: &Option<Layer>| match l {
            Some(l) => JsonValue::str(format!("{}/{}", l.layer, l.datatype)),
            None => JsonValue::Null,
        };
        let mut fields = vec![
            ("name", JsonValue::str(&self.name)),
            ("tech", JsonValue::str(&self.tech)),
            ("tile", JsonValue::Num(self.tile as f64)),
            ("halo", JsonValue::Num(self.halo as f64)),
            ("drc", JsonValue::Bool(self.drc)),
            ("ca_layer", layer_json(&self.ca_layer)),
            ("ca_x0", JsonValue::Num(self.ca_x0 as f64)),
            ("litho_layer", layer_json(&self.litho_layer)),
            ("litho_feature", JsonValue::Num(self.litho_feature as f64)),
        ];
        // Omitted when absent so the rendered spec — embedded verbatim
        // in report text — stays byte-identical for non-scoring jobs
        // (the golden report digests predate this field).
        if let Some(score) = &self.score {
            fields.push(("score", JsonValue::str(score)));
        }
        // Same omit-when-default rule as `score`: single-tenant
        // priority-0 specs keep rendering the exact bytes the golden
        // report digests were pinned against.
        if self.tenant != DEFAULT_TENANT {
            fields.push(("tenant", JsonValue::str(&self.tenant)));
        }
        if self.priority != 0 {
            fields.push(("priority", JsonValue::Num(self.priority as f64)));
        }
        JsonValue::obj(fields)
    }

    /// Parses a spec from a JSON object node. Missing fields take the
    /// [`Default`] values, so clients may send sparse specs.
    ///
    /// # Errors
    ///
    /// On a non-object node or a malformed field.
    pub fn from_json(v: &JsonValue) -> Result<JobSpec, String> {
        if !matches!(v, JsonValue::Obj(_)) {
            return Err("spec must be a JSON object".to_string());
        }
        let mut spec = JobSpec::default();
        if let Some(n) = v.get("name") {
            spec.name = n.as_str().ok_or("spec.name must be a string")?.to_string();
        }
        if let Some(t) = v.get("tech") {
            spec.tech = t.as_str().ok_or("spec.tech must be a string")?.to_string();
        }
        if let Some(t) = v.get("tile") {
            spec.tile = json_i64(t, "spec.tile")?;
        }
        if let Some(h) = v.get("halo") {
            spec.halo = json_i64(h, "spec.halo")?;
        }
        if let Some(d) = v.get("drc") {
            spec.drc = d.as_bool().ok_or("spec.drc must be a boolean")?;
        }
        if let Some(l) = v.get("ca_layer") {
            spec.ca_layer = parse_layer(l, "spec.ca_layer")?;
        }
        if let Some(x) = v.get("ca_x0") {
            spec.ca_x0 = json_i64(x, "spec.ca_x0")?;
        }
        if let Some(l) = v.get("litho_layer") {
            spec.litho_layer = parse_layer(l, "spec.litho_layer")?;
        }
        if let Some(f) = v.get("litho_feature") {
            spec.litho_feature = json_i64(f, "spec.litho_feature")?;
        }
        if let Some(s) = v.get("score") {
            spec.score = match s {
                JsonValue::Null => None,
                JsonValue::Str(text) => Some(text.clone()),
                _ => return Err("spec.score must be a string or null".to_string()),
            };
        }
        if let Some(t) = v.get("tenant") {
            spec.tenant = t.as_str().ok_or("spec.tenant must be a string")?.to_string();
        }
        if let Some(p) = v.get("priority") {
            let p = json_i64(p, "spec.priority")?;
            if !(0..=JobSpec::MAX_PRIORITY as i64).contains(&p) {
                return Err(format!(
                    "spec.priority must be 0..={}, got {p}",
                    JobSpec::MAX_PRIORITY
                ));
            }
            spec.priority = p as u8;
        }
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Parse or field diagnostics.
    pub fn from_json_text(s: &str) -> Result<JobSpec, String> {
        JobSpec::from_json(&parse_json(s)?)
    }
}

/// Reads an exactly-integral JSON number.
pub(crate) fn json_i64(v: &JsonValue, what: &str) -> Result<i64, String> {
    let n = v.as_f64().ok_or_else(|| format!("{what} must be a number"))?;
    if n.fract() != 0.0 || n.abs() > 9e15 {
        return Err(format!("{what} must be an integer, got {n}"));
    }
    Ok(n as i64)
}

/// Parses `"layer/datatype"` (or null → None).
fn parse_layer(v: &JsonValue, what: &str) -> Result<Option<Layer>, String> {
    match v {
        JsonValue::Null => Ok(None),
        JsonValue::Str(s) => {
            let (l, d) = s
                .split_once('/')
                .ok_or_else(|| format!("{what} must look like \"4/0\""))?;
            let l: u16 = l.parse().map_err(|_| format!("{what}: bad layer number"))?;
            let d: u16 = d.parse().map_err(|_| format!("{what}: bad datatype"))?;
            Ok(Some(Layer::new(l, d)))
        }
        _ => Err(format!("{what} must be a \"layer/datatype\" string or null")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec {
            name: "block-a".to_string(),
            litho_layer: Some(layers::METAL2),
            tile: 1700,
            ..JobSpec::default()
        };
        let rendered = spec.to_json().render();
        let back = JobSpec::from_json_text(&rendered).expect("parse");
        assert_eq!(back, spec);
    }

    #[test]
    fn sparse_spec_takes_defaults() {
        let spec = JobSpec::from_json_text(r#"{"tile":2048}"#).expect("parse");
        assert_eq!(spec.tile, 2048);
        assert_eq!(spec.tech, "n65");
        assert!(spec.drc);
        assert_eq!(spec.ca_layer, Some(layers::METAL1));
    }

    #[test]
    fn bad_specs_are_diagnosed() {
        assert!(JobSpec { tech: "n14".into(), ..JobSpec::default() }.validate().is_err());
        assert!(JobSpec { tile: 0, ..JobSpec::default() }.validate().is_err());
        assert!(JobSpec {
            drc: false,
            ca_layer: None,
            litho_layer: None,
            ..JobSpec::default()
        }
        .validate()
        .is_err());
        assert!(JobSpec::from_json_text(r#"{"ca_layer":"x"}"#).is_err());
        assert!(JobSpec::from_json_text(r#"{"tile":1.5}"#).is_err());
        assert!(JobSpec::from_json_text("[1]").is_err());
        assert!(JobSpec { score: Some("not a spec".into()), ..JobSpec::default() }
            .validate()
            .is_err());
        assert!(JobSpec::from_json_text(r#"{"score":7}"#).is_err());
    }

    #[test]
    fn score_field_round_trips_and_is_omitted_when_off() {
        // Off: the rendered JSON must not mention score at all — the
        // spec line is embedded in report text and golden-pinned.
        let off = JobSpec::default();
        assert!(!off.to_json().render().contains("score"));
        assert_eq!(JobSpec::from_json_text(&off.to_json().render()).expect("parse"), off);
        // On: round-trips, including multi-line spec text.
        let on = JobSpec {
            score: Some("pass 0.7\nmetric drc.violations weight 1 scorer step 0\n".into()),
            ..JobSpec::default()
        };
        on.validate().expect("valid");
        let back = JobSpec::from_json_text(&on.to_json().render()).expect("parse");
        assert_eq!(back, on);
        // "default" selects the built-in spec.
        let dflt = JobSpec { score: Some("default".into()), ..JobSpec::default() };
        dflt.validate().expect("valid");
        assert_eq!(
            dflt.score_spec().expect("ok"),
            Some(dfm_score::ScoreSpec::default_spec())
        );
        assert_eq!(off.score_spec().expect("ok"), None);
    }

    #[test]
    fn tenant_and_priority_round_trip_and_are_omitted_when_default() {
        // Default tenant + priority 0 must leave the rendered spec
        // byte-identical to the pre-scheduler format.
        let plain = JobSpec::default();
        let rendered = plain.to_json().render();
        assert!(!rendered.contains("tenant") && !rendered.contains("priority"));
        assert_eq!(JobSpec::from_json_text(&rendered).expect("parse"), plain);
        let spec = JobSpec {
            tenant: "acme-01".to_string(),
            priority: 7,
            ..JobSpec::default()
        };
        spec.validate().expect("valid");
        let back = JobSpec::from_json_text(&spec.to_json().render()).expect("parse");
        assert_eq!(back, spec);
        // Out-of-range or malformed values are diagnosed.
        assert!(JobSpec { tenant: "has space".into(), ..JobSpec::default() }
            .validate()
            .is_err());
        assert!(JobSpec { priority: 10, ..JobSpec::default() }.validate().is_err());
        assert!(JobSpec::from_json_text(r#"{"priority":11}"#).is_err());
        assert!(JobSpec::from_json_text(r#"{"priority":-1}"#).is_err());
        assert!(JobSpec::from_json_text(r#"{"tenant":3}"#).is_err());
    }
}
