//! Socket-chaos suite: the TCP server under injected mid-frame drops
//! of its own response writes, plus clients that vanish mid-request.
//! Whatever the connection carnage, the server must never deadlock,
//! never stop accepting, never leak a pool task, and never emit a
//! non-monotonic or gapped event sequence.

use dfm_fault::{FaultAction, FaultPlan, FaultPlane, FaultRule};
use dfm_layout::{gds, generate, layers, Technology};
use dfm_signoff::server::SITE_SERVER_WRITE;
use dfm_signoff::service::JobState;
use dfm_signoff::{flat_report, Client, JobSpec, Server, ServiceConfig, SignoffService};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_gds(seed: u64) -> Vec<u8> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 6_000,
        height: 6_000,
        ..Default::default()
    };
    gds::to_bytes(&generate::routed_block(&tech, params, seed)).expect("gds")
}

fn spec() -> JobSpec {
    JobSpec {
        name: "chaos".to_string(),
        tile: 1700,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

/// Runs one request against a fresh connection, reconnecting until it
/// survives the drop chaos. Only used for idempotent reads.
fn with_retry<T>(addr: SocketAddr, mut f: impl FnMut(&mut Client) -> Result<T, String>) -> T {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(mut client) = Client::connect(&addr.to_string()) {
            if let Ok(v) = f(&mut client) {
                return v;
            }
        }
        assert!(Instant::now() < deadline, "server unreachable through the chaos");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One connection speaking both generations at once: every response
/// must come back in the dialect of the request it answers — v1
/// requests get bare frames with string errors, v2 requests get
/// `"v":2` frames with structured [`ErrorObj`]s, and a line that
/// parses as neither is answered in the last dialect spoken.
#[test]
fn mixed_dialect_connection_answers_each_request_in_kind() {
    let service = Arc::new(SignoffService::with_config(ServiceConfig::new(1)));
    let server = Server::bind(Arc::clone(&service), 0).expect("bind");
    let addr = server.local_addr();
    std::thread::spawn(move || {
        let _ = server.serve();
    });

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut ask = |line: &str| -> String {
        let mut writer = &stream;
        writer.write_all(line.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        reply.trim_end().to_string()
    };

    // v1 ping: bare frame, no version field.
    assert_eq!(ask(r#"{"cmd":"ping"}"#), r#"{"ok":true,"pong":true}"#);

    // v2 ping on the same connection: the frame leads with "v":2.
    assert_eq!(ask(r#"{"v":2,"cmd":"ping"}"#), r#"{"v":2,"ok":true,"pong":true}"#);

    // v1 error shape: a bare message string, no code object.
    let reply = ask(r#"{"cmd":"status","job":999}"#);
    assert!(!reply.contains("\"v\""), "v1 error must not carry a version field: {reply}");
    assert!(reply.contains(r#""ok":false"#), "{reply}");
    assert!(reply.contains(r#""error":"no such job"#), "v1 errors are strings: {reply}");
    assert!(!reply.contains(r#""code""#), "v1 errors carry no code: {reply}");

    // The same failing request as v2: a structured ErrorObj with its
    // typed code.
    let reply = ask(r#"{"v":2,"cmd":"status","job":999}"#);
    assert!(reply.starts_with(r#"{"v":2,"#), "{reply}");
    assert!(reply.contains(r#""error":{"#), "v2 errors are objects: {reply}");
    assert!(reply.contains(r#""code":"not_found""#), "{reply}");

    // A shard frame without "v" parses as *neither* dialect; the
    // refusal rides the last dialect spoken (v2, from the line above).
    let reply = ask(r#"{"cmd":"shard.attach","coord":9,"origin":1,"gen":0}"#);
    assert!(reply.starts_with(r#"{"v":2,"#), "{reply}");
    assert!(reply.contains(r#""code":"bad_request""#), "{reply}");

    // And the connection drops straight back to v1 on the next v1
    // request — the dialect is per-request, not sticky-per-connection.
    assert_eq!(ask(r#"{"cmd":"ping"}"#), r#"{"ok":true,"pong":true}"#);

    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let _ = client.shutdown();
}

#[test]
fn server_survives_injected_drops_and_vanishing_clients() {
    let gds_bytes = small_gds(41);
    let spec = spec();
    let flat = {
        let lib = gds::from_bytes(&gds_bytes).expect("lib");
        flat_report(&spec, &lib).expect("flat").render_text(&spec)
    };

    // 40% of all response writes are torn mid-frame and the socket
    // slammed shut. The drop decision is keyed by (connection, frame),
    // so chaos hits pings, status polls, event polls, and results
    // frames alike.
    let plan = FaultPlan::seeded(17)
        .with_rule(FaultRule::new(SITE_SERVER_WRITE, FaultAction::Drop).prob(0.4));
    let service = Arc::new(SignoffService::with_config(ServiceConfig {
        fault_plane: Some(Arc::new(FaultPlane::new(plan))),
        ..ServiceConfig::new(2)
    }));
    let server = Server::bind(Arc::clone(&service), 0).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));

    // Submit exactly once. If the response frame was dropped the job
    // still exists (drops happen after the request is handled), so
    // recover its id from the list.
    let job = match Client::connect(&addr.to_string())
        .map_err(|e| e.to_string())
        .and_then(|mut c| c.submit(spec.clone(), gds_bytes.clone()))
    {
        Ok(job) => job,
        Err(_) => with_retry(addr, |c| {
            let jobs = c.list()?;
            jobs.first().map(|s| s.id).ok_or_else(|| "no job yet".to_string())
        }),
    };

    // Clients that vanish mid-request frame, interleaved with the run.
    for _ in 0..8 {
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(b"{\"cmd\":\"stat");
            drop(s);
        }
    }

    // Poll the event stream in deltas through the chaos. The cursor
    // only advances on a fully-parsed response, so torn frames can
    // only cause re-reads — never skips.
    let mut seqs: Vec<u64> = Vec::new();
    let mut cursor = 0u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (events, next) =
            with_retry(addr, |c| c.events(job, cursor));
        seqs.extend(events.iter().map(|e| e.seq));
        cursor = next;
        let status = with_retry(addr, |c| c.status(job));
        if status.state.is_settled() && events.is_empty() {
            assert_eq!(status.state, JobState::Done, "{:?}", status.error);
            break;
        }
        assert!(Instant::now() < deadline, "job did not settle under chaos");
    }
    // Gapless and strictly monotonic, even assembled over torn frames.
    let expect: Vec<u64> = (0..seqs.len() as u64).collect();
    assert_eq!(seqs, expect, "event sequence must be gapless and monotonic");

    // The report still comes through — byte-identical to the flat run.
    let (_, report_text) = with_retry(addr, |c| c.results(job, false));
    assert_eq!(report_text, flat, "chaos on the wire must not touch the bytes");

    // More vanishing clients, then prove the server still answers.
    for _ in 0..4 {
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(b"\x00\x9f\x92\x96 torn");
            drop(s);
        }
    }
    with_retry(addr, |c| c.ping());

    // Shut down. The shutdown *response* may itself be dropped, but
    // the server latches shutdown before writing, so serve() returns
    // either way — keep asking until the accept loop is gone.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(mut c) = Client::connect(&addr.to_string()) {
            let _ = c.shutdown();
        }
        std::thread::sleep(Duration::from_millis(10));
        if Client::connect(&addr.to_string())
            .map(|mut c| c.ping().is_err())
            .unwrap_or(true)
        {
            break;
        }
        assert!(Instant::now() < deadline, "server did not shut down");
    }
    handle.join().expect("server thread");

    // No leaked pool slots: every tile task ran or was skipped, and
    // nothing is stuck queued or in flight.
    let stats = service.pool_stats();
    assert_eq!(stats.queue_depth, 0, "no tasks left queued");
    assert_eq!(stats.in_flight, 0, "no tasks stuck in flight");
    assert_eq!(stats.panicked, 0, "socket chaos must not panic tile tasks");
}
