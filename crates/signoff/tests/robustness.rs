//! Robustness regressions: a crash-littered checkpoint directory must
//! resume byte-identically to a clean one, and a submission rejected
//! under backpressure must be admitted on resubmit once the load
//! clears — with the client honouring the server's deterministic
//! retry-after hints.

use dfm_cache::TileCache;
use dfm_layout::{gds, generate, layers, Technology};
use dfm_signoff::service::JobState;
use dfm_signoff::{
    flat_report, Client, JobSpec, RequestError, SchedConfig, Server, ServiceConfig,
    SignoffService,
};
use std::sync::Arc;
use std::time::Duration;

fn small_gds(seed: u64) -> Vec<u8> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 6_000,
        height: 6_000,
        ..Default::default()
    };
    gds::to_bytes(&generate::routed_block(&tech, params, seed)).expect("gds")
}

fn spec() -> JobSpec {
    JobSpec {
        name: "robust".to_string(),
        tile: 1700,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

#[test]
fn crash_littered_directory_resumes_byte_identically() {
    let gds_bytes = small_gds(41);
    let spec = spec();
    let lib = gds::from_bytes(&gds_bytes).expect("lib");
    let flat = flat_report(&spec, &lib).expect("flat").render_text(&spec);
    let root = std::env::temp_dir().join(format!("dfms-littered-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // First life: run the job to completion so every tile checkpoint
    // exists on disk.
    let job = {
        let service = SignoffService::new(4, Some(root.clone()));
        let job = service.submit(spec.clone(), gds_bytes).expect("submit");
        let status = service.wait(job).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        job
    };

    // Simulate crash debris: orphaned `*.tmp` files a death between
    // tmp-write and rename would leave in the job directory.
    let job_dir = root.join(format!("job-{job}"));
    for junk in ["tile-3.tmp", "tile-99.tmp", "garbage.tmp"] {
        std::fs::write(job_dir.join(junk), b"half-written debris").expect("litter");
    }

    // Second life: the littered directory loads, the sweep removes the
    // debris, and resume settles to the byte-identical report.
    let service = SignoffService::new(4, Some(root.clone()));
    let status = service.status(job).expect("persisted job is visible");
    assert_eq!(status.state, JobState::Partial);
    service.resume(job).expect("resume");
    let status = service.wait(job).expect("wait");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    let (_, text) = service.report_text(job, false).expect("report");
    assert_eq!(text, flat, "littered resume must be bit-identical to the flat run");
    let leftovers: Vec<String> = std::fs::read_dir(&job_dir)
        .expect("job dir")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "tmp debris survived the sweep: {leftovers:?}");
    drop(service);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cache_open_sweeps_crash_debris() {
    let root = std::env::temp_dir().join(format!("dfms-cache-litter-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("mkdir");
    std::fs::write(root.join("deadbeef00.tmp"), b"torn store").expect("litter");
    let cache = TileCache::open(&root, None).expect("open");
    assert_eq!(cache.stats().tmp_swept, 1, "open sweeps orphaned tmp files");
    assert!(!root.join("deadbeef00.tmp").exists());
    drop(cache);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn rejected_submission_is_admitted_on_hinted_resubmit() {
    let gds_bytes = small_gds(43);
    // The global pending-tile ceiling fits exactly one 16-tile job,
    // and the 1-wide grant window keeps its tiles queued while they
    // run: the second submission is refused with `busy` + a
    // deterministic retry hint until the first drains.
    let sched =
        SchedConfig::parse("tenant * weight 1\nglobal max_inflight 1 max_pending_tiles 16\n")
            .expect("plan");
    let service = SignoffService::with_config(
        ServiceConfig::builder()
            .threads(2)
            .sched(sched)
            .tile_delay(Duration::from_millis(20))
            .build(),
    );
    let server = Server::bind(Arc::new(service), 0).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));

    let mut client = Client::connect(&addr).expect("connect");
    let first = client.submit(spec(), gds_bytes.clone()).expect("first submit");

    // A bare resubmit while the slot is held is a structured refusal
    // carrying the retry hint…
    match client.try_submit(spec(), gds_bytes.clone()) {
        Err(RequestError::Server(err)) => {
            assert_eq!(err.code, "busy");
            assert!(err.retry_after_vms.is_some(), "backpressure carries a hint: {err:?}");
        }
        other => panic!("expected busy rejection, got {other:?}"),
    }
    // …and the hint-following retry loop rides it out to admission.
    let second = client
        .submit_until_admitted(spec(), gds_bytes, Some("robust-second"), 200)
        .expect("rejected-then-admitted resubmit");
    assert_ne!(first, second, "the resubmit mints its own job");

    let status = client.wait(first).expect("wait first");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    let status = client.wait(second).expect("wait second");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}
