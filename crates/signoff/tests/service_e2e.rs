//! End-to-end over a real loopback socket: submit → events → results,
//! cancel/resume, and a full service restart from the checkpoint
//! directory — all byte-compared against the flat single-shot run.

use dfm_layout::{gds, generate, layers, Technology};
use dfm_signoff::service::JobState;
use dfm_signoff::{flat_report, Client, JobSpec, Server, ServiceConfig, SignoffService};
use std::sync::Arc;
use std::time::Duration;

fn small_gds(seed: u64) -> Vec<u8> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 6_000,
        height: 6_000,
        ..Default::default()
    };
    gds::to_bytes(&generate::routed_block(&tech, params, seed)).expect("gds")
}

fn spec() -> JobSpec {
    JobSpec {
        name: "e2e".to_string(),
        tile: 1700,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

fn flat_text(spec: &JobSpec, gds_bytes: &[u8]) -> String {
    let lib = gds::from_bytes(gds_bytes).expect("lib");
    flat_report(spec, &lib).expect("flat").render_text(spec)
}

fn start_server(service: SignoffService) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(Arc::new(service), 0).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

#[test]
fn wire_round_trip_matches_the_flat_report() {
    let gds_bytes = small_gds(41);
    let spec = spec();
    let flat = flat_text(&spec, &gds_bytes);

    let (addr, handle) = start_server(SignoffService::new(4, None));
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    client.ping().expect("ping");

    let job = client.submit(spec.clone(), gds_bytes).expect("submit");
    let status = client.wait(job).expect("wait");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);

    // The event stream is complete and gapless when polled in deltas.
    let mut seqs = Vec::new();
    let mut cursor = 0;
    loop {
        let (events, next) = client.events(job, cursor).expect("events");
        seqs.extend(events.iter().map(|e| e.seq));
        if events.is_empty() {
            break;
        }
        cursor = next;
    }
    let expect: Vec<u64> = (0..status.next_seq).collect();
    assert_eq!(seqs, expect, "gapless event stream over the wire");

    let (_, report_text) = client.results(job, false).expect("results");
    assert_eq!(report_text, flat, "wire report must be bit-identical to the flat run");

    let jobs = client.list().expect("list");
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].id, job);

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn cancel_then_resume_over_the_wire_is_byte_identical() {
    let gds_bytes = small_gds(42);
    let spec = spec();
    let flat = flat_text(&spec, &gds_bytes);

    let service = SignoffService::with_config(
        ServiceConfig::builder().threads(2).tile_delay(Duration::from_millis(25)).build(),
    );
    let (addr, handle) = start_server(service);
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    let job = client.submit(spec, gds_bytes).expect("submit");
    let status = client.cancel(job).expect("cancel");
    assert_eq!(status.state, JobState::Cancelled);
    assert!(client.results(job, false).is_err(), "no final report while cancelled");

    client.resume(job).expect("resume");
    let status = client.wait(job).expect("wait");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    let (_, report_text) = client.results(job, false).expect("results");
    assert_eq!(report_text, flat);

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn service_restart_resumes_from_checkpoints_to_identical_bytes() {
    let gds_bytes = small_gds(43);
    let spec = spec();
    let flat = flat_text(&spec, &gds_bytes);
    let root = std::env::temp_dir().join(format!("dfms-e2e-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // First life: slow tiles, stopped after at least one checkpoint.
    let job = {
        let service =
            SignoffService::with_config(
                ServiceConfig::builder()
                    .threads(2)
                    .ckpt_root(root.clone())
                    .tile_delay(Duration::from_millis(10))
                    .build(),
            );
        let job = service.submit(spec.clone(), gds_bytes).expect("submit");
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let status = service.status(job).expect("status");
            if status.tiles_done >= 1 || status.state.is_terminal() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no tile completed in time");
            std::thread::sleep(Duration::from_millis(5));
        }
        service.cancel(job).ok(); // stop scheduling; drop drains the pool
        job
    };
    let ckpt_files = std::fs::read_dir(root.join(format!("job-{job}")))
        .expect("job dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().starts_with("tile-"))
        .count();
    assert!(ckpt_files >= 1, "at least one tile checkpointed before the stop");

    // Second life: a fresh process loads the job from disk as Partial
    // and resume() recomputes exactly the missing tiles.
    let service = SignoffService::new(4, Some(root.clone()));
    let status = service.status(job).expect("persisted job is visible");
    assert_eq!(status.state, JobState::Partial);
    service.resume(job).expect("resume");
    let status = service.wait(job).expect("wait");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    let (_, text) = service.report_text(job, false).expect("report");
    assert_eq!(text, flat, "resumed report must be bit-identical to the flat run");
    drop(service);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn v1_clients_still_work_and_v2_rejections_are_structured() {
    use dfm_signoff::{RequestError, SchedConfig};
    use std::io::{BufRead, BufReader, Write};

    let gds_bytes = small_gds(41);
    let sched = SchedConfig::parse("tenant acme weight 2 max_jobs 1\ntenant beta weight 1\n")
        .expect("plan");
    let service = SignoffService::with_config(
        ServiceConfig::builder()
            .threads(2)
            .sched(sched)
            .tile_delay(Duration::from_millis(20))
            .build(),
    );
    let (addr, handle) = start_server(service);

    // A v1 peer: hand-rolled unversioned frames on a raw socket. The
    // submit must succeed and every answer must be v1-shaped (no "v").
    let stream = std::net::TcpStream::connect(addr).expect("connect v1");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let spec_v1 = JobSpec { tenant: "acme".to_string(), ..spec() };
    let mut line =
        dfm_signoff::proto::Request::Submit { spec: spec_v1, gds: gds_bytes.clone(), idem: None }
        .body_json()
        .render();
    assert!(!line.contains("\"v\""), "body_json is the v1 frame shape");
    line.push('\n');
    writer.write_all(line.as_bytes()).expect("send");
    writer.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    assert!(reply.contains("\"ok\":true"), "v1 submit accepted: {reply:?}");
    assert!(!reply.contains("\"v\""), "v1 peers get v1-shaped answers: {reply:?}");

    // While acme's job is active, a second acme submission over a v2
    // client is refused with the typed code and a retry hint…
    let mut client = Client::builder()
        .timeout(Duration::from_secs(30))
        .tenant("acme")
        .connect(&addr.to_string())
        .expect("connect v2");
    let first = client.list().expect("list")[0].id;
    match client.try_submit(spec(), gds_bytes.clone()) {
        Err(RequestError::Server(err)) => {
            assert_eq!(err.code, "quota_exceeded");
            assert!(err.retry_after_vms.is_some(), "backpressure carries a hint: {err:?}");
        }
        other => panic!("expected structured rejection, got {other:?}"),
    }
    // …and an unknown tenant gets its own code (no retry hint helps).
    let ghost = JobSpec { tenant: "ghost".to_string(), ..spec() };
    match client.try_submit(ghost, gds_bytes.clone()) {
        Err(RequestError::Server(err)) => assert_eq!(err.code, "unknown_tenant"),
        other => panic!("expected unknown_tenant, got {other:?}"),
    }
    // beta is under no quota; the builder's default tenant applies.
    let mut beta = Client::builder().tenant("beta").connect(&addr.to_string()).expect("beta");
    let beta_job = beta.submit(spec(), gds_bytes).expect("beta submit");
    let status = beta.wait(beta_job).expect("wait beta");
    assert_eq!(status.tenant, "beta", "tenant travels the wire");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);

    // Once acme's first job settles, the quota frees up again.
    let status = client.wait(first).expect("wait acme");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn hostile_bytes_on_the_socket_never_kill_the_server() {
    use std::io::{BufRead, BufReader, Write};
    let (addr, handle) = start_server(SignoffService::new(1, None));

    // A parade of malformed frames on one connection: every one must
    // come back as an {"ok":false,...} error, never a hangup.
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    for frame in [
        "\n",
        "{\n",
        "nonsense\n",
        "[1,2,3]\n",
        "{\"cmd\":\"warp\"}\n",
        "{\"cmd\":\"submit\",\"spec\":{\"tile\":-4},\"gds_hex\":\"00\"}\n",
        "{\"cmd\":\"submit\",\"spec\":{},\"gds_hex\":\"0g\"}\n",
        "{\"cmd\":\"results\",\"job\":999}\n",
    ] {
        writer.write_all(frame.as_bytes()).expect("send");
        writer.flush().expect("flush");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        assert!(reply.contains("\"ok\":false"), "frame {frame:?} got {reply:?}");
    }
    drop(writer);
    drop(reader);

    // And raw binary garbage on a second connection: the server may
    // close that connection, but must keep serving a third one.
    let mut garbage = std::net::TcpStream::connect(addr).expect("connect 2");
    garbage.write_all(&[0u8, 159, 146, 150, 255, 254, 0, 7, b'\n']).expect("send garbage");
    drop(garbage);

    let mut client = Client::connect(&addr.to_string()).expect("connect 3");
    client.ping().expect("server still alive");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}
