//! Shard-chaos suite: the coordinator under injected coordinator↔shard
//! socket faults. A dead shard's range must be re-dispatched to a
//! survivor without touching the bytes; when no shard survives, the
//! job must degrade to a *deterministic* `Partial` with a per-shard
//! quarantine manifest; a restarted coordinator must reattach to its
//! shards and replay from its last merged prefix.

use dfm_cache::TileCache;
use dfm_fault::{FaultAction, FaultPlan, FaultPlane, FaultRule};
use dfm_layout::{gds, generate, layers, Technology};
use dfm_signoff::service::{JobEvent, JobEventKind, JobState};
use dfm_signoff::{
    flat_report, Client, JobSpec, Server, ServiceConfig, SignoffService, SITE_SHARD_DISPATCH,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn block_gds() -> Vec<u8> {
    let tech = Technology::n65();
    let params = generate::RoutedBlockParams {
        width: 6_000,
        height: 6_000,
        ..Default::default()
    };
    gds::to_bytes(&generate::routed_block(&tech, params, 47)).expect("gds")
}

fn spec() -> JobSpec {
    JobSpec {
        name: "shard-chaos".to_string(),
        tile: 1700,
        halo: 64,
        litho_layer: Some(layers::METAL1),
        ..JobSpec::default()
    }
}

fn flat_text() -> String {
    let spec = spec();
    let lib = gds::from_bytes(&block_gds()).expect("lib");
    flat_report(&spec, &lib).expect("flat").render_text(&spec)
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dfms-chaos-{tag}-{}-{n}", std::process::id()))
}

fn spawn_shard(k: u64, n: u64, cache: Option<Arc<TileCache>>) -> String {
    let mut cfg = ServiceConfig::builder().threads(2).shard_of(k, n);
    if let Some(cache) = cache {
        cfg = cfg.cache(cache);
    }
    let service = Arc::new(SignoffService::with_config(cfg.build()));
    let server = Server::bind(service, 0).expect("bind shard");
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || {
        let _ = server.serve();
    });
    addr
}

fn shutdown_all(addrs: &[String]) {
    for addr in addrs {
        if let Ok(mut client) = Client::connect(addr) {
            let _ = client.shutdown();
        }
    }
}

/// A coordinator over `addrs` whose coordinator↔shard sockets run
/// under `plan`.
fn coordinator(addrs: &[String], plan: Option<FaultPlan>) -> SignoffService {
    let mut cfg = ServiceConfig::builder().threads(2).shards(addrs.to_vec());
    if let Some(plan) = plan {
        cfg = cfg.fault_plane(Arc::new(FaultPlane::new(plan)));
    }
    SignoffService::with_config(cfg.build())
}

fn run_job(service: &SignoffService) -> (JobState, Vec<JobEvent>, String) {
    let id = service.submit(spec(), block_gds()).expect("submit");
    let status = service.wait(id).expect("wait");
    let events = service.events(id, 0).expect("events");
    let (_, text) = service.report_text(id, true).expect("report");
    (status.state, events, text)
}

/// Killing one shard's dispatch leg re-routes its whole range to the
/// survivor — and the merged run is byte-identical to a faultless one.
#[test]
fn dead_shard_redispatches_to_survivor_byte_identically() {
    let flat = flat_text();
    let baseline = SignoffService::with_config(ServiceConfig::builder().threads(2).build());
    let (state, base_events, base_text) = run_job(&baseline);
    assert_eq!(state, JobState::Done);
    assert_eq!(base_text, flat);

    // Shard 0's dispatch connection errors at generation 0 only: the
    // takeover re-dispatch (generation 1) goes through.
    let plan = FaultPlan::seeded(5).with_rule(
        FaultRule::new(SITE_SHARD_DISPATCH, FaultAction::Error).key(0).first_attempts(1),
    );
    let addrs: Vec<String> = (0..2).map(|k| spawn_shard(k, 2, None)).collect();
    let coord = coordinator(&addrs, Some(plan));
    let (state, events, text) = run_job(&coord);
    let stats = coord.shard_stats().expect("coordinator has shard stats");
    shutdown_all(&addrs);

    assert_eq!(state, JobState::Done, "survivor must absorb the dead shard's range");
    assert_eq!(events, base_events, "takeover changed the event stream");
    assert_eq!(text, flat, "takeover changed report bytes");
    assert_eq!(stats.shards, 2);
    assert!(stats.tiles_redispatched > 0, "the lost range must be re-dispatched");
}

/// With no surviving shard the job settles `Partial`, and the
/// degradation itself is deterministic: two identical runs produce the
/// same event stream and the same quarantine manifest, byte for byte.
#[test]
fn no_survivor_degrades_to_deterministic_partial() {
    let run = || {
        let plan = FaultPlan::seeded(5).with_rule(
            FaultRule::new(SITE_SHARD_DISPATCH, FaultAction::Error).key(0).first_attempts(1),
        );
        let addrs = vec![spawn_shard(0, 1, None)];
        let coord = coordinator(&addrs, Some(plan));
        let out = run_job(&coord);
        shutdown_all(&addrs);
        out
    };
    let (state_a, events_a, text_a) = run();
    let (state_b, events_b, text_b) = run();
    assert_eq!(state_a, JobState::Partial, "lone dead shard must degrade, not hang");
    assert_eq!(state_b, JobState::Partial);
    assert_eq!(events_a, events_b, "degradation must be deterministic");
    assert_eq!(text_a, text_b, "partial report must be deterministic");
    // Every tile carries the per-shard loss diagnostic in the manifest.
    let quarantined: Vec<&JobEvent> = events_a
        .iter()
        .filter(|e| matches!(e.kind, JobEventKind::TileQuarantined { .. }))
        .collect();
    assert!(!quarantined.is_empty(), "lost tiles must be quarantined");
    for e in quarantined {
        if let JobEventKind::TileQuarantined { reason, .. } = &e.kind {
            assert!(
                reason.starts_with("shard 0 lost:"),
                "manifest must name the lost shard: {reason}"
            );
        }
    }
    assert!(text_a.contains("quarantine:"), "report must carry the quarantine manifest");
}

/// Every dispatch and re-dispatch failing (both shards dead, takeover
/// legs included) still settles the job `Partial` with a manifest —
/// never a hang, never a crash.
#[test]
fn all_shards_dead_still_settles_partial() {
    let plan = FaultPlan::seeded(5)
        .with_rule(FaultRule::new(SITE_SHARD_DISPATCH, FaultAction::Error));
    let addrs: Vec<String> = (0..2).map(|k| spawn_shard(k, 2, None)).collect();
    let coord = coordinator(&addrs, Some(plan));
    let (state, events, text) = run_job(&coord);
    shutdown_all(&addrs);
    assert_eq!(state, JobState::Partial);
    let quarantined = events
        .iter()
        .filter(|e| matches!(e.kind, JobEventKind::TileQuarantined { .. }))
        .count();
    assert!(quarantined > 0, "all tiles lost must mean a quarantine manifest");
    assert!(text.contains("quarantine:"));
}

/// A coordinator restarted over its checkpoint root reattaches to the
/// still-running shards (`shard.attach`, generation 0) and replays
/// only the tiles missing from its merged prefix — final bytes
/// identical to the flat run.
#[test]
fn restarted_coordinator_reattaches_and_replays_from_merged_prefix() {
    let flat = flat_text();
    let root = fresh_dir("coord-ckpt");
    let addrs: Vec<String> = (0..2).map(|k| spawn_shard(k, 2, None)).collect();

    // First life: run to completion, checkpointing every merged tile.
    let id = {
        let coord = SignoffService::with_config(
            ServiceConfig::builder()
                .threads(2)
                .shards(addrs.clone())
                .ckpt_root(root.clone())
                .build(),
        );
        let id = coord.submit(spec(), block_gds()).expect("submit");
        let status = coord.wait(id).expect("wait");
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        id
    };

    // Simulate the kill: a fresh coordinator over the same root finds
    // an arbitrary surviving prefix (here: even tiles deleted).
    let job_dir = root.join(format!("job-{id}"));
    let mut tile = 0;
    loop {
        let path = job_dir.join(format!("tile-{tile}.bin"));
        if !path.exists() {
            break;
        }
        if tile % 2 == 0 {
            std::fs::remove_file(&path).expect("delete tile checkpoint");
        }
        tile += 1;
    }
    assert!(tile > 1, "fixture must be multi-tile");

    // Second life: same shards, same root. Resume must reattach to the
    // shards' retained jobs and merge the missing tiles from their
    // outcome logs.
    let coord = SignoffService::with_config(
        ServiceConfig::builder().threads(2).shards(addrs.clone()).ckpt_root(root.clone()).build(),
    );
    let status = coord.status(id).expect("status");
    assert_eq!(status.state, JobState::Partial, "loaded prefix must read as partial");
    coord.resume(id).expect("resume");
    let status = coord.wait(id).expect("wait");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    let (_, text) = coord.report_text(id, false).expect("report");
    shutdown_all(&addrs);
    assert_eq!(text, flat, "replayed run must render the flat bytes");
    let _ = std::fs::remove_dir_all(&root);
}

/// Takeover with a warm shared cache: the survivor serves the lost
/// range from disk instead of recomputing it, and the event stream
/// matches a warm single-process run exactly.
#[test]
fn warm_cache_takeover_recovers_lost_range_from_cache() {
    let flat = flat_text();
    let base_dir = fresh_dir("warm-base");
    let shard_dir = fresh_dir("warm-shard");

    // Warm single-process baseline: cold run stores, warm run hits.
    let base_cache = Arc::new(TileCache::open(&base_dir, None).expect("open cache"));
    let baseline = SignoffService::with_config(
        ServiceConfig::builder().threads(2).cache(base_cache).build(),
    );
    let (state, _, _) = run_job(&baseline);
    assert_eq!(state, JobState::Done);
    let (state, warm_events, _) = run_job(&baseline);
    assert_eq!(state, JobState::Done);

    // Warm the shard cluster's shared cache with a faultless run.
    let shard_cache = Arc::new(TileCache::open(&shard_dir, None).expect("open cache"));
    let addrs: Vec<String> =
        (0..2).map(|k| spawn_shard(k, 2, Some(Arc::clone(&shard_cache)))).collect();
    let warmup = coordinator(&addrs, None);
    let (state, _, _) = run_job(&warmup);
    assert_eq!(state, JobState::Done);

    // Now kill shard 0's dispatch leg: the survivor absorbs the lost
    // range straight from the warm cache.
    let plan = FaultPlan::seeded(5).with_rule(
        FaultRule::new(SITE_SHARD_DISPATCH, FaultAction::Error).key(0).first_attempts(1),
    );
    let coord = coordinator(&addrs, Some(plan));
    let (state, events, text) = run_job(&coord);
    let stats = coord.shard_stats().expect("shard stats");
    shutdown_all(&addrs);

    assert_eq!(state, JobState::Done);
    assert!(stats.tiles_redispatched > 0, "the lost range must be re-dispatched");
    assert_eq!(events, warm_events, "warm takeover must replay cache hits byte-identically");
    assert_eq!(text, flat);
    assert!(
        events.iter().any(|e| matches!(e.kind, JobEventKind::TileCacheHit { .. })),
        "recovered tiles must be served from the cache"
    );
    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&shard_dir);
}
